"""The bound-serving service's hot paths (see docs/service.md).

Three workloads enter the CI trajectory:

* ``test_bench_service_bound_warm`` — the warm request path an
  optimizer's plan search lives on (statistics cache + result memo hit,
  no LP touched);
* ``test_bench_service_http_round_trip`` — the same request through the
  stdlib HTTP front-end over one keep-alive connection;
* ``test_bench_service_http_contended`` — warm throughput (requests/s)
  at 8 concurrent keep-alive clients, the locking-discipline canary;
* the ``b_swap`` pair — the persistent warm-started HiGHS model vs the
  cached one-shot scipy path on the plan-search shape that motivates
  it: one LP structure re-solved under many statistics vectors.

``test_service_persistent_speedup_guard`` asserts the ≥2× acceptance
bar for the persistent path (and 1e-6 bound agreement); it runs only
where the ``repro[service]`` extra is installed — the CI
``REPRO_LP=persistent`` leg.
"""

import math
from dataclasses import replace

import pytest

from repro.core import (
    BoundSolver,
    StatisticsSet,
    collect_statistics,
    forced_lp_mode,
    highspy_available,
)
from repro.datasets import power_law_graph
from repro.query import parse_query
from repro.relational import Database
from repro.service import BoundClient, BoundRequest, BoundService, start_server

PS = (1.0, 2.0, math.inf)
TRIANGLE = "Q(x,y,z) :- R(x,y), R(y,z), R(z,x)"
WARM_REQUESTS = 200

#: b-vector variants per structure in the swap workload (a plan search
#: re-costs one structure under many hypothesized statistics).
SWAPS = 40


def _service():
    db = Database({"R": power_law_graph(300, 1800, 0.7, seed=9)})
    service = BoundService(db, ps=PS)
    service.precompute([TRIANGLE])
    return service


def _bound_rounds(service, n):
    request = BoundRequest(query=TRIANGLE, ps=PS)
    responses = [service.bound(request) for _ in range(n)]
    assert all(r.cached for r in responses)
    return responses


def test_bench_service_bound_warm(benchmark):
    """The sub-ms warm path: parse cache + statistics cache + memo."""
    service = _service()
    _bound_rounds(service, 1)  # ensure the memo is hot
    responses = benchmark(_bound_rounds, service, WARM_REQUESTS)
    assert responses[0].status == "optimal"


def test_bench_service_http_round_trip(benchmark):
    """The same warm request through HTTP/1.1 keep-alive."""
    service = _service()
    server = start_server(service)
    client = BoundClient(server.url)
    try:
        client.bound(query=TRIANGLE, ps=PS)  # connect + warm

        def rounds(n):
            return [client.bound(query=TRIANGLE, ps=PS) for _ in range(n)]

        responses = benchmark(rounds, WARM_REQUESTS)
        assert all(r.cached for r in responses)
    finally:
        client.close()
        server.shutdown()
        server.server_close()


#: Concurrent keep-alive clients in the contended-throughput entry.
CONTENDED_CLIENTS = 8
CONTENDED_PER_CLIENT = 50


def test_bench_service_http_contended(benchmark):
    """Warm throughput under contention: 8 concurrent keep-alive clients.

    The measured quantity is the wall time for 8 × 50 warm requests
    issued from 8 threads, i.e. requests/s at 8 concurrent clients —
    the locking-discipline regression canary: a lock held across LP or
    JSON work would collapse this entry while leaving the
    single-client round trip untouched.
    """
    from concurrent.futures import ThreadPoolExecutor

    service = _service()
    server = start_server(service)
    clients = [BoundClient(server.url) for _ in range(CONTENDED_CLIENTS)]
    try:
        for client in clients:  # connect + warm every connection
            client.bound(query=TRIANGLE, ps=PS)

        def one_client(client):
            return [
                client.bound(query=TRIANGLE, ps=PS)
                for _ in range(CONTENDED_PER_CLIENT)
            ]

        def contended_sweep():
            with ThreadPoolExecutor(max_workers=CONTENDED_CLIENTS) as pool:
                return list(pool.map(one_client, clients))

        batches = benchmark(contended_sweep)
        assert len(batches) == CONTENDED_CLIENTS
        for batch in batches:
            assert all(r.cached for r in batch)
    finally:
        for client in clients:
            client.close()
        server.shutdown()
        server.server_close()


# ---------------------------------------------------------------------------
# the b-swap workload: one LP structure, many statistics vectors


def _b_swap_workload():
    """One triangle structure with SWAPS distinct statistics vectors.

    ``dataclasses.replace`` jitters each statistic's ``log2_bound`` —
    the LP's b vector — leaving the structure (conditionals, norms,
    guards) untouched, so a structure-cached solver re-solves the same
    skeleton under new bounds every time.
    """
    query = parse_query(TRIANGLE)
    db = Database({"R": power_law_graph(300, 1800, 0.7, seed=9)})
    base = collect_statistics(query, db, ps=PS)
    variants = []
    for i in range(SWAPS):
        variants.append(
            StatisticsSet(
                replace(s, log2_bound=s.log2_bound * (1.0 + 0.003 * i))
                for s in base
            )
        )
    return query, variants


def _solve_swaps(solver, query, variants):
    return [
        solver.solve(stats, query=query).log2_bound for stats in variants
    ]


def test_bench_lp_b_swap_oneshot(benchmark):
    """The cached one-shot baseline: skeleton cached, scipy per solve."""
    query, variants = _b_swap_workload()
    with forced_lp_mode("oneshot"):
        solver = BoundSolver(memoize_results=False)
        bounds = benchmark(_solve_swaps, solver, query, variants)
    assert len(bounds) == SWAPS
    assert solver.cached_assemblies() >= 1


@pytest.mark.skipif(
    not highspy_available(), reason="persistent path needs highspy"
)
def test_bench_lp_b_swap_persistent(benchmark):
    """The warm path: one HiGHS model, b swapped in place per solve."""
    query, variants = _b_swap_workload()
    with forced_lp_mode("persistent"):
        solver = BoundSolver(memoize_results=False)
        bounds = benchmark(_solve_swaps, solver, query, variants)
    assert len(bounds) == SWAPS
    assert solver.cached_models() == 1
    assert solver.persistent_resolves >= SWAPS


@pytest.mark.skipif(
    not highspy_available(), reason="persistent path needs highspy"
)
def test_service_persistent_speedup_guard():
    """Acceptance bar: persistent ≥2× over cached one-shot, 1e-6 agree."""
    import time

    query, variants = _b_swap_workload()

    def run(mode):
        with forced_lp_mode(mode):
            solver = BoundSolver(memoize_results=False)
            _solve_swaps(solver, query, variants)  # warm-up pass
            best = math.inf
            for _ in range(3):
                start = time.perf_counter()
                bounds = _solve_swaps(solver, query, variants)
                best = min(best, time.perf_counter() - start)
        return bounds, best

    oneshot_bounds, oneshot_time = run("oneshot")
    persistent_bounds, persistent_time = run("persistent")
    for warm, oracle in zip(persistent_bounds, oneshot_bounds):
        assert warm == pytest.approx(oracle, abs=1e-6)
    speedup = oneshot_time / persistent_time
    assert speedup >= 2.0, (
        f"persistent b-swap path only {speedup:.2f}× over one-shot "
        f"({persistent_time * 1e3:.1f} ms vs {oneshot_time * 1e3:.1f} ms)"
    )
