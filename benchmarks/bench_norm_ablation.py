"""E9 — ablation: bound quality vs available norm family (docs/architecture.md).

Regenerates: geometric-mean bound/true ratios over the JOB-like workload
for nested norm families.  Asserts monotone improvement, the huge jump
from {1} to {1,∞}, and a further multi-x gain from intermediate norms —
the paper's "wide variety of norms is useful" observation.
"""

from repro.experiments.norm_ablation import run_norm_ablation


def test_bench_norm_ablation(once, imdb_db):
    rows = once(run_norm_ablation, imdb_db)
    print()
    for r in rows:
        print(f"  {r.label:12s} geomean={r.geomean_ratio:10.3g} "
              f"worst={r.worst_ratio:10.3g}")
    # monotone improvement as the family grows
    for earlier, later in zip(rows, rows[1:]):
        assert later.geomean_ratio <= earlier.geomean_ratio * (1 + 1e-9)
    # {1} → {1,∞} is the big cliff (PK-FK joins)
    assert rows[0].geomean_ratio / rows[1].geomean_ratio > 100
    # intermediate norms buy another useful factor over {1,∞}
    assert rows[1].geomean_ratio / rows[-1].geomean_ratio > 2
