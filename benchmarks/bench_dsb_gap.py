"""E5 — Appendix C.3: DSB vs ℓp-bound gap (see docs/architecture.md).

Regenerates: the (0,1/3)/(0,2/3) gap instance.  Asserts: DSB exponent ≈ 1
(tight), ℓp LP exponent ≈ 10/9, the LP matches closed form (50), and the
witness instance satisfies every statistic while achieving M^{10/9}.
"""

from repro.experiments.dsb_gap import run_dsb_gap_experiment


def test_bench_dsb_gap(once):
    res = once(run_dsb_gap_experiment)
    print(f"\n  M={res.m}: DSB exponent {res.dsb_exponent:.3f}, "
          f"LP exponent {res.lp_exponent:.3f} (paper: 1 vs 10/9≈1.111)")
    # DSB is within a constant of |Q| = Θ(M)
    assert res.log2_dsb >= res.log2_m - 1e-9
    assert res.dsb_exponent < 1.09
    # the ℓp bound is stuck at ~M^{10/9} (finite-size effects allowed)
    assert 1.10 < res.lp_exponent < 1.17
    # the LP matches the hand-derived certificate (50)
    assert abs(res.log2_lp - res.log2_certificate) < 0.01
    # the witness is admissible for the norms and beats the DSB
    assert res.witness_satisfies_stats
    assert res.witness_count > 2 ** res.log2_dsb
