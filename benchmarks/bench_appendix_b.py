"""E13 — Appendix B: the [14] bound and Theorem B.2 (see docs/architecture.md).

Regenerates: Example B.1's unsound N^{2/3} claim and the (cycle length,
p) agreement sweep.  Asserts: the modular value undershoots the true
output exactly when the girth condition fails, and modular = polymatroid
exactly when it holds.
"""

from repro.experiments.appendix_b import run_example_b1, run_theorem_b2


def test_bench_example_b1(once):
    res = once(run_example_b1, 4096)
    print(f"\n  N={res.n}: claim 2^{res.log2_claim_modular:.2f}, "
          f"truth {res.true_count}, sound 2^{res.log2_polymatroid:.2f}")
    assert res.modular_undershoots
    assert abs(res.log2_claim_modular - (2 / 3) * 12.0) < 1e-6
    assert 2 ** res.log2_polymatroid >= res.true_count


def test_bench_theorem_b2_sweep(once):
    rows = once(run_theorem_b2)
    print()
    for r in rows:
        print(f"  cycle={r.cycle_length} p={r.p:g} "
              f"applicable={r.applicable} agree={r.agree}")
        # Theorem B.2: girth ≥ p+1 ⟹ modular = polymatroid; on these
        # instances the converse holds too (the gap is realised).
        assert r.agree == r.applicable
        # the modular value never exceeds the polymatroid value (M_n ⊂ Γ_n)
        assert r.log2_modular <= r.log2_polymatroid + 1e-9
