"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures (see
docs/architecture.md).  Experiments are deterministic but not micro-benchmarks, so each runs
once per session (pedantic mode, 1 round) and asserts the paper's
qualitative *shape* — who wins, by roughly what factor — on top of timing.
"""

import tracemalloc

import pytest


@pytest.fixture
def traced_peak():
    """Measure one call's peak traced allocation: ``(result, peak_bytes)``.

    NumPy registers its buffer allocations with ``tracemalloc``, so the
    peak covers the columnar engine's working set — a deterministic,
    machine-independent stand-in for peak RSS.  Benchmarks record it via
    ``benchmark.extra_info["peak_traced_kb"]``, which
    ``benchmarks/trajectory.py`` turns into the CI memory-trajectory
    series.
    """

    def measure(fn, *args, **kwargs):
        tracemalloc.start()
        try:
            result = fn(*args, **kwargs)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return result, peak

    return measure


@pytest.fixture
def once(benchmark):
    """Run the callable exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner


@pytest.fixture(scope="session")
def imdb_db():
    """The shared JOB-like IMDB database (scale 0.3, seed 7).

    Session-scoped so bench_job / bench_norm_ablation time the estimation
    pipeline, not dataset generation — the E3/E9 drivers take it via their
    ``db`` parameter instead of rebuilding it every benchmark round.
    """
    from repro.datasets.imdb import imdb_database

    return imdb_database(scale=0.3, seed=7)
