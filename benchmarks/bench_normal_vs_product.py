"""E6 — Example 6.7: normal vs product worst cases (see docs/architecture.md).

Regenerates: the ℓ4 triangle-plus-unaries instance.  Asserts: LP bound =
B exactly; the normal database satisfies the statistics and achieves
≥ B/2; the best product database satisfies them but is capped at B^{3/5}.
"""

import math

from repro.experiments.normal_vs_product import run_normal_vs_product


def test_bench_normal_vs_product(once):
    res = once(run_normal_vs_product, 12.0)
    print(f"\n  B=2^12: LP=2^{res.log2_lp_bound:g}, normal={res.normal_count}, "
          f"product={res.product_count}")
    assert abs(res.log2_lp_bound - res.b_log2) < 1e-6
    assert res.normal_satisfies
    assert res.normal_count >= 2 ** (res.b_log2 - 1)  # ≥ B/2
    assert res.product_satisfies
    assert math.log2(res.product_count) <= res.log2_product_limit + 1e-9
    # the separation itself: normal beats any product asymptotically
    assert res.normal_count > 8 * res.product_count
