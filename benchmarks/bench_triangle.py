"""E1 — Appendix C.1 triangle table (see docs/architecture.md).

Regenerates: per-dataset ratios of the {1}, {1,∞}, {2} bounds and the
textbook estimate to the true triangle count.  Asserts the paper's shape:
{2} ≪ {1,∞} ≤ {1}; the estimator overestimates this cyclic query.
"""

import math

from repro.experiments.triangle import run_triangle_experiment


def test_bench_triangle_snap(once):
    rows = once(run_triangle_experiment)
    assert len(rows) == 7
    print()
    for r in rows:
        print(
            f"  {r.dataset:16s} {{1}}={r.ratio_l1:10.2f}"
            f" {{1,∞}}={r.ratio_l1_inf:10.2f} {{2}}={r.ratio_l2:8.2f}"
            f" textbook={r.ratio_estimator:8.2f} |Q|={r.true_count}"
        )
        # bounds are upper bounds
        assert r.ratio_l1 >= 1.0 and r.ratio_l1_inf >= 1.0 and r.ratio_l2 >= 1.0
        # the paper's ordering: {2} strictly better than {1,∞} ≤ {1}
        assert r.ratio_l2 < r.ratio_l1_inf <= r.ratio_l1 * (1 + 1e-9)
        assert r.ratio_l2 < r.ratio_l1 / 1.5
        # the full family never does worse than {2} alone
        assert r.ratio_full <= r.ratio_l2 * (1 + 1e-9)
        # DuckDB-style estimator overestimates the cyclic triangle
        assert r.ratio_estimator > 1.0
        # every optimal certificate uses some finite p ≥ 2
        assert any(1.0 < p < math.inf for p in r.norms_used)
