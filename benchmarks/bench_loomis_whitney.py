"""E12 — Appendix C.6: the Loomis–Whitney query (see docs/architecture.md).

Regenerates: AGM vs the C.6 ℓ2 closed form vs the full LP on skewed
ternary relations.  Asserts LP ≤ closed form ≤-ish AGM and soundness.
"""

from repro.experiments.loomis_whitney import run_loomis_whitney_experiment


def test_bench_loomis_whitney(once):
    res = once(run_loomis_whitney_experiment)
    ratios = res.ratios()
    print(f"\n  |Q|={res.true_count} agm={ratios['agm']:.3g} "
          f"c6={ratios['c6']:.3g} lp={ratios['lp']:.3g} "
          f"norms={res.lp_norms_used}")
    assert ratios["lp"] >= 1.0 - 1e-9                      # sound
    assert res.log2_lp <= res.log2_c6_formula + 1e-6       # LP ≤ closed form
    assert res.log2_lp <= res.log2_agm + 1e-6              # LP ≤ AGM
    assert res.log2_c6_formula < res.log2_agm              # ℓ2 helps
    assert any(p > 1.0 for p in res.lp_norms_used)
