"""E2 — Appendix C.1 one-join table (see docs/architecture.md).

Regenerates: per-dataset ratios for the self-join R(x,y) ⋈ R(y,z).
Asserts the paper's shape: the {2}-bound is exactly 1.0 on these
symmetric calibrated relations (Sec. 2.1's self-join observation), {1,∞}
is ~an order of magnitude off, {1} is 10²–10⁴ off, and the textbook
estimator *under*-estimates.
"""

from repro.experiments.one_join import run_one_join_experiment


def test_bench_one_join_snap(once):
    rows = once(run_one_join_experiment)
    assert len(rows) == 7
    print()
    for r in rows:
        print(
            f"  {r.dataset:16s} {{1}}={r.ratio_l1:12.2f}"
            f" {{1,∞}}={r.ratio_l1_inf:8.2f} {{2}}={r.ratio_l2:6.3f}"
            f" textbook={r.ratio_estimator:6.3f} |Q|={r.true_count}"
        )
        # Eq. (18) is an equality for symmetric self-joins
        assert abs(r.ratio_l2 - 1.0) < 1e-6
        assert r.ratio_l1_inf >= 2.0
        assert r.ratio_l1 > 50.0
        assert r.ratio_l1 > r.ratio_l1_inf > r.ratio_l2
        # estimator underestimates the skewed acyclic join
        assert r.ratio_estimator < 1.0
