"""E3 — Figure 1: 33 JOB-like acyclic queries (see docs/architecture.md).

Regenerates: ratio of ours / AGM / PANDA / textbook to the true count and
the norms used, for all 33 join templates.  Asserts the paper's shape:
ours ≤ PANDA ≤ AGM with order-of-magnitude separations on aggregate, the
estimator underestimates everywhere, ℓ∞ appears in every certificate and
many distinct intermediate norms appear across the workload.
"""

import math

from repro.experiments.job import run_job_experiment
from repro.experiments.harness import format_scientific


def test_bench_job_figure1(once, imdb_db):
    rows = once(run_job_experiment, imdb_db)
    assert len(rows) == 33
    print()
    used_norms = set()
    for r in rows:
        print(
            f"  q{r.query_id:02d} rel={r.num_relations:2d}"
            f" ours={format_scientific(r.ratio_ours):>9s}"
            f" panda={format_scientific(r.ratio_panda):>9s}"
            f" agm={format_scientific(r.ratio_agm):>9s}"
            f" textbook={format_scientific(r.ratio_estimator):>9s}"
            f" norms={sorted(r.norms_used)}"
        )
        assert r.ratio_ours >= 1.0 - 1e-9  # it is an upper bound
        assert r.ratio_ours <= r.ratio_panda * (1 + 1e-9)
        assert r.ratio_panda <= r.ratio_agm * (1 + 1e-9)
        assert r.ratio_estimator <= 1.0 + 1e-9  # underestimates
        assert math.inf in r.norms_used  # PK-FK joins ⇒ ℓ∞ everywhere
        used_norms.update(r.norms_used)
    # aggregate separations: ours beats PANDA and AGM by large factors
    def geo(vals):
        return math.exp(sum(math.log(v) for v in vals) / len(vals))

    assert geo([r.ratio_panda / r.ratio_ours for r in rows]) > 3.0
    assert geo([r.ratio_agm / r.ratio_ours for r in rows]) > 1e3
    # a wide variety of finite norms is used across the workload
    finite = {p for p in used_norms if 1.0 < p < math.inf}
    assert len(finite) >= 5
