"""Soak smoke for the bound service: a real ``repro serve`` process
under a concurrent mixed client sweep.

CI runs this on the service leg after the tier-1 suite: it launches the
actual CLI server as a subprocess (ephemeral port, a cache budget small
enough that the sweep's distinct query texts force evictions), then
hammers it from several threads with warm bounds, cold distinct-text
bounds, and a few admission-capped evaluations, and asserts the
production invariants the stress tests pin in-process:

* **zero 5xx** — every response is a 200 or a *typed* 4xx
  (``overloaded`` included);
* **bounded RSS growth** — the server process's resident set after the
  sweep stays within a generous factor of its post-warm-up size
  (unbounded caches fail this in seconds with this many distinct texts);
* **budget adherence** — ``/metrics`` reports total cache bytes within
  the configured ``--cache-budget`` and at least one eviction;
* **liveness** — ``/healthz`` still answers after the storm.

Exit code 0 on success; any violated invariant raises.  Usable locally:
``PYTHONPATH=src python benchmarks/soak_service.py``.
"""

from __future__ import annotations

import csv
import json
import random
import re
import signal
import subprocess
import sys
import tempfile
import threading
import urllib.error
import urllib.request
from pathlib import Path

THREADS = 6
REQUESTS_PER_THREAD = 400
DISTINCT_TEXTS = 64
CACHE_BUDGET = "256K"
#: RSS after the sweep may exceed RSS after warm-up by at most this
#: factor (the budget holds the caches; the rest is allocator slack).
RSS_GROWTH_LIMIT = 1.5
TRIANGLE = "Q(x,y,z) :- R(x,y), R(y,z), R(z,x)"


def _write_edges(path: Path, edges: int, nodes: int, seed: int) -> None:
    rng = random.Random(seed)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["src", "dst"])
        for _ in range(edges):
            writer.writerow([rng.randrange(nodes), rng.randrange(nodes)])


def _rss_kb(pid: int) -> int:
    with open(f"/proc/{pid}/statm") as handle:
        pages = int(handle.read().split()[1])
    import resource

    return pages * (resource.getpagesize() // 1024)


def _post(url: str, payload: dict) -> tuple[int, dict]:
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _get(url: str) -> tuple[int, dict]:
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def _chain_text(i: int) -> str:
    return f"Q(a{i},b{i},c{i}) :- R(a{i},b{i}), R(b{i},c{i})"


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="repro-soak-"))
    edges_csv = tmp / "edges.csv"
    _write_edges(edges_csv, edges=1500, nodes=220, seed=7)
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--table", f"R={edges_csv}",
            "--port", "0",
            "--warm", TRIANGLE,
            "--cache-budget", CACHE_BUDGET,
            "--max-concurrent-evaluations", "2",
            "--evaluate-queue", "2",
            "--evaluate-queue-timeout", "0.2",
        ],
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        url = None
        for line in server.stderr:
            match = re.search(r"serving on (http://\S+)", line)
            if match:
                url = match.group(1)
                break
        assert url, "server never reported its URL"
        # drain stderr in the background so the server can't block on it
        threading.Thread(
            target=lambda: server.stderr.read(), daemon=True
        ).start()

        status, _ = _get(url + "/healthz")
        assert status == 200
        # warm-up pass before the RSS baseline: touch every code path
        _post(url + "/bound", {"query": TRIANGLE})
        _post(url + "/evaluate", {"query": TRIANGLE})
        rss_before = _rss_kb(server.pid)

        bad_statuses: list[tuple[int, str]] = []
        counters = {"ok": 0, "typed_4xx": 0, "overloaded": 0}
        lock = threading.Lock()

        def sweep(seed: int) -> None:
            rng = random.Random(seed)
            for i in range(REQUESTS_PER_THREAD):
                roll = rng.random()
                if roll < 0.70:  # warm hot-path bound
                    status, payload = _post(
                        url + "/bound", {"query": TRIANGLE}
                    )
                elif roll < 0.95:  # cold distinct-text bound
                    status, payload = _post(
                        url + "/bound",
                        {"query": _chain_text(rng.randrange(DISTINCT_TEXTS))},
                    )
                else:  # evaluation pressure against the admission gate
                    status, payload = _post(
                        url + "/evaluate", {"query": TRIANGLE}
                    )
                with lock:
                    if status == 200:
                        counters["ok"] += 1
                    elif 400 <= status < 500 and "error" in payload:
                        counters["typed_4xx"] += 1
                        if payload["error"]["code"] == "overloaded":
                            counters["overloaded"] += 1
                    else:
                        bad_statuses.append((status, json.dumps(payload)))

        threads = [
            threading.Thread(target=sweep, args=(seed,))
            for seed in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not bad_statuses, f"non-typed/5xx responses: {bad_statuses[:5]}"
        total = THREADS * REQUESTS_PER_THREAD
        assert counters["ok"] + counters["typed_4xx"] == total

        status, metrics = _get(url + "/metrics")
        assert status == 200
        caches = metrics["caches"]
        assert caches["budget_bytes"] == 256 * 1024
        assert caches["total_bytes"] <= caches["budget_bytes"], caches
        evictions = sum(
            caches[layer]["evictions"]
            for layer in ("queries", "statistics", "solver_results",
                          "solver_assemblies")
        )
        assert evictions > 0, "budget never bit despite distinct-text sweep"
        assert metrics["requests"]["bound"] >= total * 0.9
        assert metrics["errors"].get("internal", 0) == 0

        rss_after = _rss_kb(server.pid)
        growth = rss_after / max(rss_before, 1)
        assert growth <= RSS_GROWTH_LIMIT, (
            f"server RSS grew {growth:.2f}× ({rss_before} → {rss_after} kB)"
        )

        status, _ = _get(url + "/healthz")
        assert status == 200

        print(
            f"soak ok: {total} requests "
            f"({counters['ok']} ok, {counters['typed_4xx']} typed 4xx, "
            f"{counters['overloaded']} overloaded), "
            f"cache {caches['total_bytes']} / {caches['budget_bytes']} B, "
            f"{evictions} evictions, "
            f"RSS {rss_before} → {rss_after} kB ({growth:.2f}×)"
        )
        return 0
    finally:
        server.send_signal(signal.SIGINT)
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
