"""E14 — blocked frontier and output sinks on the closed star join.

Regenerates: the star-join sweep of ``repro.experiments.star`` at one
fixed fan-out.  The closed star query's intermediate frontier is
``fan_out²`` partial bindings against a ``fan_out``-row output — the
workload the breadth-first Generic Join cannot scale on.  Asserts the
paper-level shape along both bounded axes: the blocked engine returns
bit-identical rows, row order, and meter while holding peak traced
allocation at least an order of magnitude below the unblocked engine's
(locally ~30× at this size), and the counting/spilling sinks keep that
edge while never materializing the output (the fan-out-1024 guard below
requires ≥50× under ``CountSink``).

All engines' timings and peak traced allocations feed the CI
trajectory: ``peak_traced_kb`` lands in ``extra_info`` and
``benchmarks/trajectory.py`` guards the memory series exactly like the
timing series.
"""

import math

from repro.core import collect_statistics, lp_bound
from repro.datasets import star_database, star_query
from repro.evaluation import (
    EscalatingSink,
    EvaluationBudget,
    EvaluationGovernor,
    evaluate_parallel,
    generic_join,
)
from repro.relational import CountSink, SpillSink

import pytest

#: fan_out² = 262144 live bindings unblocked; the block caps that at 8192.
FAN_OUT = 512
FRONTIER_BLOCK = 8192

#: The acceptance-scale instance for the count-sink memory guard.
FAN_OUT_LARGE = 1024

QUERY = star_query(2)


@pytest.fixture(scope="module")
def star_db():
    db = star_database(FAN_OUT)
    generic_join(QUERY, db)  # warm the per-relation trie caches
    return db


def test_bench_star_unblocked(benchmark, traced_peak, star_db):
    """The breadth-first frontier: peak memory ∝ fan_out²."""
    _, peak = traced_peak(generic_join, QUERY, star_db)
    benchmark.extra_info["peak_traced_kb"] = round(peak / 1024, 1)
    run = benchmark(generic_join, QUERY, star_db)
    assert run.count == FAN_OUT


def test_bench_star_blocked(benchmark, traced_peak, star_db):
    """The streamed frontier: peak memory ∝ block × depth."""
    _, peak = traced_peak(
        generic_join, QUERY, star_db, frontier_block=FRONTIER_BLOCK
    )
    benchmark.extra_info["peak_traced_kb"] = round(peak / 1024, 1)
    run = benchmark(
        generic_join, QUERY, star_db, frontier_block=FRONTIER_BLOCK
    )
    assert run.count == FAN_OUT


def test_bench_star_count_sink(benchmark, traced_peak, star_db):
    """Blocked frontier + counting sink: no output rows held at all."""

    def run_counted():
        return generic_join(
            QUERY, star_db, frontier_block=FRONTIER_BLOCK, sink=CountSink()
        )

    _, peak = traced_peak(run_counted)
    benchmark.extra_info["peak_traced_kb"] = round(peak / 1024, 1)
    run = benchmark(run_counted)
    assert run.count == FAN_OUT


def test_bench_star_spill_sink(benchmark, traced_peak, star_db, tmp_path):
    """Blocked frontier + spill sink: output rows live on disk only.

    Each call gets a fresh sink (closing removes its segments, so the
    directory is reusable across benchmark rounds); the verified
    round-trip read happens once, outside the timed runs.
    """

    def run_spilled():
        with SpillSink(tmp_path / "spill", chunk_rows=4096) as sink:
            run = generic_join(
                QUERY, star_db, frontier_block=FRONTIER_BLOCK, sink=sink
            )
            assert sink.n_rows == FAN_OUT
        return run

    _, peak = traced_peak(run_spilled)
    benchmark.extra_info["peak_traced_kb"] = round(peak / 1024, 1)
    with SpillSink(tmp_path / "verify") as sink:
        generic_join(
            QUERY, star_db, frontier_block=FRONTIER_BLOCK, sink=sink
        )
        reference = generic_join(QUERY, star_db)
        assert sink.rows() == list(reference.output)
    run = benchmark(run_spilled)
    assert run.count == FAN_OUT


def test_bench_star_parallel(benchmark, star_db):
    """Blocked frontier + counting sinks under parallel supervision.

    Every round forks a fresh worker pool over the Lemma 2.5 parts and
    merges through a final ``CountSink`` — pool startup is host-load
    noise, so the entry gets extra trajectory tolerance
    (``trajectory.TOLERANCES``).
    """
    stats = collect_statistics(QUERY, star_db, ps=[1.0, 2.0, math.inf])
    bound = lp_bound(stats, query=QUERY)

    def run_parallel():
        return evaluate_parallel(
            QUERY,
            star_db,
            bound,
            workers=2,
            frontier_block=FRONTIER_BLOCK,
            sink=CountSink(),
        )

    run = benchmark(run_parallel)
    assert run.count == FAN_OUT


def test_bench_star_governed(benchmark, traced_peak, star_db):
    """The blocked run under an ample resource budget.

    Tracks what governance itself costs on the star workload: one memory
    probe per frontier slice, no degradation (the watermarks are far
    away).  Wall time and peak feed the same trajectory series as the
    ungoverned blocked entry, so a creeping checkpoint cost shows up as
    a divergence between the two.
    """

    def run_governed():
        governor = EvaluationGovernor(
            EvaluationBudget(
                soft_memory_bytes=1 << 33, hard_memory_bytes=1 << 34
            )
        )
        return generic_join(
            QUERY,
            star_db,
            frontier_block=FRONTIER_BLOCK,
            governor=governor,
        )

    _, peak = traced_peak(run_governed)
    benchmark.extra_info["peak_traced_kb"] = round(peak / 1024, 1)
    run = benchmark(run_governed)
    assert run.count == FAN_OUT


def test_bench_star_governed_ladder(benchmark, traced_peak, star_db, tmp_path):
    """A governed run that *does* degrade: tight soft watermark, an
    escalating sink, and a hard cap high enough to finish.  Measures the
    full ladder walk (block halvings + mid-run materialize→spill) on
    every round; the output must stay bit-identical to the ungoverned
    engine's.
    """
    reference = generic_join(QUERY, star_db, frontier_block=FRONTIER_BLOCK)
    budget = EvaluationBudget(
        soft_memory_bytes=128 << 10,
        hard_memory_bytes=64 << 20,
        min_frontier_block=1024,
    )

    def run_laddered():
        governor = EvaluationGovernor(budget)
        with EscalatingSink(tmp_path / "esc", chunk_rows=4096) as sink:
            run = generic_join(QUERY, star_db, sink=sink, governor=governor)
            assert sink.n_rows == FAN_OUT
        return run

    governor = EvaluationGovernor(budget)
    with EscalatingSink(tmp_path / "verify", chunk_rows=4096) as sink:
        verified = generic_join(QUERY, star_db, sink=sink, governor=governor)
        assert sink.rows() == list(reference.output)
        assert verified.nodes_visited == reference.nodes_visited
    _, peak = traced_peak(run_laddered)
    benchmark.extra_info["peak_traced_kb"] = round(peak / 1024, 1)
    run = benchmark(run_laddered)
    assert run.nodes_visited == reference.nodes_visited


def test_star_memory_guard(traced_peak, star_db):
    """Acceptance guard (runs even in single-round CI smoke mode).

    The unblocked frontier must need ≥10× the blocked engine's peak
    traced allocation on the star workload, with bit-identical output
    rows, row order, and ``nodes_visited`` — the blocked engine is the
    same search, sliced, not an approximation.
    """
    unblocked, peak_unblocked = traced_peak(generic_join, QUERY, star_db)
    blocked, peak_blocked = traced_peak(
        generic_join, QUERY, star_db, frontier_block=FRONTIER_BLOCK
    )
    assert list(blocked.output) == list(unblocked.output)
    assert blocked.nodes_visited == unblocked.nodes_visited
    assert peak_unblocked >= 10 * peak_blocked, (
        f"blocked frontier lost its memory edge: unblocked "
        f"{peak_unblocked / 1e6:.1f} MB vs blocked "
        f"{peak_blocked / 1e6:.1f} MB"
    )


def test_star_count_sink_memory_guard(traced_peak):
    """Acceptance guard: fan-out 1024 under ``CountSink`` needs ≥50×
    less peak traced allocation than the materialized evaluation, with
    a bit-identical count and meter."""
    db = star_database(FAN_OUT_LARGE)
    generic_join(QUERY, db, frontier_block=FRONTIER_BLOCK)  # warm tries
    materialized, peak_materialized = traced_peak(generic_join, QUERY, db)
    sink = CountSink()
    counted, peak_counted = traced_peak(
        generic_join, QUERY, db, frontier_block=FRONTIER_BLOCK, sink=sink
    )
    assert sink.total == materialized.count == FAN_OUT_LARGE
    assert counted.nodes_visited == materialized.nodes_visited
    assert peak_materialized >= 50 * peak_counted, (
        f"count sink lost its memory edge: materialized "
        f"{peak_materialized / 1e6:.1f} MB vs counted "
        f"{peak_counted / 1e6:.1f} MB"
    )
