"""E14 — the blocked streaming frontier on the closed star join.

Regenerates: the star-join sweep of ``repro.experiments.star`` at one
fixed fan-out.  The closed star query's intermediate frontier is
``fan_out²`` partial bindings against a ``fan_out``-row output — the
workload the breadth-first Generic Join cannot scale on.  Asserts the
paper-level shape: the blocked engine returns bit-identical rows, row
order, and meter while holding peak traced allocation at least an order
of magnitude below the unblocked engine's (locally ~30× at this size).

Both engines' timings and peak traced allocations feed the CI
trajectory: ``peak_traced_kb`` lands in ``extra_info`` and
``benchmarks/trajectory.py`` guards the memory series exactly like the
timing series.
"""

from repro.datasets import star_database, star_query
from repro.evaluation import generic_join

import pytest

#: fan_out² = 262144 live bindings unblocked; the block caps that at 8192.
FAN_OUT = 512
FRONTIER_BLOCK = 8192

QUERY = star_query(2)


@pytest.fixture(scope="module")
def star_db():
    db = star_database(FAN_OUT)
    generic_join(QUERY, db)  # warm the per-relation trie caches
    return db


def test_bench_star_unblocked(benchmark, traced_peak, star_db):
    """The breadth-first frontier: peak memory ∝ fan_out²."""
    _, peak = traced_peak(generic_join, QUERY, star_db)
    benchmark.extra_info["peak_traced_kb"] = round(peak / 1024, 1)
    run = benchmark(generic_join, QUERY, star_db)
    assert run.count == FAN_OUT


def test_bench_star_blocked(benchmark, traced_peak, star_db):
    """The streamed frontier: peak memory ∝ block × depth."""
    _, peak = traced_peak(
        generic_join, QUERY, star_db, frontier_block=FRONTIER_BLOCK
    )
    benchmark.extra_info["peak_traced_kb"] = round(peak / 1024, 1)
    run = benchmark(
        generic_join, QUERY, star_db, frontier_block=FRONTIER_BLOCK
    )
    assert run.count == FAN_OUT


def test_star_memory_guard(traced_peak, star_db):
    """Acceptance guard (runs even in single-round CI smoke mode).

    The unblocked frontier must need ≥10× the blocked engine's peak
    traced allocation on the star workload, with bit-identical output
    rows, row order, and ``nodes_visited`` — the blocked engine is the
    same search, sliced, not an approximation.
    """
    unblocked, peak_unblocked = traced_peak(generic_join, QUERY, star_db)
    blocked, peak_blocked = traced_peak(
        generic_join, QUERY, star_db, frontier_block=FRONTIER_BLOCK
    )
    assert list(blocked.output) == list(unblocked.output)
    assert blocked.nodes_visited == unblocked.nodes_visited
    assert peak_unblocked >= 10 * peak_blocked, (
        f"blocked frontier lost its memory edge: unblocked "
        f"{peak_unblocked / 1e6:.1f} MB vs blocked "
        f"{peak_blocked / 1e6:.1f} MB"
    )
