"""Bench-trajectory tooling: normalize, compare, and rebase BENCH_*.json.

CI runs the micro, evaluation, LP-solver, and norm-ablation benchmarks
with ``--benchmark-json`` on every push, then uses this script to

1. ``normalize`` the raw pytest-benchmark dump into a compact
   ``BENCH_<sha>.json`` trajectory artifact (one median per benchmark,
   plus a *machine-speed-normalized* ratio against a designated
   calibration benchmark — a pure tuple-at-a-time workload whose absolute
   time tracks the host's Python speed — and, for benchmarks that record
   one, the peak traced allocation), and
2. ``compare`` the normalized medians against the committed baseline
   (``benchmarks/BENCH_baseline.json``), failing the job when any tracked
   benchmark regresses beyond the tolerance (default 1.5×, per-benchmark
   overrides in :data:`TOLERANCES`; one-shot experiment regenerations
   with < 5 rounds stay informational).  Benchmarks carrying a
   ``peak_traced_kb`` in their ``extra_info`` (the ``traced_peak``
   fixture of ``benchmarks/conftest.py``) get the same guard on peak
   memory (default 1.5×, overrides in :data:`MEM_TOLERANCES`); traced
   allocation is deterministic per commit, so the memory series needs no
   machine normalization and no minimum round count.

Comparing *normalized* ratios rather than raw seconds keeps the guard
meaningful across differently-provisioned CI runners: a uniformly slow
machine scales the calibration median by the same factor.  ``rebase``
regenerates the baseline after an intentional performance change.

Usage::

    python benchmarks/trajectory.py normalize RAW.json --sha SHA -o OUT.json
    python benchmarks/trajectory.py compare OUT.json [--baseline B] [--tolerance 1.5]
    python benchmarks/trajectory.py rebase RAW.json

Only the standard library is used; no repo imports (the script must run
before PYTHONPATH is set up).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: The machine-speed yardstick: a pure-Python tuple-at-a-time workload.
CALIBRATION = "benchmarks/bench_micro.py::test_bench_degree_sequence_tuple_oracle"

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_baseline.json"

#: Per-benchmark tolerance overrides (ratio of normalized medians).  The
#: sub-2ms solver re-solve is scheduling-noise-dominated on shared
#: runners, so it gets more slack than the default before failing the job.
TOLERANCES = {
    "benchmarks/bench_lp_solver.py::test_bench_lp_resolve_b_swap": 2.0,
    # the supervised-parallel entries fork a fresh process pool every
    # round; pool startup cost is host-load-dependent noise layered on
    # top of the measured work, so they get extra slack before gating.
    "benchmarks/bench_evaluation.py::test_bench_parallel_triangle": 2.5,
    "benchmarks/bench_star.py::test_bench_star_parallel": 2.5,
    # the compiled-kernel entries measure post-warm-up medians, but a
    # cold Numba cache (cache key miss after a kernels.py edit) leaks
    # residual compilation into early rounds on slow runners.
    "benchmarks/bench_evaluation.py::test_bench_wcoj_triangle_kernels": 2.0,
    "benchmarks/bench_evaluation.py::test_bench_wcoj_loomis_whitney_kernels": 2.0,
    # the service entries measure sub-ms request paths (dictionary hits,
    # loopback HTTP round trips): thread scheduling and socket latency
    # dominate at that scale, so they get extra slack before gating.
    "benchmarks/bench_service.py::test_bench_service_bound_warm": 2.0,
    "benchmarks/bench_service.py::test_bench_service_http_round_trip": 2.0,
    "benchmarks/bench_service.py::test_bench_lp_b_swap_oneshot": 2.0,
    "benchmarks/bench_service.py::test_bench_lp_b_swap_persistent": 2.0,
    # the contended entry adds 8 client threads + a pool spin-up per
    # round on a 2-core CI runner: scheduler fairness noise dominates
    # the per-request cost, so it gets the most slack of the service set.
    "benchmarks/bench_service.py::test_bench_service_http_contended": 2.5,
}

#: Per-benchmark peak-memory tolerance overrides (ratio of peak_kb).
#: Traced peaks are deterministic, so the default 1.5× is already slack;
#: overrides belong here only for benchmarks whose working set depends on
#: allocator rounding at small absolute sizes.  The sink benchmarks peak
#: around 1 MB (pure block × depth scratch), where a few extra temporary
#: arrays move the ratio more than a real regression would elsewhere.
MEM_TOLERANCES: dict[str, float] = {
    "benchmarks/bench_star.py::test_bench_star_count_sink": 2.0,
    "benchmarks/bench_star.py::test_bench_star_spill_sink": 2.0,
    # the governed entries also peak near 1 MB of block × depth scratch
    # (the idle-governor entry) or deliberately shed memory mid-run (the
    # ladder entry escalates to disk), so allocator rounding dominates.
    "benchmarks/bench_star.py::test_bench_star_governed": 2.0,
    "benchmarks/bench_star.py::test_bench_star_governed_ladder": 2.0,
}


def normalize(raw_path: str, sha: str) -> dict:
    """Compact {benchmark -> median, normalized[, peak_kb]} from a raw dump."""
    with open(raw_path) as handle:
        raw = json.load(handle)
    medians = {}
    for bench in raw["benchmarks"]:
        entry = {
            "median_s": bench["stats"]["median"],
            "rounds": bench["stats"]["rounds"],
        }
        extra = bench.get("extra_info", {})
        peak = extra.get("peak_traced_kb")
        if peak is not None:
            entry["peak_kb"] = peak
        kernel_mode = extra.get("kernel_mode")
        if kernel_mode is not None:
            entry["kernel_mode"] = kernel_mode
        medians[bench["fullname"]] = entry
    if CALIBRATION not in medians:
        raise SystemExit(
            f"calibration benchmark {CALIBRATION!r} missing from {raw_path}"
        )
    calibration = medians[CALIBRATION]["median_s"]
    for entry in medians.values():
        entry["normalized"] = entry["median_s"] / calibration
    return {
        "sha": sha,
        "calibration": CALIBRATION,
        "calibration_median_s": calibration,
        "machine": raw.get("machine_info", {}).get("node", "unknown"),
        "benchmarks": medians,
    }


def compare(
    current_path: str,
    baseline_path: str,
    tolerance: float,
    min_rounds: int = 5,
    mem_tolerance: float = 1.5,
) -> int:
    """Exit non-zero when a tracked median or peak allocation regresses.

    Benchmarks present only on one side are reported but never fail the
    job (new benchmarks enter the baseline at the next rebase), and
    benchmarks timed with fewer than ``min_rounds`` rounds on either side
    (e.g. the one-shot experiment regenerations) are informational only —
    a single-sample median is too noisy to gate on.  The peak-memory
    series has no such escape hatch: traced allocation is deterministic,
    so one sample is the measurement.

    The sweep never stops early: every tracked series is checked even
    after a regression or a malformed entry (missing keys, zero
    calibration), and the job fails with *one* consolidated message
    naming every offender — a kernel regression across N benchmarks is
    diagnosable from a single CI run instead of N fix-rerun cycles.
    """
    with open(current_path) as handle:
        current = json.load(handle)
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures = []
    print(f"baseline {baseline['sha']} -> current {current['sha']} "
          f"(tolerance {tolerance:.2f}x on normalized medians, "
          f"{mem_tolerance:.2f}x on peak traced allocations)")
    for name, base in sorted(baseline["benchmarks"].items()):
        entry = current["benchmarks"].get(name)
        if entry is None:
            print(f"  [gone]    {name}")
            continue
        allowed = TOLERANCES.get(name, tolerance)
        try:
            ratio = entry["normalized"] / base["normalized"]
            median_ms = entry["median_s"] * 1e3
            rounds = min(entry["rounds"], base["rounds"])
        except (KeyError, TypeError, ZeroDivisionError) as exc:
            # a malformed entry must not abort the sweep: record it as a
            # failure and keep checking the remaining series
            failures.append((name, "time", None, allowed))
            print(f"  [bad]     {name}: unusable entry "
                  f"({type(exc).__name__}: {exc})")
            continue
        flag = "  OK      "
        if rounds < min_rounds:
            flag = "  [info]   "
        elif ratio > allowed:
            flag = "  REGRESS "
            failures.append((name, "time", ratio, allowed))
        mode = entry.get("kernel_mode")
        suffix = f" [kernels={mode}]" if mode else ""
        print(f"{flag}{name}: {median_ms:.3f} ms "
              f"({ratio:.2f}x of baseline){suffix}")
    print("\npeak traced allocation:")
    tracked_mem = False
    for name, base in sorted(baseline["benchmarks"].items()):
        entry = current["benchmarks"].get(name, {})
        base_peak = base.get("peak_kb")
        peak = entry.get("peak_kb")
        if base_peak is None or peak is None:
            continue
        allowed = MEM_TOLERANCES.get(name, mem_tolerance)
        try:
            if base_peak <= 0:
                continue
            ratio = peak / base_peak
        except (TypeError, ZeroDivisionError) as exc:
            failures.append((name, "memory", None, allowed))
            print(f"  [bad]     {name}: unusable peak entry "
                  f"({type(exc).__name__}: {exc})")
            continue
        tracked_mem = True
        flag = "  OK      "
        if ratio > allowed:
            flag = "  REGRESS "
            failures.append((name, "memory", ratio, allowed))
        print(f"{flag}{name}: {peak:.1f} kB ({ratio:.2f}x of baseline)")
    if not tracked_mem:
        print("  (no benchmark records peak_traced_kb on both sides)")
    for name in sorted(set(current["benchmarks"]) - set(baseline["benchmarks"])):
        entry = current["benchmarks"][name]
        median = entry.get("median_s")
        shown = f"{median * 1e3:.3f} ms" if median is not None else "no median"
        print(f"  [new]     {name}: {shown}")
    if failures:
        print(f"\n{len(failures)} series regressed beyond tolerance "
              "(all regressions listed; none masked by an earlier one):")
        for name, series, ratio, allowed in failures:
            shown = f"{ratio:.2f}x" if ratio is not None else "malformed entry"
            print(f"  {name} [{series}]: {shown} (allowed {allowed:.2f}x)")
        return 1
    print("\nno regressions")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    norm = sub.add_parser("normalize", help="raw dump -> BENCH_<sha>.json")
    norm.add_argument("raw")
    norm.add_argument("--sha", required=True)
    norm.add_argument("-o", "--output", required=True)

    comp = sub.add_parser(
        "compare", help="guard against median / peak-memory regressions"
    )
    comp.add_argument("current")
    comp.add_argument("--baseline", default=str(BASELINE_PATH))
    comp.add_argument("--tolerance", type=float, default=1.5)
    comp.add_argument("--min-rounds", type=int, default=5)
    comp.add_argument("--mem-tolerance", type=float, default=1.5)

    rebase = sub.add_parser("rebase", help="raw dump -> committed baseline")
    rebase.add_argument("raw")
    rebase.add_argument("--sha", default="baseline")

    args = parser.parse_args(argv)
    if args.command == "normalize":
        result = normalize(args.raw, args.sha)
        Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.output} ({len(result['benchmarks'])} benchmarks)")
        return 0
    if args.command == "compare":
        return compare(
            args.current,
            args.baseline,
            args.tolerance,
            args.min_rounds,
            args.mem_tolerance,
        )
    if args.command == "rebase":
        result = normalize(args.raw, args.sha)
        BASELINE_PATH.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH} ({len(result['benchmarks'])} benchmarks)")
        return 0
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
