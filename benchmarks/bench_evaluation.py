"""E8 — Sec. 2.2 / Theorem 2.6: evaluation within the bound (DESIGN.md §4).

Regenerates: the metered partitioned evaluation of the one-join and
triangle workloads.  Asserts: the partitioned algorithm's output equals
the direct join's, and the metered work stays within the Theorem 2.6
budget (up to the allowed polylog slack).
"""

from repro.experiments.evaluation_runtime import run_evaluation_experiment


def test_bench_evaluation_runtime(once):
    rows = once(run_evaluation_experiment, "ca-GrQc")
    print()
    for r in rows:
        print(f"  {r.workload}: parts={r.parts_evaluated} "
              f"work=2^{r.log2_nodes:.2f} budget=2^{r.log2_budget:.2f}")
        assert r.output_matches
        assert r.within_budget
        assert r.parts_evaluated > 1  # the partitioning actually happened
