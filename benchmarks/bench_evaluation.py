"""E8 — Sec. 2.2 / Theorem 2.6: evaluation within the bound (docs/architecture.md).

Regenerates: the metered partitioned evaluation of the one-join and
triangle workloads.  Asserts: the partitioned algorithm's output equals
the direct join's, and the metered work stays within the Theorem 2.6
budget (up to the allowed polylog slack).

Also characterises the columnar WCOJ against its tuple oracle on the
triangle and Loomis–Whitney counting workloads (the acceptance hot paths
of the sorted-codes engine), with a conservative speedup guard that runs
even in single-round CI smoke mode.
"""

import math
import time

import pytest

from repro.core import collect_statistics, lp_bound
from repro.datasets import snap_database
from repro.evaluation import (
    evaluate_parallel,
    evaluate_with_partitioning,
    generic_join,
    generic_join_tuples,
)
from repro.experiments.evaluation_runtime import run_evaluation_experiment
from repro.query import parse_query
from repro.relational import CountSink, kernels

TRIANGLE = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
LOOMIS_WHITNEY = parse_query("lw(x,y,z) :- R(x,y), R(y,z), R(x,z)")

needs_numba = pytest.mark.skipif(
    not kernels.numba_available(),
    reason="numba not installed (pip install 'repro[kernels]')",
)


@pytest.fixture(scope="module")
def db():
    return snap_database("ca-GrQc")


def test_bench_evaluation_runtime(once):
    rows = once(run_evaluation_experiment, "ca-GrQc")
    print()
    for r in rows:
        print(f"  {r.workload}: parts={r.parts_evaluated} "
              f"work=2^{r.log2_nodes:.2f} budget=2^{r.log2_budget:.2f}")
        assert r.output_matches
        assert r.within_budget
        assert r.parts_evaluated > 1  # the partitioning actually happened


def test_bench_parallel_triangle(benchmark, db):
    """The triangle through the supervised parallel evaluator.

    Every round pays a fresh process-pool fork plus the part fan-out and
    the deterministic merge — the supervision overhead this entry tracks.
    Pool startup is host-load-dependent, so the trajectory grants the
    entry extra tolerance (``trajectory.TOLERANCES``).
    """
    stats = collect_statistics(TRIANGLE, db, ps=[1.0, 2.0, math.inf])
    bound = lp_bound(stats, query=TRIANGLE)
    serial = evaluate_with_partitioning(TRIANGLE, db, bound, max_parts=20000)

    def run_parallel():
        return evaluate_parallel(
            TRIANGLE, db, bound, workers=2, max_parts=20000
        )

    run = benchmark(run_parallel)
    assert run.count == serial.count
    assert run.nodes_visited == serial.nodes_visited
    assert run.parts_evaluated == serial.parts_evaluated


def test_bench_wcoj_triangle_columnar(benchmark, traced_peak, db):
    """Triangle counting through the vectorized sorted-codes engine."""
    _, peak = traced_peak(generic_join, TRIANGLE, db)
    benchmark.extra_info["peak_traced_kb"] = round(peak / 1024, 1)
    benchmark.extra_info["kernel_mode"] = kernels.active_mode()
    run = benchmark(generic_join, TRIANGLE, db)
    assert run.count > 0


def test_bench_wcoj_triangle_tuple_oracle(benchmark, db):
    """The same triangle count through the dict-trie oracle (the before)."""
    run = benchmark(generic_join_tuples, TRIANGLE, db)
    assert run.count > 0


def test_bench_wcoj_loomis_whitney_columnar(benchmark, traced_peak, db):
    """LW(3) counting through the vectorized sorted-codes engine."""
    _, peak = traced_peak(generic_join, LOOMIS_WHITNEY, db)
    benchmark.extra_info["peak_traced_kb"] = round(peak / 1024, 1)
    benchmark.extra_info["kernel_mode"] = kernels.active_mode()
    run = benchmark(generic_join, LOOMIS_WHITNEY, db)
    assert run.count > 0


def test_bench_wcoj_loomis_whitney_tuple_oracle(benchmark, db):
    """The same LW(3) count through the dict-trie oracle."""
    run = benchmark(generic_join_tuples, LOOMIS_WHITNEY, db)
    assert run.count > 0


def test_wcoj_speedup_guard(db):
    """Perf regression guard (runs even in single-round CI smoke mode).

    The columnar WCOJ must stay well ahead of the tuple oracle on both
    counting workloads; thresholds are conservative against the ≥10×
    measured locally so a contended shared CI runner doesn't turn an
    unrelated PR red.  Outputs and meters must agree exactly.
    """

    def best_of(fn, *args, repeats=3):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn(*args)
            times.append(time.perf_counter() - start)
        return min(times)

    for query in (TRIANGLE, LOOMIS_WHITNEY):
        fast_run = generic_join(query, db)  # warm the trie cache
        slow_run = generic_join_tuples(query, db)
        assert set(fast_run.output) == set(slow_run.output)
        assert fast_run.nodes_visited == slow_run.nodes_visited
        fast = best_of(generic_join, query, db)
        slow = best_of(generic_join_tuples, query, db, repeats=2)
        assert slow / fast >= 4.0, (
            f"{query.name} WCOJ speedup collapsed: {slow / fast:.1f}x"
        )


def test_governor_overhead_guard(db):
    """Perf guard: an idle governor costs ≤5% on the triangle workload.

    Governance samples memory once per frontier slice, never per row —
    with watermarks far away the governed run does exactly the
    ungoverned run's work plus one probe and a few comparisons per
    checkpoint.  Measured as interleaved best-of-5 (min-of-N strips
    scheduler noise; interleaving strips thermal drift), with a small
    absolute epsilon so a sub-millisecond blip on a contended runner
    cannot flip the guard.
    """
    from repro.evaluation import EvaluationBudget, EvaluationGovernor

    block = 8192
    budget = EvaluationBudget(
        soft_memory_bytes=1 << 33, hard_memory_bytes=1 << 34
    )

    def governed():
        return generic_join(
            TRIANGLE,
            db,
            frontier_block=block,
            governor=EvaluationGovernor(budget),
        )

    def ungoverned():
        return generic_join(TRIANGLE, db, frontier_block=block)

    reference = ungoverned()  # warm tries
    check = governed()
    assert list(check.output) == list(reference.output)
    assert check.nodes_visited == reference.nodes_visited
    best_governed = math.inf
    best_ungoverned = math.inf
    for _ in range(5):
        start = time.perf_counter()
        ungoverned()
        best_ungoverned = min(best_ungoverned, time.perf_counter() - start)
        start = time.perf_counter()
        governed()
        best_governed = min(best_governed, time.perf_counter() - start)
    assert best_governed <= 1.05 * best_ungoverned + 2e-3, (
        f"governor overhead exceeded 5%: governed {best_governed * 1e3:.2f}ms "
        f"vs ungoverned {best_ungoverned * 1e3:.2f}ms"
    )


@needs_numba
def test_bench_wcoj_triangle_kernels(benchmark, traced_peak, db):
    """Triangle counting through the compiled Numba trie kernels.

    The first call inside the ``forced`` block pays trie-cache warm-up
    plus JIT compilation (or a Numba disk-cache load), so the benchmark
    itself times only steady-state kernel execution.
    """
    with kernels.forced("numba"):
        generic_join(TRIANGLE, db)  # warm trie cache + JIT compile
        _, peak = traced_peak(generic_join, TRIANGLE, db)
        benchmark.extra_info["peak_traced_kb"] = round(peak / 1024, 1)
        benchmark.extra_info["kernel_mode"] = "numba"
        run = benchmark(generic_join, TRIANGLE, db)
    assert run.count > 0


@needs_numba
def test_bench_wcoj_loomis_whitney_kernels(benchmark, traced_peak, db):
    """LW(3) counting through the compiled Numba trie kernels."""
    with kernels.forced("numba"):
        generic_join(LOOMIS_WHITNEY, db)  # warm trie cache + JIT compile
        _, peak = traced_peak(generic_join, LOOMIS_WHITNEY, db)
        benchmark.extra_info["peak_traced_kb"] = round(peak / 1024, 1)
        benchmark.extra_info["kernel_mode"] = "numba"
        run = benchmark(generic_join, LOOMIS_WHITNEY, db)
    assert run.count > 0


@needs_numba
def test_kernel_speedup_guard(db):
    """Compiled-kernel regression guard (runs even in CI smoke mode).

    The Numba path must hold a ≥3× median advantage over the NumPy
    oracle on the triangle (the acceptance workload; LW(3) gets a softer
    2× floor — its frontier is narrower, so kernel dispatch amortizes
    less).  Parity is asserted the strict way first: identical rows in
    identical order, identical ``nodes_visited``, identical counts under
    a CountSink and under the supervised parallel evaluator, for both
    kernel modes.
    """

    def median_of(fn, repeats=5):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        times.sort()
        return times[len(times) // 2]

    floors = {TRIANGLE.name: 3.0, LOOMIS_WHITNEY.name: 2.0}
    for query in (TRIANGLE, LOOMIS_WHITNEY):
        with kernels.forced("python"):
            oracle = generic_join(query, db)
            oracle_blocked = generic_join(query, db, frontier_block=512)
            sink = CountSink()
            generic_join(query, db, sink=sink)
            oracle_sunk = sink.n_rows
        with kernels.forced("numba"):
            fast = generic_join(query, db)  # warm trie cache + JIT
            fast_blocked = generic_join(query, db, frontier_block=512)
            sink = CountSink()
            generic_join(query, db, sink=sink)
            fast_sunk = sink.n_rows
        assert list(fast.output) == list(oracle.output)
        assert fast.nodes_visited == oracle.nodes_visited
        assert list(fast_blocked.output) == list(oracle.output)
        assert fast_blocked.nodes_visited == oracle.nodes_visited
        assert fast_sunk == oracle_sunk == oracle.count

        with kernels.forced("python"):
            slow_t = median_of(lambda: generic_join(query, db))
        with kernels.forced("numba"):
            fast_t = median_of(lambda: generic_join(query, db))
        floor = floors[query.name]
        assert slow_t / fast_t >= floor, (
            f"{query.name} kernel speedup below {floor}x: "
            f"{slow_t / fast_t:.2f}x (python {slow_t * 1e3:.3f} ms, "
            f"numba {fast_t * 1e3:.3f} ms)"
        )

    # the parallel supervisor's workers must inherit the kernel mode and
    # land on the same counts and meters in either mode
    stats = collect_statistics(TRIANGLE, db, ps=[1.0, 2.0, math.inf])
    bound = lp_bound(stats, query=TRIANGLE)
    results = {}
    for mode in ("python", "numba"):
        with kernels.forced(mode):
            run = evaluate_parallel(
                TRIANGLE, db, bound, workers=2, max_parts=20000
            )
            results[mode] = (run.count, run.nodes_visited)
    assert results["python"] == results["numba"]
