"""E11 — Example 2.2 / Appendix C.4: path queries (see docs/architecture.md).

Regenerates: bounds for paths of length 2–5 over a SNAP-like relation.
Asserts the acyclic-case story that motivates the paper: the full ℓp
bound beats {1,∞} which beats {1}, each typically by orders of magnitude,
and the gap widens with path length; the estimator underestimates, worse
with length.
"""

from repro.experiments.chain import run_chain_experiment


def test_bench_chain_paths(once):
    rows = once(run_chain_experiment, "ca-GrQc")
    print()
    previous_gap = 0.0
    for r in rows:
        print(f"  len={r.length} {{1}}={r.ratio_l1:12.3g}"
              f" {{1,∞}}={r.ratio_l1_inf:10.3g} full={r.ratio_full:8.3g}"
              f" dsb={r.ratio_dsb:8.3g} textbook={r.ratio_estimator:.3g}")
        assert 1.0 - 1e-9 <= r.ratio_full
        assert r.ratio_full <= r.ratio_l1_inf / 3.0  # clear win
        assert r.ratio_l1_inf < r.ratio_l1
        assert r.ratio_estimator < 1.0
        # the closed forms (20) are valid bounds and the LP never loses
        assert r.ratio_full <= r.ratio_formula_p2 * (1 + 1e-9)
        assert r.ratio_full <= r.ratio_formula_p3 * (1 + 1e-9)
        # estimator degrades with length (paper's compounding effect)
        gap = 1.0 / r.ratio_estimator
        assert gap > previous_gap
        previous_gap = gap
