"""E10 + the batched bound pipeline's repeated-solve workloads.

``test_bench_lp_scaling`` regenerates the paper-shaped solver-scaling
table (docs/architecture.md).  The ``repeated_solve`` pair benchmarks the
plan-search pattern a production estimator lives in: the same bound
structures are requested over and over (a join-order enumerator re-costs
the same subqueries per candidate plan; a scale sweep re-solves one
structure with new norms).  The cold path pays full assembly + solve per
request; :class:`repro.core.BoundSolver` answers repeats from its
structure cache and result memo.  ``test_lp_solver_speedup_guard``
asserts the ≥5× acceptance bar and bit-identical results.
"""

import math
import time
from dataclasses import replace

from repro.core import BoundSolver, collect_statistics, lp_bound
from repro.datasets import power_law_graph
from repro.experiments.lp_scaling import run_lp_scaling
from repro.query import parse_query
from repro.relational import Database

#: Norm families re-requested per round (the E1/E3 table columns).
FAMILIES = ((1.0,), (1.0, math.inf), (1.0, 2.0), (1.0, 2.0, 3.0, math.inf))
ROUNDS = 8


def _workload():
    """A fixed mix of query shapes over one graph, with full statistics."""
    edges = power_law_graph(600, 3000, 0.6, seed=8)
    queries = [
        parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)"),
        parse_query("p(a,b,c,d) :- R(a,b), R(b,c), R(c,d)"),
        parse_query("s(h,a,b,c) :- R(h,a), R(h,b), R(h,c)"),
    ]
    db = Database({"R": edges})
    ps = [1.0, 2.0, 3.0, math.inf]
    return [
        (query, collect_statistics(query, db, ps=ps)) for query in queries
    ]


def _solve_rounds_cold(workload):
    results = []
    for _ in range(ROUNDS):
        for query, stats in workload:
            for family in FAMILIES:
                results.append(
                    lp_bound(stats.restrict_ps(family), query=query)
                )
    return results


def _solve_rounds_solver(workload, solver):
    results = []
    for _ in range(ROUNDS):
        for query, stats in workload:
            for family in FAMILIES:
                results.append(solver.solve_family(stats, family, query=query))
    return results


def test_bench_lp_repeated_solve_cold(benchmark):
    """One-shot lp_bound per request — assembly + HiGHS every time."""
    workload = _workload()
    results = benchmark(_solve_rounds_cold, workload)
    assert all(r.status == "optimal" for r in results)


def test_bench_lp_repeated_solve_solver(benchmark):
    """The same requests through a fresh BoundSolver per round-trip."""
    workload = _workload()

    def run():
        return _solve_rounds_solver(workload, BoundSolver())

    results = benchmark(run)
    assert all(r.status == "optimal" for r in results)


def test_bench_lp_resolve_b_swap(benchmark):
    """The pure b-swap path: one structure, scaled norms every request.

    No request repeats exactly (the memo never hits), so this times
    cached-assembly re-solves alone.
    """
    workload = _workload()
    query, stats = workload[0]
    solver = BoundSolver(memoize_results=False)
    solver.solve(stats, query=query)  # warm the structure cache
    scale = [0.0]

    def run():
        scale[0] += 1e-3
        scaled = [
            replace(s, log2_bound=s.log2_bound + scale[0]) for s in stats
        ]
        return solver.solve(scaled, query=query)

    result = benchmark(run)
    assert result.status == "optimal"


def test_lp_solver_speedup_guard():
    """Acceptance: solver ≥5× over cold lp_bound on repeated solves,
    results bit-identical (runs even in single-round CI smoke mode)."""
    import numpy as np

    workload = _workload()

    def best_of(fn, repeats=3):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    cold_results = _solve_rounds_cold(workload)
    solver = BoundSolver()
    warm_results = _solve_rounds_solver(workload, solver)
    assert len(cold_results) == len(warm_results)
    for a, b in zip(cold_results, warm_results):
        assert a.log2_bound == b.log2_bound
        assert np.array_equal(a.dual_weights, b.dual_weights)
    assert solver.result_hits > 0  # the repeats actually hit the memo

    cold = best_of(lambda: _solve_rounds_cold(workload))
    warm = best_of(lambda: _solve_rounds_solver(workload, BoundSolver()))
    assert cold / warm >= 5.0, (
        f"repeated-solve speedup collapsed: {cold / warm:.1f}x"
    )


def test_bench_lp_scaling(once):
    rows = once(run_lp_scaling)
    print()
    for r in rows:
        poly = ("-" if r.seconds_polymatroid is None
                else f"{r.seconds_polymatroid * 1e3:8.1f}ms")
        print(f"  n={r.num_variables:2d} normal={r.seconds_normal * 1e3:8.1f}ms"
              f" polymatroid={poly}")
        assert r.bounds_agree
    largest_with_poly = [r for r in rows if r.seconds_polymatroid is not None][-1]
    assert largest_with_poly.seconds_normal < largest_with_poly.seconds_polymatroid
