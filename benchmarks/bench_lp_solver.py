"""E10 — ablation: LP solver scaling across cones (DESIGN.md §4).

Regenerates: solve times for path queries of growing length under the
polymatroid and normal cones.  Asserts the two cones agree on every bound
(Theorem 6.1, simple statistics) and that the normal cone scales better
on the largest instance.
"""

from repro.experiments.lp_scaling import run_lp_scaling


def test_bench_lp_scaling(once):
    rows = once(run_lp_scaling)
    print()
    for r in rows:
        poly = ("-" if r.seconds_polymatroid is None
                else f"{r.seconds_polymatroid * 1e3:8.1f}ms")
        print(f"  n={r.num_variables:2d} normal={r.seconds_normal * 1e3:8.1f}ms"
              f" polymatroid={poly}")
        assert r.bounds_agree
    largest_with_poly = [r for r in rows if r.seconds_polymatroid is not None][-1]
    assert largest_with_poly.seconds_normal < largest_with_poly.seconds_polymatroid
