"""E7 — Theorem D.3(2): the 35/36 non-Shannon gap (see docs/architecture.md).

Regenerates: the polymatroid LP bound with and without the Zhang–Yeung
inequality on the Appendix D.2 query and statistics.  Asserts the exact
values 4k and 35k/9, for two scalings k.
"""

import pytest

from repro.experiments.nonshannon import run_nonshannon_experiment


@pytest.mark.parametrize("k", [1.0, 3.0])
def test_bench_nonshannon_gap(once, k):
    res = once(run_nonshannon_experiment, k)
    print(f"\n  k={k:g}: polymatroid={res.log2_polymatroid:.4f}, "
          f"+ZY={res.log2_with_zhang_yeung:.4f}, "
          f"ratio={res.exponent_ratio:.4f}")
    assert abs(res.log2_polymatroid - 4.0 * k) < 1e-5
    assert abs(res.log2_with_zhang_yeung - 35.0 * k / 9.0) < 1e-5
    assert abs(res.exponent_ratio - 35.0 / 36.0) < 1e-6
