"""Micro-benchmarks for the library's hot paths.

Unlike the experiment benchmarks (one-shot table regeneration), these use
pytest-benchmark's normal multi-round timing to characterise the cost of
the core operations a cardinality-estimation system would run per query:
statistics collection, the bound LP in each cone, degree-sequence
extraction, and the evaluators.
"""

import math

import pytest

from repro.core import StatisticsCatalog, collect_statistics, lp_bound
from repro.core.degree import degree_sequence
from repro.datasets import power_law_graph, snap_database
from repro.evaluation import acyclic_count, count_query
from repro.query import parse_query

TRIANGLE = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
PATH4 = parse_query("p(a,b,c,d,e) :- R(a,b), R(b,c), R(c,d), R(d,e)")


@pytest.fixture(scope="module")
def db():
    return snap_database("ca-GrQc")


@pytest.fixture(scope="module")
def triangle_stats(db):
    return collect_statistics(TRIANGLE, db, ps=[1.0, 2.0, 3.0, math.inf])


def test_bench_degree_sequence(benchmark, db):
    seq = benchmark(degree_sequence, db["R"], ["y"], ["x"])
    assert seq[0] >= seq[-1]


def test_bench_collect_statistics(benchmark, db):
    stats = benchmark(
        collect_statistics, TRIANGLE, db, [1.0, 2.0, 3.0, math.inf]
    )
    assert len(stats) > 0


def test_bench_catalog_warm_lookup(benchmark, db):
    catalog = StatisticsCatalog(db)
    catalog.statistics_for(TRIANGLE, ps=[1.0, 2.0, 3.0, math.inf])  # warm

    def warm():
        return catalog.statistics_for(TRIANGLE, ps=[1.0, 2.0, 3.0, math.inf])

    stats = benchmark(warm)
    assert len(stats) > 0


def test_bench_lp_normal_cone(benchmark, triangle_stats):
    result = benchmark(
        lp_bound, triangle_stats, query=TRIANGLE, cone="normal"
    )
    assert result.status == "optimal"


def test_bench_lp_polymatroid_cone(benchmark, triangle_stats):
    result = benchmark(
        lp_bound, triangle_stats, query=TRIANGLE, cone="polymatroid"
    )
    assert result.status == "optimal"


def test_bench_wcoj_triangle(benchmark):
    small = power_law_graph(600, 3000, 0.6, seed=8)
    from repro.relational import Database

    db_small = Database({"R": small})
    count = benchmark(count_query, TRIANGLE, db_small)
    assert count >= 0


def test_bench_acyclic_count_path(benchmark, db):
    count = benchmark(acyclic_count, PATH4, db)
    assert count > 0
