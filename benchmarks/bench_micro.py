"""Micro-benchmarks for the library's hot paths.

Unlike the experiment benchmarks (one-shot table regeneration), these use
pytest-benchmark's normal multi-round timing to characterise the cost of
the core operations a cardinality-estimation system would run per query:
statistics collection, the bound LP in each cone, degree-sequence
extraction, and the evaluators.
"""

import math

import numpy as np
import pytest

from repro.core import StatisticsCatalog, collect_statistics, lp_bound
from repro.core.degree import degree_sequence
from repro.datasets import power_law_graph, snap_database
from repro.evaluation import acyclic_count, count_query
from repro.evaluation.joins import hash_join_tuples, join_relations
from repro.query import parse_query

TRIANGLE = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
PATH4 = parse_query("p(a,b,c,d,e) :- R(a,b), R(b,c), R(c,d), R(d,e)")


@pytest.fixture(scope="module")
def db():
    return snap_database("ca-GrQc")


@pytest.fixture(scope="module")
def triangle_stats(db):
    return collect_statistics(TRIANGLE, db, ps=[1.0, 2.0, 3.0, math.inf])


def test_bench_degree_sequence(benchmark, db):
    seq = benchmark(degree_sequence, db["R"], ["y"], ["x"])
    assert seq[0] >= seq[-1]


def test_bench_degree_sequence_tuple_oracle(benchmark, db):
    """The pre-columnar degree-sequence path, as a before/after yardstick."""
    relation = db["R"]
    gpos = relation.positions(("x",))
    vpos = relation.positions(("y",))

    def oracle():
        sizes = relation._group_sizes_tuples(gpos, vpos)
        out = np.fromiter(sizes.values(), dtype=np.int64, count=len(sizes))
        out[::-1].sort()
        return out

    seq = benchmark(oracle)
    assert np.array_equal(seq, degree_sequence(relation, ["y"], ["x"]))


def test_bench_join_relations(benchmark, db):
    """Binary natural join R(x,y) ⋈ R(y,z) through the columnar engine."""
    right = db["R"].rename({"x": "y", "y": "z"})
    out = benchmark(join_relations, db["R"], right)
    assert len(out) > len(db["R"])


def test_bench_join_tuple_oracle(benchmark, db):
    """The same binary join through the tuple hash join (the before)."""
    rows = list(db["R"])
    out_vars, out_rows = benchmark(
        hash_join_tuples, ("x", "y"), rows, ("y", "z"), rows
    )
    assert out_vars == ("x", "y", "z")
    assert len(out_rows) > len(rows)


def test_bench_collect_statistics(benchmark, db):
    stats = benchmark(
        collect_statistics, TRIANGLE, db, [1.0, 2.0, 3.0, math.inf]
    )
    assert len(stats) > 0


def test_bench_catalog_warm_lookup(benchmark, db):
    catalog = StatisticsCatalog(db)
    catalog.statistics_for(TRIANGLE, ps=[1.0, 2.0, 3.0, math.inf])  # warm

    def warm():
        return catalog.statistics_for(TRIANGLE, ps=[1.0, 2.0, 3.0, math.inf])

    stats = benchmark(warm)
    assert len(stats) > 0


def test_bench_lp_normal_cone(benchmark, triangle_stats):
    result = benchmark(
        lp_bound, triangle_stats, query=TRIANGLE, cone="normal"
    )
    assert result.status == "optimal"


def test_bench_lp_polymatroid_cone(benchmark, triangle_stats):
    result = benchmark(
        lp_bound, triangle_stats, query=TRIANGLE, cone="polymatroid"
    )
    assert result.status == "optimal"


def test_columnar_speedup_guard(db):
    """Perf regression guard (runs even in single-round CI smoke mode).

    The columnar engine must stay well ahead of the tuple oracle on both
    acceptance hot paths; thresholds are conservative against the
    ≥5× measured locally (degree sequence ~50×, binary join ~6×) so a
    contended shared CI runner doesn't turn an unrelated PR red.
    """
    import time

    relation = db["R"]
    gpos = relation.positions(("x",))
    vpos = relation.positions(("y",))

    def best_of(fn, repeats=5):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    def oracle_degrees():
        sizes = relation._group_sizes_tuples(gpos, vpos)
        out = np.fromiter(sizes.values(), dtype=np.int64, count=len(sizes))
        out[::-1].sort()

    degree_sequence(relation, ["y"], ["x"])  # warm the columnar cache
    fast = best_of(lambda: degree_sequence(relation, ["y"], ["x"]))
    slow = best_of(oracle_degrees)
    assert slow / fast >= 3.0, f"degree-sequence speedup collapsed: {slow / fast:.1f}x"

    right = relation.rename({"x": "y", "y": "z"})
    rows = list(relation)
    join_relations(relation, right)  # warm
    fast = best_of(lambda: join_relations(relation, right))
    slow = best_of(
        lambda: hash_join_tuples(("x", "y"), rows, ("y", "z"), rows)
    )
    assert slow / fast >= 2.0, f"join speedup collapsed: {slow / fast:.1f}x"


def test_bench_wcoj_triangle(benchmark):
    small = power_law_graph(600, 3000, 0.6, seed=8)
    from repro.relational import Database

    db_small = Database({"R": small})
    count = benchmark(count_query, TRIANGLE, db_small)
    assert count >= 0


def test_bench_acyclic_count_path(benchmark, db):
    count = benchmark(acyclic_count, PATH4, db)
    assert count > 0


def test_bench_acyclic_count_path_tuple_oracle(benchmark, db):
    """The dict-based counting sweep, as a before/after yardstick."""
    from repro.evaluation import acyclic_count_tuples

    count = benchmark(acyclic_count_tuples, PATH4, db)
    assert count == acyclic_count(PATH4, db)


PATH3 = parse_query("p(a,b,c,d) :- R(a,b), R(b,c), R(c,d)")


def test_bench_semijoin_reduce(benchmark, db):
    """Yannakakis two-sweep reduction through the columnar masks."""
    from repro.evaluation import semijoin_reduce

    reduced = benchmark(semijoin_reduce, PATH3, db)
    assert len(reduced["R"]) <= len(db["R"])


def test_bench_semijoin_reduce_tuple_oracle(benchmark, db):
    """The same reduction through the tuple row-set sweeps."""
    from repro.evaluation import semijoin_reduce_tuples

    reduced = benchmark(semijoin_reduce_tuples, PATH3, db)
    assert len(reduced["R"]) <= len(db["R"])
