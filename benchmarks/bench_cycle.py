"""E4 — Example 2.3 / Appendix C.5: the (p+1)-cycle (see docs/architecture.md).

Regenerates: for p ∈ {2,3,4}, all ℓq bounds (21), the AGM and PANDA
bounds, and the LP optimum on the (1/(p+1), 1/(p+1))-relation.  Asserts
the paper's claim: the ℓp-norm gives the best bound for the (p+1)-cycle,
within a small constant of |Q|, while every alternative is polynomially
worse.
"""

import pytest

from repro.experiments.cycle import run_cycle_experiment
from repro.experiments.harness import ratio_to_true


@pytest.mark.parametrize("p", [2, 3, 4])
def test_bench_cycle_lp_optimality(once, p):
    exp = once(run_cycle_experiment, p)
    print(f"\n  ({p+1})-cycle, M={exp.m}, |Q|={exp.true_count}, "
          f"best q={exp.best_q:g}, LP norms={exp.lp_norms_used}")
    # the closed-form minimiser is q = p, as the paper proves
    assert exp.best_q == float(p)
    # the LP certificate also selects ℓp
    assert float(p) in exp.lp_norms_used
    # the ℓp bound is within a small constant of the truth …
    best = min(exp.rows, key=lambda r: r.log2_bound)
    assert best.ratio < 8.0
    # … while AGM and PANDA are polynomially worse
    assert ratio_to_true(exp.log2_agm, exp.true_count) > 10 * best.ratio
    assert ratio_to_true(exp.log2_panda, exp.true_count) > 4 * best.ratio
    # LP never beats the best valid closed form on these statistics, and
    # must match it here (the certificate is exactly inequality (51))
    assert abs(exp.log2_lp - best.log2_bound) < 0.35
