#!/usr/bin/env python3
"""Pessimistic cardinality estimation served over the bound service.

The paper's main intended application (Sec. 2.1): given precomputed
ℓp-norm statistics, upper-bound the output of realistic multi-way join
queries.  This example stands up the bound-serving service over the
synthetic IMDB database and answers a handful of the Figure 1 join
templates through it, printing for each the true cardinality, our bound,
the AGM and PANDA baselines (the ``family`` request field restricts the
norm family per request — no extra statistics pass), the textbook
(DuckDB-style) estimate, and the certificate the service returns.

Run:  python examples/cardinality_estimation_job.py
"""

import math

from repro.datasets import imdb_database, job_query
from repro.estimators import textbook_estimate
from repro.evaluation import acyclic_count
from repro.service import BoundClient, BoundService, start_server

QUERY_IDS = (1, 3, 7, 17, 28)
PS = tuple(float(p) for p in range(1, 31)) + (math.inf,)


def datalog_text(query):
    """Render a ConjunctiveQuery as the service's datalog request text."""
    head = f"{query.name}({', '.join(query.variables)})"
    body = ", ".join(
        f"{a.relation}({', '.join(a.variables)})" for a in query.atoms
    )
    return f"{head} :- {body}"


def main() -> None:
    db = imdb_database(scale=0.3, seed=7)
    print(f"synthetic IMDB: {db.total_tuples()} tuples in {len(db)} relations")

    service = BoundService(db, ps=PS)
    server = start_server(service)
    print(f"bound service at {server.url} "
          f"(lp mode: {service.solver.resolved_lp_mode()})\n")

    with BoundClient(server.url) as client:
        for qid in QUERY_IDS:
            query = job_query(qid)
            text = datalog_text(query)
            true_count = acyclic_count(query, db)
            ours = client.bound(query=text, ps=PS)
            panda = client.bound(query=text, family=(1.0, math.inf))
            agm = client.bound(query=text, family=(1.0,))
            estimate = textbook_estimate(query, db)
            print(f"JOB-like query {qid} ({len(query.atoms)} relations)")
            print(f"  true |Q|          = {true_count:.4g}")
            print(f"  ours              = {ours.bound:.4g}"
                  f"   (ratio {ours.bound / true_count:.3g},"
                  f" norms {ours.norms_used})")
            print(f"  PANDA {{1,∞}}      = {panda.bound:.4g}"
                  f"   (ratio {panda.bound / true_count:.3g})")
            print(f"  AGM {{1}}          = {agm.bound:.4g}"
                  f"   (ratio {agm.bound / true_count:.3g})")
            print(f"  textbook estimate = {estimate:.4g}"
                  f"   (ratio {estimate / true_count:.3g} — underestimates)")
            print(f"  certificate: |Q| ≤ {ours.certificate}\n")
        metrics = client.metrics()
    stats_cache = metrics["statistics_cache"]
    print(f"service answered {metrics['requests']['bound']} bound requests "
          f"over one statistics pass per template "
          f"({stats_cache['hits']} statistics-cache hits)")
    server.shutdown()


if __name__ == "__main__":
    main()
