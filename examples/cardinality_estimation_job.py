#!/usr/bin/env python3
"""Pessimistic cardinality estimation on JOB-like acyclic queries.

The paper's main intended application (Sec. 2.1): given precomputed
ℓp-norm statistics, upper-bound the output of realistic multi-way join
queries.  This example runs a handful of the Figure 1 join templates over
the synthetic IMDB database, printing for each the true cardinality, our
bound, the AGM and PANDA baselines, the textbook (DuckDB-style) estimate,
and the norms the optimal certificate used.

Run:  python examples/cardinality_estimation_job.py
"""

import math

from repro import collect_statistics, lp_bound
from repro.core import product_form
from repro.datasets import imdb_database, job_query
from repro.estimators import textbook_estimate
from repro.evaluation import acyclic_count

QUERY_IDS = (1, 3, 7, 17, 28)
PS = tuple(float(p) for p in range(1, 31)) + (math.inf,)


def main() -> None:
    db = imdb_database(scale=0.3, seed=7)
    print(f"synthetic IMDB: {db.total_tuples()} tuples in {len(db)} relations\n")
    for qid in QUERY_IDS:
        query = job_query(qid)
        true_count = acyclic_count(query, db)
        stats = collect_statistics(query, db, ps=PS)
        ours = lp_bound(stats, query=query)
        agm = lp_bound(stats.restrict_ps([1.0]), query=query)
        panda = lp_bound(stats.restrict_ps([1.0, math.inf]), query=query)
        estimate = textbook_estimate(query, db)
        print(f"JOB-like query {qid} ({len(query.atoms)} relations)")
        print(f"  true |Q|          = {true_count:.4g}")
        print(f"  ours              = {ours.bound:.4g}"
              f"   (ratio {ours.bound / true_count:.3g},"
              f" norms {ours.norms_used()})")
        print(f"  PANDA {{1,∞}}      = {panda.bound:.4g}"
              f"   (ratio {panda.bound / true_count:.3g})")
        print(f"  AGM {{1}}          = {agm.bound:.4g}"
              f"   (ratio {agm.bound / true_count:.3g})")
        print(f"  textbook estimate = {estimate:.4g}"
              f"   (ratio {estimate / true_count:.3g} — underestimates)")
        print(f"  certificate: |Q| ≤ {product_form(ours)}\n")


if __name__ == "__main__":
    main()
