#!/usr/bin/env python3
"""Tightness: materialising the worst-case (normal) database.

Section 6 of the paper proves the polymatroid bound tight for simple
statistics by constructing a *normal database* — projections of a domain
product of basic normal relations.  This example reproduces Example 6.7
end to end:

1. state the ℓ4 + cardinality statistics (40) with B = 2^10;
2. solve the bound LP over the normal cone → bound B, with the optimal
   step-function decomposition h* = b·h_{XYZ};
3. materialise the Lemma 6.2 witness (here: the diagonal {(k,k,k)});
4. verify it satisfies every statistic and its query output is ≥ B/2;
5. contrast with the best *product* database, stuck at B^{3/5}.

Run:  python examples/worst_case_instances.py
"""

import math

from repro.evaluation import count_query
from repro.experiments.normal_vs_product import (
    example67_query,
    example67_statistics,
    run_normal_vs_product,
)
from repro.core import lp_bound
from repro.tightness import build_worst_case


def main() -> None:
    b = 10.0  # log2 B
    query = example67_query()
    stats = example67_statistics(b)
    print(f"query: {query}")
    print(f"statistics: ℓ4-norms of R1..R3 bounded by 2^{b/4:g}, "
          f"|S1..S3| ≤ 2^{b:g}\n")

    bound = lp_bound(stats, query=query, cone="normal")
    print(f"polymatroid bound (via normal cone): 2^{bound.log2_bound:g}")
    print("optimal normal polymatroid h* = "
          + " + ".join(
              f"{alpha:.3g}·h_{{{','.join(sorted(bound.entropy_vector().subset_of_mask(mask)))}}}"
              for mask, alpha in sorted(bound.normal_coefficients.items())
          ))

    worst = build_worst_case(query, bound)
    achieved = count_query(query, worst.database)
    print(f"\nworst-case normal database: witness relation of "
          f"{len(worst.witness)} tuples")
    print(f"  satisfies all statistics: {stats.holds_on(worst.database)}")
    print(f"  |Q(D)| = {achieved}  (bound 2^{bound.log2_bound:g} = "
          f"{2 ** bound.log2_bound:g}; Lemma 6.2 guarantees ≥ bound/2^c)")

    res = run_normal_vs_product(b)
    print(f"\nbest product database instead: |Q| = {res.product_count}"
          f" ≤ B^(3/5) = {2 ** res.log2_product_limit:.1f}"
          " — asymptotically smaller, as Example 6.7 proves.")


if __name__ == "__main__":
    main()
