#!/usr/bin/env python3
"""Quickstart: ℓp-norm bounds on the triangle query.

Builds a small skewed graph, collects ℓp statistics on its degree
sequences, and computes several upper bounds on the triangle count —
including the paper's headline ℓ2 bound (Eq. 4) — comparing each against
the true cardinality.

Run:  python examples/quickstart.py
"""

import math

from repro import Database, collect_statistics, lp_bound, parse_query, product_form
from repro.core import verify_certificate
from repro.datasets import power_law_graph
from repro.evaluation import count_query


def main() -> None:
    # 1. a skewed graph: 600 nodes, ~4000 (symmetric) edges
    edges = power_law_graph(num_nodes=600, num_edges=4000, exponent=0.7, seed=42)
    db = Database({"R": edges})

    # 2. the triangle query, the standard illustration for size bounds
    query = parse_query("triangle(x,y,z) :- R(x,y), R(y,z), R(z,x)")
    true_count = count_query(query, db)
    print(f"graph: {len(edges)} edges; true triangle count |Q| = {true_count}")

    # 3. precompute ℓp statistics for p ∈ {1, 2, 3, ∞} on all join columns
    stats = collect_statistics(query, db, ps=[1.0, 2.0, 3.0, math.inf])
    print(f"collected {len(stats)} statistics (all simple: {stats.is_simple})")

    # 4. bounds from growing families of norms
    for label, ps in [
        ("{1}      (AGM)  ", [1.0]),
        ("{1,∞}    (PANDA)", [1.0, math.inf]),
        ("{1,2}           ", [1.0, 2.0]),
        ("{1,2,3,∞}       ", [1.0, 2.0, 3.0, math.inf]),
    ]:
        result = lp_bound(stats.restrict_ps(ps), query=query)
        print(
            f"  {label} bound = {result.bound:12.1f}"
            f"   ratio to truth = {result.bound / true_count:8.2f}"
        )

    # 5. the best bound's certificate: the witness inequality (8) and its
    #    product form (9), plus the strong-duality check of Theorem 5.2
    best = lp_bound(stats, query=query)
    print("\nbest bound certificate (Theorem 1.1):")
    print("  |Q| ≤", product_form(best))
    print("  via:", best.witness_inequality())
    print("  strong duality verified:", verify_certificate(best))


if __name__ == "__main__":
    main()
