#!/usr/bin/env python3
"""Pessimistic join ordering against the bound-serving service.

The paper's motivation (Sec. 1): optimizers pick plans by estimated
intermediate sizes, and underestimates cause catastrophic plans.  This
example runs the service the way an optimizer would — a long-lived
process answering bound requests over HTTP — and uses the ℓp bound as a
*pessimistic* cost model: for every left-deep join order of a 4-atom
query it posts each intermediate prefix to ``POST /bound``, scores the
plan by its largest intermediate bound, and compares the chosen plan
against the plan the textbook estimator would pick — reporting the
*true* intermediate sizes of both.

Because prefixes recur across orders (``R1 ⋈ R2`` starts many plans),
most of the planner's requests are served from the result memo; the
``/metrics`` summary printed at the end shows the hit rates and warm
latency percentiles.

Run:  python examples/join_ordering.py
"""

import itertools
import math

from repro import Database
from repro.datasets import power_law_graph
from repro.estimators import textbook_estimate_log2
from repro.evaluation import acyclic_count
from repro.query.query import Atom, ConjunctiveQuery
from repro.service import BoundClient, BoundService, start_server


def datalog_text(atoms, name="Q"):
    """Render atoms as the datalog text the service's parser accepts."""
    head_vars: dict[str, None] = {}
    for atom in atoms:
        for v in atom.variables:
            head_vars.setdefault(v, None)
    head = f"{name}({', '.join(head_vars)})"
    body = ", ".join(
        f"{a.relation}({', '.join(a.variables)})" for a in atoms
    )
    return f"{head} :- {body}"


def prefix_queries(atoms):
    """The proper connected left-deep prefixes (the *intermediates*)."""
    for k in range(2, len(atoms)):
        yield atoms[:k]


def plan_cost_by_bound(order, client):
    """Score a plan by its largest intermediate's served ℓp bound."""
    worst = 0.0
    for prefix in prefix_queries(order):
        response = client.bound(query=datalog_text(prefix))
        worst = max(worst, response.log2_bound)
    return worst


def plan_cost_by_estimate(order, db):
    worst = -math.inf
    for prefix in prefix_queries(order):
        query = ConjunctiveQuery(prefix, name="prefix")
        worst = max(worst, textbook_estimate_log2(query, db))
    return worst


def true_worst_intermediate(order, db):
    worst = 0
    for prefix in prefix_queries(order):
        query = ConjunctiveQuery(prefix, name="prefix")
        worst = max(worst, acyclic_count(query, db))
    return worst


def main() -> None:
    # a chain query over relations of very different skew
    db = Database(
        {
            "R1": power_law_graph(400, 2500, 1.0, seed=21),  # heavy skew
            "R2": power_law_graph(400, 2000, 0.2, seed=22),  # mild
            "R3": power_law_graph(400, 1500, 0.9, seed=23),  # heavy
            "R4": power_law_graph(400, 1000, 0.1, seed=24),  # near-uniform
        }
    )
    atoms = [
        Atom("R1", ("a", "b")),
        Atom("R2", ("b", "c")),
        Atom("R3", ("c", "d")),
        Atom("R4", ("d", "e")),
    ]
    ps = (1.0, 2.0, 3.0, 4.0, math.inf)

    # the long-lived service an optimizer would call into: statistics
    # and solver caches live across all of the planner's requests
    service = BoundService(db, ps=ps)
    server = start_server(service)
    print(f"bound service at {server.url} "
          f"(lp mode: {service.solver.resolved_lp_mode()})\n")

    connected_orders = []
    for perm in itertools.permutations(atoms):
        bound_vars = set(perm[0].variable_set)
        ok = True
        for atom in perm[1:]:
            if not (atom.variable_set & bound_vars):
                ok = False
                break
            bound_vars |= atom.variable_set
        if ok:
            connected_orders.append(list(perm))

    def label(order):
        return " ⋈ ".join(a.relation for a in order)

    with BoundClient(server.url) as client:
        scored = []
        for order in connected_orders:
            scored.append(
                (
                    label(order),
                    plan_cost_by_bound(order, client),
                    plan_cost_by_estimate(order, db),
                    true_worst_intermediate(order, db),
                )
            )
        metrics = client.metrics()
    by_bound = min(scored, key=lambda row: row[1])
    by_estimate = min(scored, key=lambda row: row[2])

    print(f"{len(connected_orders)} connected left-deep orders\n")
    print(f"{'order':24s} {'ℓp bound':>10s} {'estimate':>10s} "
          f"{'true worst intermediate':>24s}")
    for name, bound_cost, est_cost, truth in sorted(
        scored, key=lambda row: row[3]
    ):
        marks = ""
        if name == by_bound[0]:
            marks += "  ← ℓp pick"
        if name == by_estimate[0]:
            marks += "  ← estimator pick"
        print(f"{name:24s} 2^{bound_cost:7.2f} 2^{est_cost:7.2f} "
              f"{truth:>20,}{marks}")

    print(f"\nℓp-bound pick's true worst intermediate : {by_bound[3]:,}")
    print(f"estimator pick's true worst intermediate: {by_estimate[3]:,}")
    full = ConjunctiveQuery(atoms, name="chain")
    print(f"final output (any plan): {acyclic_count(full, db):,} tuples")

    solver = metrics["solver"]
    stats_cache = metrics["statistics_cache"]
    latency = metrics["latency"]["bound"]
    print(f"\nservice answered {metrics['requests']['bound']} bound requests:")
    print(f"  result memo hits      : {solver['result_hits']} "
          f"(solved {solver['solves']} distinct LPs)")
    print(f"  statistics cache      : {stats_cache['hits']} hits / "
          f"{stats_cache['misses']} misses")
    print(f"  warm latency          : p50 {latency['p50_ms']:.3f} ms, "
          f"p99 {latency['p99_ms']:.3f} ms")
    server.shutdown()


if __name__ == "__main__":
    main()
