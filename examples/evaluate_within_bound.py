#!/usr/bin/env python3
"""Query evaluation within the ℓp bound (Sec. 2.2, Theorem 2.6).

Demonstrates the paper's evaluation algorithm: partition each relation by
degree buckets (Lemma 2.5) so every part *strongly satisfies* its ℓp
statistic, evaluate the union of per-part queries, and verify that the
metered work stays within the c · Π B_i^{w_i} budget of Theorem 2.6 —
while producing exactly the same output as a direct join.

Run:  python examples/evaluate_within_bound.py
"""

import math

from repro import Database, collect_statistics, lp_bound, parse_query
from repro.datasets import power_law_graph
from repro.evaluation import count_query, evaluate_with_partitioning


def main() -> None:
    edges = power_law_graph(num_nodes=500, num_edges=3000, exponent=0.8, seed=3)
    db = Database({"R": edges})
    query = parse_query("paths(x,y,z) :- R(x,y), R(y,z)")

    stats = collect_statistics(query, db, ps=[1.0, 2.0, math.inf])
    bound = lp_bound(stats, query=query)
    print(f"query: {query}")
    print(f"ℓp bound: 2^{bound.log2_bound:.2f} using norms {bound.norms_used()}")

    run = evaluate_with_partitioning(query, db, bound)
    direct = count_query(query, db)
    print(f"\npartitioned evaluation (Theorem 2.6):")
    print(f"  part combinations evaluated : {run.parts_evaluated}")
    print(f"  output size                 : {run.count}"
          f"  (direct join agrees: {run.count == direct})")
    print(f"  metered work                : 2^"
          f"{math.log2(max(1, run.nodes_visited)):.2f} search nodes")
    print(f"  Theorem 2.6 budget          : 2^{run.log2_budget:.2f}"
          f"  (within budget: {run.within_budget()})")


if __name__ == "__main__":
    main()
