"""Binary hash joins and join-tree evaluation for acyclic queries.

These are the classical substrate algorithms: a hash join for two
relations and a left-deep evaluation of a full conjunctive query.  The
worst-case-optimal algorithm lives in :mod:`repro.evaluation.wcoj`; the
hash-join path is kept both as an independent oracle for true
cardinalities in tests and because acyclic JOB-style queries evaluate
faster through it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from ..query.query import Atom, ConjunctiveQuery
from ..relational import Database, Relation

__all__ = ["hash_join", "evaluate_left_deep"]


def _atom_rows(atom: Atom, db: Database) -> tuple[tuple[str, ...], list[tuple]]:
    """Rows of an atom as tuples over its *distinct* variables.

    Repeated variables in the atom become equality selections.
    """
    relation = db[atom.relation]
    distinct_vars = tuple(dict.fromkeys(atom.variables))
    positions: dict[str, int] = {}
    for position, var in enumerate(atom.variables):
        positions.setdefault(var, position)
    repeated: dict[str, list[int]] = {}
    for position, var in enumerate(atom.variables):
        repeated.setdefault(var, []).append(position)
    checks = [ps for ps in repeated.values() if len(ps) > 1]
    rows = []
    for row in relation:
        if checks and not all(len({row[i] for i in ps}) == 1 for ps in checks):
            continue
        rows.append(tuple(row[positions[v]] for v in distinct_vars))
    return distinct_vars, rows


def hash_join(
    left_vars: Sequence[str],
    left_rows: list[tuple],
    right_vars: Sequence[str],
    right_rows: list[tuple],
) -> tuple[tuple[str, ...], list[tuple]]:
    """Natural join of two variable-labelled row sets.

    Returns (output variables, output rows); output variables are the left
    variables followed by the right-only variables.
    """
    left_vars = tuple(left_vars)
    right_vars = tuple(right_vars)
    shared = [v for v in right_vars if v in set(left_vars)]
    right_only = [v for v in right_vars if v not in set(left_vars)]
    out_vars = left_vars + tuple(right_only)
    left_key_pos = [left_vars.index(v) for v in shared]
    right_key_pos = [right_vars.index(v) for v in shared]
    right_rest_pos = [right_vars.index(v) for v in right_only]
    index: dict[tuple, list[tuple]] = defaultdict(list)
    for row in right_rows:
        index[tuple(row[i] for i in right_key_pos)].append(
            tuple(row[i] for i in right_rest_pos)
        )
    out_rows = []
    for row in left_rows:
        key = tuple(row[i] for i in left_key_pos)
        for rest in index.get(key, ()):
            out_rows.append(row + rest)
    return out_vars, out_rows


def evaluate_left_deep(
    query: ConjunctiveQuery, db: Database, order: Sequence[int] | None = None
) -> Relation:
    """Evaluate a full conjunctive query by a left-deep chain of hash joins.

    ``order`` optionally permutes the atoms; by default atoms are joined
    greedily, always picking next an atom sharing a variable with the
    current partial result (falling back to a cartesian product only when
    the query is disconnected).
    """
    atoms = list(query.atoms)
    if order is not None:
        atoms = [atoms[i] for i in order]
    else:
        remaining = atoms[1:]
        ordered = [atoms[0]]
        bound = set(atoms[0].variable_set)
        while remaining:
            pick = next(
                (a for a in remaining if a.variable_set & bound),
                remaining[0],
            )
            remaining.remove(pick)
            ordered.append(pick)
            bound |= pick.variable_set
        atoms = ordered
    out_vars, out_rows = _atom_rows(atoms[0], db)
    for atom in atoms[1:]:
        r_vars, r_rows = _atom_rows(atom, db)
        out_vars, out_rows = hash_join(out_vars, out_rows, r_vars, r_rows)
    # project to the canonical variable order of the query
    target = query.variables
    positions = [out_vars.index(v) for v in target]
    return Relation(
        target,
        (tuple(row[i] for i in positions) for row in out_rows),
        name=query.name,
    )
