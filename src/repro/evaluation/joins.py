"""Binary hash joins and join-tree evaluation for acyclic queries.

These are the classical substrate algorithms: a binary natural join and a
left-deep evaluation of a full conjunctive query.  The worst-case-optimal
algorithm lives in :mod:`repro.evaluation.wcoj`; this path is kept both as
an independent oracle for true cardinalities in tests and because acyclic
JOB-style queries evaluate faster through it.

Two implementations coexist:

* :func:`hash_join_tuples` — the original dict-of-lists hash join over
  Python tuples.  Works for arbitrary hashable values and serves as the
  correctness oracle in the equivalence test-suite.
* a columnar sort-merge join over dictionary-encoded ``int64`` columns
  (:mod:`repro.relational.columnar`): right-side key columns are remapped
  into the left dictionaries' code space (``searchsorted`` over the small
  dictionaries), composite keys are matched with ``np.searchsorted`` over
  a stable-sorted right side, and output rows are materialized as two
  gather operations.  Output row *order* matches the tuple oracle exactly
  (left-major, right rows in input order within a key).

:func:`hash_join` dispatches to the columnar engine whenever both inputs
encode, falling back silently otherwise; :func:`evaluate_left_deep` keeps
the whole left-deep chain in code space, decoding only the final result.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from ..query.query import Atom, ConjunctiveQuery
from ..relational import Database, Relation
from ..relational.columnar import (
    _MAX_RADIX,
    ColumnarRelation,
    composite_codes,
    encode_rows,
    remap_codes,
)

__all__ = [
    "hash_join",
    "hash_join_tuples",
    "join_relations",
    "evaluate_left_deep",
]


def _atom_rows(atom: Atom, db: Database) -> tuple[tuple[str, ...], list[tuple]]:
    """Rows of an atom as tuples over its *distinct* variables.

    Repeated variables in the atom become equality selections.
    """
    relation = db[atom.relation]
    distinct_vars = tuple(dict.fromkeys(atom.variables))
    positions: dict[str, int] = {}
    for position, var in enumerate(atom.variables):
        positions.setdefault(var, position)
    repeated: dict[str, list[int]] = {}
    for position, var in enumerate(atom.variables):
        repeated.setdefault(var, []).append(position)
    checks = [ps for ps in repeated.values() if len(ps) > 1]
    rows = []
    for row in relation:
        if checks and not all(len({row[i] for i in ps}) == 1 for ps in checks):
            continue
        rows.append(tuple(row[positions[v]] for v in distinct_vars))
    return distinct_vars, rows


# ----------------------------------------------------------------------
# tuple oracle
# ----------------------------------------------------------------------
def hash_join_tuples(
    left_vars: Sequence[str],
    left_rows: list[tuple],
    right_vars: Sequence[str],
    right_rows: list[tuple],
) -> tuple[tuple[str, ...], list[tuple]]:
    """Natural join of two variable-labelled row sets, tuple-at-a-time.

    Returns (output variables, output rows); output variables are the left
    variables followed by the right-only variables.
    """
    left_vars = tuple(left_vars)
    right_vars = tuple(right_vars)
    left_set = frozenset(left_vars)
    shared = [v for v in right_vars if v in left_set]
    right_only = [v for v in right_vars if v not in left_set]
    out_vars = left_vars + tuple(right_only)
    left_key_pos = [left_vars.index(v) for v in shared]
    right_key_pos = [right_vars.index(v) for v in shared]
    right_rest_pos = [right_vars.index(v) for v in right_only]
    index: dict[tuple, list[tuple]] = defaultdict(list)
    for row in right_rows:
        index[tuple(row[i] for i in right_key_pos)].append(
            tuple(row[i] for i in right_rest_pos)
        )
    out_rows = []
    for row in left_rows:
        key = tuple(row[i] for i in left_key_pos)
        for rest in index.get(key, ()):
            out_rows.append(row + rest)
    return out_vars, out_rows


# ----------------------------------------------------------------------
# columnar engine
# ----------------------------------------------------------------------
class _ColTable:
    """A variable-labelled intermediate result in code space."""

    __slots__ = ("vars", "codes", "dicts", "n_rows")

    def __init__(self, vars, codes, dicts, n_rows):
        self.vars = vars
        self.codes = codes
        self.dicts = dicts
        self.n_rows = n_rows


def _probably_encodable(rows: Sequence[tuple]) -> bool:
    """First-row probe: plain-int rows are the only encodable kind.

    False negatives are impossible (a non-int in row 0 fails the full
    encode too); false positives just mean the encode attempts and falls
    back as before.
    """
    if not rows:
        return True
    return all(type(value) is int for value in rows[0])


def _table_of(columnar: ColumnarRelation) -> _ColTable:
    """View a :class:`ColumnarRelation` as a positional ``_ColTable``."""
    attrs = columnar.attributes
    return _ColTable(
        attrs,
        [columnar.codes(a) for a in attrs],
        [columnar.dictionary(a) for a in attrs],
        columnar.n_rows,
    )


def _columnar_of(table: _ColTable) -> ColumnarRelation:
    """View a ``_ColTable`` (with distinct vars) as a ColumnarRelation."""
    return ColumnarRelation(
        table.vars,
        dict(zip(table.vars, table.codes)),
        dict(zip(table.vars, table.dicts)),
        table.n_rows,
    )


def _encode_table(
    vars: Sequence[str], rows: Sequence[tuple]
) -> _ColTable | None:
    vars = tuple(vars)
    if len(set(vars)) != len(vars):
        # degenerate duplicate-variable labelling: tuple path handles it
        return None
    columnar = encode_rows(vars, rows)
    return None if columnar is None else _table_of(columnar)


def _atom_table_indexed(
    atom: Atom, db: Database
) -> tuple[_ColTable, np.ndarray | None] | None:
    """The atom's rows over its distinct variables, plus the index of each
    surviving table row in the underlying relation's row order (``None``
    meaning the identity — no row was filtered).

    Straight from the relation's cached columnar twin (no tuple
    round-trip); repeated variables become diagonal selections, which is
    why the row-index array matters — it lets callers (the Yannakakis
    sweeps) map survivors back to full relation rows.
    """
    relation = db[atom.relation]
    col = relation.columnar()
    if col is None:
        return None
    attrs = relation.attributes
    distinct_vars = tuple(dict.fromkeys(atom.variables))
    first_pos: dict[str, int] = {}
    repeated: dict[str, list[int]] = {}
    for position, var in enumerate(atom.variables):
        first_pos.setdefault(var, position)
        repeated.setdefault(var, []).append(position)
    mask = None
    for var, positions in repeated.items():
        base = attrs[positions[0]]
        for position in positions[1:]:
            other = attrs[position]
            aligned = remap_codes(
                col.codes(other), col.dictionary(other), col.dictionary(base)
            )
            eq = aligned == col.codes(base)
            mask = eq if mask is None else (mask & eq)
    if mask is not None:
        keep = np.nonzero(mask)[0]
        codes_list = [col.codes(attrs[first_pos[v]])[keep] for v in distinct_vars]
        n = len(keep)
    else:
        keep = None
        codes_list = [col.codes(attrs[first_pos[v]]) for v in distinct_vars]
        n = col.n_rows
    dicts_list = [col.dictionary(attrs[first_pos[v]]) for v in distinct_vars]
    return _ColTable(distinct_vars, codes_list, dicts_list, n), keep


def _atom_table(atom: Atom, db: Database) -> _ColTable | None:
    """The atom's rows over its distinct variables (see above)."""
    indexed = _atom_table_indexed(atom, db)
    return None if indexed is None else indexed[0]


def _join_tables(left: _ColTable, right: _ColTable) -> _ColTable | None:
    """Columnar natural join; ``None`` only on composite-radix overflow."""
    left_set = frozenset(left.vars)
    shared = [v for v in right.vars if v in left_set]
    right_only = [v for v in right.vars if v not in left_set]
    out_vars = left.vars + tuple(right_only)
    left_pos = {v: i for i, v in enumerate(left.vars)}
    right_pos = {v: i for i, v in enumerate(right.vars)}

    if not shared:
        left_idx = np.repeat(np.arange(left.n_rows), right.n_rows)
        right_idx = np.tile(np.arange(right.n_rows), left.n_rows)
    else:
        cards = [len(left.dicts[left_pos[v]]) for v in shared]
        radix = 1
        for card in cards:
            radix *= max(1, card)
            if radix >= _MAX_RADIX:  # pragma: no cover - astronomically wide
                return None
        remapped = []
        valid = None
        for v in shared:
            aligned = remap_codes(
                right.codes[right_pos[v]],
                right.dicts[right_pos[v]],
                left.dicts[left_pos[v]],
            )
            ok = aligned >= 0
            valid = ok if valid is None else (valid & ok)
            remapped.append(aligned)
        keep = np.nonzero(valid)[0]
        right_keys, _ = composite_codes(
            [a[keep] for a in remapped], cards, len(keep)
        )
        left_keys, _ = composite_codes(
            [left.codes[left_pos[v]] for v in shared], cards, left.n_rows
        )
        order = np.argsort(right_keys, kind="stable")
        sorted_keys = right_keys[order]
        lo = np.searchsorted(sorted_keys, left_keys, side="left")
        hi = np.searchsorted(sorted_keys, left_keys, side="right")
        counts = hi - lo
        total = int(counts.sum())
        left_idx = np.repeat(np.arange(left.n_rows), counts)
        offsets = np.cumsum(counts) - counts
        span = (
            np.arange(total)
            - np.repeat(offsets, counts)
            + np.repeat(lo, counts)
        )
        right_idx = keep[order[span]]

    codes_list = [c[left_idx] for c in left.codes]
    dicts_list = list(left.dicts)
    for v in right_only:
        codes_list.append(right.codes[right_pos[v]][right_idx])
        dicts_list.append(right.dicts[right_pos[v]])
    return _ColTable(out_vars, codes_list, dicts_list, len(left_idx))


def _decode_rows(table: _ColTable) -> list[tuple]:
    return _columnar_of(table).decode_rows(table.vars)


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def hash_join(
    left_vars: Sequence[str],
    left_rows: list[tuple],
    right_vars: Sequence[str],
    right_rows: list[tuple],
) -> tuple[tuple[str, ...], list[tuple]]:
    """Natural join of two variable-labelled row sets.

    Returns (output variables, output rows); output variables are the left
    variables followed by the right-only variables.  Integer-valued inputs
    run through the vectorized columnar engine; anything else falls back to
    :func:`hash_join_tuples`.  Output rows and their order are identical
    either way.
    """
    # cheap first-row type probe before paying for a full encode: on a
    # mixed-type chain this keeps the fallback path from dictionary-
    # encoding one (possibly huge) side only to discard the work when the
    # other side turns out non-encodable.
    if not (_probably_encodable(left_rows) and _probably_encodable(right_rows)):
        return hash_join_tuples(left_vars, left_rows, right_vars, right_rows)
    left = _encode_table(left_vars, left_rows)
    right = _encode_table(right_vars, right_rows) if left is not None else None
    if left is None or right is None:
        return hash_join_tuples(left_vars, left_rows, right_vars, right_rows)
    joined = _join_tables(left, right)
    if joined is None:  # pragma: no cover - radix overflow
        return hash_join_tuples(left_vars, left_rows, right_vars, right_rows)
    return joined.vars, _decode_rows(joined)


def _relation_table(relation: Relation) -> _ColTable | None:
    col = relation.columnar()
    return None if col is None else _table_of(col)


def join_relations(left: Relation, right: Relation, name: str = "") -> Relation:
    """Natural join of two relations on their shared attribute names.

    The engine-level entry point: when both relations have columnar twins
    the join runs entirely in code space and the result is returned as a
    columnar-backed :class:`Relation` whose tuple rows materialize lazily —
    statistics, further joins, and ``len()`` never pay for them.  Joining
    two set-semantics relations cannot create duplicate rows, so no
    deduplication pass is needed.
    """
    left_table = _relation_table(left)
    right_table = _relation_table(right) if left_table is not None else None
    joined = (
        _join_tables(left_table, right_table)
        if left_table is not None and right_table is not None
        else None
    )
    if joined is None:
        out_vars, out_rows = hash_join_tuples(
            left.attributes, list(left), right.attributes, list(right)
        )
        return Relation._from_distinct_rows(out_vars, out_rows, name)
    return Relation._from_columnar(_columnar_of(joined), name=name)


def evaluate_left_deep(
    query: ConjunctiveQuery, db: Database, order: Sequence[int] | None = None
) -> Relation:
    """Evaluate a full conjunctive query by a left-deep chain of joins.

    ``order`` optionally permutes the atoms; by default atoms are joined
    greedily, always picking next an atom sharing a variable with the
    current partial result (falling back to a cartesian product only when
    the query is disconnected).

    When every atom's relation has a columnar twin the entire chain runs in
    code space and only the final result is decoded (column-first, through
    :meth:`Relation.from_columns`); otherwise the tuple path is used.
    """
    atoms = list(query.atoms)
    if order is not None:
        atoms = [atoms[i] for i in order]
    else:
        remaining = atoms[1:]
        ordered = [atoms[0]]
        bound = set(atoms[0].variable_set)
        while remaining:
            pick = next(
                (a for a in remaining if a.variable_set & bound),
                remaining[0],
            )
            remaining.remove(pick)
            ordered.append(pick)
            bound |= pick.variable_set
        atoms = ordered

    target = query.variables
    tables = [_atom_table(atom, db) for atom in atoms]
    if all(t is not None for t in tables):
        result = tables[0]
        for table in tables[1:]:
            result = _join_tables(result, table)
            if result is None:  # pragma: no cover - radix overflow
                break
        if result is not None:
            # a full CQ's output vars are exactly `target` (as a set), so
            # reordering columns keeps rows distinct: wrap without decoding.
            position = {v: i for i, v in enumerate(result.vars)}
            columnar = ColumnarRelation(
                target,
                {v: result.codes[position[v]] for v in target},
                {v: result.dicts[position[v]] for v in target},
                result.n_rows,
            )
            return Relation._from_columnar(columnar, name=query.name)

    out_vars, out_rows = _atom_rows(atoms[0], db)
    for atom in atoms[1:]:
        r_vars, r_rows = _atom_rows(atom, db)
        out_vars, out_rows = hash_join(out_vars, out_rows, r_vars, r_rows)
    positions = [out_vars.index(v) for v in target]
    return Relation(
        target,
        (tuple(row[i] for i in positions) for row in out_rows),
        name=query.name,
    )
