"""A generic worst-case-optimal join (variable elimination with tries).

This is the library's general-purpose evaluator: a backtracking search in
a global variable order, intersecting per-atom tries at each level — the
scheme of Generic Join / Leapfrog Triejoin [24, 25].  Its search-tree size
is bounded by the AGM bound of the query, and on the degree-uniform parts
produced by :mod:`repro.evaluation.partitioning` it meets the per-part
{1,∞} product bounds required by Lemma 2.4.

The evaluator meters its work (number of variable bindings tried), which
:mod:`repro.experiments.evaluation_runtime` compares against the ℓp bound
per Theorem 2.6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..query.query import Atom, ConjunctiveQuery
from ..relational import Database, Relation

__all__ = ["generic_join", "count_query", "JoinRun"]


@dataclass
class JoinRun:
    """Result of a metered WCOJ run."""

    output: Relation
    nodes_visited: int

    @property
    def count(self) -> int:
        return len(self.output)


class _Satisfied(dict):
    """Sentinel node for an atom whose variables are all already bound.

    Such an atom imposes no further constraints; the sentinel is never
    consulted again because the atom participates in no later level.
    """


_SATISFIED = _Satisfied()


def _build_trie(
    atom: Atom, db: Database, order_index: dict[str, int]
) -> tuple[list[str], dict]:
    """Nested-dict trie of an atom's rows, levels in global variable order.

    The deepest level maps the last variable's value to ``None``.
    Repeated variables in the atom become equality filters.
    """
    relation = db[atom.relation]
    positions: dict[str, int] = {}
    for position, var in enumerate(atom.variables):
        positions.setdefault(var, position)
    repeated: dict[str, list[int]] = {}
    for position, var in enumerate(atom.variables):
        repeated.setdefault(var, []).append(position)
    checks = [ps for ps in repeated.values() if len(ps) > 1]
    ordered_vars = sorted(positions, key=lambda v: order_index[v])
    root: dict = {}
    for row in relation:
        if checks and not all(len({row[i] for i in ps}) == 1 for ps in checks):
            continue
        node = root
        for var in ordered_vars[:-1]:
            node = node.setdefault(row[positions[var]], {})
        node.setdefault(row[positions[ordered_vars[-1]]], None)
    return ordered_vars, root


def _default_order(query: ConjunctiveQuery) -> tuple[str, ...]:
    """Most-shared-first variable order, ties by first appearance."""
    counts: dict[str, int] = {}
    for atom in query.atoms:
        for v in atom.variable_set:
            counts[v] = counts.get(v, 0) + 1
    appearance = {v: i for i, v in enumerate(query.variables)}
    return tuple(
        sorted(query.variables, key=lambda v: (-counts[v], appearance[v]))
    )


def generic_join(
    query: ConjunctiveQuery,
    db: Database,
    order: Sequence[str] | None = None,
) -> JoinRun:
    """Evaluate a full conjunctive query worst-case optimally.

    Parameters
    ----------
    order:
        Global variable order; defaults to a most-shared-first heuristic.

    Returns
    -------
    A :class:`JoinRun` with the output relation (attributes in the query's
    variable order) and the metered search-tree size.
    """
    order = tuple(order) if order is not None else _default_order(query)
    if set(order) != set(query.variables):
        raise ValueError(
            f"order {order} must be a permutation of {query.variables}"
        )
    order_index = {v: i for i, v in enumerate(order)}
    tries = [_build_trie(atom, db, order_index) for atom in query.atoms]
    atoms_at: list[list[int]] = [[] for _ in order]
    for atom_idx, (ordered_vars, _) in enumerate(tries):
        for var in ordered_vars:
            atoms_at[order_index[var]].append(atom_idx)

    n = len(order)
    binding: list = [None] * n
    results: list[tuple] = []
    nodes: list[dict] = [trie for _, trie in tries]
    visited = 0

    def descend(level: int) -> None:
        nonlocal visited
        if level == n:
            results.append(tuple(binding))
            return
        participants = atoms_at[level]
        if not participants:
            raise RuntimeError(
                f"variable {order[level]!r} is not covered by any atom"
            )
        views = [nodes[i] for i in participants]
        if not all(views):
            return
        smallest = min(views, key=len)
        for value in smallest:
            if any(view is not smallest and value not in view for view in views):
                continue
            visited += 1
            binding[level] = value
            saved = [nodes[i] for i in participants]
            for i in participants:
                child = nodes[i][value]
                nodes[i] = child if child is not None else _SATISFIED
            descend(level + 1)
            for i, prior in zip(participants, saved):
                nodes[i] = prior
        binding[level] = None

    descend(0)
    out_positions = [order.index(v) for v in query.variables]
    output = Relation(
        query.variables,
        (tuple(row[i] for i in out_positions) for row in results),
        name=query.name,
    )
    return JoinRun(output=output, nodes_visited=visited)


def count_query(
    query: ConjunctiveQuery,
    db: Database,
    order: Sequence[str] | None = None,
) -> int:
    """True output cardinality |Q(D)| via the WCOJ evaluator."""
    return generic_join(query, db, order=order).count
