"""A generic worst-case-optimal join (variable elimination with tries).

This is the library's general-purpose evaluator: a backtracking search in
a global variable order, intersecting per-atom tries at each level — the
scheme of Generic Join / Leapfrog Triejoin [24, 25].  Its search-tree size
is bounded by the AGM bound of the query, and on the degree-uniform parts
produced by :mod:`repro.evaluation.partitioning` it meets the per-part
{1,∞} product bounds required by Lemma 2.4.

Two implementations share the same search tree:

* :func:`generic_join_tuples` — the original recursive descent over
  nested-dict tries, one binding at a time.  Works for arbitrary hashable
  values and is the correctness oracle of the equivalence test-suite.
* a vectorized engine over :class:`~repro.relational.columnar.CodeTrie`
  sorted-codes tries: every atom's rows are re-encoded into one global
  dictionary per variable, sorted lexicographically in the global
  variable order, and the search proceeds level-by-level on a whole
  *frontier* of partial bindings at once — children of the seed atom are
  expanded in one gather and intersected against the other participating
  atoms with batched ``searchsorted`` membership tests.

:func:`generic_join` dispatches to the vectorized engine whenever every
atom's relation dictionary-encodes, falling back otherwise.  Both engines
enumerate exactly the set of bindings that pass every participating
atom's trie, so the *metered* search-tree size (number of variable
bindings tried) is identical — which is what
:mod:`repro.experiments.evaluation_runtime` compares against the ℓp bound
per Theorem 2.6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..query.query import Atom, ConjunctiveQuery
from ..relational import Database, Relation
from ..relational.columnar import CodeTrie, ColumnarRelation, remap_codes
from .joins import _atom_table

__all__ = ["generic_join", "generic_join_tuples", "count_query", "JoinRun"]


@dataclass
class JoinRun:
    """Result of a metered WCOJ run."""

    output: Relation
    nodes_visited: int

    @property
    def count(self) -> int:
        return len(self.output)


class _Satisfied(dict):
    """Sentinel node for an atom whose variables are all already bound.

    Such an atom imposes no further constraints; the sentinel is never
    consulted again because the atom participates in no later level.
    """


_SATISFIED = _Satisfied()


def _build_trie(
    atom: Atom, db: Database, order_index: dict[str, int]
) -> tuple[list[str], dict]:
    """Nested-dict trie of an atom's rows, levels in global variable order.

    The deepest level maps the last variable's value to ``None``.
    Repeated variables in the atom become equality filters.
    """
    relation = db[atom.relation]
    positions: dict[str, int] = {}
    for position, var in enumerate(atom.variables):
        positions.setdefault(var, position)
    repeated: dict[str, list[int]] = {}
    for position, var in enumerate(atom.variables):
        repeated.setdefault(var, []).append(position)
    checks = [ps for ps in repeated.values() if len(ps) > 1]
    ordered_vars = sorted(positions, key=lambda v: order_index[v])
    root: dict = {}
    for row in relation:
        if checks and not all(len({row[i] for i in ps}) == 1 for ps in checks):
            continue
        node = root
        for var in ordered_vars[:-1]:
            node = node.setdefault(row[positions[var]], {})
        node.setdefault(row[positions[ordered_vars[-1]]], None)
    return ordered_vars, root


def _default_order(query: ConjunctiveQuery) -> tuple[str, ...]:
    """Most-shared-first variable order, ties by first appearance."""
    counts: dict[str, int] = {}
    for atom in query.atoms:
        for v in atom.variable_set:
            counts[v] = counts.get(v, 0) + 1
    appearance = {v: i for i, v in enumerate(query.variables)}
    return tuple(
        sorted(query.variables, key=lambda v: (-counts[v], appearance[v]))
    )


def _resolve_order(
    query: ConjunctiveQuery, order: Sequence[str] | None
) -> tuple[str, ...]:
    order = tuple(order) if order is not None else _default_order(query)
    if set(order) != set(query.variables):
        raise ValueError(
            f"order {order} must be a permutation of {query.variables}"
        )
    return order


def generic_join(
    query: ConjunctiveQuery,
    db: Database,
    order: Sequence[str] | None = None,
) -> JoinRun:
    """Evaluate a full conjunctive query worst-case optimally.

    Parameters
    ----------
    order:
        Global variable order; defaults to a most-shared-first heuristic.

    Returns
    -------
    A :class:`JoinRun` with the output relation (attributes in the query's
    variable order) and the metered search-tree size.  Integer-valued
    databases run through the vectorized sorted-codes engine; anything
    else falls back to :func:`generic_join_tuples`.  Output rows (as a
    set) and the meter are identical either way.
    """
    order = _resolve_order(query, order)
    run = _generic_join_columnar(query, db, order)
    if run is not None:
        return run
    return generic_join_tuples(query, db, order)


def generic_join_tuples(
    query: ConjunctiveQuery,
    db: Database,
    order: Sequence[str] | None = None,
) -> JoinRun:
    """The tuple-at-a-time Generic Join over nested-dict tries.

    The original evaluator, kept as the correctness (and meter) oracle
    and as the fallback for relations holding non-integer values.
    """
    order = _resolve_order(query, order)
    order_index = {v: i for i, v in enumerate(order)}
    tries = [_build_trie(atom, db, order_index) for atom in query.atoms]
    atoms_at: list[list[int]] = [[] for _ in order]
    for atom_idx, (ordered_vars, _) in enumerate(tries):
        for var in ordered_vars:
            atoms_at[order_index[var]].append(atom_idx)

    n = len(order)
    binding: list = [None] * n
    results: list[tuple] = []
    nodes: list[dict] = [trie for _, trie in tries]
    visited = 0

    def descend(level: int) -> None:
        nonlocal visited
        if level == n:
            results.append(tuple(binding))
            return
        participants = atoms_at[level]
        if not participants:
            raise RuntimeError(
                f"variable {order[level]!r} is not covered by any atom"
            )
        views = [nodes[i] for i in participants]
        if not all(views):
            return
        smallest = min(views, key=len)
        for value in smallest:
            if any(view is not smallest and value not in view for view in views):
                continue
            visited += 1
            binding[level] = value
            saved = [nodes[i] for i in participants]
            for i in participants:
                child = nodes[i][value]
                nodes[i] = child if child is not None else _SATISFIED
            descend(level + 1)
            for i, prior in zip(participants, saved):
                nodes[i] = prior
        binding[level] = None

    descend(0)
    out_positions = [order.index(v) for v in query.variables]
    output = Relation(
        query.variables,
        (tuple(row[i] for i in out_positions) for row in results),
        name=query.name,
    )
    return JoinRun(output=output, nodes_visited=visited)


def _generic_join_columnar(
    query: ConjunctiveQuery, db: Database, order: tuple[str, ...]
) -> JoinRun | None:
    """The batched sorted-codes engine; ``None`` means fall back.

    The frontier is a batch of partial bindings, one int64 code column
    per bound variable.  At each level the participating atom with the
    fewest trie children *seeds* candidate values (expanded in one
    gather), the other participants filter them with batched membership
    tests, and the surviving (binding, value) pairs become the next
    frontier — whole-batch expansion instead of per-binding recursion,
    with the visited count unchanged because both engines enumerate
    exactly the intersection at every node.

    Each atom's trie lives in its own relation's code space (so tries are
    cacheable per relation and column order); candidate codes cross atom
    boundaries through :func:`remap_codes` over the small per-column
    dictionaries, with values absent from the target dictionary mapping
    to −1 and failing membership.
    """
    order_index = {v: i for i, v in enumerate(order)}
    tables = [_atom_table(atom, db) for atom in query.atoms]
    if any(t is None for t in tables):
        return None

    tries: list[CodeTrie] = []
    dict_of: list[list[np.ndarray]] = []  # per atom, per depth: column dict
    ordered_vars_of: list[tuple[str, ...]] = []
    for atom, table in zip(query.atoms, tables):
        position = {v: i for i, v in enumerate(table.vars)}
        ordered = tuple(sorted(table.vars, key=lambda v: order_index[v]))
        try:
            if len(set(atom.variables)) == len(atom.variables):
                # table columns alias the relation twin: use its trie cache
                relation = db[atom.relation]
                attr_of = dict(zip(atom.variables, relation.attributes))
                trie = relation.columnar().trie(
                    tuple(attr_of[v] for v in ordered)
                )
            else:
                trie = CodeTrie(
                    [table.codes[position[v]] for v in ordered],
                    [len(table.dicts[position[v]]) for v in ordered],
                )
        except OverflowError:  # pragma: no cover - astronomically wide
            return None
        tries.append(trie)
        dict_of.append([table.dicts[position[v]] for v in ordered])
        ordered_vars_of.append(ordered)

    # participants per level, each with its local trie depth
    atoms_at: list[list[tuple[int, int]]] = [[] for _ in order]
    last_level = [0] * len(tables)
    for atom_idx, ordered in enumerate(ordered_vars_of):
        for depth, var in enumerate(ordered):
            atoms_at[order_index[var]].append((atom_idx, depth))
            last_level[atom_idx] = order_index[var]

    n = len(order)
    n_front = 1
    atom_node = [np.zeros(1, dtype=np.int64) for _ in tables]
    binding_cols: list[np.ndarray] = []
    level_dicts: list[np.ndarray] = []  # decode dictionary per level
    visited = 0

    for level in range(n):
        participants = atoms_at[level]
        if not participants:
            raise RuntimeError(
                f"variable {order[level]!r} is not covered by any atom"
            )
        # per-binding seed choice: the participant with the fewest trie
        # children at this node — the vectorized analogue of the tuple
        # engine's min(views, key=len), which keeps the expanded batch at
        # Σ_b min_i deg_i(b) instead of min_i Σ_b deg_i(b).
        ranges = [
            tries[i].children_ranges(d, atom_node[i]) for i, d in participants
        ]
        canon_idx, canon_depth = participants[0]
        canon_dict = dict_of[canon_idx][canon_depth]
        if len(participants) == 1:
            groups = [np.arange(n_front)]
        else:
            counts_matrix = np.stack([counts for _, counts in ranges])
            seed_choice = np.argmin(counts_matrix, axis=0)
            groups = [
                np.nonzero(seed_choice == s)[0]
                for s in range(len(participants))
            ]
        parent_segments: list[np.ndarray] = []
        code_segments: list[np.ndarray] = []
        node_segments: dict[int, list[np.ndarray]] = {
            i: [] for i, _ in participants
        }
        for s, (seed_idx, seed_depth) in enumerate(participants):
            selected = groups[s]
            if len(selected) == 0:
                continue
            seed_dict = dict_of[seed_idx][seed_depth]
            first, counts = ranges[s]
            if len(selected) == n_front:
                sub_nodes, sub_ranges = atom_node[seed_idx], (first, counts)
            else:
                sub_nodes = atom_node[seed_idx][selected]
                sub_ranges = (first[selected], counts[selected])
            local_parent, seed_children, candidates = tries[
                seed_idx
            ].expand_children(seed_depth, sub_nodes, ranges=sub_ranges)
            parent = selected[local_parent]
            new_nodes = {seed_idx: seed_children}
            keep = None
            for atom_idx, depth in participants:
                if atom_idx == seed_idx:
                    continue
                own_dict = dict_of[atom_idx][depth]
                if own_dict is seed_dict:
                    aligned = candidates
                else:
                    aligned = remap_codes(candidates, seed_dict, own_dict)
                found, children = tries[atom_idx].find_children(
                    depth, atom_node[atom_idx][parent], aligned
                )
                if aligned is not candidates:
                    found &= aligned >= 0
                new_nodes[atom_idx] = children
                keep = found if keep is None else keep & found
            if keep is not None and not keep.all():
                chosen = np.nonzero(keep)[0]
                parent = parent[chosen]
                candidates = candidates[chosen]
                new_nodes = {i: ids[chosen] for i, ids in new_nodes.items()}
            if len(candidates) == 0:
                continue
            if seed_dict is not canon_dict:
                # survivors exist in every participant, so the canonical
                # participant's dictionary contains them: remap is lossless
                candidates = remap_codes(candidates, seed_dict, canon_dict)
            parent_segments.append(parent)
            code_segments.append(candidates)
            for atom_idx, ids in new_nodes.items():
                node_segments[atom_idx].append(ids)
        if not parent_segments:
            output = Relation(query.variables, [], name=query.name)
            return JoinRun(output=output, nodes_visited=visited)
        parent = np.concatenate(parent_segments)
        candidates = np.concatenate(code_segments)
        visited += len(candidates)
        binding_cols = [c[parent] for c in binding_cols]
        binding_cols.append(candidates)
        level_dicts.append(canon_dict)
        for atom_idx in range(len(tables)):
            if atom_idx in node_segments:
                atom_node[atom_idx] = np.concatenate(node_segments[atom_idx])
            elif last_level[atom_idx] > level:
                atom_node[atom_idx] = atom_node[atom_idx][parent]
        n_front = len(candidates)

    columnar = ColumnarRelation(
        query.variables,
        {v: binding_cols[order_index[v]] for v in query.variables},
        {v: level_dicts[order_index[v]] for v in query.variables},
        n_front,
    )
    output = Relation._from_columnar(columnar, name=query.name)
    return JoinRun(output=output, nodes_visited=visited)


def count_query(
    query: ConjunctiveQuery,
    db: Database,
    order: Sequence[str] | None = None,
) -> int:
    """True output cardinality |Q(D)| via the WCOJ evaluator."""
    return generic_join(query, db, order=order).count
