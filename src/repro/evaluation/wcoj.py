"""A generic worst-case-optimal join (variable elimination with tries).

This is the library's general-purpose evaluator: a backtracking search in
a global variable order, intersecting per-atom tries at each level — the
scheme of Generic Join / Leapfrog Triejoin [24, 25].  Its search-tree size
is bounded by the AGM bound of the query, and on the degree-uniform parts
produced by :mod:`repro.evaluation.partitioning` it meets the per-part
{1,∞} product bounds required by Lemma 2.4.

Two implementations share the same search tree:

* :func:`generic_join_tuples` — the original recursive descent over
  nested-dict tries, one binding at a time.  Works for arbitrary hashable
  values and is the correctness oracle of the equivalence test-suite.
* a vectorized engine over :class:`~repro.relational.columnar.CodeTrie`
  sorted-codes tries: every atom's rows are re-encoded into one global
  dictionary per variable, sorted lexicographically in the global
  variable order, and the search proceeds on *blocks* of partial
  bindings — children of each binding's seed atom are expanded in one
  gather and intersected against the other participating atoms with
  batched ``searchsorted`` membership tests.

The vectorized engine is a depth-first traversal over frontier blocks.
With ``frontier_block=None`` each level's whole frontier is one block,
recovering the level-synchronous breadth-first expansion (peak live
memory proportional to the widest frontier).  With ``frontier_block=N``
the flattened child space of every block is enumerated in slices of at
most ``N`` candidates (:meth:`CodeTrie.children_at`), each surviving
sub-block descends all the way before the next slice is touched, and
finished bindings stream into a
:class:`~repro.relational.columnar.ChunkedColumns` accumulator — peak
live memory beyond the output drops to O(block × depth).  Blocks are
slices of one fixed parent-major candidate order, so output rows, their
order, and the meter are bit-identical for every block size.

The *output* side is pluggable too: both engines emit finished bindings
into an :class:`~repro.relational.columnar.OutputSink` — counting
(:class:`~repro.relational.columnar.CountSink`), aggregating
(:class:`~repro.relational.columnar.GroupCountSink`), or spilling to
disk (:class:`~repro.relational.columnar.SpillSink`) — so workloads
whose outputs are themselves huge never hold |Q(D)| rows in RAM.  The
default (``sink=None``) materializes through the internal code-space
accumulator exactly as before; every sink sees the same rows in the
same order with the same meter.

:func:`generic_join` dispatches to the vectorized engine whenever every
atom's relation dictionary-encodes, falling back otherwise.  Both engines
enumerate exactly the set of bindings that pass every participating
atom's trie, so the *metered* search-tree size (number of variable
bindings tried) is identical — which is what
:mod:`repro.experiments.evaluation_runtime` compares against the ℓp bound
per Theorem 2.6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..query.query import Atom, ConjunctiveQuery
from ..relational import Database, Relation
from ..relational import kernels
from ..relational.columnar import (
    ChunkedColumns,
    CodeTrie,
    ColumnarRelation,
    CountSink,
    OutputSink,
    dict_mapping,
)
from .joins import _atom_table

__all__ = ["generic_join", "generic_join_tuples", "count_query", "JoinRun"]

#: Finished bindings per batch the tuple fallback hands to a sink.
_TUPLE_SINK_BATCH = 1024


@dataclass
class JoinRun:
    """Result of a metered WCOJ run.

    ``output`` is the materialized relation when the run used the default
    materializing path, and ``None`` when the rows were routed into an
    explicit :class:`~repro.relational.columnar.OutputSink` (held in
    ``sink``; its accessors expose the result).
    """

    output: Relation | None
    nodes_visited: int
    sink: OutputSink | None = None

    @property
    def count(self) -> int:
        if self.output is not None:
            return len(self.output)
        if self.sink is not None:
            return self.sink.n_rows
        return 0


class _Satisfied(dict):
    """Sentinel node for an atom whose variables are all already bound.

    Such an atom imposes no further constraints; the sentinel is never
    consulted again because the atom participates in no later level.
    """


_SATISFIED = _Satisfied()


def _build_trie(
    atom: Atom, db: Database, order_index: dict[str, int]
) -> tuple[list[str], dict]:
    """Nested-dict trie of an atom's rows, levels in global variable order.

    The deepest level maps the last variable's value to ``None``.
    Repeated variables in the atom become equality filters.
    """
    relation = db[atom.relation]
    positions: dict[str, int] = {}
    for position, var in enumerate(atom.variables):
        positions.setdefault(var, position)
    repeated: dict[str, list[int]] = {}
    for position, var in enumerate(atom.variables):
        repeated.setdefault(var, []).append(position)
    checks = [ps for ps in repeated.values() if len(ps) > 1]
    ordered_vars = sorted(positions, key=lambda v: order_index[v])
    root: dict = {}
    for row in relation:
        if checks and not all(len({row[i] for i in ps}) == 1 for ps in checks):
            continue
        node = root
        for var in ordered_vars[:-1]:
            node = node.setdefault(row[positions[var]], {})
        node.setdefault(row[positions[ordered_vars[-1]]], None)
    return ordered_vars, root


def _default_order(query: ConjunctiveQuery) -> tuple[str, ...]:
    """Most-shared-first variable order, ties by first appearance."""
    counts: dict[str, int] = {}
    for atom in query.atoms:
        for v in atom.variable_set:
            counts[v] = counts.get(v, 0) + 1
    appearance = {v: i for i, v in enumerate(query.variables)}
    return tuple(
        sorted(query.variables, key=lambda v: (-counts[v], appearance[v]))
    )


def _resolve_order(
    query: ConjunctiveQuery, order: Sequence[str] | None
) -> tuple[str, ...]:
    order = tuple(order) if order is not None else _default_order(query)
    if set(order) != set(query.variables):
        raise ValueError(
            f"order {order} must be a permutation of {query.variables}"
        )
    return order


def generic_join(
    query: ConjunctiveQuery,
    db: Database,
    order: Sequence[str] | None = None,
    frontier_block: int | None = None,
    sink: OutputSink | None = None,
    governor=None,
) -> JoinRun:
    """Evaluate a full conjunctive query worst-case optimally.

    Parameters
    ----------
    order:
        Global variable order; defaults to a most-shared-first heuristic.
    frontier_block:
        Maximum number of candidate bindings the vectorized engine holds
        live per search level.  ``None`` expands each level's whole
        frontier at once (fastest, peak memory proportional to the widest
        intermediate frontier); a positive block streams the search in
        O(block × depth) live memory — output rows, their order, and the
        meter are bit-identical for every setting.  The tuple fallback is
        one-binding-at-a-time and ignores the parameter.
    sink:
        Where finished bindings go.  ``None`` (default) materializes the
        output relation; an explicit
        :class:`~repro.relational.columnar.OutputSink` receives the same
        rows in the same order as decoded value-column batches (the
        tuple fallback emits row batches) and ``JoinRun.output`` is
        ``None`` — counts, row order, and the meter are bit-identical to
        the materialized run for every sink and block size.
    governor:
        An optional
        :class:`~repro.evaluation.governor.EvaluationGovernor`.  The
        engine calls ``governor.checkpoint()`` at every block boundary
        and re-reads ``governor.effective_block`` there, so watermark
        degradation (block halving, sink escalation) lands at the next
        slice; governed output is bit-identical to ungoverned.

    Returns
    -------
    A :class:`JoinRun` with the output relation (attributes in the query's
    variable order) and the metered search-tree size.  Integer-valued
    databases run through the vectorized sorted-codes engine; anything
    else falls back to :func:`generic_join_tuples`.  Output rows (as a
    set) and the meter are identical either way.
    """
    if frontier_block is not None and frontier_block < 1:
        raise ValueError(f"frontier_block must be ≥ 1, got {frontier_block}")
    order = _resolve_order(query, order)
    if sink is not None:
        sink.open(query.variables)
    if governor is not None:
        governor.register_sink(sink)
        # record the requested block before the first checkpoint, so a
        # soft-watermark ladder step halves from the caller's setting
        governor.effective_block(frontier_block)
        governor.checkpoint()
    run = _generic_join_columnar(
        query, db, order, frontier_block, sink, governor
    )
    if run is not None:
        return run
    return generic_join_tuples(query, db, order, sink=sink, governor=governor)


def generic_join_tuples(
    query: ConjunctiveQuery,
    db: Database,
    order: Sequence[str] | None = None,
    sink: OutputSink | None = None,
    governor=None,
) -> JoinRun:
    """The tuple-at-a-time Generic Join over nested-dict tries.

    The original evaluator, kept as the correctness (and meter) oracle
    and as the fallback for relations holding non-integer values.  With
    an explicit ``sink``, finished bindings stream out in batches of
    :data:`_TUPLE_SINK_BATCH` rows instead of being collected.
    """
    order = _resolve_order(query, order)
    order_index = {v: i for i, v in enumerate(order)}
    tries = [_build_trie(atom, db, order_index) for atom in query.atoms]
    atoms_at: list[list[int]] = [[] for _ in order]
    for atom_idx, (ordered_vars, _) in enumerate(tries):
        for var in ordered_vars:
            atoms_at[order_index[var]].append(atom_idx)

    n = len(order)
    binding: list = [None] * n
    results: list[tuple] = []
    out_positions = [order.index(v) for v in query.variables]
    buffer: list[tuple] = []
    if sink is not None:
        sink.open(query.variables)
    nodes: list[dict] = [trie for _, trie in tries]
    visited = 0
    if governor is not None:
        governor.register_output(
            (lambda: sink.n_rows) if sink is not None else lambda: len(results)
        )
    # the tuple engine has no block boundaries; checkpoint cooperatively
    # every _TUPLE_SINK_BATCH visited nodes instead
    next_check = _TUPLE_SINK_BATCH

    def emit() -> None:
        if sink is None:
            results.append(tuple(binding))
            return
        if not sink.needs_values:
            sink.append_size(1)
            return
        buffer.append(tuple(binding[i] for i in out_positions))
        if len(buffer) >= _TUPLE_SINK_BATCH:
            sink.append_rows(buffer)
            buffer.clear()

    def descend(level: int) -> None:
        nonlocal visited, next_check
        if level == n:
            emit()
            return
        if governor is not None and visited >= next_check:
            next_check = visited + _TUPLE_SINK_BATCH
            governor.checkpoint(nodes_visited=visited)
        participants = atoms_at[level]
        if not participants:
            raise RuntimeError(
                f"variable {order[level]!r} is not covered by any atom"
            )
        views = [nodes[i] for i in participants]
        if not all(views):
            return
        smallest = min(views, key=len)
        for value in smallest:
            if any(view is not smallest and value not in view for view in views):
                continue
            visited += 1
            binding[level] = value
            saved = [nodes[i] for i in participants]
            for i in participants:
                child = nodes[i][value]
                nodes[i] = child if child is not None else _SATISFIED
            descend(level + 1)
            for i, prior in zip(participants, saved):
                nodes[i] = prior
        binding[level] = None

    descend(0)
    if sink is not None:
        if buffer:
            sink.append_rows(buffer)
        return JoinRun(output=None, nodes_visited=visited, sink=sink)
    output = Relation(
        query.variables,
        (tuple(row[i] for i in out_positions) for row in results),
        name=query.name,
    )
    return JoinRun(output=output, nodes_visited=visited)


def _generic_join_columnar(
    query: ConjunctiveQuery,
    db: Database,
    order: tuple[str, ...],
    frontier_block: int | None = None,
    sink: OutputSink | None = None,
    governor=None,
) -> JoinRun | None:
    """The blocked sorted-codes engine; ``None`` means fall back.

    A frontier block is a batch of partial bindings, one int64 code
    column per bound variable.  At each level the participating atom with
    the fewest trie children *seeds* each binding's candidate values, the
    other participants filter them with batched membership tests, and the
    surviving (binding, value) pairs form the next block — whole-block
    expansion instead of per-binding recursion, with the visited count
    unchanged because both engines enumerate exactly the intersection at
    every node.

    Candidates are enumerated in one fixed *parent-major* order: the
    flattened (binding, seed-child) space, bindings in frontier order,
    each binding's children ascending in its seed trie.  The traversal is
    depth-first over slices of that space — ``frontier_block=None`` takes
    each level's whole space as a single slice (breadth-first expansion,
    peak memory proportional to the widest frontier), a finite block
    caps every live slice at ``frontier_block`` candidates and descends
    each surviving sub-block to the bottom before touching the next
    slice, streaming finished bindings into a :class:`ChunkedColumns`
    accumulator.  Because the candidate order is block-independent and
    survival of a candidate depends only on its own binding, output rows,
    their order, and the meter are bit-identical for every block size.

    Each atom's trie lives in its own relation's code space (so tries are
    cacheable per relation and column order); candidate codes cross atom
    boundaries through :func:`dict_mapping` translation tables built once
    at setup over the small per-column dictionaries, with values absent
    from the target dictionary mapping to −1 and failing membership.
    """
    order_index = {v: i for i, v in enumerate(order)}
    tables = [_atom_table(atom, db) for atom in query.atoms]
    if any(t is None for t in tables):
        return None

    tries: list[CodeTrie] = []
    dict_of: list[list[np.ndarray]] = []  # per atom, per depth: column dict
    ordered_vars_of: list[tuple[str, ...]] = []
    for atom, table in zip(query.atoms, tables):
        position = {v: i for i, v in enumerate(table.vars)}
        ordered = tuple(sorted(table.vars, key=lambda v: order_index[v]))
        try:
            if len(set(atom.variables)) == len(atom.variables):
                # table columns alias the relation twin: use its trie cache
                relation = db[atom.relation]
                attr_of = dict(zip(atom.variables, relation.attributes))
                trie = relation.columnar().trie(
                    tuple(attr_of[v] for v in ordered)
                )
            else:
                trie = CodeTrie(
                    [table.codes[position[v]] for v in ordered],
                    [len(table.dicts[position[v]]) for v in ordered],
                )
        except OverflowError:  # pragma: no cover - astronomically wide
            return None
        tries.append(trie)
        dict_of.append([table.dicts[position[v]] for v in ordered])
        ordered_vars_of.append(ordered)

    # participants per level, each with its local trie depth
    atoms_at: list[list[tuple[int, int]]] = [[] for _ in order]
    last_level = [0] * len(tables)
    for atom_idx, ordered in enumerate(ordered_vars_of):
        for depth, var in enumerate(ordered):
            atoms_at[order_index[var]].append((atom_idx, depth))
            last_level[atom_idx] = order_index[var]

    n = len(order)
    n_atoms = len(tables)
    # decode dictionary per level: the first participant's (the canonical
    # code space candidates are expressed in).  Uncovered levels raise at
    # runtime iff a non-empty frontier actually reaches them (matching
    # the tuple engine, which also only raises on a live branch).
    canon_of: list[np.ndarray | None] = []
    for level_parts in atoms_at:
        if level_parts:
            canon_idx, canon_depth = level_parts[0]
            canon_of.append(dict_of[canon_idx][canon_depth])
        else:
            canon_of.append(None)

    # per level, per seed participant: the seed→other code-translation
    # tables the membership filter consumes (None ⇒ shared dictionary,
    # codes pass through) and the seed→canonical table for survivors.
    # Hoisted to setup: the blocked traversal re-enters expand_slice once
    # per slice, and rebuilding these per slice is pure repeated work —
    # the tables depend only on the (level, seed, other) dictionaries.
    member_maps: list[list[list[np.ndarray | None]]] = []
    canon_maps: list[list[np.ndarray | None]] = []
    for level, level_parts in enumerate(atoms_at):
        canon_dict = canon_of[level]
        per_seed_members: list[list[np.ndarray | None]] = []
        per_seed_canon: list[np.ndarray | None] = []
        for seed_idx, seed_depth in level_parts:
            seed_dict = dict_of[seed_idx][seed_depth]
            per_seed_members.append(
                [
                    None
                    if dict_of[atom_idx][depth] is seed_dict
                    else dict_mapping(seed_dict, dict_of[atom_idx][depth])
                    for atom_idx, depth in level_parts
                ]
            )
            per_seed_canon.append(
                None
                if seed_dict is canon_dict
                else dict_mapping(seed_dict, canon_dict)
            )
        member_maps.append(per_seed_members)
        canon_maps.append(per_seed_canon)

    if sink is None:
        acc = ChunkedColumns(n)
        emit = acc.append
    elif not sink.needs_values:

        def emit(binding_cols):
            sink.append_size(len(binding_cols[0]) if binding_cols else 1)

    else:
        # decode each finished batch into value columns (query head
        # order) before handing it to the sink: one O(batch) gather per
        # column, so count/spill runs never hold codes or values beyond
        # the batch.  A level's canonical dictionary exists whenever a
        # row was emitted (an uncovered level raises before emitting).
        out_levels = [order_index[v] for v in query.variables]

        def emit(binding_cols):
            if binding_cols:
                sink.append(
                    [canon_of[i][binding_cols[i]] for i in out_levels]
                )
            else:
                # a zero-variable query joins to the single empty binding
                sink.append_rows([()])

    visited = 0
    if governor is not None:
        if sink is not None:
            governor.register_output(lambda: sink.n_rows)
        else:
            governor.register_output(lambda: acc.n_rows)

    def expand(level, n_front, atom_node, binding_cols):
        """Yield the surviving sub-blocks of one frontier block, in order."""
        nonlocal visited
        participants = atoms_at[level]
        if not participants:
            raise RuntimeError(
                f"variable {order[level]!r} is not covered by any atom"
            )
        # per-binding seed choice: the participant with the fewest trie
        # children at this node — the vectorized analogue of the tuple
        # engine's min(views, key=len), which keeps the expanded space at
        # Σ_b min_i deg_i(b) instead of min_i Σ_b deg_i(b).
        ranges = [
            tries[i].children_ranges(d, atom_node[i]) for i, d in participants
        ]
        if len(participants) == 1:
            seed_choice = None
            seed_counts = ranges[0][1]
        else:
            counts_matrix = np.stack([counts for _, counts in ranges])
            seed_choice = np.argmin(counts_matrix, axis=0)
            seed_counts = np.min(counts_matrix, axis=0)
        ends = np.cumsum(seed_counts)
        total = int(ends[-1]) if n_front else 0
        if total == 0:
            return
        flat_starts = ends - seed_counts
        # node ids are only carried for atoms still constraining deeper
        # levels; a participant whose last level is this one is done.
        carried = [i for i, _ in participants if last_level[i] > level]
        if governor is None:
            block = frontier_block
        else:
            block = governor.effective_block(frontier_block)
        chunk = total if block is None else block

        def expand_slice(lo, hi):
            """One candidate slice: ``(width, sub_nodes, new_cols)`` or
            ``None`` when every candidate dies.

            A plain function, not inlined in the generator loop: its
            frame (and with it every O(slice) scratch array) dies on
            return, so nothing but the surviving sub-block stays alive
            while deeper levels run under the suspended generator.
            """
            nonlocal visited
            if lo == 0 and hi == total:
                # whole-space slice: O(total) repeat beats searchsorted
                parent_of = np.repeat(np.arange(n_front), seed_counts)
                offsets = np.arange(total) - np.repeat(
                    flat_starts, seed_counts
                )
            else:
                parent_of, offsets = kernels.slice_parents(
                    ends, flat_starts, lo, hi
                )
            m = hi - lo
            candidates = np.empty(m, dtype=np.int64)
            keep = np.ones(m, dtype=bool)
            chunk_nodes = {i: np.empty(m, dtype=np.int64) for i in carried}
            for s, (seed_idx, seed_depth) in enumerate(participants):
                if seed_choice is None:
                    sel = slice(None)
                    sel_parents, sel_offsets = parent_of, offsets
                else:
                    sel = np.nonzero(seed_choice[parent_of] == s)[0]
                    if len(sel) == 0:
                        continue
                    sel_parents, sel_offsets = parent_of[sel], offsets[sel]
                first, _ = ranges[s]
                children, codes = tries[seed_idx].children_at(
                    seed_depth,
                    atom_node[seed_idx][sel_parents],
                    first[sel_parents],
                    sel_offsets,
                )
                if seed_idx in chunk_nodes:
                    chunk_nodes[seed_idx][sel] = children
                keep_s = None
                seed_members = member_maps[level][s]
                for t, (atom_idx, depth) in enumerate(participants):
                    if atom_idx == seed_idx:
                        continue
                    # the translation table re-expresses the seed's codes
                    # in this atom's code space inside the membership
                    # kernel (−1 ⇒ absent from its dictionary ⇒ fail)
                    found, others = tries[atom_idx].find_children(
                        depth,
                        atom_node[atom_idx][sel_parents],
                        codes,
                        mapping=seed_members[t],
                    )
                    if atom_idx in chunk_nodes:
                        chunk_nodes[atom_idx][sel] = others
                    keep_s = found if keep_s is None else keep_s & found
                canon_map = canon_maps[level][s]
                if canon_map is not None:
                    # survivors pass membership in the canonical
                    # participant, whose dictionary therefore contains
                    # them (lossless); non-survivors map to −1 but are
                    # dropped by ``keep`` anyway.
                    codes = canon_map[codes]
                candidates[sel] = codes
                if keep_s is not None:
                    keep[sel] = keep_s
            if keep.all():
                chosen = None
                sub_parent, sub_cand = parent_of, candidates
            else:
                chosen = np.nonzero(keep)[0]
                if len(chosen) == 0:
                    return None
                sub_parent, sub_cand = parent_of[chosen], candidates[chosen]
            visited += len(sub_cand)
            sub_nodes = []
            for atom_idx in range(n_atoms):
                if atom_idx in chunk_nodes:
                    ids = chunk_nodes[atom_idx]
                    sub_nodes.append(ids if chosen is None else ids[chosen])
                elif (
                    last_level[atom_idx] > level
                    and atom_node[atom_idx] is not None
                ):
                    sub_nodes.append(atom_node[atom_idx][sub_parent])
                else:
                    sub_nodes.append(None)
            new_cols = [c[sub_parent] for c in binding_cols]
            new_cols.append(sub_cand)
            return len(sub_cand), sub_nodes, new_cols

        lo = 0
        while lo < total:
            if governor is not None:
                # block boundary: one cheap probe, and the effective
                # block is re-read so a ladder halving (or a raise)
                # takes hold at this very slice
                governor.checkpoint(nodes_visited=visited)
                block = governor.effective_block(frontier_block)
                chunk = total if block is None else block
            hi = min(lo + chunk, total)
            result = expand_slice(lo, hi)
            if hi >= total:
                # last slice: this level's range/frontier state is dead.
                # Release it before descending, or the suspended frame
                # would pin O(n_front) arrays for the rest of the subtree
                # (the whole-frontier path would regress ~1.5× in peak).
                del ranges, seed_choice, seed_counts, ends, flat_starts
                del atom_node, binding_cols
            if result is not None:
                yield result
            lo = hi

    def descend(level, n_front, atom_node, binding_cols):
        if level == n:
            emit(binding_cols)
            return
        blocks = expand(level, n_front, atom_node, binding_cols)
        del atom_node, binding_cols  # the generator owns them now
        for width, sub_nodes, sub_cols in blocks:
            descend(level + 1, width, sub_nodes, sub_cols)

    descend(0, 1, [np.zeros(1, dtype=np.int64) for _ in tables], [])

    if sink is not None:
        return JoinRun(output=None, nodes_visited=visited, sink=sink)

    if acc.n_rows == 0:
        if n == 0:
            # a query with no variables joins to the single empty binding
            columnar = ColumnarRelation((), {}, {}, 1)
            output = Relation._from_columnar(columnar, name=query.name)
            return JoinRun(output=output, nodes_visited=visited)
        output = Relation(query.variables, [], name=query.name)
        return JoinRun(output=output, nodes_visited=visited)

    columns = acc.finalize()
    columnar = ColumnarRelation(
        query.variables,
        {v: columns[order_index[v]] for v in query.variables},
        {v: canon_of[order_index[v]] for v in query.variables},
        acc.n_rows,
    )
    output = Relation._from_columnar(columnar, name=query.name)
    return JoinRun(output=output, nodes_visited=visited)


def count_query(
    query: ConjunctiveQuery,
    db: Database,
    order: Sequence[str] | None = None,
    frontier_block: int | None = None,
) -> int:
    """True output cardinality |Q(D)| via the WCOJ evaluator.

    Runs through a :class:`~repro.relational.columnar.CountSink`, so the
    output is counted without ever being materialized — combined with a
    ``frontier_block`` the whole run is bounded-memory.
    """
    return generic_join(
        query, db, order=order, frontier_block=frontier_block,
        sink=CountSink(),
    ).count
