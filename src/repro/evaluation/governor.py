"""Resource governance for the evaluators: budgets, deadlines, cancel.

The evaluators already expose every lever needed to trade memory for
time without changing results — ``frontier_block`` caps the WCOJ's live
frontier, :class:`~repro.relational.columnar.SpillSink` streams output to
disk, and both are proven bit-identical to the unbounded run.  What they
lack is a component that *pulls* those levers while a query runs.  This
module adds it:

* :class:`EvaluationBudget` — a declarative, picklable resource budget:
  soft/hard memory watermarks, a wall-clock deadline, and knobs for the
  degradation ladder.
* :class:`CancellationToken` — a cooperative cancel flag the CLI's
  signal handlers (and tests) flip from outside the evaluation.
* :class:`EvaluationGovernor` — the live enforcement object.  Producers
  call :meth:`~EvaluationGovernor.checkpoint` at block boundaries (one
  cheap memory probe per frontier slice, never per row); the governor
  answers by raising, degrading, or doing nothing.
* :class:`EscalatingSink` — a sink that starts as a materializer and can
  be switched to disk spilling *mid-run*: the accumulated chunks become
  the first spilled segments, so rows and order are unchanged.

Degradation ladder
------------------
Crossing the *soft* watermark walks a deterministic ladder, one rung per
checkpoint: (1) halve the effective ``frontier_block`` (repeatedly, down
to ``min_frontier_block``), (2) escalate a registered
:class:`EscalatingSink` to disk, (3) nothing — if pressure still reaches
the *hard* cap, :exc:`MemoryBudgetExceeded` is raised with a full
:class:`GovernorSnapshot`.  Every rung reuses an invariance dimension
the test suite already proves bit-identical (any contiguous re-slicing
of the fixed candidate order, any sink), so a governed run returns
exactly the rows, order, counts, and ``nodes_visited`` of an ungoverned
one.

Deadlines and cancellation are checked cooperatively at the same
boundaries; :exc:`EvaluationDeadlineExceeded` / :exc:`EvaluationCancelled`
carry partial-progress meters so a supervisor can report (and, for the
parallel driver, resume) the interrupted run.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from dataclasses import dataclass, replace
from typing import Callable

from ..relational.columnar import ChunkedColumns, OutputSink, SpillSink

__all__ = [
    "EvaluationBudget",
    "CancellationToken",
    "GovernorSnapshot",
    "ResourceGovernanceError",
    "MemoryBudgetExceeded",
    "EvaluationDeadlineExceeded",
    "EvaluationCancelled",
    "EvaluationGovernor",
    "EscalatingSink",
    "parse_memory_size",
    "budget_from_spec",
    "default_memory_probe",
]

_UNITS = {"": 1, "K": 1 << 10, "M": 1 << 20, "G": 1 << 30}


def parse_memory_size(text: str) -> int:
    """``"64M"`` → 67108864.  Suffixes K/M/G are binary; bare = bytes."""
    cleaned = text.strip().upper().removesuffix("B")
    unit = 1
    for suffix, scale in _UNITS.items():
        if suffix and cleaned.endswith(suffix):
            cleaned, unit = cleaned[: -len(suffix)], scale
            break
    try:
        value = float(cleaned)
    except ValueError:
        raise ValueError(f"unparseable memory size {text!r}") from None
    if value <= 0:
        raise ValueError(f"memory size must be positive, got {text!r}")
    return int(value * unit)


@dataclass(frozen=True)
class EvaluationBudget:
    """A declarative resource budget for one evaluation.

    All fields are optional — an all-``None`` budget governs nothing.
    Memory watermarks are *growth over the governor's baseline probe*
    (bytes allocated by the evaluation, not absolute process RSS), so a
    budget means the same thing under tracemalloc and under /proc
    probing.  Picklable: the parallel supervisor ships per-part budgets
    to worker processes.
    """

    soft_memory_bytes: int | None = None
    hard_memory_bytes: int | None = None
    deadline_seconds: float | None = None
    #: Ladder rung 1 never halves the block below this.
    min_frontier_block: int = 64
    #: A memory-governed run with ``frontier_block=None`` is implicitly
    #: blocked at this size — otherwise the first whole-frontier slice
    #: could blow the hard cap before any checkpoint sees it.
    initial_frontier_block: int = 8192

    def __post_init__(self) -> None:
        for name in ("soft_memory_bytes", "hard_memory_bytes"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be ≥ 1, got {value}")
        if (
            self.soft_memory_bytes is not None
            and self.hard_memory_bytes is not None
            and self.soft_memory_bytes > self.hard_memory_bytes
        ):
            raise ValueError(
                f"soft watermark {self.soft_memory_bytes} exceeds hard cap "
                f"{self.hard_memory_bytes}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )
        if self.min_frontier_block < 1:
            raise ValueError(
                f"min_frontier_block must be ≥ 1, got "
                f"{self.min_frontier_block}"
            )
        if self.initial_frontier_block < self.min_frontier_block:
            raise ValueError(
                f"initial_frontier_block {self.initial_frontier_block} < "
                f"min_frontier_block {self.min_frontier_block}"
            )

    @property
    def governs_memory(self) -> bool:
        return (
            self.soft_memory_bytes is not None
            or self.hard_memory_bytes is not None
        )

    @property
    def governs_anything(self) -> bool:
        return self.governs_memory or self.deadline_seconds is not None

    def apportion(self, remaining_seconds: float | None) -> "EvaluationBudget":
        """This budget with its deadline replaced by a remaining share.

        The parallel supervisor hands each part the global deadline's
        *remaining* seconds (memory watermarks travel unchanged — every
        worker holds one part at a time, so the per-process budget is
        the per-part budget).
        """
        return replace(self, deadline_seconds=remaining_seconds)


def budget_from_spec(
    memory: str | None = None, deadline: float | None = None
) -> EvaluationBudget | None:
    """Build a budget from CLI-style specs; ``None`` if nothing given.

    ``memory`` is ``"HARD"`` or ``"SOFT:HARD"`` with K/M/G suffixes —
    a bare hard cap gets a soft watermark at half the cap, so the
    ladder always has room to act before the hard stop.
    """
    if memory is None and deadline is None:
        return None
    soft = hard = None
    if memory is not None:
        head, sep, tail = memory.partition(":")
        if sep:
            soft, hard = parse_memory_size(head), parse_memory_size(tail)
        else:
            hard = parse_memory_size(head)
            soft = hard // 2
    return EvaluationBudget(
        soft_memory_bytes=soft,
        hard_memory_bytes=hard,
        deadline_seconds=deadline,
    )


class CancellationToken:
    """A cooperative cancel flag; flip it from a signal handler or test.

    Subclasses may override :attr:`cancelled` to poll external state
    (tests use this to cancel after k parts have checkpointed).  Not
    picklable by contract — the token stays on the supervisor side; the
    workers are cancelled by killing the pool.
    """

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


@dataclass(frozen=True)
class GovernorSnapshot:
    """Where a governed evaluation stood when it raised.

    Every field is a primitive, so the snapshot pickles across the
    process boundary inside a :class:`ResourceGovernanceError`.
    """

    reason: str
    phase: str
    part_index: int | None
    nodes_visited: int
    rows_emitted: int
    elapsed_seconds: float
    memory_bytes: int
    peak_memory_bytes: int
    soft_memory_bytes: int | None
    hard_memory_bytes: int | None
    deadline_seconds: float | None
    ladder: tuple[str, ...]
    effective_frontier_block: int | None
    parts_done: int
    parts_total: int | None
    run_dir: str | None

    def describe(self) -> str:
        bits = [f"{self.reason} during {self.phase}"]
        if self.part_index is not None:
            bits.append(f"part {self.part_index}")
        if self.parts_total is not None:
            bits.append(f"{self.parts_done}/{self.parts_total} parts done")
        bits.append(f"nodes_visited={self.nodes_visited}")
        bits.append(f"rows_emitted={self.rows_emitted}")
        bits.append(f"elapsed={self.elapsed_seconds:.2f}s")
        if self.hard_memory_bytes is not None:
            bits.append(
                f"memory={self.memory_bytes}B "
                f"(peak {self.peak_memory_bytes}B, "
                f"cap {self.hard_memory_bytes}B)"
            )
        if self.ladder:
            bits.append("ladder: " + " → ".join(self.ladder))
        return "; ".join(bits)


class ResourceGovernanceError(RuntimeError):
    """Base for governed-run stops; carries a :class:`GovernorSnapshot`."""

    def __init__(self, snapshot: GovernorSnapshot) -> None:
        super().__init__(snapshot.describe())
        self.snapshot = snapshot

    def __reduce__(self):
        # exceptions cross the worker→supervisor pickle boundary; the
        # default reduce would replay __init__ with the formatted string
        return (type(self), (self.snapshot,))


class MemoryBudgetExceeded(ResourceGovernanceError):
    """The hard memory cap was reached after the ladder ran out."""


class EvaluationDeadlineExceeded(ResourceGovernanceError):
    """The wall-clock deadline passed at a cooperative checkpoint."""


class EvaluationCancelled(ResourceGovernanceError):
    """The cancellation token was flipped (Ctrl-C, test, supervisor)."""


def default_memory_probe() -> int:
    """Bytes currently in use, from the cheapest available source.

    Under an active ``tracemalloc`` trace, the traced current size
    (exact, counts only Python allocations — what the hard-cap tests
    pin); otherwise resident-set size from ``/proc/self/statm`` (one
    small read, no syscall fan-out); otherwise ``ru_maxrss`` as a
    last-resort high-water mark.
    """
    if tracemalloc.is_tracing():
        current, _ = tracemalloc.get_traced_memory()
        return current
    try:
        with open("/proc/self/statm") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-linux
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


class EvaluationGovernor:
    """Live budget enforcement, shared across one evaluation's phases.

    Construction captures a *baseline* memory probe and a start clock;
    all watermark comparisons are against growth over that baseline.
    Producers thread the governor down and call :meth:`checkpoint` at
    block boundaries; drivers narrate progress through ``set_phase`` /
    ``set_part`` / ``commit_nodes`` so diagnostics name where the run
    stood.  ``memory_probe`` and ``clock`` are injectable for tests;
    :meth:`bias` lets the fault injector simulate pressure and skew
    without allocating or sleeping.
    """

    def __init__(
        self,
        budget: EvaluationBudget | None = None,
        *,
        token: CancellationToken | None = None,
        phase: str = "evaluate",
        memory_probe: Callable[[], int] | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self._budget = budget
        self._token = token
        self._phase = phase
        self._probe = memory_probe or default_memory_probe
        self._clock = clock or time.monotonic
        self._start = self._clock()
        self._governs_memory = budget is not None and budget.governs_memory
        self._baseline = self._probe() if self._governs_memory else 0
        self._baseline_tracing = tracemalloc.is_tracing()
        self._memory_bias = 0
        self._clock_bias = 0.0
        self._requested_block: int | None = None
        self._block_override: int | None = None
        self._sink = None
        self._ladder: list[str] = []
        self._part_index: int | None = None
        self._parts_done = 0
        self._parts_total: int | None = None
        self._nodes_committed = 0
        self._live_nodes = 0
        self._rows_probe: Callable[[], int] | None = None
        self._run_dir: str | None = None
        self._peak_memory = 0

    # -- driver narration ------------------------------------------------

    def set_phase(self, phase: str) -> None:
        self._phase = phase

    def set_part(self, index: int | None) -> None:
        self._part_index = index
        self._live_nodes = 0

    def set_parts_progress(self, done: int, total: int) -> None:
        self._parts_done, self._parts_total = done, total

    def set_run_dir(self, run_dir: str | os.PathLike | None) -> None:
        self._run_dir = None if run_dir is None else str(run_dir)

    def register_output(self, rows_probe: Callable[[], int]) -> None:
        """Let snapshots report rows emitted so far (sink or accumulator)."""
        self._rows_probe = rows_probe

    def register_sink(self, sink: OutputSink | None) -> None:
        """Offer a sink as ladder rung 2; only escalatable sinks enroll."""
        if sink is not None and hasattr(sink, "escalate"):
            self._sink = sink

    def commit_nodes(self, nodes: int) -> None:
        """Fold a finished sub-run's meter into the cross-part total."""
        self._nodes_committed += int(nodes)
        self._live_nodes = 0

    def bias(self, memory_bytes: int = 0, clock_seconds: float = 0.0) -> None:
        """Shift what checkpoints observe (the fault injector's hook)."""
        self._memory_bias += int(memory_bytes)
        self._clock_bias += float(clock_seconds)

    # -- producer-facing protocol ----------------------------------------

    def effective_block(self, requested: int | None) -> int | None:
        """The frontier block a producer should use *right now*.

        Consulted before every slice, so a ladder halving lands at the
        very next block boundary.  Memory-governed runs never expand a
        whole frontier at once: an unblocked request is capped at the
        budget's ``initial_frontier_block``.
        """
        self._requested_block = requested
        if self._block_override is not None:
            if requested is None:
                return self._block_override
            return min(self._block_override, requested)
        if requested is None and self._governs_memory:
            return self._budget.initial_frontier_block
        return requested

    def remaining_seconds(self) -> float | None:
        """Seconds left on the deadline; ``None`` when undeadlined."""
        if self._budget is None or self._budget.deadline_seconds is None:
            return None
        elapsed = self._clock() + self._clock_bias - self._start
        return max(0.0, self._budget.deadline_seconds - elapsed)

    def checkpoint(self, nodes_visited: int | None = None) -> None:
        """The cooperative boundary check: cancel → deadline → memory."""
        if nodes_visited is not None:
            self._live_nodes = int(nodes_visited)
        if self._token is not None and self._token.cancelled:
            raise EvaluationCancelled(self._snapshot("cancelled"))
        budget = self._budget
        if budget is None:
            return
        if budget.deadline_seconds is not None:
            elapsed = self._clock() + self._clock_bias - self._start
            if elapsed > budget.deadline_seconds:
                raise EvaluationDeadlineExceeded(
                    self._snapshot("deadline exceeded")
                )
        if not self._governs_memory:
            return
        current = self._current_memory()
        hard = budget.hard_memory_bytes
        if hard is not None and current >= hard:
            raise MemoryBudgetExceeded(
                self._snapshot("hard memory cap reached", current)
            )
        soft = budget.soft_memory_bytes
        if soft is not None and current >= soft:
            self._degrade()

    # -- internals --------------------------------------------------------

    def _current_memory(self) -> int:
        if self._probe is default_memory_probe:
            tracing = tracemalloc.is_tracing()
            if tracing != self._baseline_tracing:
                # the default probe switched regimes mid-run (a metering
                # harness started or stopped tracemalloc after this
                # governor captured its baseline): growth against the
                # old baseline is meaningless.  Into tracing, traced
                # bytes already count from the trace start, so the
                # baseline is zero; out of tracing, re-anchor at the
                # current RSS reading.
                self._baseline_tracing = tracing
                self._baseline = 0 if tracing else self._probe()
        current = max(0, self._probe() + self._memory_bias - self._baseline)
        if current > self._peak_memory:
            self._peak_memory = current
        return current

    def _degrade(self) -> None:
        """One ladder rung per soft-watermark checkpoint, in fixed order."""
        budget = self._budget
        base = self._block_override
        if base is None:
            base = (
                self._requested_block
                if self._requested_block is not None
                else budget.initial_frontier_block
            )
        halved = max(budget.min_frontier_block, base // 2)
        if halved < base:
            self._block_override = halved
            self._ladder.append(f"frontier_block {base}→{halved}")
            return
        sink = self._sink
        if sink is not None and not getattr(sink, "escalated", True):
            sink.escalate()
            self._ladder.append("sink materialize→spill")

    def _snapshot(
        self, reason: str, current_memory: int | None = None
    ) -> GovernorSnapshot:
        budget = self._budget
        if current_memory is None and self._governs_memory:
            current_memory = self._current_memory()
        rows = self._rows_probe() if self._rows_probe is not None else 0
        return GovernorSnapshot(
            reason=reason,
            phase=self._phase,
            part_index=self._part_index,
            nodes_visited=self._nodes_committed + self._live_nodes,
            rows_emitted=int(rows),
            elapsed_seconds=self._clock() + self._clock_bias - self._start,
            memory_bytes=int(current_memory or 0),
            peak_memory_bytes=self._peak_memory,
            soft_memory_bytes=(
                None if budget is None else budget.soft_memory_bytes
            ),
            hard_memory_bytes=(
                None if budget is None else budget.hard_memory_bytes
            ),
            deadline_seconds=(
                None if budget is None else budget.deadline_seconds
            ),
            ladder=tuple(self._ladder),
            effective_frontier_block=(
                self._block_override
                if self._block_override is not None
                else self._requested_block
            ),
            parts_done=self._parts_done,
            parts_total=self._parts_total,
            run_dir=self._run_dir,
        )

    @property
    def ladder(self) -> tuple[str, ...]:
        """Degradation steps taken so far, in order."""
        return tuple(self._ladder)

    @property
    def budget(self) -> EvaluationBudget | None:
        return self._budget


class EscalatingSink(OutputSink):
    """Materialize in RAM until told to spill; bit-identical either way.

    Ladder rung 2's mechanism: the sink starts as an in-memory
    accumulator (same :class:`ChunkedColumns` the default path uses);
    :meth:`escalate` opens a :class:`SpillSink` over ``directory``,
    replays the accumulated chunks into it — they become the first
    spilled segments, in emission order — and routes every later batch
    to disk.  Rows, order, and ``n_rows`` are identical whether
    escalation happens never, immediately, or anywhere in between.

    Use as a context manager like :class:`SpillSink`: closing removes
    any spilled segments on success and on exception.
    """

    def __init__(
        self, directory: str | os.PathLike, chunk_rows: int = 1 << 16
    ) -> None:
        super().__init__()
        self._directory = directory
        self._chunk_rows = int(chunk_rows)
        self._acc: ChunkedColumns | None = None
        self._spill: SpillSink | None = None
        self._pending_escalate = False

    def _opened(self, variables: tuple[str, ...]) -> None:
        if not variables:
            raise ValueError(
                "a zero-variable output has nothing to spill; use CountSink"
            )
        self._acc = ChunkedColumns(len(variables))
        if self._pending_escalate:
            self.escalate()

    @property
    def escalated(self) -> bool:
        return self._spill is not None

    def escalate(self) -> None:
        """Switch to disk spilling; accumulated rows become segment 0+."""
        if self._spill is not None:
            return
        if self._variables is None:
            # not open yet (e.g. governor degraded between parts):
            # escalate as soon as the schema is known
            self._pending_escalate = True
            return
        spill = SpillSink(self._directory, chunk_rows=self._chunk_rows)
        spill.open(self.variables)
        for chunk in self._acc.iter_chunks():
            spill.append(chunk)
        spill.flush()
        self._acc = None
        self._spill = spill

    def _consume_columns(self, columns, n: int) -> None:
        if self._spill is not None:
            self._spill.append(columns)
        else:
            self._acc.append(columns)

    # -- accessors (emission order, either backing store) -----------------

    def iter_chunks(self):
        if self._spill is not None:
            yield from self._spill.iter_chunks()
        elif self._acc is not None:
            yield from self._acc.iter_chunks()

    def iter_rows(self):
        for chunk in self.iter_chunks():
            yield from zip(*[column.tolist() for column in chunk])

    def rows(self) -> list[tuple]:
        return list(self.iter_rows())

    def relation(self, name: str = ""):
        """The collected output as a Relation (test/report convenience)."""
        import numpy as np

        from ..relational import Relation

        variables = self.variables
        chunks = list(self.iter_chunks())
        if not chunks:
            return Relation(variables, [], name=name)
        columns = [
            np.concatenate([chunk[i] for chunk in chunks])
            for i in range(len(variables))
        ]
        return Relation.from_columns(variables, columns, name=name)

    def close(self) -> None:
        """Delete any spilled segments (idempotent)."""
        if self._spill is not None:
            self._spill.close()
        self._acc = None

    def __enter__(self) -> "EscalatingSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
