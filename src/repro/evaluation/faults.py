"""Deterministic fault injection for the parallel part evaluator.

The supervision layer in :mod:`repro.evaluation.parallel` only earns its
keep if the failure modes it guards against can be produced *on demand
and reproducibly*: a worker that raises, hangs past its wall-clock
budget, dies without cleanup (``os._exit``), or reports success while
its spill segment is silently truncated on disk.  This module provides
that harness.

A :class:`FaultInjector` is a pure plan: a mapping from
``(part_index, attempt)`` to a fault kind.  The supervisor resolves the
plan *before* submitting each attempt and ships a picklable
:class:`FaultCommand` into the worker, which triggers it at the matching
point of the part's lifecycle — so injection is exact (no sampling
inside workers, no cross-process RNG state) and two runs with the same
plan fail identically.  :meth:`FaultInjector.from_seed` derives a plan
from one seed for chaos sweeps; :func:`parse_fault_spec` is the CLI
surface (``--inject-faults``).

Fault kinds
-----------
``raise``
    The worker raises :class:`InjectedFault` before touching the part.
``hang``
    The worker sleeps far past any per-part timeout (the supervisor
    must detect the expired deadline and kill the pool).
``exit``
    The worker dies via ``os._exit`` — no exception propagation, no
    executor cleanup; the pool surfaces ``BrokenProcessPool``.
``corrupt``
    The part evaluates *successfully* and then its last spill segment
    is truncated in place — the result-integrity case: the supervisor's
    read-back validation must reject the attempt instead of merging
    garbage.  (For count-only parts there is no segment to damage, so
    the command degrades to ``raise`` — the attempt still fails.)
``memory``
    Simulated memory pressure: the worker's
    :class:`~repro.evaluation.governor.EvaluationGovernor` is biased by
    ``memory_bias_bytes`` before evaluation, so every checkpoint sees
    that much extra usage — driving the degradation ladder (and, for an
    undersized cap, :class:`MemoryBudgetExceeded`) without allocating a
    byte.  Ungoverned attempts (no budget shipped) raise
    :class:`InjectedFault` instead, keeping the plan observable.
``clock``
    Simulated clock skew: the governor's clock is biased forward by
    ``clock_skew_seconds``, so deadline checks fire as if that much
    wall time had passed.  Ungoverned attempts raise
    :class:`InjectedFault`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from random import Random
from typing import Mapping

__all__ = [
    "FAULT_KINDS",
    "GOVERNOR_KINDS",
    "FaultCommand",
    "FaultInjector",
    "InjectedFault",
    "parse_fault_spec",
]

FAULT_KINDS = ("raise", "hang", "exit", "corrupt", "memory", "clock")

#: Kinds that act through a shipped budget's governor, not directly.
GOVERNOR_KINDS = ("memory", "clock")


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault-injection harness."""


@dataclass(frozen=True)
class FaultCommand:
    """One resolved, picklable fault for one (part, attempt) task."""

    kind: str
    part_index: int
    attempt: int
    hang_seconds: float = 3600.0
    exit_code: int = 13
    memory_bias_bytes: int = 1 << 40
    clock_skew_seconds: float = 3600.0

    def trigger_before_evaluation(self) -> None:
        """Fire the pre-evaluation kinds inside the worker process."""
        if self.kind == "raise":
            raise InjectedFault(
                f"injected raise for part {self.part_index} "
                f"attempt {self.attempt}"
            )
        if self.kind == "hang":
            time.sleep(self.hang_seconds)
        elif self.kind == "exit":
            os._exit(self.exit_code)

    def governor_bias(self) -> tuple[int, float]:
        """``(memory_bytes, clock_seconds)`` to bias a governor by."""
        if self.kind == "memory":
            return self.memory_bias_bytes, 0.0
        if self.kind == "clock":
            return 0, self.clock_skew_seconds
        return 0, 0.0

    def require_governor(self) -> None:
        """Fail an ungoverned attempt that drew a governor-acting kind.

        Without a budget there is no governor to bias, and silently
        skipping the fault would make the plan unobservable — the same
        contract as ``corrupt`` with no segment to damage.
        """
        if self.kind in GOVERNOR_KINDS:
            raise InjectedFault(
                f"injected {self.kind} for part {self.part_index} "
                f"attempt {self.attempt}: no budget to pressure"
            )

    def trigger_after_spill(self, segment_paths) -> None:
        """Fire the post-evaluation kinds (segment corruption)."""
        if self.kind != "corrupt":
            return
        if not segment_paths:
            # nothing on disk to damage (empty part or count-only mode):
            # fail the attempt anyway so the plan stays observable
            raise InjectedFault(
                f"injected corrupt for part {self.part_index} "
                f"attempt {self.attempt}: no segment to truncate"
            )
        victim = segment_paths[-1]
        size = os.path.getsize(victim)
        with open(victim, "r+b") as handle:
            handle.truncate(max(1, size // 2))


class FaultInjector:
    """A deterministic plan of faults, keyed by (part index, attempt).

    ``plan`` maps ``(part_index, attempt)`` — attempt numbers start at
    0 — to a kind from :data:`FAULT_KINDS`.  The injector never decides
    anything at fire time; equality of plans is equality of behaviour.
    """

    def __init__(
        self,
        plan: Mapping[tuple[int, int], str] | None = None,
        hang_seconds: float = 3600.0,
        memory_bias_bytes: int = 1 << 40,
        clock_skew_seconds: float = 3600.0,
    ) -> None:
        self.plan: dict[tuple[int, int], str] = {}
        for key, kind in (plan or {}).items():
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; pick from {FAULT_KINDS}"
                )
            self.plan[(int(key[0]), int(key[1]))] = kind
        self.hang_seconds = float(hang_seconds)
        self.memory_bias_bytes = int(memory_bias_bytes)
        self.clock_skew_seconds = float(clock_skew_seconds)

    @classmethod
    def from_seed(
        cls,
        seed: int,
        n_parts: int,
        rate: float = 0.25,
        kinds: tuple[str, ...] = FAULT_KINDS,
        attempts: int = 1,
        hang_seconds: float = 3600.0,
        memory_bias_bytes: int = 1 << 40,
        clock_skew_seconds: float = 3600.0,
    ) -> "FaultInjector":
        """Derive a plan from one seed: each part independently draws
        whether its first ``attempts`` attempts fail, and how.

        The draw order is fixed (ascending part index, one rate draw
        plus one kind draw per hit), so the same ``(seed, n_parts,
        rate, kinds, attempts)`` always yields the same plan — the
        determinism the chaos tests pin down.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        unknown = [k for k in kinds if k not in FAULT_KINDS]
        if unknown:
            raise ValueError(
                f"unknown fault kinds {unknown}; pick from {FAULT_KINDS}"
            )
        rng = Random(seed)
        plan: dict[tuple[int, int], str] = {}
        for part in range(n_parts):
            if rng.random() < rate:
                kind = kinds[rng.randrange(len(kinds))]
                for attempt in range(attempts):
                    plan[(part, attempt)] = kind
        return cls(
            plan,
            hang_seconds=hang_seconds,
            memory_bias_bytes=memory_bias_bytes,
            clock_skew_seconds=clock_skew_seconds,
        )

    def resolve(self, n_parts: int) -> "FaultInjector":
        """Bind the plan to a run's part count (no-op for explicit plans;
        :class:`_SeededSpec` overrides this to draw its seeded plan)."""
        return self

    def command_for(
        self, part_index: int, attempt: int
    ) -> FaultCommand | None:
        """The fault to inject for this attempt, or ``None``."""
        kind = self.plan.get((part_index, attempt))
        if kind is None:
            return None
        return FaultCommand(
            kind=kind,
            part_index=part_index,
            attempt=attempt,
            hang_seconds=self.hang_seconds,
            memory_bias_bytes=self.memory_bias_bytes,
            clock_skew_seconds=self.clock_skew_seconds,
        )

    def __len__(self) -> int:
        return len(self.plan)

    def __repr__(self) -> str:
        return f"<FaultInjector: {len(self.plan)} planned faults>"


def parse_fault_spec(text: str) -> FaultInjector:
    """Parse the CLI's ``--inject-faults`` specification.

    Two forms, mixable as comma-separated ``key=value`` fields:

    * seeded chaos — ``seed=7,rate=0.3,kinds=raise+hang,attempts=1``
      (``parts`` must be resolvable by the caller; the seeded plan is
      built lazily via :meth:`FaultInjector.from_seed` with the run's
      part count, so this parser returns the *parameters* bound into a
      builder), and
    * explicit plan — ``part=3:hang,part=5:exit`` pins exact faults on
      exact parts (attempt 0).

    Returns a :class:`FaultInjector` for explicit plans.  For seeded
    specs the part count is unknown here, so a :class:`_SeededSpec`
    placeholder injector is returned whose :meth:`resolve` binds it.
    """
    plan: dict[tuple[int, int], str] = {}
    seeded: dict[str, float] = {}
    kinds: tuple[str, ...] = FAULT_KINDS
    hang_seconds = 3600.0
    memory_bias_bytes = 1 << 40
    clock_skew_seconds = 3600.0
    for field in text.split(","):
        field = field.strip()
        if not field:
            continue
        key, _, value = field.partition("=")
        key = key.strip()
        value = value.strip()
        if not value:
            raise ValueError(
                f"fault spec field {field!r} is not KEY=VALUE"
            )
        if key == "part":
            index_text, _, kind = value.partition(":")
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"fault spec part entry {value!r} needs INDEX:KIND "
                    f"with KIND in {FAULT_KINDS}"
                )
            plan[(int(index_text), 0)] = kind
        elif key in ("seed", "attempts"):
            seeded[key] = int(value)
        elif key == "rate":
            seeded[key] = float(value)
        elif key == "kinds":
            kinds = tuple(value.split("+"))
        elif key == "hang":
            hang_seconds = float(value)
        elif key == "bias":
            from .governor import parse_memory_size

            memory_bias_bytes = parse_memory_size(value)
        elif key == "skew":
            clock_skew_seconds = float(value)
        else:
            raise ValueError(f"unknown fault spec field {key!r}")
    if plan and seeded:
        raise ValueError(
            "fault spec mixes an explicit part= plan with seeded fields"
        )
    if seeded:
        return _SeededSpec(
            seed=int(seeded.get("seed", 0)),
            rate=float(seeded.get("rate", 0.25)),
            kinds=kinds,
            attempts=int(seeded.get("attempts", 1)),
            hang_seconds=hang_seconds,
            memory_bias_bytes=memory_bias_bytes,
            clock_skew_seconds=clock_skew_seconds,
        )
    return FaultInjector(
        plan,
        hang_seconds=hang_seconds,
        memory_bias_bytes=memory_bias_bytes,
        clock_skew_seconds=clock_skew_seconds,
    )


class _SeededSpec(FaultInjector):
    """A seeded fault spec whose plan binds once the part count is known.

    Behaves as an empty injector until :meth:`resolve` is called (the
    parallel evaluator resolves it against the plan's combination
    count before the first submission).
    """

    def __init__(
        self,
        seed: int,
        rate: float,
        kinds: tuple[str, ...],
        attempts: int,
        hang_seconds: float,
        memory_bias_bytes: int = 1 << 40,
        clock_skew_seconds: float = 3600.0,
    ) -> None:
        super().__init__(
            {},
            hang_seconds=hang_seconds,
            memory_bias_bytes=memory_bias_bytes,
            clock_skew_seconds=clock_skew_seconds,
        )
        self.seed = seed
        self.rate = rate
        self.kinds = kinds
        self.attempts = attempts

    def resolve(self, n_parts: int) -> FaultInjector:
        return FaultInjector.from_seed(
            self.seed,
            n_parts,
            rate=self.rate,
            kinds=self.kinds,
            attempts=self.attempts,
            hang_seconds=self.hang_seconds,
            memory_bias_bytes=self.memory_bias_bytes,
            clock_skew_seconds=self.clock_skew_seconds,
        )
