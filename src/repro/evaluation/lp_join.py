"""The paper's evaluation algorithm (Sec. 2.2, Theorem 2.6).

Given a query, a database satisfying concrete ℓp statistics, and a valid
witness inequality (the dual of the bound LP), the algorithm:

1. for every finite-p statistic with non-zero weight, partitions its guard
   atom's relation by Lemma 2.5 so each part *strongly satisfies* the
   statistic;
2. forms the union of queries, one per combination of parts across
   *atoms* (atom-level, so self-joins — where two atoms scan the same
   relation — correctly enumerate cross-part pairs);
3. evaluates each combination with the PANDA stand-in
   (:mod:`repro.evaluation.panda_algorithm`) and unions the outputs.

The run is metered: total search nodes across parts, number of part
combinations, and the Theorem 2.6 budget c · Π B_i^{w_i} for comparison.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from ..core.conditionals import ConcreteStatistic
from ..core.lp_bound import BoundResult
from ..query.query import Atom, ConjunctiveQuery
from ..relational import Database, OutputSink, Relation
from ..relational.columnar import ChunkedColumns
from .panda_algorithm import evaluate_part, theorem26_log2_budget
from .partitioning import partition_for_statistic

__all__ = ["PartitionedRun", "evaluate_with_partitioning"]


@dataclass
class PartitionedRun:
    """Metered outcome of the Theorem 2.6 evaluation.

    ``output`` is the deduplicated union relation on the default
    materializing path, and ``None`` when the run streamed into an
    explicit :class:`~repro.relational.columnar.OutputSink` (held in
    ``sink``).
    """

    output: Relation | None
    parts_evaluated: int
    nodes_visited: int
    log2_budget: float
    sink: OutputSink | None = None

    @property
    def count(self) -> int:
        if self.output is not None:
            return len(self.output)
        if self.sink is not None:
            return self.sink.n_rows
        return 0

    def within_budget(self, polylog_slack: float = 64.0) -> bool:
        """Whether metered work ≤ 2^budget · polylog slack factor."""
        if self.nodes_visited == 0:
            return True
        return math.log2(self.nodes_visited) <= self.log2_budget + math.log2(
            polylog_slack
        )


def _union_outputs(
    query: ConjunctiveQuery, outputs: list[Relation]
) -> Relation:
    """Deduplicated union of the per-combination outputs.

    When every non-empty part output carries a columnar twin the union is
    column-wise: each twin's decoded value arrays stream into one
    :class:`~repro.relational.columnar.ChunkedColumns` accumulator (one
    concatenation pass per column at finalize, regardless of how many
    part outputs there are) and :meth:`Relation.from_columns`
    deduplicates through composite keys — no per-row Python loop.  Falls
    back to a tuple-set union otherwise.
    """
    non_empty = [o for o in outputs if len(o)]
    twins = [o.columnar() for o in non_empty]
    if non_empty and all(t is not None for t in twins):
        acc = ChunkedColumns(len(query.variables))
        for twin in twins:
            acc.append(
                [twin.dictionary(v)[twin.codes(v)] for v in query.variables]
            )
        return Relation.from_columns(
            query.variables, acc.finalize(), name=query.name
        )
    rows: set[tuple] = set()
    for output in non_empty:
        rows.update(output)
    return Relation(query.variables, rows, name=query.name)


def _attrs_for(stat: ConcreteStatistic, relation: Relation) -> tuple[list, list]:
    mapping: dict[str, str] = {}
    for position, var in enumerate(stat.guard.variables):
        mapping.setdefault(var, relation.attributes[position])
    cond = stat.conditional
    v_attrs = [mapping[v] for v in sorted(cond.v)]
    u_attrs = [mapping[u] for u in sorted(cond.u)]
    return v_attrs, u_attrs


def evaluate_with_partitioning(
    query: ConjunctiveQuery,
    db: Database,
    bound: BoundResult,
    max_parts: int = 4096,
    weight_tol: float = 1e-7,
    frontier_block: int | None = None,
    sink: OutputSink | None = None,
) -> PartitionedRun:
    """Run the Theorem 2.6 algorithm driven by an LP bound certificate.

    Only statistics with non-zero dual weight, finite p > 1 and a
    non-empty U require partitioning (ℓ1 and ℓ∞ statistics are already in
    PANDA's language).  Atoms not guarded by any such statistic pass
    through whole.

    ``frontier_block`` bounds each per-part WCOJ's live frontier (see
    :func:`repro.evaluation.wcoj.generic_join`); output, meters, and
    part accounting are identical for every setting.

    An explicit ``sink`` absorbs every part combination's output
    directly, in combination order, and ``PartitionedRun.output`` is
    ``None``: counts add across parts and spill segments concatenate
    lazily with no union pass.  This is exact because each Lemma 2.5
    part list is a row partition of its atom's relation, so every output
    binding — which pins, per atom, the single row it uses — survives in
    exactly one combination: the union the materializing path
    deduplicates is already disjoint.

    Raises ``ValueError`` if the combination count would exceed
    ``max_parts`` — the part count is exponential in Σ p_i (that is the
    constant c of Theorem 2.6).
    """
    # statistics needing partitioning, keyed by their guard atom
    atom_stats: dict[Atom, list[ConcreteStatistic]] = {}
    for stat, _ in bound.used_statistics(weight_tol):
        if stat.p == math.inf or stat.p == 1.0 or not stat.conditional.u:
            continue
        atom_stats.setdefault(stat.guard, []).append(stat)

    # rewrite the query so every atom owns a private relation name — this
    # makes the union-of-queries atom-level, as the paper requires ("one
    # query per combination of parts of different relations"), including
    # for self-joins.
    rewritten_atoms: list[Atom] = []
    base: dict[str, Relation] = {}
    part_lists: list[list[Relation]] = []
    for idx, atom in enumerate(query.atoms):
        private = f"{atom.relation}@{idx}"
        rewritten_atoms.append(Atom(private, atom.variables))
        relation = db[atom.relation]
        base[private] = relation
        parts = [relation]
        for stat in atom_stats.get(atom, ()):
            refined: list[Relation] = []
            for part in parts:
                v_attrs, u_attrs = _attrs_for(stat, part)
                refined.extend(
                    partition_for_statistic(
                        part, v_attrs, u_attrs, stat.p, stat.log2_bound
                    )
                )
            parts = refined
        part_lists.append(parts)
    rewritten = ConjunctiveQuery(rewritten_atoms, name=query.name)

    combo_count = 1
    for parts in part_lists:
        combo_count *= max(1, len(parts))
    if combo_count > max_parts:
        raise ValueError(
            f"{combo_count} part combinations exceed max_parts={max_parts}"
        )

    if sink is not None:
        # the rewritten query's variables are the original's (same atoms,
        # first-appearance order), so the sink sees the same schema the
        # materializing union would produce.
        sink.open(rewritten.variables)
    outputs: list[Relation] = []
    nodes_total = 0
    parts_evaluated = 0
    for combo in itertools.product(*part_lists):
        relations = dict(base)
        for atom, part in zip(rewritten_atoms, combo):
            relations[atom.relation] = part
        run = evaluate_part(
            rewritten,
            Database(relations),
            frontier_block=frontier_block,
            sink=sink,
        )
        parts_evaluated += 1
        nodes_total += run.nodes_visited
        if sink is None:
            outputs.append(run.output)
    output = _union_outputs(query, outputs) if sink is None else None
    return PartitionedRun(
        output=output,
        parts_evaluated=parts_evaluated,
        nodes_visited=nodes_total,
        log2_budget=theorem26_log2_budget(bound, weight_tol),
        sink=sink,
    )
