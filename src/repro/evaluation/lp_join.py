"""The paper's evaluation algorithm (Sec. 2.2, Theorem 2.6).

Given a query, a database satisfying concrete ℓp statistics, and a valid
witness inequality (the dual of the bound LP), the algorithm:

1. for every finite-p statistic with non-zero weight, partitions its guard
   atom's relation by Lemma 2.5 so each part *strongly satisfies* the
   statistic;
2. forms the union of queries, one per combination of parts across
   *atoms* (atom-level, so self-joins — where two atoms scan the same
   relation — correctly enumerate cross-part pairs);
3. evaluates each combination with the PANDA stand-in
   (:mod:`repro.evaluation.panda_algorithm`) and unions the outputs.

The run is metered: total search nodes across parts, number of part
combinations, and the Theorem 2.6 budget c · Π B_i^{w_i} for comparison.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from ..core.conditionals import ConcreteStatistic
from ..core.lp_bound import BoundResult
from ..query.query import Atom, ConjunctiveQuery
from ..relational import Database, OutputSink, Relation
from ..relational.columnar import ChunkedColumns
from .panda_algorithm import evaluate_part, theorem26_log2_budget
from .partitioning import partition_for_statistic

__all__ = [
    "PartitionPlan",
    "PartitionedRun",
    "evaluate_with_partitioning",
    "plan_partitioned_evaluation",
]


@dataclass
class PartitionedRun:
    """Metered outcome of the Theorem 2.6 evaluation.

    ``output`` is the deduplicated union relation on the default
    materializing path, and ``None`` when the run streamed into an
    explicit :class:`~repro.relational.columnar.OutputSink` (held in
    ``sink``).
    """

    output: Relation | None
    parts_evaluated: int
    nodes_visited: int
    log2_budget: float
    sink: OutputSink | None = None

    @property
    def count(self) -> int:
        if self.output is not None:
            return len(self.output)
        if self.sink is not None:
            return self.sink.n_rows
        return 0

    def within_budget(self, polylog_slack: float = 64.0) -> bool:
        """Whether metered work ≤ 2^budget · polylog slack factor."""
        if self.nodes_visited == 0:
            return True
        return math.log2(self.nodes_visited) <= self.log2_budget + math.log2(
            polylog_slack
        )


def _union_outputs(
    query: ConjunctiveQuery, outputs: list[Relation]
) -> Relation:
    """Deduplicated union of the per-combination outputs.

    When every non-empty part output carries a columnar twin the union is
    column-wise: each twin's decoded value arrays stream into one
    :class:`~repro.relational.columnar.ChunkedColumns` accumulator (one
    concatenation pass per column at finalize, regardless of how many
    part outputs there are) and :meth:`Relation.from_columns`
    deduplicates through composite keys — no per-row Python loop.  Falls
    back to a tuple-set union otherwise.
    """
    non_empty = [o for o in outputs if len(o)]
    twins = [o.columnar() for o in non_empty]
    if non_empty and all(t is not None for t in twins):
        acc = ChunkedColumns(len(query.variables))
        for twin in twins:
            acc.append(
                [twin.dictionary(v)[twin.codes(v)] for v in query.variables]
            )
        return Relation.from_columns(
            query.variables, acc.finalize(), name=query.name
        )
    rows: set[tuple] = set()
    for output in non_empty:
        rows.update(output)
    return Relation(query.variables, rows, name=query.name)


@dataclass
class PartitionPlan:
    """The Lemma 2.5 part structure of one Theorem 2.6 evaluation.

    ``rewritten`` gives every atom a private relation name (atom-level
    parts, correct for self-joins); ``part_lists[i]`` holds atom *i*'s
    Lemma 2.5 parts (the whole relation when no statistic guards it).
    Part combinations are indexed ``0 .. n_combinations-1`` in exactly
    the order ``itertools.product(*part_lists)`` enumerates them (the
    last atom's parts vary fastest), so a fixed-index merge reproduces
    the serial evaluation order bit for bit — the contract the parallel
    evaluator's deterministic merge relies on.
    """

    query: ConjunctiveQuery
    rewritten: ConjunctiveQuery
    base: dict[str, Relation]
    part_lists: list[list[Relation]]
    log2_budget: float

    @property
    def n_combinations(self) -> int:
        count = 1
        for parts in self.part_lists:
            count *= max(1, len(parts))
        return count

    def combination_relations(self, index: int) -> dict[str, Relation]:
        """The relation map of part combination ``index``.

        Mixed-radix decode over the part-list sizes, last atom fastest —
        identical to position ``index`` of ``itertools.product``.
        """
        if not 0 <= index < self.n_combinations:
            raise IndexError(
                f"combination {index} out of range "
                f"[0, {self.n_combinations})"
            )
        relations = dict(self.base)
        remainder = index
        for atom, parts in zip(
            reversed(self.rewritten.atoms), reversed(self.part_lists)
        ):
            size = max(1, len(parts))
            remainder, digit = divmod(remainder, size)
            if parts:
                relations[atom.relation] = parts[digit]
        return relations

    def combinations(self):
        """``(index, relations)`` for every combination, in merge order."""
        for index, combo in enumerate(itertools.product(*self.part_lists)):
            relations = dict(self.base)
            for atom, part in zip(self.rewritten.atoms, combo):
                relations[atom.relation] = part
            yield index, relations


def plan_partitioned_evaluation(
    query: ConjunctiveQuery,
    db: Database,
    bound: BoundResult,
    max_parts: int = 4096,
    weight_tol: float = 1e-7,
) -> PartitionPlan:
    """Partition every guarded atom's relation per Lemma 2.5.

    Only statistics with non-zero dual weight, finite p > 1 and a
    non-empty U require partitioning (ℓ1 and ℓ∞ statistics are already
    in PANDA's language).  Atoms not guarded by any such statistic pass
    through whole.  Raises ``ValueError`` if the combination count would
    exceed ``max_parts`` — the part count is exponential in Σ p_i (that
    is the constant c of Theorem 2.6).
    """
    atom_stats: dict[Atom, list[ConcreteStatistic]] = {}
    for stat, _ in bound.used_statistics(weight_tol):
        if stat.p == math.inf or stat.p == 1.0 or not stat.conditional.u:
            continue
        atom_stats.setdefault(stat.guard, []).append(stat)

    # rewrite the query so every atom owns a private relation name — this
    # makes the union-of-queries atom-level, as the paper requires ("one
    # query per combination of parts of different relations"), including
    # for self-joins.
    rewritten_atoms: list[Atom] = []
    base: dict[str, Relation] = {}
    part_lists: list[list[Relation]] = []
    for idx, atom in enumerate(query.atoms):
        private = f"{atom.relation}@{idx}"
        rewritten_atoms.append(Atom(private, atom.variables))
        relation = db[atom.relation]
        base[private] = relation
        parts = [relation]
        for stat in atom_stats.get(atom, ()):
            refined: list[Relation] = []
            for part in parts:
                v_attrs, u_attrs = _attrs_for(stat, part)
                refined.extend(
                    partition_for_statistic(
                        part, v_attrs, u_attrs, stat.p, stat.log2_bound
                    )
                )
            parts = refined
        part_lists.append(parts)
    plan = PartitionPlan(
        query=query,
        rewritten=ConjunctiveQuery(rewritten_atoms, name=query.name),
        base=base,
        part_lists=part_lists,
        log2_budget=theorem26_log2_budget(bound, weight_tol),
    )
    if plan.n_combinations > max_parts:
        raise ValueError(
            f"{plan.n_combinations} part combinations exceed "
            f"max_parts={max_parts}"
        )
    return plan


def _attrs_for(stat: ConcreteStatistic, relation: Relation) -> tuple[list, list]:
    mapping: dict[str, str] = {}
    for position, var in enumerate(stat.guard.variables):
        mapping.setdefault(var, relation.attributes[position])
    cond = stat.conditional
    v_attrs = [mapping[v] for v in sorted(cond.v)]
    u_attrs = [mapping[u] for u in sorted(cond.u)]
    return v_attrs, u_attrs


def evaluate_with_partitioning(
    query: ConjunctiveQuery,
    db: Database,
    bound: BoundResult,
    max_parts: int = 4096,
    weight_tol: float = 1e-7,
    frontier_block: int | None = None,
    sink: OutputSink | None = None,
    governor=None,
) -> PartitionedRun:
    """Run the Theorem 2.6 algorithm driven by an LP bound certificate.

    Only statistics with non-zero dual weight, finite p > 1 and a
    non-empty U require partitioning (ℓ1 and ℓ∞ statistics are already in
    PANDA's language).  Atoms not guarded by any such statistic pass
    through whole.

    ``frontier_block`` bounds each per-part WCOJ's live frontier (see
    :func:`repro.evaluation.wcoj.generic_join`); output, meters, and
    part accounting are identical for every setting.  A ``governor``
    is threaded into every per-part engine and told the live part
    index, so budget diagnostics and partial-progress meters name the
    combination that was running.

    An explicit ``sink`` absorbs every part combination's output
    directly, in combination order, and ``PartitionedRun.output`` is
    ``None``: counts add across parts and spill segments concatenate
    lazily with no union pass.  This is exact because each Lemma 2.5
    part list is a row partition of its atom's relation, so every output
    binding — which pins, per atom, the single row it uses — survives in
    exactly one combination: the union the materializing path
    deduplicates is already disjoint.

    Raises ``ValueError`` if the combination count would exceed
    ``max_parts`` — the part count is exponential in Σ p_i (that is the
    constant c of Theorem 2.6).
    """
    plan = plan_partitioned_evaluation(query, db, bound, max_parts, weight_tol)
    if sink is not None:
        # the rewritten query's variables are the original's (same atoms,
        # first-appearance order), so the sink sees the same schema the
        # materializing union would produce.
        sink.open(plan.rewritten.variables)
    outputs: list[Relation] = []
    nodes_total = 0
    parts_evaluated = 0
    for index, relations in plan.combinations():
        if governor is not None:
            governor.set_part(index)
        run = evaluate_part(
            plan.rewritten,
            Database(relations),
            frontier_block=frontier_block,
            sink=sink,
            governor=governor,
        )
        parts_evaluated += 1
        nodes_total += run.nodes_visited
        if governor is not None:
            governor.commit_nodes(run.nodes_visited)
        if sink is None:
            outputs.append(run.output)
    if governor is not None:
        governor.set_part(None)
    output = _union_outputs(query, outputs) if sink is None else None
    return PartitionedRun(
        output=output,
        parts_evaluated=parts_evaluated,
        nodes_visited=nodes_total,
        log2_budget=plan.log2_budget,
        sink=sink,
    )
