"""Query evaluation: hash joins, WCOJ, and the Theorem 2.6 algorithm."""

from .acyclic_count import acyclic_count, join_tree
from .joins import evaluate_left_deep, hash_join
from .lp_join import PartitionedRun, evaluate_with_partitioning
from .panda_algorithm import evaluate_part, theorem26_log2_budget
from .partitioning import (
    partition_by_degree,
    partition_for_statistic,
    strongly_satisfies,
)
from .wcoj import JoinRun, count_query, generic_join
from .yannakakis import semijoin_reduce

__all__ = [
    "acyclic_count",
    "join_tree",
    "hash_join",
    "evaluate_left_deep",
    "generic_join",
    "count_query",
    "JoinRun",
    "strongly_satisfies",
    "partition_by_degree",
    "partition_for_statistic",
    "evaluate_part",
    "theorem26_log2_budget",
    "evaluate_with_partitioning",
    "PartitionedRun",
    "semijoin_reduce",
]
