"""Query evaluation: hash joins, WCOJ, and the Theorem 2.6 algorithm."""

from .acyclic_count import acyclic_count, acyclic_count_tuples, join_tree
from .faults import FaultCommand, FaultInjector, InjectedFault, parse_fault_spec
from .governor import (
    CancellationToken,
    EscalatingSink,
    EvaluationBudget,
    EvaluationCancelled,
    EvaluationDeadlineExceeded,
    EvaluationGovernor,
    GovernorSnapshot,
    MemoryBudgetExceeded,
    ResourceGovernanceError,
    budget_from_spec,
    parse_memory_size,
)
from .joins import evaluate_left_deep, hash_join
from .lp_join import (
    PartitionedRun,
    PartitionPlan,
    evaluate_with_partitioning,
    plan_partitioned_evaluation,
)
from .panda_algorithm import evaluate_part, theorem26_log2_budget
from .parallel import (
    ParallelRun,
    PartFailedError,
    PartOutcome,
    SupervisionPolicy,
    evaluate_parallel,
)
from .partitioning import (
    partition_by_degree,
    partition_for_statistic,
    strongly_satisfies,
)
from .wcoj import JoinRun, count_query, generic_join, generic_join_tuples
from .yannakakis import semijoin_reduce, semijoin_reduce_tuples

__all__ = [
    "acyclic_count",
    "acyclic_count_tuples",
    "join_tree",
    "hash_join",
    "evaluate_left_deep",
    "generic_join",
    "generic_join_tuples",
    "count_query",
    "JoinRun",
    "strongly_satisfies",
    "partition_by_degree",
    "partition_for_statistic",
    "evaluate_part",
    "theorem26_log2_budget",
    "evaluate_with_partitioning",
    "plan_partitioned_evaluation",
    "PartitionPlan",
    "PartitionedRun",
    "evaluate_parallel",
    "ParallelRun",
    "PartOutcome",
    "PartFailedError",
    "SupervisionPolicy",
    "FaultCommand",
    "FaultInjector",
    "InjectedFault",
    "parse_fault_spec",
    "semijoin_reduce",
    "semijoin_reduce_tuples",
    "EvaluationBudget",
    "EvaluationGovernor",
    "GovernorSnapshot",
    "CancellationToken",
    "EscalatingSink",
    "ResourceGovernanceError",
    "MemoryBudgetExceeded",
    "EvaluationDeadlineExceeded",
    "EvaluationCancelled",
    "budget_from_spec",
    "parse_memory_size",
]
