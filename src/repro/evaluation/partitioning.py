"""Degree-based relation partitioning (Lemma 2.5) and strong satisfaction.

A relation R *strongly satisfies* a concrete ℓp statistic ((V|U), p, B) —
written R |=_s (τ, B) — when there is a d > 0 with ‖deg_R(V|U)‖_∞ ≤ d and
|Π_U(R)| ≤ B^p / d^p.  Strong satisfaction lets the statistic be replaced
by an ℓ1 and an ℓ∞ statistic (Eq. 22), which is what reduces the paper's
evaluation algorithm to PANDA.

Lemma 2.5: any R satisfying an ℓp statistic splits into
O(2^p · log N) parts that each strongly satisfy it — bucket the U-values
by ⌊log2 degree⌋, then chop each bucket into ⌈2^p⌉ slices.

On dictionary-encoded relations both steps run in code space: per-row
degrees come from one grouped distinct count, ⌊log2 d⌋ via ``frexp``
(exact for any int64 degree), and each part is a positional row-gather —
the tuple path below remains the oracle and non-integer fallback.  Both
paths produce the *same parts in the same order* (composite group keys
sort exactly like the decoded U-tuples).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.degree import degree_sequence
from ..relational import Relation

__all__ = [
    "strongly_satisfies",
    "partition_by_degree",
    "partition_for_statistic",
]


def _bucket_row_runs(
    row_buckets: np.ndarray,
) -> list[tuple[int, np.ndarray]]:
    """(bucket value, ascending row indices) per distinct bucket, ascending.

    One stable argsort + run slicing instead of a full ``row_buckets == b``
    scan per bucket — O(N log N) total where the per-bucket scans were
    O(N · #buckets).  Each run's indices ascend (stable sort), matching
    ``np.nonzero`` output exactly, so parts are byte-identical.
    """
    order = np.argsort(row_buckets, kind="stable")
    sorted_buckets = row_buckets[order]
    run_starts = np.nonzero(np.diff(sorted_buckets))[0] + 1
    values = sorted_buckets[np.append(np.int64(0), run_starts)]
    return list(zip(values.tolist(), np.split(order, run_starts)))


def strongly_satisfies(
    relation: Relation,
    v_attrs: Sequence[str],
    u_attrs: Sequence[str],
    p: float,
    log2_bound: float,
    tolerance_log2: float = 1e-9,
) -> bool:
    """Check R |=_s ((V|U), p, B) with the best d, the max degree.

    With d = ‖deg(V|U)‖_∞ the condition |Π_U(R)| ≤ B^p/d^p becomes
    log2 |Π_U| + p·log2 d ≤ p·b (and for p = ∞ just log2 d ≤ b).
    """
    if len(relation) == 0:
        return True
    seq = degree_sequence(relation, v_attrs, u_attrs)
    log2_d = math.log2(float(seq[0]))
    if p == math.inf:
        return log2_d <= log2_bound + tolerance_log2
    log2_u = math.log2(float(seq.size))
    return log2_u + p * log2_d <= p * log2_bound + tolerance_log2


def _degree_profile(
    relation: Relation, v_attrs: Sequence[str], u_attrs: Sequence[str]
):
    """Per-row U-keys, distinct keys, per-group degrees, per-row buckets.

    ``None`` when the relation has no columnar twin (tuple fallback).
    The bucket of a degree d is ⌊log2 d⌋, computed exactly via ``frexp``
    (d = m·2^e with ½ ≤ m < 1, so e − 1 is the floor log).
    """
    col = relation.columnar()
    if col is None:
        return None
    group_keys, _ = col.key_codes(tuple(u_attrs))
    counts = col.group_size_counts(tuple(u_attrs), tuple(v_attrs))
    unique_keys, inverse = np.unique(group_keys, return_inverse=True)
    group_buckets = np.frexp(counts.astype(np.float64))[1] - 1
    row_buckets = group_buckets[inverse]
    return group_keys, unique_keys, counts, group_buckets, row_buckets


def partition_by_degree(
    relation: Relation,
    v_attrs: Sequence[str],
    u_attrs: Sequence[str],
) -> list[Relation]:
    """Split R by ⌊log2 deg(V | U=u)⌋ buckets of the U-value degrees.

    Within each part, every U-value's degree lies in [2^i, 2^{i+1}), i.e.
    all degrees agree within a factor of two — the first step of
    Lemma 2.5's proof.
    """
    if len(relation) == 0:
        return []
    profile = _degree_profile(relation, v_attrs, u_attrs)
    if profile is not None:
        _, _, _, _, row_buckets = profile
        return [
            relation._take_rows(rows)
            for _, rows in _bucket_row_runs(row_buckets)
        ]
    sizes = relation.group_sizes(tuple(u_attrs), tuple(v_attrs))
    bucket_of = {u: int(math.floor(math.log2(d))) for u, d in sizes.items()}
    u_positions = relation.positions(tuple(u_attrs))
    buckets: dict[int, list[tuple]] = {}
    for row in relation:
        key = tuple(row[i] for i in u_positions)
        buckets.setdefault(bucket_of[key], []).append(row)
    return [
        relation.restrict_rows(rows)
        for _, rows in sorted(buckets.items())
    ]


def _bucket_capacity(
    d_max: int, n_groups: int, p: float, log2_bound: float
) -> int:
    """Slice width ⌊B^p / d_max^p⌋ for one degree bucket (Lemma 2.5).

    Raises ``ValueError`` when even a single U-value's degree exceeds the
    bound — then the relation does not satisfy the statistic at all.
    """
    log2_capacity = p * (log2_bound - math.log2(d_max))
    if log2_capacity < -1e-9:
        raise ValueError(
            f"relation violates the ℓ{p:g} statistic: a degree of "
            f"{d_max} alone exceeds the bound 2^{log2_bound:.4g}"
        )
    if log2_capacity > 60:
        return n_groups
    return max(1, int(2.0 ** log2_capacity + 1e-9))


def partition_for_statistic(
    relation: Relation,
    v_attrs: Sequence[str],
    u_attrs: Sequence[str],
    p: float,
    log2_bound: float,
) -> list[Relation]:
    """Lemma 2.5: parts that each strongly satisfy ((V|U), p, B).

    Degree-buckets first (all degrees within a factor of two), then chops
    each bucket's U-values into slices of at most ⌊B^p / d_max^p⌋ values,
    where d_max is the bucket's maximum degree — each slice then strongly
    satisfies the statistic with d = d_max by construction.  Because a
    bucket at level i holds at most B^p/2^{p·i} U-values, the slice count
    matches Lemma 2.5's O(2^p · log N) up to constants.

    For p = ∞ the statistic is already an ℓ∞ assertion and the relation is
    returned whole (it strongly satisfies trivially with d = B).

    Raises ``ValueError`` if the relation does not satisfy the statistic in
    the first place (then no partition can strongly satisfy it).
    """
    if p == math.inf:
        return [relation] if len(relation) else []
    if len(relation) == 0:
        return []
    profile = _degree_profile(relation, v_attrs, u_attrs)
    if profile is not None:
        group_keys, unique_keys, counts, group_buckets, row_buckets = profile
        parts: list[Relation] = []
        # every group has at least one row, so the row-derived buckets
        # enumerate exactly np.unique(group_buckets), ascending.
        for b, row_sel in _bucket_row_runs(row_buckets):
            group_mask = group_buckets == b
            d_max = int(counts[group_mask].max())
            bucket_groups = unique_keys[group_mask]
            capacity = _bucket_capacity(d_max, len(bucket_groups), p, log2_bound)
            # rank of each row's U-value inside the bucket, ascending key
            # order — identical to the tuple path's sorted(u_values) slices
            ranks = np.searchsorted(bucket_groups, group_keys[row_sel])
            slices = ranks // capacity
            n_slices = (len(bucket_groups) + capacity - 1) // capacity
            for s in range(n_slices):
                parts.append(relation._take_rows(row_sel[slices == s]))
    else:
        parts = []
        u_positions = relation.positions(tuple(u_attrs))
        for bucket in partition_by_degree(relation, v_attrs, u_attrs):
            sizes = bucket.group_sizes(tuple(u_attrs), tuple(v_attrs))
            d_max = max(sizes.values())
            capacity = _bucket_capacity(d_max, len(sizes), p, log2_bound)
            u_values = sorted(sizes)
            for start in range(0, len(u_values), capacity):
                chosen = set(u_values[start : start + capacity])
                rows = [
                    row
                    for row in bucket
                    if tuple(row[i] for i in u_positions) in chosen
                ]
                parts.append(relation.restrict_rows(rows))
    for part in parts:
        assert strongly_satisfies(part, v_attrs, u_attrs, p, log2_bound), (
            f"part of {relation.name or 'relation'} fails strong "
            f"satisfaction for p={p}, b={log2_bound}"
        )
    return parts
