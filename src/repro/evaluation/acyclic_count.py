"""Exact output counts for α-acyclic full queries without materialisation.

Figure 1's workload joins up to 14 relations; true output sizes reach well
beyond what can be materialised (the paper notes DuckDB could not even
compute two of them).  For α-acyclic *full* queries the count is
computable by dynamic programming over a join tree (the counting
specialisation of Yannakakis):

1. build a join tree by recording the witness of each GYO ear removal;
2. sweep leaves-to-root: eliminating atom i with separator S = vars(i) ∩
   vars(parent) folds ``agg[s] = Σ_{rows of i matching s} weight_i(row)``
   into the parent's row weights.

Because relations have set semantics, each atom's rows are distinct
assignments to its variables, so ``weight_i(row)`` is exactly the number
of distinct extensions of ``row`` to the variables of i's subtree — and
the root's weight sum is |Q(D)|.  Counts are exact Python integers, so
astronomically large outputs are fine.
"""

from __future__ import annotations

from collections import defaultdict

from ..query.query import ConjunctiveQuery
from ..relational import Database
from .joins import _atom_rows

__all__ = ["acyclic_count", "join_tree"]


def join_tree(query: ConjunctiveQuery) -> list[tuple[int, int | None]]:
    """A join tree as (atom index, parent index) pairs, root parent None.

    The list is a valid elimination order: every atom appears before its
    parent.  Raises ``ValueError`` when the query is not α-acyclic.
    """
    atoms = list(query.atoms)
    alive = set(range(len(atoms)))
    order: list[tuple[int, int | None]] = []
    while len(alive) > 1:
        ear = None
        witness = None
        for i in sorted(alive):
            others = [j for j in alive if j != i]
            shared = atoms[i].variable_set & frozenset().union(
                *(atoms[j].variable_set for j in others)
            )
            for j in others:
                if shared <= atoms[j].variable_set:
                    ear, witness = i, j
                    break
            if ear is not None:
                break
        if ear is None:
            raise ValueError(
                f"query {query.name} is not α-acyclic; "
                "acyclic_count does not apply"
            )
        order.append((ear, witness))
        alive.remove(ear)
    (root,) = alive
    order.append((root, None))
    return order


def acyclic_count(query: ConjunctiveQuery, db: Database) -> int:
    """|Q(D)| for an α-acyclic full conjunctive query, exactly."""
    tree = join_tree(query)
    atoms = list(query.atoms)
    rows_of = {i: _atom_rows(atoms[i], db) for i in range(len(atoms))}
    weights: dict[int, list[int]] = {
        i: [1] * len(rows_of[i][1]) for i in range(len(atoms))
    }
    for atom_idx, parent_idx in tree:
        vars_i, rows_i = rows_of[atom_idx]
        weight_i = weights[atom_idx]
        if parent_idx is None:
            return sum(weight_i)
        vars_p, rows_p = rows_of[parent_idx]
        parent_vars = set(vars_p)
        separator = [v for v in vars_i if v in parent_vars]
        key_pos_i = [vars_i.index(v) for v in separator]
        agg: dict[tuple, int] = defaultdict(int)
        for row, w in zip(rows_i, weight_i):
            agg[tuple(row[k] for k in key_pos_i)] += w
        key_pos_p = [vars_p.index(v) for v in separator]
        weights[parent_idx] = [
            w * agg.get(tuple(row[k] for k in key_pos_p), 0)
            for row, w in zip(rows_p, weights[parent_idx])
        ]
    raise AssertionError("unreachable: the join tree always has a root")
