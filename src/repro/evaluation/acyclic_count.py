"""Exact output counts for α-acyclic full queries without materialisation.

Figure 1's workload joins up to 14 relations; true output sizes reach well
beyond what can be materialised (the paper notes DuckDB could not even
compute two of them).  For α-acyclic *full* queries the count is
computable by dynamic programming over a join tree (the counting
specialisation of Yannakakis):

1. build a join tree by recording the witness of each GYO ear removal;
2. sweep leaves-to-root: eliminating atom i with separator S = vars(i) ∩
   vars(parent) folds ``agg[s] = Σ_{rows of i matching s} weight_i(row)``
   into the parent's row weights.

Because relations have set semantics, each atom's rows are distinct
assignments to its variables, so ``weight_i(row)`` is exactly the number
of distinct extensions of ``row`` to the variables of i's subtree — and
the root's weight sum is |Q(D)|.  Counts are exact Python integers, so
astronomically large outputs are fine.

Two sweeps coexist: :func:`acyclic_count_tuples`, the original dict-based
fold (correctness oracle, non-integer fallback), and a columnar engine
that remaps each separator into the parent's code space, flattens it to
one ``int64`` key per row, and folds with ``argsort`` + ``add.reduceat``.
Weights start as ``int64`` arrays and are promoted to exact Python-int
(object dtype) arrays the moment an a-priori bound says a sum or product
*could* leave the ``int64`` range, so results match the oracle's
arbitrary-precision arithmetic bit for bit.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..query.query import ConjunctiveQuery
from ..relational import Database
from ..relational.columnar import align_composite_keys, mixed_radix_keys
from .joins import _atom_rows, _atom_table

__all__ = ["acyclic_count", "acyclic_count_tuples", "join_tree"]

#: Promote int64 weight arrays to exact object arrays before any
#: intermediate could reach this bound (sums of products of counts).
_SAFE_INT64 = 1 << 62


def join_tree(query: ConjunctiveQuery) -> list[tuple[int, int | None]]:
    """A join tree as (atom index, parent index) pairs, root parent None.

    The list is a valid elimination order: every atom appears before its
    parent.  Raises ``ValueError`` when the query is not α-acyclic.
    """
    atoms = list(query.atoms)
    alive = set(range(len(atoms)))
    order: list[tuple[int, int | None]] = []
    while len(alive) > 1:
        ear = None
        witness = None
        for i in sorted(alive):
            others = [j for j in alive if j != i]
            shared = atoms[i].variable_set & frozenset().union(
                *(atoms[j].variable_set for j in others)
            )
            for j in others:
                if shared <= atoms[j].variable_set:
                    ear, witness = i, j
                    break
            if ear is not None:
                break
        if ear is None:
            raise ValueError(
                f"query {query.name} is not α-acyclic; "
                "acyclic_count does not apply"
            )
        order.append((ear, witness))
        alive.remove(ear)
    (root,) = alive
    order.append((root, None))
    return order


def acyclic_count(query: ConjunctiveQuery, db: Database) -> int:
    """|Q(D)| for an α-acyclic full conjunctive query, exactly."""
    tree = join_tree(query)
    count = _acyclic_count_columnar(query, db, tree)
    if count is not None:
        return count
    return _acyclic_count_tuples(query, db, tree)


def acyclic_count_tuples(query: ConjunctiveQuery, db: Database) -> int:
    """The dict-based counting sweep (correctness oracle / fallback)."""
    return _acyclic_count_tuples(query, db, join_tree(query))


def _acyclic_count_columnar(
    query: ConjunctiveQuery, db: Database, tree: list[tuple[int, int | None]]
) -> int | None:
    """The vectorized counting sweep; ``None`` means fall back."""
    atoms = list(query.atoms)
    tables = [_atom_table(atom, db) for atom in atoms]
    if any(table is None for table in tables):
        return None
    weights: list[np.ndarray] = [
        np.ones(table.n_rows, dtype=np.int64) for table in tables
    ]
    # exact upper bound on any single weight entry, per atom (Python int,
    # so it never overflows): governs int64 -> object promotion.
    weight_bound = [1] * len(atoms)

    for atom_idx, parent_idx in tree:
        table, w = tables[atom_idx], weights[atom_idx]
        if parent_idx is None:
            if table.n_rows == 0:
                return 0
            if (
                w.dtype == object
                or weight_bound[atom_idx] * table.n_rows >= _SAFE_INT64
            ):
                return int(sum(int(x) for x in w))
            return int(w.sum())
        parent = tables[parent_idx]
        p_pos = {v: i for i, v in enumerate(parent.vars)}
        parent_vars = set(parent.vars)
        separator = [v for v in table.vars if v in parent_vars]
        t_pos = {v: i for i, v in enumerate(table.vars)}

        # child separator keys in the parent's code space
        cards = [len(parent.dicts[p_pos[v]]) for v in separator]
        p_keys = mixed_radix_keys(
            [parent.codes[p_pos[v]] for v in separator], cards
        )
        if p_keys is None:  # pragma: no cover - astronomically wide keys
            return None
        if not separator:
            p_keys = np.zeros(parent.n_rows, dtype=np.int64)
            c_keys = np.zeros(table.n_rows, dtype=np.int64)
        else:
            aligned = align_composite_keys(
                [table.codes[t_pos[v]] for v in separator],
                [table.dicts[t_pos[v]] for v in separator],
                [parent.dicts[p_pos[v]] for v in separator],
                cards,
            )
            if aligned is None:  # pragma: no cover - wide keys
                return None
            c_keys, kept = aligned
            if kept is not None:
                w = w[kept]

        # fold: agg[key] = Σ child weights, then parent *= agg[parent key]
        agg_bound = weight_bound[atom_idx] * max(1, len(c_keys))
        product_bound = weight_bound[parent_idx] * agg_bound
        if product_bound >= _SAFE_INT64 and w.dtype != object:
            w = w.astype(object)
        if len(c_keys) == 0:
            weights[parent_idx] = np.zeros(parent.n_rows, dtype=np.int64)
            weight_bound[parent_idx] = 1
            continue
        order = np.argsort(c_keys, kind="stable")
        sorted_keys = c_keys[order]
        run_start = np.empty(len(sorted_keys), dtype=bool)
        run_start[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=run_start[1:])
        starts = np.nonzero(run_start)[0]
        unique_keys = sorted_keys[starts]
        sums = np.add.reduceat(w[order], starts)
        positions = np.minimum(
            np.searchsorted(unique_keys, p_keys), len(unique_keys) - 1
        )
        found = unique_keys[positions] == p_keys
        gathered = np.where(found, sums[positions], 0)
        parent_w = weights[parent_idx]
        if gathered.dtype == object and parent_w.dtype != object:
            parent_w = parent_w.astype(object)
        elif parent_w.dtype == object and gathered.dtype != object:
            gathered = gathered.astype(object)
        weights[parent_idx] = parent_w * gathered
        weight_bound[parent_idx] = product_bound
    raise AssertionError("unreachable: the join tree always has a root")


def _acyclic_count_tuples(
    query: ConjunctiveQuery, db: Database, tree: list[tuple[int, int | None]]
) -> int:
    atoms = list(query.atoms)
    rows_of = {i: _atom_rows(atoms[i], db) for i in range(len(atoms))}
    weights: dict[int, list[int]] = {
        i: [1] * len(rows_of[i][1]) for i in range(len(atoms))
    }
    for atom_idx, parent_idx in tree:
        vars_i, rows_i = rows_of[atom_idx]
        weight_i = weights[atom_idx]
        if parent_idx is None:
            return sum(weight_i)
        vars_p, rows_p = rows_of[parent_idx]
        parent_vars = set(vars_p)
        separator = [v for v in vars_i if v in parent_vars]
        key_pos_i = [vars_i.index(v) for v in separator]
        agg: dict[tuple, int] = defaultdict(int)
        for row, w in zip(rows_i, weight_i):
            agg[tuple(row[k] for k in key_pos_i)] += w
        key_pos_p = [vars_p.index(v) for v in separator]
        weights[parent_idx] = [
            w * agg.get(tuple(row[k] for k in key_pos_p), 0)
            for row, w in zip(rows_p, weights[parent_idx])
        ]
    raise AssertionError("unreachable: the join tree always has a root")
