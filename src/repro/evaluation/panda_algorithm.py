"""The per-part evaluation black box standing in for PANDA [17].

Lemma 2.4 reduces evaluation under ℓp statistics to evaluation under
{1, ∞} statistics on *strongly satisfying* parts, executed by "PANDA's
algorithm" as a black box with runtime Õ(Π_i B_i^{w_i}).

Full PANDA (proof-sequence-driven, with disjunctive datalog rewrites) is
far outside this reproduction's scope; per docs/architecture.md we
substitute the
generic worst-case-optimal join of :mod:`repro.evaluation.wcoj`, which
meets the required product bound on the degree-uniform parts produced by
Lemma 2.5 for the workloads we evaluate, and we *meter* the actual work so
tests and benchmarks can verify the Theorem 2.6 budget instead of assuming
it.
"""

from __future__ import annotations

import math

from ..core.lp_bound import BoundResult
from ..query.query import ConjunctiveQuery
from ..relational import Database, OutputSink
from .wcoj import JoinRun, generic_join

__all__ = ["evaluate_part", "theorem26_log2_budget"]


def evaluate_part(
    query: ConjunctiveQuery,
    db_part: Database,
    frontier_block: int | None = None,
    sink: OutputSink | None = None,
    governor=None,
) -> JoinRun:
    """Evaluate the query on one strongly-satisfying database part.

    ``frontier_block`` caps the WCOJ's live frontier, ``sink`` routes
    the part's output rows, and ``governor`` threads resource
    governance down to the engine's block boundaries (see
    :func:`repro.evaluation.wcoj.generic_join`); output rows, their
    order, and the meter are identical for every setting.
    """
    return generic_join(
        query,
        db_part,
        frontier_block=frontier_block,
        sink=sink,
        governor=governor,
    )


def theorem26_log2_budget(result: BoundResult, tol: float = 1e-9) -> float:
    """log2 of Theorem 2.6's runtime budget c · Π_i B_i^{w_i}.

    ``result`` must be an optimal LP bound whose dual weights w_i define
    the witness inequality; c = Π_i ⌈2^{p_i}⌉ over the finite-p statistics
    actually used (ℓ∞ and ℓ1 statistics need no bucketing).  Polylog
    factors are not included — callers compare the *metered node count*
    against 2^budget · polylog(N).
    """
    if result.dual_weights is None:
        raise ValueError(f"bound has no certificate (status {result.status})")
    log2_c = 0.0
    for stat, weight in result.used_statistics(tol):
        if weight <= tol or stat.p == math.inf or stat.p == 1.0:
            continue
        log2_c += math.log2(math.ceil(2.0 ** stat.p))
    return result.log2_bound + log2_c
