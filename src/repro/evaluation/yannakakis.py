"""Yannakakis semijoin reduction for α-acyclic queries.

The classical preprocessing step: two sweeps of semijoins along a join
tree remove every *dangling* tuple — tuples that participate in no output
row.  After reduction, each relation is exactly the projection of the
output onto its atom, which makes the reduced database the natural input
for any evaluator and gives a cheap lower-bound witness for cardinality
estimates (every surviving tuple extends to at least one output row).

Used by tests as an independent oracle (reduction must not change the
output) and available to users as the standard acyclic-query optimisation
the paper's pipeline would sit inside.
"""

from __future__ import annotations

from ..query.query import ConjunctiveQuery
from ..relational import Database, Relation
from .acyclic_count import join_tree
from .joins import _atom_rows

__all__ = ["semijoin_reduce"]


def _semijoin(
    target_vars: tuple[str, ...],
    target_rows: list[tuple],
    source_vars: tuple[str, ...],
    source_rows: list[tuple],
) -> list[tuple]:
    """Rows of target with a matching partner in source (on shared vars)."""
    shared = [v for v in target_vars if v in set(source_vars)]
    if not shared:
        return target_rows if source_rows else []
    s_pos = [source_vars.index(v) for v in shared]
    keys = {tuple(row[i] for i in s_pos) for row in source_rows}
    t_pos = [target_vars.index(v) for v in shared]
    return [
        row for row in target_rows if tuple(row[i] for i in t_pos) in keys
    ]


def semijoin_reduce(query: ConjunctiveQuery, db: Database) -> Database:
    """The full (up-then-down) Yannakakis reduction of the database.

    Returns a database over the same relation names where every relation
    is restricted to the rows that participate in at least one output
    tuple of ``query``.  Only defined for α-acyclic queries.

    For self-joins (one relation behind several atoms) the surviving rows
    are the union of the per-atom survivors — each kept row participates
    through at least one of its atoms.
    """
    tree = join_tree(query)  # raises for cyclic queries
    atoms = list(query.atoms)
    rows_of = {i: list(_atom_rows(atoms[i], db)[1]) for i in range(len(atoms))}
    vars_of = {i: _atom_rows(atoms[i], db)[0] for i in range(len(atoms))}
    children: dict[int, list[int]] = {i: [] for i in range(len(atoms))}
    root = None
    for atom_idx, parent_idx in tree:
        if parent_idx is None:
            root = atom_idx
        else:
            children[parent_idx].append(atom_idx)

    # upward sweep: parents lose rows with no partner in each child
    for atom_idx, parent_idx in tree:
        if parent_idx is None:
            continue
        rows_of[parent_idx] = _semijoin(
            vars_of[parent_idx],
            rows_of[parent_idx],
            vars_of[atom_idx],
            rows_of[atom_idx],
        )
    # downward sweep: children lose rows with no partner in their parent
    def push_down(node: int) -> None:
        for child in children[node]:
            rows_of[child] = _semijoin(
                vars_of[child],
                rows_of[child],
                vars_of[node],
                rows_of[node],
            )
            push_down(child)

    assert root is not None
    push_down(root)

    # map surviving variable-rows back to relation rows (per atom), then
    # union across atoms sharing a relation
    surviving: dict[str, set[tuple]] = {
        name: set() for name in {a.relation for a in atoms}
    }
    for i, atom in enumerate(atoms):
        relation = db[atom.relation]
        distinct_vars = vars_of[i]
        keep = set(rows_of[i])
        positions: dict[str, int] = {}
        for position, var in enumerate(atom.variables):
            positions.setdefault(var, position)
        for row in relation:
            key = tuple(row[positions[v]] for v in distinct_vars)
            # repeated-variable atoms: the key collapses; diagonal rows only
            if len(set(atom.variables)) != len(atom.variables):
                groups: dict[str, list[int]] = {}
                for position, var in enumerate(atom.variables):
                    groups.setdefault(var, []).append(position)
                if not all(
                    len({row[i] for i in ps}) == 1
                    for ps in groups.values()
                    if len(ps) > 1
                ):
                    continue
            if key in keep:
                surviving[atom.relation].add(row)
    reduced = {
        name: Relation(db[name].attributes, rows, name=name)
        for name, rows in surviving.items()
    }
    # relations not mentioned by the query pass through untouched
    for name in db:
        if name not in reduced:
            reduced[name] = db[name]
    return Database(reduced)
