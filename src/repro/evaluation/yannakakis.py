"""Yannakakis semijoin reduction for α-acyclic queries.

The classical preprocessing step: two sweeps of semijoins along a join
tree remove every *dangling* tuple — tuples that participate in no output
row.  After reduction, each relation is exactly the projection of the
output onto its atom, which makes the reduced database the natural input
for any evaluator and gives a cheap lower-bound witness for cardinality
estimates (every surviving tuple extends to at least one output row).

Two implementations coexist:

* :func:`semijoin_reduce_tuples` — the original sweeps over Python row
  sets, the correctness oracle and the fallback for non-integer values.
* a columnar engine that keeps one boolean liveness mask per atom and
  runs every semijoin as a composite-key membership test: the shared
  variables' code columns are aligned across atoms with
  :func:`~repro.relational.columnar.remap_codes`, flattened to one
  ``int64`` key per row, and matched with a single ``searchsorted`` —
  no tuple is ever materialized until the reduced relations are built
  (as columnar row-gathers).

:func:`semijoin_reduce` dispatches to the columnar engine whenever every
atom's relation dictionary-encodes.  A semijoin against a source with no
shared variables keeps the target exactly when the source still has rows
(no cross product is formed) — both engines implement this case
identically.
"""

from __future__ import annotations

import numpy as np

from ..query.query import ConjunctiveQuery
from ..relational import Database, Relation
from ..relational.columnar import align_composite_keys, mixed_radix_keys
from .acyclic_count import join_tree
from .joins import _atom_rows, _atom_table_indexed

__all__ = ["semijoin_reduce", "semijoin_reduce_tuples"]


def _semijoin(
    target_vars: tuple[str, ...],
    target_rows: list[tuple],
    source_vars: tuple[str, ...],
    source_rows: list[tuple],
) -> list[tuple]:
    """Rows of target with a matching partner in source (on shared vars)."""
    shared = [v for v in target_vars if v in set(source_vars)]
    if not shared:
        return target_rows if source_rows else []
    s_pos = [source_vars.index(v) for v in shared]
    keys = {tuple(row[i] for i in s_pos) for row in source_rows}
    t_pos = [target_vars.index(v) for v in shared]
    return [
        row for row in target_rows if tuple(row[i] for i in t_pos) in keys
    ]


def semijoin_reduce(
    query: ConjunctiveQuery, db: Database, governor=None
) -> Database:
    """The full (up-then-down) Yannakakis reduction of the database.

    Returns a database over the same relation names where every relation
    is restricted to the rows that participate in at least one output
    tuple of ``query``.  Only defined for α-acyclic queries.

    For self-joins (one relation behind several atoms) the surviving rows
    are the union of the per-atom survivors — each kept row participates
    through at least one of its atoms.

    A ``governor`` is checkpointed before every semijoin of both sweeps
    — the reduction's natural block boundary — so deadlines, cancels,
    and memory caps land between steps, never mid-semijoin.
    """
    tree = join_tree(query)  # raises for cyclic queries
    reduced = _semijoin_reduce_columnar(query, db, tree, governor)
    if reduced is not None:
        return reduced
    return _semijoin_reduce_tuples(query, db, tree, governor)


def semijoin_reduce_tuples(query: ConjunctiveQuery, db: Database) -> Database:
    """The tuple-at-a-time reduction (correctness oracle / fallback)."""
    return _semijoin_reduce_tuples(query, db, join_tree(query))


def _tree_children(
    tree: list[tuple[int, int | None]],
) -> tuple[dict[int, list[int]], int]:
    children: dict[int, list[int]] = {i: [] for i, _ in tree}
    root = None
    for atom_idx, parent_idx in tree:
        if parent_idx is None:
            root = atom_idx
        else:
            children[parent_idx].append(atom_idx)
    assert root is not None
    return children, root


def _semijoin_reduce_columnar(
    query: ConjunctiveQuery,
    db: Database,
    tree: list[tuple[int, int | None]],
    governor=None,
) -> Database | None:
    """Both sweeps over liveness masks in code space; ``None`` = fall back."""
    atoms = list(query.atoms)
    indexed = [_atom_table_indexed(atom, db) for atom in atoms]
    if any(entry is None for entry in indexed):
        return None
    tables = [table for table, _ in indexed]
    row_idx = [idx for _, idx in indexed]
    alive = [np.ones(table.n_rows, dtype=bool) for table in tables]

    def semijoin(target_i: int, source_i: int) -> bool:
        """alive[target] &= has-partner-in-source; False on key overflow."""
        target, source = tables[target_i], tables[source_i]
        t_pos = {v: i for i, v in enumerate(target.vars)}
        source_set = set(source.vars)
        shared = [v for v in target.vars if v in source_set]
        if not shared:
            if not alive[source_i].any():
                alive[target_i][:] = False
            return True
        live = np.nonzero(alive[source_i])[0]
        if len(live) == 0:
            alive[target_i][:] = False
            return True
        s_pos = {v: i for i, v in enumerate(source.vars)}
        cards = [len(target.dicts[t_pos[v]]) for v in shared]
        t_keys = mixed_radix_keys(
            [target.codes[t_pos[v]] for v in shared], cards
        )
        if t_keys is None:  # pragma: no cover - astronomically wide keys
            return False
        aligned = align_composite_keys(
            [source.codes[s_pos[v]][live] for v in shared],
            [source.dicts[s_pos[v]] for v in shared],
            [target.dicts[t_pos[v]] for v in shared],
            cards,
        )
        if aligned is None:  # pragma: no cover - astronomically wide keys
            return False
        s_keys, _ = aligned
        if len(s_keys) == 0:
            alive[target_i][:] = False
            return True
        s_keys = np.unique(s_keys)
        positions = np.minimum(
            np.searchsorted(s_keys, t_keys), len(s_keys) - 1
        )
        alive[target_i] &= s_keys[positions] == t_keys
        return True

    children, root = _tree_children(tree)
    # upward sweep: parents lose rows with no partner in each child
    for atom_idx, parent_idx in tree:
        if parent_idx is None:
            continue
        if governor is not None:
            governor.checkpoint()
        if not semijoin(parent_idx, atom_idx):  # pragma: no cover - overflow
            return None
    # downward sweep: children lose rows with no partner in their parent
    stack = [root]
    while stack:
        node = stack.pop()
        for child in children[node]:
            if governor is not None:
                governor.checkpoint()
            if not semijoin(child, node):  # pragma: no cover - overflow
                return None
            stack.append(child)

    # map survivors back to relation rows, unioned across atoms per relation
    surviving: dict[str, list[np.ndarray]] = {
        atom.relation: [] for atom in atoms
    }
    for i, atom in enumerate(atoms):
        if row_idx[i] is None:  # identity: the atom filtered no rows
            surviving[atom.relation].append(np.nonzero(alive[i])[0])
        else:
            surviving[atom.relation].append(row_idx[i][alive[i]])
    relations: dict[str, Relation] = {}
    for name, index_lists in surviving.items():
        if len(index_lists) == 1:
            merged = index_lists[0]
        else:
            merged = np.unique(np.concatenate(index_lists))
        relations[name] = db[name]._take_rows(merged)
    for name in db:
        if name not in relations:
            relations[name] = db[name]
    return Database(relations)


def _semijoin_reduce_tuples(
    query: ConjunctiveQuery,
    db: Database,
    tree: list[tuple[int, int | None]],
    governor=None,
) -> Database:
    atoms = list(query.atoms)
    rows_of = {i: list(_atom_rows(atoms[i], db)[1]) for i in range(len(atoms))}
    vars_of = {i: _atom_rows(atoms[i], db)[0] for i in range(len(atoms))}
    children, root = _tree_children(tree)

    # upward sweep: parents lose rows with no partner in each child
    for atom_idx, parent_idx in tree:
        if parent_idx is None:
            continue
        if governor is not None:
            governor.checkpoint()
        rows_of[parent_idx] = _semijoin(
            vars_of[parent_idx],
            rows_of[parent_idx],
            vars_of[atom_idx],
            rows_of[atom_idx],
        )
    # downward sweep: children lose rows with no partner in their parent
    def push_down(node: int) -> None:
        for child in children[node]:
            if governor is not None:
                governor.checkpoint()
            rows_of[child] = _semijoin(
                vars_of[child],
                rows_of[child],
                vars_of[node],
                rows_of[node],
            )
            push_down(child)

    push_down(root)

    # map surviving variable-rows back to relation rows (per atom), then
    # union across atoms sharing a relation
    surviving: dict[str, set[tuple]] = {
        name: set() for name in {a.relation for a in atoms}
    }
    for i, atom in enumerate(atoms):
        relation = db[atom.relation]
        distinct_vars = vars_of[i]
        keep = set(rows_of[i])
        positions: dict[str, int] = {}
        for position, var in enumerate(atom.variables):
            positions.setdefault(var, position)
        for row in relation:
            key = tuple(row[positions[v]] for v in distinct_vars)
            # repeated-variable atoms: the key collapses; diagonal rows only
            if len(set(atom.variables)) != len(atom.variables):
                groups: dict[str, list[int]] = {}
                for position, var in enumerate(atom.variables):
                    groups.setdefault(var, []).append(position)
                if not all(
                    len({row[i] for i in ps}) == 1
                    for ps in groups.values()
                    if len(ps) > 1
                ):
                    continue
            if key in keep:
                surviving[atom.relation].add(row)
    reduced = {
        name: Relation(db[name].attributes, rows, name=name)
        for name, rows in surviving.items()
    }
    # relations not mentioned by the query pass through untouched
    for name in db:
        if name not in reduced:
            reduced[name] = db[name]
    return Database(reduced)
