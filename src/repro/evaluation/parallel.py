"""Fault-tolerant parallel evaluation over Lemma 2.5 part combinations.

The Theorem 2.6 evaluator's part combinations are embarrassingly
parallel: each combination pins one Lemma 2.5 part per atom, parts are
disjoint row-slices, and the partitioned-evaluation suite established
that every output binding
survives in *exactly one* combination — counts add, spill segments
concatenate, no union pass.  :func:`evaluate_parallel` exploits that
with a shared-nothing fan-out: each part combination is shipped to a
``ProcessPoolExecutor`` worker that evaluates it into its own private
:class:`~repro.relational.columnar.SpillSink` (or an in-process
:class:`~repro.relational.columnar.CountSink` when the final sink never
needs values), and the supervisor merges the per-part results through
the final sink **in ascending part index** — exactly the order the
serial ``itertools.product`` loop visits them — so rows, row order,
counts, and meters are identical to :func:`~repro.evaluation.lp_join.\
evaluate_with_partitioning` for every sink, frontier block, and worker
count.

Supervision policy (:class:`SupervisionPolicy`):

* **Timeouts** — each attempt gets a wall-clock deadline; a worker that
  blows it is killed (the whole pool, since ``ProcessPoolExecutor``
  cannot kill one member) and the part is charged a failed attempt.
  In-flight parts that had *not* expired are re-queued without charge.
* **Retries with backoff** — a failed attempt re-queues the part after
  ``backoff_base · backoff_factor^(failures-1) + jitter`` seconds; the
  jitter draws from one seeded :class:`random.Random`, so a fixed
  policy replays the same schedule.
* **Crash detection** — a worker dying without cleanup (``os._exit``,
  ``SIGKILL``) breaks the pool; every in-flight part is charged one
  attempt and the pool is rebuilt.
* **Result integrity** — a "successful" part is only accepted after its
  spill segments re-open and validate
  (:meth:`~repro.relational.chunkstore.SegmentStore.attach`), so a
  truncated or corrupt segment fails the attempt instead of merging
  garbage.
* **Graceful degradation** — a part that exhausts its retries is
  re-run serially in the supervisor process with a smaller frontier
  block (and no fault injection); only if *that* fails does the run
  abort, raising :class:`~repro.relational.chunkstore.ChunkStoreError`
  when the last failure was segment corruption (naming the part) and
  :class:`PartFailedError` otherwise.

Checkpoint/resume: the run directory carries a ``manifest.json``
(written with the chunk store's atomic ``os.replace`` + directory-fsync
discipline) recording per-part status, attempts, row/node meters, and
segment names.  Re-invoking with ``resume=True`` on the same directory
validates the manifest's fingerprint against the new run's plan and
skips every completed part — their spilled segments are re-attached and
merged without re-evaluation, so an interrupted run completes
bit-identically to an uninterrupted one.

Fault injection for tests and chaos runs threads through
:mod:`repro.evaluation.faults`: the supervisor resolves the injector's
deterministic plan per ``(part, attempt)`` and ships the resulting
command into the worker.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from random import Random

from ..core.lp_bound import BoundResult
from ..query.query import ConjunctiveQuery
from ..relational import Database, OutputSink, Relation, kernels
from ..relational.chunkstore import (
    ChunkStoreError,
    SegmentStore,
    atomic_write_json,
)
from ..relational.columnar import ChunkedColumns, CountSink, SpillSink
from .faults import FaultCommand, FaultInjector
from .governor import (
    CancellationToken,
    EvaluationBudget,
    EvaluationGovernor,
    ResourceGovernanceError,
)
from .lp_join import PartitionedRun, plan_partitioned_evaluation
from .panda_algorithm import evaluate_part

__all__ = [
    "ParallelRun",
    "PartFailedError",
    "PartOutcome",
    "SupervisionPolicy",
    "evaluate_parallel",
]

_RUN_FORMAT = "repro-parallel-run/v1"
_MANIFEST_NAME = "manifest.json"


class PartFailedError(RuntimeError):
    """A part combination exhausted every recovery avenue."""

    def __init__(self, index: int, attempts: int, errors: list[str]) -> None:
        self.index = index
        self.attempts = attempts
        self.errors = list(errors)
        last = self.errors[-1] if self.errors else "unknown error"
        super().__init__(
            f"part {index} failed permanently after {attempts} "
            f"attempt(s): {last}"
        )


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of the supervisor: timeout, retry budget, backoff, fallback.

    ``max_retries`` counts *extra* attempts after the first, so a part
    is tried ``max_retries + 1`` times before degradation kicks in.
    ``fallback_frontier_block`` bounds the degraded serial re-run's
    frontier (``None`` keeps the run's own ``frontier_block``).  The
    backoff jitter draws from ``Random(seed)``, one stream per run, so
    a fixed policy yields a reproducible retry schedule.
    """

    part_timeout: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.05
    seed: int = 0
    serial_fallback: bool = True
    fallback_frontier_block: int | None = 1024

    def backoff(self, failures: int, rng: Random) -> float:
        """Delay before retry number ``failures`` (1-based)."""
        if self.backoff_base <= 0 and self.backoff_jitter <= 0:
            return 0.0
        delay = self.backoff_base * self.backoff_factor ** max(
            0, failures - 1
        )
        if self.backoff_jitter > 0:
            delay += self.backoff_jitter * rng.random()
        return delay


@dataclass
class PartOutcome:
    """What happened to one part combination across the whole run."""

    index: int
    status: str  # "done" | "resumed" | "degraded"
    attempts: int
    n_rows: int
    nodes_visited: int
    segments: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    ladder: list[str] = field(default_factory=list)
    """Governor degradation steps the accepted attempt walked, in order."""


@dataclass
class ParallelRun(PartitionedRun):
    """A :class:`PartitionedRun` plus per-part supervision accounting.

    ``run_dir``/``manifest_path`` are ``None`` when the run used an
    ephemeral scratch directory (removed after a successful merge).
    """

    outcomes: list[PartOutcome] = field(default_factory=list)
    run_dir: Path | None = None
    manifest_path: Path | None = None

    @property
    def n_resumed(self) -> int:
        """Parts completed by a *previous* run and skipped here."""
        return sum(1 for o in self.outcomes if o.status == "resumed")

    @property
    def n_degraded(self) -> int:
        """Parts that fell back to the in-process serial path."""
        return sum(1 for o in self.outcomes if o.status == "degraded")

    @property
    def n_retried(self) -> int:
        """Parts that needed more than one attempt this run."""
        return sum(
            1
            for o in self.outcomes
            if o.status != "resumed" and o.attempts > 1
        )


@dataclass
class _PartTask:
    """Picklable work order for one (part, attempt)."""

    index: int
    attempt: int
    query: ConjunctiveQuery
    relations: dict[str, Relation]
    frontier_block: int | None
    needs_values: bool
    part_dir: str
    chunk_rows: int
    fault: FaultCommand | None
    kernel_mode: str = "auto"
    # the run budget with its deadline apportioned to this attempt's
    # remaining share (memory watermarks travel unchanged: one worker
    # holds one part at a time).  The cancellation token never ships —
    # cancellation is enforced by killing the pool.
    budget: EvaluationBudget | None = None


@dataclass
class _PartResult:
    """Picklable worker report: meters plus the spilled segment names."""

    index: int
    attempt: int
    n_rows: int
    nodes_visited: int
    segments: list[str]
    ladder: list[str] = field(default_factory=list)


def _run_part_task(task: _PartTask) -> _PartResult:
    """Evaluate one part combination (worker-process entry point).

    Values spill into the task's private
    :class:`~repro.relational.columnar.SpillSink` directory — only
    segment *names* travel back over the pipe; counting-mode parts
    return just their meters.  The segments are deliberately left on
    disk (no ``close()``): the supervisor owns their lifetime through
    the checkpoint manifest.

    The worker adopts the supervisor's *resolved* kernel mode before
    evaluating, so a spawned pool (no inherited module state) runs the
    same compiled/NumPy path as the parent process.  Kernel mode never
    enters the checkpoint fingerprint: both paths are bit-identical, so
    a run may legitimately be resumed under a different mode.
    """
    kernels.set_mode(task.kernel_mode)
    governor = None
    if task.budget is not None and task.budget.governs_anything:
        governor = EvaluationGovernor(
            task.budget, phase=f"part {task.index}"
        )
        governor.set_part(task.index)
    if task.fault is not None:
        if governor is None:
            task.fault.require_governor()
        else:
            governor.bias(*task.fault.governor_bias())
        task.fault.trigger_before_evaluation()
    db = Database(task.relations)
    if task.needs_values:
        spill = SpillSink(task.part_dir, chunk_rows=task.chunk_rows)
        spill.open(task.query.variables)
        run = evaluate_part(
            task.query,
            db,
            frontier_block=task.frontier_block,
            sink=spill,
            governor=governor,
        )
        spill.flush()
        paths = spill.store.segments()
        if task.fault is not None:
            task.fault.trigger_after_spill([str(p) for p in paths])
        return _PartResult(
            index=task.index,
            attempt=task.attempt,
            n_rows=spill.n_rows,
            nodes_visited=run.nodes_visited,
            segments=[p.name for p in paths],
            ladder=list(governor.ladder) if governor is not None else [],
        )
    counter = CountSink()
    counter.open(task.query.variables)
    run = evaluate_part(
        task.query,
        db,
        frontier_block=task.frontier_block,
        sink=counter,
        governor=governor,
    )
    if task.fault is not None:
        task.fault.trigger_after_spill([])
    return _PartResult(
        index=task.index,
        attempt=task.attempt,
        n_rows=counter.n_rows,
        nodes_visited=run.nodes_visited,
        segments=[],
        ladder=list(governor.ladder) if governor is not None else [],
    )


@dataclass
class _PartState:
    """Supervisor-side bookkeeping for one part combination."""

    index: int
    status: str = "pending"  # pending | done | degraded | resumed | failed
    attempts: int = 0
    n_rows: int = 0
    nodes_visited: int = 0
    segments: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    ladder: list[str] = field(default_factory=list)
    corrupt: bool = False  # last failure was a segment-integrity one

    def to_manifest(self) -> dict:
        return {
            "status": self.status,
            "attempts": self.attempts,
            "n_rows": self.n_rows,
            "nodes_visited": self.nodes_visited,
            "segments": list(self.segments),
            "errors": list(self.errors),
            "ladder": list(self.ladder),
        }


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly tear a pool down — the only way to stop a hung worker.

    ``ProcessPoolExecutor`` has no per-task cancellation once a task
    runs, so timeout enforcement kills every worker process and lets
    the supervisor rebuild the pool and re-queue the innocents.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except Exception:  # pragma: no cover - already-dead workers
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _load_checkpoint(
    path: Path, fingerprint: dict, states: list[_PartState]
) -> None:
    """Fold a prior run's manifest into ``states`` (resume).

    Completed parts (``done``/``degraded``) become ``resumed`` and are
    never re-evaluated; parts that were pending or failed restart from
    scratch with a fresh attempt budget.  A manifest written by a
    different configuration (fingerprint mismatch) or a foreign file is
    rejected rather than silently merging incompatible segments.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ChunkStoreError(
            f"checkpoint {path} is unreadable: {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("format") != _RUN_FORMAT:
        raise ChunkStoreError(
            f"{path} is not a parallel-run checkpoint manifest"
        )
    if payload.get("fingerprint") != fingerprint:
        raise ValueError(
            f"checkpoint at {path} was written by a different run "
            f"configuration: {payload.get('fingerprint')} != {fingerprint}"
        )
    for key, entry in (payload.get("parts") or {}).items():
        index = int(key)
        if not 0 <= index < len(states) or not isinstance(entry, dict):
            continue
        if entry.get("status") in ("done", "degraded", "resumed"):
            state = states[index]
            state.status = "resumed"
            state.attempts = int(entry.get("attempts", 1))
            state.n_rows = int(entry.get("n_rows", 0))
            state.nodes_visited = int(entry.get("nodes_visited", 0))
            state.segments = [str(s) for s in entry.get("segments", [])]
            state.errors = [str(e) for e in entry.get("errors", [])]
            state.ladder = [str(s) for s in entry.get("ladder", [])]


def evaluate_parallel(
    query: ConjunctiveQuery,
    db: Database,
    bound: BoundResult,
    workers: int | None = None,
    max_parts: int = 4096,
    weight_tol: float = 1e-7,
    frontier_block: int | None = None,
    sink: OutputSink | None = None,
    policy: SupervisionPolicy | None = None,
    run_dir: str | os.PathLike | None = None,
    resume: bool = False,
    injector: FaultInjector | None = None,
    chunk_rows: int = 1 << 16,
    budget: EvaluationBudget | None = None,
    cancel_token: CancellationToken | None = None,
) -> ParallelRun:
    """Theorem 2.6 evaluation with supervised process-parallel parts.

    Results are identical to the serial
    :func:`~repro.evaluation.lp_join.evaluate_with_partitioning` — the
    merge feeds the final ``sink`` (or the materializing union) in
    ascending part index, the serial visit order.  ``run_dir`` hosts
    the per-part spill directories and the checkpoint manifest; omit it
    for an ephemeral scratch directory (removed after success), provide
    it (with ``resume=True`` on re-invocation) to survive interruption.
    ``injector`` threads a deterministic fault plan into the workers
    (tests and the CLI's chaos mode).

    ``budget`` governs resources: memory watermarks ship into every
    worker unchanged (one part per process), while a global deadline is
    apportioned — each attempt receives the deadline's *remaining*
    seconds as both its governed deadline and its kill timeout, so no
    attempt can outlive the run's budget.  ``cancel_token`` is checked
    at every supervision step; a cancel (or any other governance stop)
    flushes the checkpoint manifest and *keeps* the run directory even
    when ephemeral — the raised
    :class:`~repro.evaluation.governor.ResourceGovernanceError` names
    it in ``snapshot.run_dir``, and re-invoking with ``resume=True``
    completes the run bit-identically.  The budget is deliberately not
    part of the checkpoint fingerprint: a run may be resumed under a
    different (or no) budget.
    """
    policy = policy or SupervisionPolicy()
    plan = plan_partitioned_evaluation(query, db, bound, max_parts, weight_tol)
    needs_values = True if sink is None else sink.needs_values
    n_vars = len(plan.rewritten.variables)
    if needs_values and n_vars == 0:
        raise ValueError(
            "a zero-variable output has nothing to spill per part; "
            "use a CountSink or the serial evaluator"
        )
    if injector is not None:
        injector = injector.resolve(plan.n_combinations)

    ephemeral = run_dir is None
    if ephemeral:
        run_path = Path(tempfile.mkdtemp(prefix="repro-parallel-"))
    else:
        run_path = Path(run_dir)
        run_path.mkdir(parents=True, exist_ok=True)
    manifest_path = run_path / _MANIFEST_NAME

    fingerprint = {
        "query": query.name,
        "n_combinations": plan.n_combinations,
        "n_variables": n_vars,
        "needs_values": needs_values,
        "chunk_rows": int(chunk_rows),
        "frontier_block": frontier_block,
    }
    states = [_PartState(i) for i in range(plan.n_combinations)]
    if manifest_path.exists():
        if not resume:
            raise ValueError(
                f"{run_path} already holds a checkpoint manifest; pass "
                "resume=True to continue it or use a fresh directory"
            )
        _load_checkpoint(manifest_path, fingerprint, states)

    governor = None
    if (
        budget is not None and budget.governs_anything
    ) or cancel_token is not None:
        governor = EvaluationGovernor(
            budget, token=cancel_token, phase="parallel supervise"
        )
        governor.set_run_dir(run_path)
        governor.register_output(
            lambda: sum(s.n_rows for s in states if s.status != "pending")
        )

    try:
        _supervise(
            plan,
            states,
            policy=policy,
            workers=workers,
            frontier_block=frontier_block,
            needs_values=needs_values,
            n_vars=n_vars,
            chunk_rows=chunk_rows,
            run_path=run_path,
            manifest_path=manifest_path,
            fingerprint=fingerprint,
            injector=injector,
            budget=budget,
            governor=governor,
        )
        if governor is not None:
            governor.set_phase("merge")
        output = _merge(
            plan, states, sink, needs_values, n_vars, run_path, governor
        )
    except ResourceGovernanceError:
        # the checkpoint manifest was flushed: keep the run directory —
        # even an ephemeral one — as the resume point (the snapshot's
        # run_dir names it)
        raise
    except BaseException:
        if ephemeral:
            shutil.rmtree(run_path, ignore_errors=True)
        raise
    outcomes = [
        PartOutcome(
            index=s.index,
            status=s.status,
            attempts=s.attempts,
            n_rows=s.n_rows,
            nodes_visited=s.nodes_visited,
            segments=list(s.segments),
            errors=list(s.errors),
            ladder=list(s.ladder),
        )
        for s in states
    ]
    if ephemeral:
        shutil.rmtree(run_path, ignore_errors=True)
    return ParallelRun(
        output=output,
        parts_evaluated=plan.n_combinations,
        nodes_visited=sum(s.nodes_visited for s in states),
        log2_budget=plan.log2_budget,
        sink=sink,
        outcomes=outcomes,
        run_dir=None if ephemeral else run_path,
        manifest_path=None if ephemeral else manifest_path,
    )


def _supervise(
    plan,
    states: list[_PartState],
    *,
    policy: SupervisionPolicy,
    workers: int | None,
    frontier_block: int | None,
    needs_values: bool,
    n_vars: int,
    chunk_rows: int,
    run_path: Path,
    manifest_path: Path,
    fingerprint: dict,
    injector: FaultInjector | None,
    budget: EvaluationBudget | None = None,
    governor: EvaluationGovernor | None = None,
) -> None:
    """Drive every pending part to done/degraded, or raise."""
    max_workers = (
        workers if workers and workers > 0 else min(4, os.cpu_count() or 1)
    )
    rng = Random(policy.seed)
    # (ready_time, index); a retry's ready_time is its backoff deadline
    pending: list[tuple[float, int]] = [
        (0.0, s.index) for s in states if s.status == "pending"
    ]
    in_flight: dict = {}  # future -> (index, deadline | None)
    exhausted: list[int] = []
    pool: ProcessPoolExecutor | None = None

    def part_dir(index: int) -> Path:
        return run_path / f"part-{index:05d}"

    def persist() -> None:
        atomic_write_json(
            manifest_path,
            {
                "format": _RUN_FORMAT,
                "fingerprint": fingerprint,
                "parts": {
                    str(s.index): s.to_manifest() for s in states
                },
            },
        )

    def part_budget() -> EvaluationBudget | None:
        if budget is None:
            return None
        if governor is None:
            return budget
        # the global deadline's remaining share is this attempt's
        # deadline; memory watermarks travel unchanged
        remaining = governor.remaining_seconds()
        if remaining is not None and remaining <= 0:
            # an exactly-expired deadline: ship an immediately-expiring
            # budget (the worker's first checkpoint raises) instead of
            # an invalid zero one
            remaining = 1e-6
        return budget.apportion(remaining)

    def make_task(index: int, fault: FaultCommand | None, block) -> _PartTask:
        return _PartTask(
            index=index,
            attempt=states[index].attempts,
            query=plan.rewritten,
            relations=plan.combination_relations(index),
            frontier_block=block,
            needs_values=needs_values,
            part_dir=str(part_dir(index)),
            chunk_rows=chunk_rows,
            fault=fault,
            kernel_mode=kernels.active_mode(),
            budget=part_budget(),
        )

    def submit(index: int) -> None:
        state = states[index]
        # clear any partial previous attempt so segment names restart at 0
        shutil.rmtree(part_dir(index), ignore_errors=True)
        fault = (
            injector.command_for(index, state.attempts) if injector else None
        )
        timeout_s = policy.part_timeout or None
        remaining = (
            governor.remaining_seconds() if governor is not None else None
        )
        if remaining is not None:
            # an attempt's kill deadline never outlives the global one
            timeout_s = (
                remaining if timeout_s is None else min(timeout_s, remaining)
            )
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        future = pool.submit(
            _run_part_task, make_task(index, fault, frontier_block)
        )
        in_flight[future] = (index, deadline)

    def validate_spill(index: int, result: _PartResult) -> None:
        if not needs_values:
            return
        store = SegmentStore.attach(part_dir(index), n_vars, result.segments)
        if store.n_rows != result.n_rows:
            raise ChunkStoreError(
                f"part {index} spilled {store.n_rows} rows on disk but "
                f"the worker reported {result.n_rows}"
            )

    def accept(index: int, result: _PartResult, status: str) -> None:
        state = states[index]
        state.attempts += 1
        state.status = status
        state.n_rows = result.n_rows
        state.nodes_visited = result.nodes_visited
        state.segments = list(result.segments)
        state.ladder = list(result.ladder)
        persist()

    def charge(index: int, message: str, corrupt: bool) -> None:
        state = states[index]
        state.attempts += 1
        state.errors.append(f"attempt {state.attempts}: {message}")
        state.corrupt = corrupt
        if state.attempts <= policy.max_retries:
            delay = policy.backoff(state.attempts, rng)
            pending.append((time.monotonic() + delay, index))
        else:
            exhausted.append(index)

    def fail(index: int) -> None:
        state = states[index]
        state.status = "failed"
        persist()
        last = state.errors[-1] if state.errors else "unknown error"
        if state.corrupt:
            raise ChunkStoreError(
                f"part {index} failed permanently with a corrupt spill: "
                f"{last}"
            )
        raise PartFailedError(index, state.attempts, state.errors)

    def degrade(index: int) -> None:
        """Serial in-process re-run — no pool, no faults, small blocks."""
        state = states[index]
        if not policy.serial_fallback:
            fail(index)
        shutil.rmtree(part_dir(index), ignore_errors=True)
        block = (
            policy.fallback_frontier_block
            if policy.fallback_frontier_block is not None
            else frontier_block
        )
        try:
            result = _run_part_task(make_task(index, None, block))
            validate_spill(index, result)
        except ResourceGovernanceError as exc:
            # a budget verdict is deterministic — retrying or ignoring
            # it would evade the budget; record it and abort the run
            state.attempts += 1
            state.errors.append(
                f"serial fallback: {type(exc).__name__}: {exc}"
            )
            state.status = "failed"
            raise
        except Exception as exc:
            state.attempts += 1
            state.errors.append(
                f"serial fallback: {type(exc).__name__}: {exc}"
            )
            state.corrupt = isinstance(exc, ChunkStoreError)
            fail(index)
        accept(index, result, "degraded")

    try:
        # the manifest exists from the very first step, so a cancel (or
        # any crash) that fires before any part completes still leaves a
        # resumable checkpoint behind
        persist()
        while pending or in_flight or exhausted:
            if governor is not None:
                governor.set_parts_progress(
                    sum(1 for s in states if s.status != "pending"),
                    len(states),
                )
                governor.checkpoint()
            while exhausted:
                degrade(exhausted.pop(0))  # raises on permanent failure
            if not pending and not in_flight:
                break
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=max_workers)
            needs_new_pool = False
            now = time.monotonic()
            pending.sort()
            while (
                pending
                and pending[0][0] <= now
                and len(in_flight) < max_workers
            ):
                _, index = pending.pop(0)
                try:
                    submit(index)
                except BrokenProcessPool:
                    # a worker died between wait() rounds: re-queue this
                    # part uncharged and rebuild the pool
                    pending.append((now, index))
                    needs_new_pool = True
                    break
            if needs_new_pool:
                _kill_pool(pool)
                pool = None
                continue
            if not in_flight:
                # everything queued sits in a backoff window
                delay = max(0.0, pending[0][0] - time.monotonic())
                if governor is not None:
                    # stay responsive to cancel/deadline while backing off
                    delay = min(delay, 0.25)
                time.sleep(delay)
                continue
            wake = min(
                (dl for _, dl in in_flight.values() if dl is not None),
                default=None,
            )
            if pending:
                next_ready = pending[0][0]
                wake = next_ready if wake is None else min(wake, next_ready)
            timeout = (
                None
                if wake is None
                else max(0.0, wake - time.monotonic()) + 0.01
            )
            if governor is not None:
                # poll the token/deadline at least a few times a second
                # even when no part-level deadline is pending
                timeout = 0.25 if timeout is None else min(timeout, 0.25)
            done, _ = wait(
                set(in_flight), timeout=timeout, return_when=FIRST_COMPLETED
            )
            for future in done:
                index, _deadline = in_flight.pop(future)
                try:
                    result = future.result()
                    validate_spill(index, result)
                except CancelledError:
                    # never ran (pool was killed before pickup): re-queue
                    # at the same attempt, uncharged
                    pending.append((time.monotonic(), index))
                    continue
                except BrokenProcessPool as exc:
                    needs_new_pool = True
                    charge(
                        index,
                        f"worker process died: {exc or 'pool broken'}",
                        corrupt=False,
                    )
                except ResourceGovernanceError as exc:
                    # a worker's budget verdict (hard cap, apportioned
                    # deadline): deterministic, so no retry and no
                    # budget-evading serial fallback — abort the run
                    # with the worker's own diagnostic snapshot
                    state = states[index]
                    state.attempts += 1
                    state.errors.append(
                        f"attempt {state.attempts}: "
                        f"{type(exc).__name__}: {exc}"
                    )
                    state.status = "failed"
                    # the worker never knew the run directory; stamp it
                    # into the snapshot so callers can print a resume
                    # hint
                    raise type(exc)(
                        replace(exc.snapshot, run_dir=str(run_path))
                    ) from exc
                except ChunkStoreError as exc:
                    charge(index, str(exc), corrupt=True)
                except Exception as exc:
                    charge(
                        index, f"{type(exc).__name__}: {exc}", corrupt=False
                    )
                else:
                    accept(index, result, "done")
            # deadline sweep: a hung worker never completes its future
            now = time.monotonic()
            expired = [
                future
                for future, (_, dl) in in_flight.items()
                if dl is not None and now >= dl
            ]
            if expired:
                needs_new_pool = True
                for future, (index, dl) in list(in_flight.items()):
                    if dl is not None and now >= dl:
                        if policy.part_timeout:
                            message = (
                                f"timed out after {policy.part_timeout:.4g}s"
                            )
                        else:
                            message = (
                                "timed out (apportioned global deadline)"
                            )
                        charge(index, message, corrupt=False)
                    else:
                        # innocent bystander of the pool kill: re-queue
                        # at the same attempt, uncharged
                        pending.append((now, index))
                in_flight.clear()
            if needs_new_pool and pool is not None:
                _kill_pool(pool)
                pool = None
    except ResourceGovernanceError:
        # flush the checkpoint before propagating: every accepted part
        # is recorded, so the run resumes from here bit-identically
        if pool is not None:
            _kill_pool(pool)
            pool = None
        persist()
        raise
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


def _merge(
    plan,
    states: list[_PartState],
    sink: OutputSink | None,
    needs_values: bool,
    n_vars: int,
    run_path: Path,
    governor: EvaluationGovernor | None = None,
):
    """Feed per-part results through the final sink in part order.

    Ascending part index is exactly the serial ``itertools.product``
    visit order, so the final sink observes the same row stream as the
    serial evaluator; the materializing path rebuilds the union through
    the same :class:`ChunkedColumns` + ``Relation.from_columns``
    construction the serial ``_union_outputs`` uses.  A governor is
    checkpointed between parts — with an escalatable final sink
    registered, a merge that crosses the soft watermark switches it to
    disk mid-merge instead of materializing past the budget.
    """
    if sink is not None:
        sink.open(plan.rewritten.variables)
        if governor is not None:
            governor.register_sink(sink)
        for state in states:
            if governor is not None:
                governor.set_part(state.index)
                governor.checkpoint()
            if needs_values:
                if not state.segments:
                    continue
                store = SegmentStore.attach(
                    run_path / f"part-{state.index:05d}",
                    n_vars,
                    state.segments,
                )
                for chunk in store.iter_chunks():
                    sink.append(chunk)
            elif state.n_rows:
                sink.append_size(state.n_rows)
        return None
    acc = ChunkedColumns(n_vars)
    for state in states:
        if governor is not None:
            governor.set_part(state.index)
            governor.checkpoint()
        if not state.segments:
            continue
        store = SegmentStore.attach(
            run_path / f"part-{state.index:05d}", n_vars, state.segments
        )
        for chunk in store.iter_chunks():
            acc.append(chunk)
    if acc.n_rows:
        return Relation.from_columns(
            plan.query.variables, acc.finalize(), name=plan.query.name
        )
    return Relation(plan.query.variables, set(), name=plan.query.name)
