"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``bound``
    Parse a query, collect statistics over a database loaded from CSV
    files, and print the bound with its certificate.
``experiment``
    Run one of the paper experiments (E1–E13) and print its table.
``serve``
    Run the long-lived bound-serving HTTP service over CSV tables
    (see ``docs/service.md`` for the API and runbook).
``list``
    List available experiments.

Examples
--------
::

    python -m repro list
    python -m repro experiment E7
    python -m repro bound --query "Q(x,y,z) :- R(x,y), R(y,z), R(z,x)" \
        --table R=edges.csv --norms 1,2,3,inf
    python -m repro serve --table R=edges.csv --port 8750 \
        --warm "Q(x,y,z) :- R(x,y), R(y,z), R(z,x)"
"""

from __future__ import annotations

import argparse
import csv
import math
import sys
from typing import Sequence

from . import parse_query
from .core import (
    BoundSolver,
    BoundTask,
    StatisticsCatalog,
    lp_bound_many,
    product_form,
)
from .relational import Database, Relation

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS: dict[str, str] = {
    "E1": "triangle",
    "E2": "one_join",
    "E3": "job",
    "E4": "cycle",
    "E5": "dsb_gap",
    "E6": "normal_vs_product",
    "E7": "nonshannon",
    "E8": "evaluation_runtime",
    "E9": "norm_ablation",
    "E10": "lp_scaling",
    "E11": "chain",
    "E12": "loomis_whitney",
    "E13": "appendix_b",
    "E14": "star",
}


def _parse_norms(text: str) -> list[float]:
    norms = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        norms.append(math.inf if token in ("inf", "∞") else float(token))
    if not norms:
        raise argparse.ArgumentTypeError("no norms given")
    return norms


def _load_csv_relation(path: str, name: str) -> Relation:
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = []
        for row in reader:
            converted = []
            for cell in row:
                try:
                    converted.append(int(cell))
                except ValueError:
                    converted.append(cell)
            rows.append(tuple(converted))
    return Relation(tuple(header), rows, name=name)


def _cmd_bound(args: argparse.Namespace) -> int:
    queries = [parse_query(text) for text in args.query]
    relations = {}
    for spec in args.table:
        name, _, path = spec.partition("=")
        if not path:
            print(f"--table expects NAME=PATH, got {spec!r}", file=sys.stderr)
            return 2
        relations[name] = _load_csv_relation(path, name)
    db = Database(relations)
    # the batched pipeline: one catalog pass collects every query's
    # statistics (shared lexsorts, multi-p norm batches), then the
    # independent LPs fan out through one structure-cached solver.
    catalog = StatisticsCatalog(db)
    all_stats = catalog.precompute(queries, ps=args.norms)
    results = lp_bound_many(
        [
            BoundTask(stats, query=query)
            for query, stats in zip(queries, all_stats)
        ],
        solver=BoundSolver(),
        max_workers=args.workers,
    )
    for i, (query, result) in enumerate(zip(queries, results)):
        if i:
            print()
        print(f"query    : {query}")
        print(f"status   : {result.status} (cone: {result.cone})")
        print(
            f"bound    : {result.bound:.6g}  (log2 = {result.log2_bound:.4f})"
        )
        if result.status == "optimal":
            print(f"norms    : {result.norms_used()}")
            print(f"certificate: |Q| ≤ {product_form(result)}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    key = args.id.upper()
    module_name = EXPERIMENTS.get(key, args.id)
    if module_name not in EXPERIMENTS.values():
        print(f"unknown experiment {args.id!r}; try `list`", file=sys.stderr)
        return 2
    if args.kernels is not None:
        from .relational import kernels as _kernels

        try:
            _kernels.set_mode(args.kernels)
        except _kernels.KernelUnavailableError as exc:
            print(f"--kernels: {exc}", file=sys.stderr)
            return 2
    import importlib
    import inspect

    module = importlib.import_module(f"repro.experiments.{module_name}")
    params = inspect.signature(module.main).parameters
    kwargs = {}
    if args.frontier_block is not None:
        if args.frontier_block < 1:
            print(
                f"--frontier-block must be ≥ 1, got {args.frontier_block}",
                file=sys.stderr,
            )
            return 2
        # only the drivers that evaluate queries expose the knob
        if "frontier_block" not in params:
            print(
                f"experiment {key} does not take --frontier-block",
                file=sys.stderr,
            )
            return 2
        kwargs["frontier_block"] = args.frontier_block
    if args.spill_dir is not None and args.sink != "spill":
        print("--spill-dir requires --sink spill", file=sys.stderr)
        return 2
    if args.sink is not None:
        if "sink" not in params:
            print(
                f"experiment {key} does not take --sink", file=sys.stderr
            )
            return 2
        kwargs["sink"] = args.sink
        if args.spill_dir is not None:
            if "spill_dir" not in params:
                print(
                    f"experiment {key} does not take --spill-dir",
                    file=sys.stderr,
                )
                return 2
            kwargs["spill_dir"] = args.spill_dir
    governance = {
        "memory_budget": args.memory_budget,
        "deadline": args.deadline,
    }
    governance_given = {
        k: v for k, v in governance.items() if v is not None
    }
    if governance_given:
        # fail fast on a malformed budget spec, before any evaluation
        from .evaluation import budget_from_spec

        try:
            budget_from_spec(
                memory=args.memory_budget, deadline=args.deadline
            )
        except ValueError as exc:
            print(f"--memory-budget/--deadline: {exc}", file=sys.stderr)
            return 2
        for name, value in governance_given.items():
            if name not in params:
                flag = "--" + name.replace("_", "-")
                print(
                    f"experiment {key} does not take {flag}",
                    file=sys.stderr,
                )
                return 2
            kwargs[name] = value
    supervised = {
        "part_timeout": args.part_timeout,
        "retries": args.retries,
        "resume": args.resume,
        "inject_faults": args.inject_faults,
    }
    given = {k: v for k, v in supervised.items() if v is not None}
    if args.parallel_workers is None:
        if given:
            flags = ", ".join(
                "--" + k.replace("_", "-") for k in given
            )
            print(
                f"{flags} require(s) --parallel-workers", file=sys.stderr
            )
            return 2
    else:
        if args.parallel_workers < 1:
            print(
                f"--parallel-workers must be ≥ 1, got "
                f"{args.parallel_workers}",
                file=sys.stderr,
            )
            return 2
        if "parallel_workers" not in params:
            print(
                f"experiment {key} does not take --parallel-workers",
                file=sys.stderr,
            )
            return 2
        kwargs["parallel_workers"] = args.parallel_workers
        if args.inject_faults is not None:
            # fail fast on a malformed spec, before any evaluation runs
            from .evaluation import parse_fault_spec

            try:
                parse_fault_spec(args.inject_faults)
            except ValueError as exc:
                print(f"--inject-faults: {exc}", file=sys.stderr)
                return 2
        for name, value in given.items():
            if name not in params:
                flag = "--" + name.replace("_", "-")
                print(
                    f"experiment {key} does not take {flag}",
                    file=sys.stderr,
                )
                return 2
            kwargs[name] = value
    return _run_experiment_main(module, params, kwargs)


def _run_experiment_main(module, params, kwargs) -> int:
    """Invoke one experiment's ``main`` under governance plumbing.

    Experiments whose ``main`` accepts a ``cancel_token`` get one wired
    to SIGINT/SIGTERM: the first signal requests a cooperative cancel
    (the evaluators stop at the next block boundary, flushing any
    checkpoint manifest), a second one falls through to the normal
    KeyboardInterrupt.  Governance stops map to distinct exit codes —
    130 cancelled, 124 deadline, 125 memory — with the diagnostic
    snapshot (and a ``--resume`` hint when a checkpoint survives) on
    stderr instead of a traceback.
    """
    import signal

    from .evaluation import (
        CancellationToken,
        EvaluationCancelled,
        EvaluationDeadlineExceeded,
        ResourceGovernanceError,
    )

    token = None
    previous: dict[int, object] = {}
    if "cancel_token" in params:
        token = CancellationToken()
        kwargs["cancel_token"] = token

        def _request_cancel(signum, frame):
            if token.cancelled:  # second signal: stop being graceful
                raise KeyboardInterrupt
            token.cancel()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, _request_cancel)
            except (ValueError, OSError):  # pragma: no cover - not main thread
                pass
    try:
        print(module.main(**kwargs))
    except ResourceGovernanceError as exc:
        snapshot = exc.snapshot
        print(f"evaluation stopped: {snapshot.describe()}", file=sys.stderr)
        if snapshot.run_dir:
            print(
                f"checkpoint kept: re-run with --resume {snapshot.run_dir} "
                "to continue from the completed parts",
                file=sys.stderr,
            )
        if isinstance(exc, EvaluationCancelled):
            return 130
        if isinstance(exc, EvaluationDeadlineExceeded):
            return 124
        return 125  # MemoryBudgetExceeded
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .core import LpUnavailableError, set_lp_mode
    from .service import BoundService, BoundServiceServer, ServiceError

    if args.lp is not None:
        try:
            set_lp_mode(args.lp)
        except LpUnavailableError as exc:
            print(f"--lp: {exc}", file=sys.stderr)
            return 2
    relations = {}
    for spec in args.table:
        name, _, path = spec.partition("=")
        if not path:
            print(f"--table expects NAME=PATH, got {spec!r}", file=sys.stderr)
            return 2
        relations[name] = _load_csv_relation(path, name)
    if not relations:
        print("serve needs at least one --table NAME=PATH", file=sys.stderr)
        return 2
    cache_bytes = None
    if args.cache_budget is not None:
        from .evaluation import parse_memory_size

        try:
            cache_bytes = parse_memory_size(args.cache_budget)
        except ValueError as exc:
            print(f"--cache-budget: {exc}", file=sys.stderr)
            return 2
    if args.max_concurrent_evaluations is not None \
            and args.max_concurrent_evaluations < 1:
        print("--max-concurrent-evaluations must be ≥ 1", file=sys.stderr)
        return 2
    if args.evaluate_queue is not None and args.evaluate_queue < 0:
        print("--evaluate-queue must be ≥ 0", file=sys.stderr)
        return 2
    if args.evaluate_queue_timeout < 0:
        print("--evaluate-queue-timeout must be ≥ 0", file=sys.stderr)
        return 2
    service = BoundService(
        Database(relations),
        ps=tuple(args.norms),
        cache_bytes=cache_bytes,
        max_cached_queries=args.max_cached_queries,
        max_cached_statistics=args.max_cached_statistics,
        max_cached_results=args.max_cached_results,
        max_concurrent_evaluations=args.max_concurrent_evaluations,
        max_evaluate_queue=args.evaluate_queue,
        evaluate_queue_timeout=args.evaluate_queue_timeout,
    )
    if args.warm:
        try:
            warmed = service.precompute(args.warm)
        except ServiceError as exc:
            print(f"--warm: {exc.message}", file=sys.stderr)
            return 2
        print(f"warmed {warmed} query template(s)", file=sys.stderr)
    server = BoundServiceServer(
        service, (args.host, args.port), log_requests=args.log_requests
    )
    print(f"serving on {server.url} (lp mode: "
          f"{service.solver.resolved_lp_mode()}); Ctrl-C stops", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    for key, module_name in EXPERIMENTS.items():
        print(f"{key:5s} repro.experiments.{module_name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LpBound: join size bounds from lp-norms (PODS 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bound = sub.add_parser("bound", help="bound queries over CSV tables")
    bound.add_argument(
        "--query",
        required=True,
        action="append",
        help="datalog-style query (repeatable: queries share one "
        "statistics pass and solver)",
    )
    bound.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker threads for solving many queries (default: cpu count)",
    )
    bound.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="CSV file backing a relation (repeatable)",
    )
    bound.add_argument(
        "--norms",
        type=_parse_norms,
        default=[1.0, 2.0, 3.0, math.inf],
        help="comma-separated p values, e.g. 1,2,3,inf",
    )
    bound.set_defaults(func=_cmd_bound)

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("id", help="experiment id (E1..E14) or module name")
    experiment.add_argument(
        "--frontier-block",
        type=int,
        default=None,
        metavar="N",
        help="cap the WCOJ's live frontier at N candidate bindings per "
        "level (experiments that evaluate queries, e.g. E14); results "
        "are bit-identical to the unblocked run",
    )
    experiment.add_argument(
        "--kernels",
        choices=("auto", "numba", "python"),
        default=None,
        help="trie-kernel implementation for the evaluators: 'numba' "
        "requires the compiled kernels (install repro[kernels]), "
        "'python' forces the NumPy oracle path, 'auto' (the default) "
        "uses the compiled kernels when available; outputs are "
        "bit-identical across modes",
    )
    experiment.add_argument(
        "--sink",
        choices=("materialize", "count", "spill"),
        default=None,
        help="route the evaluators' output through one sink mode "
        "(experiments that evaluate queries, e.g. E14): materialize "
        "the rows, count them in O(1) memory, or spill them to disk "
        "segments; counts, row order, and meters are bit-identical "
        "across sinks",
    )
    experiment.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="directory for --sink spill segment files (default: a "
        "temporary directory); concurrent runs must use distinct "
        "directories",
    )
    experiment.add_argument(
        "--parallel-workers",
        type=int,
        default=None,
        metavar="N",
        help="also run the supervised parallel evaluator with N worker "
        "processes over the Lemma 2.5 part combinations (experiments "
        "that evaluate queries, e.g. E8/E14); results are verified "
        "against the serial run",
    )
    experiment.add_argument(
        "--part-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per part attempt before the worker is "
        "killed and the part retried (requires --parallel-workers)",
    )
    experiment.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="extra attempts per part before serial degradation "
        "(requires --parallel-workers)",
    )
    experiment.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="checkpoint directory: completed parts recorded there are "
        "not re-evaluated on re-invocation (requires "
        "--parallel-workers)",
    )
    experiment.add_argument(
        "--memory-budget",
        default=None,
        metavar="SPEC",
        help="memory budget for governed evaluation (experiments that "
        "evaluate queries, e.g. E14): 'HARD' or 'SOFT:HARD' with K/M/G "
        "suffixes (256M, 128M:512M); crossing the soft watermark walks "
        "a degradation ladder (smaller frontier blocks, then spilling) "
        "without changing results; reaching the hard cap aborts with a "
        "diagnostic snapshot and exit code 125",
    )
    experiment.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline for the experiment's evaluations; "
        "checked cooperatively at block boundaries, exceeded deadlines "
        "abort with a diagnostic and exit code 124; with "
        "--parallel-workers the remaining time is apportioned to each "
        "part",
    )
    experiment.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="chaos mode: deterministic fault plan for the parallel "
        "workers, e.g. 'part=3:hang,part=5:exit' or "
        "'seed=7,rate=0.3,kinds=raise+exit'; kinds 'memory' and "
        "'clock' bias the workers' governors (pair with "
        "--memory-budget/--deadline) (requires --parallel-workers)",
    )
    experiment.set_defaults(func=_cmd_experiment)

    serve = sub.add_parser(
        "serve", help="run the bound-serving HTTP service over CSV tables"
    )
    serve.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="CSV file backing a relation (repeatable; at least one)",
    )
    serve.add_argument(
        "--norms",
        type=_parse_norms,
        default=[1.0, 2.0, math.inf],
        help="norm family collected per query, e.g. 1,2,inf (requests "
        "may restrict to a sub-family but not widen it)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8750,
        help="bind port (default: 8750; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--warm",
        action="append",
        default=[],
        metavar="QUERY",
        help="query template to precompute at startup (repeatable): one "
        "batched statistics pass plus one solve, so the first real "
        "request is already a cache hit",
    )
    serve.add_argument(
        "--lp",
        choices=("auto", "persistent", "oneshot"),
        default=None,
        help="LP solve mode: 'persistent' keeps one warm HiGHS model "
        "per LP structure (install repro[service]), 'oneshot' forces "
        "the scipy path, 'auto' (the default) uses persistent when "
        "highspy is available; bounds agree to 1e-6 across modes",
    )
    serve.add_argument(
        "--cache-budget",
        default=None,
        metavar="SIZE",
        help="total byte budget for the service's caches (parsed "
        "queries, statistics, solver results/assemblies) with K/M/G "
        "suffixes, e.g. 64M; least-recently-used entries are evicted "
        "beyond it (evictions surface in /metrics); default: unbounded",
    )
    serve.add_argument(
        "--max-cached-queries",
        type=int,
        default=None,
        metavar="N",
        help="entry cap for the parsed-query cache (default: unbounded)",
    )
    serve.add_argument(
        "--max-cached-statistics",
        type=int,
        default=None,
        metavar="N",
        help="entry cap for the per-query statistics cache "
        "(default: unbounded)",
    )
    serve.add_argument(
        "--max-cached-results",
        type=int,
        default=None,
        metavar="N",
        help="entry cap for the solver's result memo (default: unbounded)",
    )
    serve.add_argument(
        "--max-concurrent-evaluations",
        type=int,
        default=None,
        metavar="N",
        help="/evaluate admission cap: at most N evaluations run at "
        "once (default: half the cores, at least 1); /bound is never "
        "capped or queued",
    )
    serve.add_argument(
        "--evaluate-queue",
        type=int,
        default=None,
        metavar="N",
        help="waiters admitted beyond the cap before /evaluate refuses "
        "with a typed 429 (default: 2x the cap)",
    )
    serve.add_argument(
        "--evaluate-queue-timeout",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="longest a queued /evaluate waits for a slot before the "
        "typed 429 refusal (default: 2.0)",
    )
    serve.add_argument(
        "--log-requests",
        action="store_true",
        help="log one line per HTTP request to stderr",
    )
    serve.set_defaults(func=_cmd_serve)

    lister = sub.add_parser("list", help="list available experiments")
    lister.set_defaults(func=_cmd_list)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
