"""Admission control for the service's expensive ``/evaluate`` endpoint.

Bounds are the cheap product — a warm one is a dictionary hit — so they
are never queued.  Evaluations run a governed worst-case-optimal join
and can hold a core for seconds, so the service bounds *both* the
concurrency and the queue in front of it:

* at most ``max_concurrent`` evaluations run at once;
* beyond the cap, up to ``max_queue`` requests **wait** (FIFO by lock
  fairness) for at most ``queue_timeout_seconds``;
* beyond the queue — or once a waiter's timeout lapses — the request is
  **refused** with the typed ``overloaded`` error (HTTP 429) carrying
  the live queue depth and a retry-after hint.

In-flight work is never killed: an admitted evaluation always runs to
its own verdict (success or a per-request budget stop); overload only
ever refuses work *before* it starts.  All waiting happens on a
:class:`threading.Condition` with monotonic-clock deadlines, so an NTP
step can neither starve nor instantly expire a waiter.
"""

from __future__ import annotations

import threading
import time

from .protocol import ServiceError

__all__ = ["AdmissionController"]


class AdmissionController:
    """A bounded concurrency gate with a bounded, timed wait queue.

    Use as a context manager around the guarded work::

        with controller.admit():       # may raise ServiceError("overloaded")
            ...                        # at most max_concurrent of these

    ``retry_after_seconds`` (carried in the refusal's ``detail`` and the
    HTTP ``Retry-After`` header) is a hint: the configured queue timeout
    plus the caller-supplied latency estimate, i.e. roughly when a slot
    is likely to have turned over.
    """

    def __init__(
        self,
        max_concurrent: int,
        max_queue: int = 0,
        queue_timeout_seconds: float = 2.0,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be ≥ 1")
        if max_queue < 0:
            raise ValueError("max_queue must be ≥ 0")
        if queue_timeout_seconds < 0:
            raise ValueError("queue_timeout_seconds must be ≥ 0")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.queue_timeout_seconds = queue_timeout_seconds
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0
        self.admitted = 0
        self.completed = 0
        self.rejected_queue_full = 0
        self.rejected_timeout = 0
        self.peak_queue_depth = 0

    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        return self._active

    @property
    def queued(self) -> int:
        return self._waiting

    def stats(self) -> dict[str, int | float]:
        """The accounting block ``/metrics`` renders."""
        with self._cond:
            return {
                "max_concurrent": self.max_concurrent,
                "max_queue": self.max_queue,
                "queue_timeout_seconds": self.queue_timeout_seconds,
                "active": self._active,
                "queued": self._waiting,
                "admitted": self.admitted,
                "completed": self.completed,
                "rejected_queue_full": self.rejected_queue_full,
                "rejected_timeout": self.rejected_timeout,
                "peak_queue_depth": self.peak_queue_depth,
            }

    # ------------------------------------------------------------------
    def _overloaded(
        self, kind: str, retry_after: float
    ) -> ServiceError:
        # called with self._cond held
        depth = self._waiting
        return ServiceError(
            "overloaded",
            f"evaluation capacity exhausted ({self._active} in flight, "
            f"{depth} queued, queue limit {self.max_queue}): {kind}; "
            f"retry after ~{retry_after:.1f}s",
            detail={
                "queue_depth": depth,
                "max_queue": self.max_queue,
                "active": self._active,
                "max_concurrent": self.max_concurrent,
                "retry_after_seconds": retry_after,
            },
        )

    def acquire(self, retry_after_hint: float = 0.0) -> None:
        """Admit the calling thread or raise the typed 429.

        ``retry_after_hint`` (seconds, e.g. the observed median
        evaluation latency) is folded into the refusal's retry-after.
        """
        retry_after = round(self.queue_timeout_seconds + retry_after_hint, 3)
        deadline = time.monotonic() + self.queue_timeout_seconds
        with self._cond:
            if self._active < self.max_concurrent:
                self._active += 1
                self.admitted += 1
                return
            if self._waiting >= self.max_queue:
                self.rejected_queue_full += 1
                raise self._overloaded("queue full", retry_after)
            self._waiting += 1
            self.peak_queue_depth = max(self.peak_queue_depth, self._waiting)
            try:
                while self._active >= self.max_concurrent:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.rejected_timeout += 1
                        raise self._overloaded(
                            "queue wait timed out", retry_after
                        )
                    self._cond.wait(remaining)
                self._active += 1
                self.admitted += 1
            finally:
                self._waiting -= 1

    def release(self) -> None:
        with self._cond:
            self._active -= 1
            self.completed += 1
            self._cond.notify()

    # ------------------------------------------------------------------
    def admit(self, retry_after_hint: float = 0.0) -> "_Admission":
        return _Admission(self, retry_after_hint)


class _Admission:
    """The context manager returned by :meth:`AdmissionController.admit`."""

    def __init__(
        self, controller: AdmissionController, retry_after_hint: float
    ) -> None:
        self._controller = controller
        self._hint = retry_after_hint

    def __enter__(self) -> "_Admission":
        self._controller.acquire(self._hint)
        return self

    def __exit__(self, *exc_info) -> None:
        self._controller.release()
