"""The bound-serving service: hot caches behind a request interface.

:class:`BoundService` is the long-lived object the ROADMAP's
"millions of users" direction asks for: it owns one
:class:`~repro.core.StatisticsCatalog` (degree sequences and norms
computed once per database) and one :class:`~repro.core.BoundSolver`
(constraint skeletons, warm persistent HiGHS models under
``REPRO_LP=persistent``, and a result memo), and answers cardinality-
bound requests at optimizer-call rates — the warm path (a repeated
sub-plan during join-order search) is a dictionary hit plus JSON, well
under a millisecond.

Evaluation requests are the expensive product, so every one the service
dispatches carries a per-request
:class:`~repro.evaluation.EvaluationBudget` enforced by an
:class:`~repro.evaluation.EvaluationGovernor`: an oversized query
degrades along the proven ladder or stops with a *typed verdict*
(:class:`~repro.service.protocol.ServiceError` codes ``budget-*``)
instead of taking the process down — the next request is served as if
nothing happened.

The service is transport-agnostic; :mod:`repro.service.server` puts an
HTTP front-end on it, and tests/benchmarks call it directly.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque

from ..core import BoundSolver, StatisticsCatalog, product_form
from ..evaluation import (
    CancellationToken,
    EvaluationCancelled,
    EvaluationDeadlineExceeded,
    EvaluationGovernor,
    MemoryBudgetExceeded,
    ResourceGovernanceError,
    budget_from_spec,
    generic_join,
)
from ..query import ConjunctiveQuery, parse_query
from ..relational import Database
from ..relational.columnar import CountSink
from .protocol import (
    BoundRequest,
    BoundResponse,
    EvaluateRequest,
    EvaluateResponse,
    ServiceError,
    encode_float,
)

__all__ = ["BoundService"]

#: Per-endpoint latency samples kept for the /metrics percentiles.
_LATENCY_WINDOW = 8192

_VERDICT_CODES = {
    MemoryBudgetExceeded: "budget-memory",
    EvaluationDeadlineExceeded: "budget-deadline",
    EvaluationCancelled: "budget-cancelled",
}


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list."""
    rank = max(0, min(len(samples) - 1, round(q * (len(samples) - 1))))
    return samples[rank]


class BoundService:
    """Precomputed statistics + hot solver caches behind request methods.

    Parameters
    ----------
    db:
        The served database; statistics are extracted lazily (or up
        front via :meth:`precompute`) and cached for the process's life.
    ps:
        The norm family collected per query (requests may narrow it via
        ``family`` but every request is served from this superset's
        statistics, so distinct families share one catalog pass).
    lp_mode:
        Pins the solver's LP mode; ``None`` follows ``REPRO_LP``.
    """

    def __init__(
        self,
        db: Database,
        ps: tuple[float, ...] = (1.0, 2.0, float("inf")),
        lp_mode: str | None = None,
    ) -> None:
        self._db = db
        self._ps = tuple(float(p) for p in ps)
        self._catalog = StatisticsCatalog(db)
        self._solver = BoundSolver(lp_mode=lp_mode)
        self._queries: dict[str, ConjunctiveQuery] = {}
        self._statistics: dict[str, object] = {}
        self._lock = threading.Lock()
        self._started = time.time()
        self.requests = Counter()
        self.errors = Counter()
        self.statistics_hits = 0
        self.statistics_misses = 0
        self._latencies: dict[str, deque] = {
            "bound": deque(maxlen=_LATENCY_WINDOW),
            "evaluate": deque(maxlen=_LATENCY_WINDOW),
        }

    @property
    def database(self) -> Database:
        return self._db

    @property
    def solver(self) -> BoundSolver:
        return self._solver

    @property
    def catalog(self) -> StatisticsCatalog:
        return self._catalog

    # ------------------------------------------------------------------
    def precompute(self, query_texts: list[str] | tuple[str, ...]) -> int:
        """Warm every cache layer for a known workload of query templates.

        One batched catalog pass (shared lexsorts, multi-p norm batches)
        plus one solve per template: after this, a request for any
        warmed template is a result-memo hit.  Returns the number of
        templates warmed.
        """
        queries = [self._parse(text) for text in query_texts]
        stat_sets = self._catalog.precompute(queries, ps=self._ps)
        for query, stats in zip(queries, stat_sets):
            self._statistics[self._stats_key(query)] = stats
            self._solver.solve(stats, query=query)
        return len(queries)

    # ------------------------------------------------------------------
    def _parse(self, text: str) -> ConjunctiveQuery:
        cached = self._queries.get(text)
        if cached is not None:
            return cached
        try:
            query = parse_query(text)
        except ValueError as exc:
            raise ServiceError("parse-error", str(exc)) from exc
        for atom in query.atoms:
            if atom.relation not in self._db:
                raise ServiceError(
                    "unknown-relation",
                    f"query names relation {atom.relation!r}; the service "
                    f"holds {sorted(self._db)}",
                )
        with self._lock:
            return self._queries.setdefault(text, query)

    def _stats_key(self, query: ConjunctiveQuery) -> str:
        # the canonical rendering: textually different but equivalent
        # request strings share one statistics entry
        return str(query)

    def _statistics_for(self, query: ConjunctiveQuery):
        key = self._stats_key(query)
        with self._lock:
            stats = self._statistics.get(key)
            if stats is not None:
                self.statistics_hits += 1
                return stats
            self.statistics_misses += 1
        stats = self._catalog.statistics_for(query, ps=self._ps)
        with self._lock:
            return self._statistics.setdefault(key, stats)

    def _record(self, endpoint: str, elapsed_ms: float) -> None:
        with self._lock:
            self.requests[endpoint] += 1
            self._latencies[endpoint].append(elapsed_ms)

    def _fail(self, endpoint: str, error: ServiceError) -> ServiceError:
        with self._lock:
            self.requests[endpoint] += 1
            self.errors[error.code] += 1
        return error

    # ------------------------------------------------------------------
    def bound(self, request: BoundRequest) -> BoundResponse:
        """Answer one cardinality-bound request from the hot caches."""
        start = time.perf_counter()
        try:
            query = self._parse(request.query)
            stats = self._statistics_for(query)
            if request.cone not in ("auto", "polymatroid", "normal", "modular"):
                raise ServiceError(
                    "bad-request", f"unknown cone {request.cone!r}"
                )
            hits_before = self._solver.result_hits
            try:
                if request.family is not None:
                    result = self._solver.solve_family(
                        stats, request.family, query=query, cone=request.cone
                    )
                else:
                    family = tuple(request.ps)
                    if set(family) != set(self._ps):
                        # a request for a narrower norm family is a
                        # family restriction of the cached statistics
                        result = self._solver.solve_family(
                            stats, family, query=query, cone=request.cone
                        )
                    else:
                        result = self._solver.solve(
                            stats, query=query, cone=request.cone
                        )
            except ValueError as exc:
                raise ServiceError("bad-request", str(exc)) from exc
            cached = self._solver.result_hits > hits_before
        except ServiceError as exc:
            raise self._fail("bound", exc)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        self._record("bound", elapsed_ms)
        certificate = (
            product_form(result) if result.status == "optimal" else ""
        )
        return BoundResponse(
            log2_bound=result.log2_bound,
            bound=result.bound,
            cone=result.cone,
            status=result.status,
            norms_used=tuple(result.norms_used()),
            certificate=certificate,
            cached=cached,
            elapsed_ms=elapsed_ms,
        )

    # ------------------------------------------------------------------
    def evaluate(self, request: EvaluateRequest) -> EvaluateResponse:
        """Dispatch one *governed* evaluation (exact count) request.

        The request's budget is enforced at every frontier-block
        boundary; soft pressure degrades (smaller blocks — results are
        bit-identical), a hard stop surfaces as a typed ``budget-*``
        :class:`ServiceError` with the governor's snapshot in the
        detail — the service keeps serving.
        """
        start = time.perf_counter()
        try:
            query = self._parse(request.query)
            try:
                budget = budget_from_spec(
                    memory=request.memory_budget,
                    deadline=request.deadline_seconds,
                )
            except ValueError as exc:
                raise ServiceError("bad-request", str(exc)) from exc
            governor = (
                EvaluationGovernor(budget, token=CancellationToken())
                if budget is not None
                else None
            )
            try:
                run = generic_join(
                    query,
                    self._db,
                    frontier_block=request.frontier_block,
                    sink=CountSink(),
                    governor=governor,
                )
            except ResourceGovernanceError as exc:
                snapshot = exc.snapshot
                raise ServiceError(
                    _VERDICT_CODES.get(type(exc), "budget-cancelled"),
                    snapshot.describe(),
                    detail={
                        "reason": snapshot.reason,
                        "nodes_visited": snapshot.nodes_visited,
                        "elapsed_seconds": snapshot.elapsed_seconds,
                        "memory_bytes": snapshot.memory_bytes,
                        "peak_memory_bytes": snapshot.peak_memory_bytes,
                        "ladder": list(snapshot.ladder),
                    },
                ) from exc
        except ServiceError as exc:
            raise self._fail("evaluate", exc)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        self._record("evaluate", elapsed_ms)
        return EvaluateResponse(
            count=run.count,
            nodes_visited=run.nodes_visited,
            elapsed_ms=elapsed_ms,
            degradations=governor.ladder if governor is not None else (),
        )

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Request counts, cache hit rates, and latency percentiles."""
        solver = self._solver
        with self._lock:
            latencies = {
                endpoint: sorted(samples)
                for endpoint, samples in self._latencies.items()
            }
            requests = dict(self.requests)
            errors = dict(self.errors)
            stats_hits = self.statistics_hits
            stats_misses = self.statistics_misses
        latency_summary = {}
        for endpoint, samples in latencies.items():
            if samples:
                latency_summary[endpoint] = {
                    "count": len(samples),
                    "p50_ms": encode_float(_percentile(samples, 0.50)),
                    "p99_ms": encode_float(_percentile(samples, 0.99)),
                    "max_ms": encode_float(samples[-1]),
                }
            else:
                latency_summary[endpoint] = {"count": 0}
        return {
            "uptime_seconds": time.time() - self._started,
            "requests": requests,
            "errors": errors,
            "lp_mode": solver.resolved_lp_mode(),
            "solver": {
                "assembly_hits": solver.assembly_hits,
                "assembly_misses": solver.assembly_misses,
                "result_hits": solver.result_hits,
                "solves": solver.solves,
                "persistent_resolves": solver.persistent_resolves,
                "cached_assemblies": solver.cached_assemblies(),
                "cached_models": solver.cached_models(),
                "cached_results": solver.cached_results(),
            },
            "catalog": self._catalog.cache_stats(),
            "statistics_cache": {
                "hits": stats_hits,
                "misses": stats_misses,
            },
            "latency": latency_summary,
        }
