"""The bound-serving service: hot caches behind a request interface.

:class:`BoundService` is the long-lived object the ROADMAP's
"millions of users" direction asks for: it owns one
:class:`~repro.core.StatisticsCatalog` (degree sequences and norms
computed once per database) and one :class:`~repro.core.BoundSolver`
(constraint skeletons, warm persistent HiGHS models under
``REPRO_LP=persistent``, and a result memo), and answers cardinality-
bound requests at optimizer-call rates — the warm path (a repeated
sub-plan during join-order search) is a dictionary hit plus JSON, well
under a millisecond.

The service is built for **sustained concurrent traffic** (the HTTP
front-end is one thread per connection):

* every shared structure is either read-only after construction or
  mutated under ``self._lock`` / the solver's own lock — the warm
  ``/bound`` path takes each lock for a dictionary operation, never
  for LP work, and whether a solve was a memo hit is read from the
  solver's *thread-local* :attr:`~repro.core.BoundSolver.last_solve_cached`
  flag (shared-counter before/after comparisons are racy);
* every cache layer (parsed queries, per-query statistics, the
  solver's result/assembly/model memos) is LRU under a configurable
  byte/entry budget, so diverse or adversarial query-text traffic
  cannot grow the process without bound — evictions are counted and
  surfaced in :meth:`metrics`;
* ``/evaluate`` — the expensive product — sits behind an
  :class:`~repro.service.admission.AdmissionController`: a concurrency
  cap, a bounded timed queue, and a typed ``overloaded`` refusal
  (HTTP 429) beyond both.  Bounds are never queued.  Admitted
  evaluations still carry their per-request
  :class:`~repro.evaluation.EvaluationBudget`, so an oversized query
  degrades along the proven ladder or stops with a typed ``budget-*``
  verdict instead of taking the process down.

The service is transport-agnostic; :mod:`repro.service.server` puts an
HTTP front-end on it, and tests/benchmarks call it directly.
"""

from __future__ import annotations

import math
import os
import threading
import time
from collections import Counter, deque

from ..core import BoundSolver, LruCache, StatisticsCatalog, product_form
from ..evaluation import (
    CancellationToken,
    EvaluationCancelled,
    EvaluationDeadlineExceeded,
    EvaluationGovernor,
    MemoryBudgetExceeded,
    ResourceGovernanceError,
    budget_from_spec,
    generic_join,
)
from ..query import ConjunctiveQuery, parse_query
from ..relational import Database
from ..relational.columnar import CountSink
from .admission import AdmissionController
from .protocol import (
    BoundRequest,
    BoundResponse,
    EvaluateRequest,
    EvaluateResponse,
    ServiceError,
    encode_float,
)

__all__ = ["BoundService"]

#: Per-endpoint latency samples kept for the /metrics percentiles.
_LATENCY_WINDOW = 8192

#: How a single ``cache_bytes`` budget is apportioned across the cache
#: layers.  Statistics sets and solved results dominate per-entry size;
#: parsed queries are tiny.  Deterministic so capacity planning can
#: reason about it (docs/service.md).
_CACHE_SHARES = {
    "queries": 0.05,
    "statistics": 0.35,
    "results": 0.35,
    "assemblies": 0.25,
}

_VERDICT_CODES = {
    MemoryBudgetExceeded: "budget-memory",
    EvaluationDeadlineExceeded: "budget-deadline",
    EvaluationCancelled: "budget-cancelled",
}


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list.

    The explicit nearest-rank rule: the q-th percentile is the smallest
    sample whose cumulative share is ≥ q, i.e. index ``ceil(q·n) - 1``
    (clamped).  ``round()`` on the rank is wrong twice over: banker's
    rounding sends even-sample midpoints *down* a rank, and
    ``q·(n-1)`` scaling reports p50 of ``[1, 2, 3, 4]`` as 3 — the
    nearest-rank p50 is 2.
    """
    rank = math.ceil(q * len(samples)) - 1
    return samples[max(0, min(len(samples) - 1, rank))]


class BoundService:
    """Precomputed statistics + hot solver caches behind request methods.

    Parameters
    ----------
    db:
        The served database; statistics are extracted lazily (or up
        front via :meth:`precompute`) and cached for the process's life.
    ps:
        The norm family collected per query (requests may narrow it via
        ``family`` but every request is served from this superset's
        statistics, so distinct families share one catalog pass).
    lp_mode:
        Pins the solver's LP mode; ``None`` follows ``REPRO_LP``.
    cache_bytes:
        Total byte budget across the query/statistics caches and the
        solver's result/assembly memos, apportioned by
        :data:`_CACHE_SHARES`.  ``None`` (default) leaves the caches
        unbounded by bytes.
    max_cached_queries / max_cached_statistics / max_cached_results /
    max_cached_assemblies:
        Per-layer entry caps (each ``None`` = uncapped).  Persistent
        HiGHS models share the assemblies' cap — their memory is
        native and invisible to the byte estimator.
    max_concurrent_evaluations:
        ``/evaluate`` concurrency cap (default: half the cores, ≥ 1).
    max_evaluate_queue:
        Waiters admitted beyond the cap (default: 2 × the cap).
    evaluate_queue_timeout:
        Seconds a waiter may queue before the typed 429 refusal.
    """

    def __init__(
        self,
        db: Database,
        ps: tuple[float, ...] = (1.0, 2.0, float("inf")),
        lp_mode: str | None = None,
        *,
        cache_bytes: int | None = None,
        max_cached_queries: int | None = None,
        max_cached_statistics: int | None = None,
        max_cached_results: int | None = None,
        max_cached_assemblies: int | None = None,
        max_concurrent_evaluations: int | None = None,
        max_evaluate_queue: int | None = None,
        evaluate_queue_timeout: float = 2.0,
    ) -> None:
        if cache_bytes is not None and cache_bytes < 1:
            raise ValueError("cache_bytes must be ≥ 1")
        self._db = db
        self._ps = tuple(float(p) for p in ps)
        self._catalog = StatisticsCatalog(db)
        share = dict.fromkeys(_CACHE_SHARES, None)
        if cache_bytes is not None:
            share = {
                layer: max(1, int(cache_bytes * fraction))
                for layer, fraction in _CACHE_SHARES.items()
            }
        self._solver = BoundSolver(
            lp_mode=lp_mode,
            max_cached_results=max_cached_results,
            result_cache_bytes=share["results"],
            max_cached_assemblies=max_cached_assemblies,
            assembly_cache_bytes=share["assemblies"],
        )
        self._queries: LruCache = LruCache(
            max_cached_queries, share["queries"]
        )
        self._statistics: LruCache = LruCache(
            max_cached_statistics, share["statistics"]
        )
        self._cache_bytes = cache_bytes
        if max_concurrent_evaluations is None:
            max_concurrent_evaluations = max(1, (os.cpu_count() or 2) // 2)
        if max_evaluate_queue is None:
            max_evaluate_queue = 2 * max_concurrent_evaluations
        self._admission = AdmissionController(
            max_concurrent_evaluations,
            max_evaluate_queue,
            evaluate_queue_timeout,
        )
        self._lock = threading.Lock()
        # monotonic: an NTP step must not make uptime jump or go negative
        self._started = time.monotonic()
        self.requests = Counter()
        self.errors = Counter()
        self.statistics_hits = 0
        self.statistics_misses = 0
        self._latencies: dict[str, deque] = {
            "bound": deque(maxlen=_LATENCY_WINDOW),
            "evaluate": deque(maxlen=_LATENCY_WINDOW),
        }

    @property
    def database(self) -> Database:
        return self._db

    @property
    def solver(self) -> BoundSolver:
        return self._solver

    @property
    def catalog(self) -> StatisticsCatalog:
        return self._catalog

    @property
    def admission(self) -> AdmissionController:
        return self._admission

    # ------------------------------------------------------------------
    def precompute(self, query_texts: list[str] | tuple[str, ...]) -> int:
        """Warm every cache layer for a known workload of query templates.

        One batched catalog pass (shared lexsorts, multi-p norm batches)
        plus one solve per template: after this, a request for any
        warmed template is a result-memo hit.  Returns the number of
        templates warmed.  Safe against a live server: the statistics
        cache is only ever touched under ``self._lock``, so warming
        cannot lose or clobber entries written by concurrent requests.
        """
        queries = [self._parse(text) for text in query_texts]
        stat_sets = self._catalog.precompute(queries, ps=self._ps)
        for query, stats in zip(queries, stat_sets):
            with self._lock:
                stats = self._statistics.add(self._stats_key(query), stats)
            self._solver.solve(stats, query=query)
        return len(queries)

    # ------------------------------------------------------------------
    def _parse(self, text: str) -> ConjunctiveQuery:
        # lock-free recency-neutral probe (atomic dict read); the lock
        # is taken only to bump LRU recency or store a fresh parse
        cached = self._queries.peek(text)
        if cached is not None:
            with self._lock:
                self._queries.touch(text)
            return cached
        try:
            query = parse_query(text)
        except ValueError as exc:
            raise ServiceError("parse-error", str(exc)) from exc
        for atom in query.atoms:
            if atom.relation not in self._db:
                raise ServiceError(
                    "unknown-relation",
                    f"query names relation {atom.relation!r}; the service "
                    f"holds {sorted(self._db)}",
                )
        with self._lock:
            return self._queries.add(text, query)

    def _stats_key(self, query: ConjunctiveQuery) -> str:
        # the canonical rendering: textually different but equivalent
        # request strings share one statistics entry
        return str(query)

    def _statistics_for(self, query: ConjunctiveQuery):
        key = self._stats_key(query)
        with self._lock:
            stats = self._statistics.get(key)
            if stats is not None:
                self.statistics_hits += 1
                return stats
            self.statistics_misses += 1
        stats = self._catalog.statistics_for(query, ps=self._ps)
        with self._lock:
            return self._statistics.add(key, stats)

    def _record(self, endpoint: str, elapsed_ms: float) -> None:
        with self._lock:
            self.requests[endpoint] += 1
            self._latencies[endpoint].append(elapsed_ms)

    def _fail(self, endpoint: str, error: ServiceError) -> ServiceError:
        with self._lock:
            self.requests[endpoint] += 1
            self.errors[error.code] += 1
        return error

    def _evaluate_latency_hint(self) -> float:
        """A cheap recent-latency estimate (seconds) for retry-after."""
        with self._lock:
            recent = list(self._latencies["evaluate"])[-32:]
        if not recent:
            return 0.0
        return (sum(recent) / len(recent)) / 1e3

    def cache_bytes_used(self) -> int:
        """Total bytes currently charged against the cache budget."""
        with self._lock:
            service_bytes = (
                self._queries.current_bytes + self._statistics.current_bytes
            )
        solver_stats = self._solver.cache_stats()
        return service_bytes + sum(
            layer["bytes"] or 0
            for name, layer in solver_stats.items()
            if name != "models"
        )

    # ------------------------------------------------------------------
    def bound(self, request: BoundRequest) -> BoundResponse:
        """Answer one cardinality-bound request from the hot caches."""
        start = time.perf_counter()
        try:
            query = self._parse(request.query)
            stats = self._statistics_for(query)
            if request.cone not in ("auto", "polymatroid", "normal", "modular"):
                raise ServiceError(
                    "bad-request", f"unknown cone {request.cone!r}"
                )
            try:
                if request.family is not None:
                    result = self._solver.solve_family(
                        stats, request.family, query=query, cone=request.cone
                    )
                else:
                    family = tuple(request.ps)
                    if set(family) != set(self._ps):
                        # a request for a narrower norm family is a
                        # family restriction of the cached statistics
                        result = self._solver.solve_family(
                            stats, family, query=query, cone=request.cone
                        )
                    else:
                        result = self._solver.solve(
                            stats, query=query, cone=request.cone
                        )
            except ValueError as exc:
                raise ServiceError("bad-request", str(exc)) from exc
            # thread-local, so concurrent requests cannot misattribute
            # each other's memo hits (a shared-counter before/after
            # comparison would)
            cached = self._solver.last_solve_cached
        except ServiceError as exc:
            raise self._fail("bound", exc)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        self._record("bound", elapsed_ms)
        certificate = (
            product_form(result) if result.status == "optimal" else ""
        )
        return BoundResponse(
            log2_bound=result.log2_bound,
            bound=result.bound,
            cone=result.cone,
            status=result.status,
            norms_used=tuple(result.norms_used()),
            certificate=certificate,
            cached=cached,
            elapsed_ms=elapsed_ms,
        )

    # ------------------------------------------------------------------
    def evaluate(self, request: EvaluateRequest) -> EvaluateResponse:
        """Dispatch one *admitted, governed* evaluation (exact count).

        Admission first: beyond the concurrency cap the request waits
        in the bounded queue up to the configured timeout, beyond that
        it is refused with the typed ``overloaded`` 429 — in-flight
        evaluations always run to their own verdict.  The admitted
        request's budget is then enforced at every frontier-block
        boundary; soft pressure degrades (smaller blocks — results are
        bit-identical), a hard stop surfaces as a typed ``budget-*``
        :class:`ServiceError` with the governor's snapshot in the
        detail — the service keeps serving.
        """
        start = time.perf_counter()
        try:
            query = self._parse(request.query)
            try:
                budget = budget_from_spec(
                    memory=request.memory_budget,
                    deadline=request.deadline_seconds,
                )
            except ValueError as exc:
                raise ServiceError("bad-request", str(exc)) from exc
            with self._admission.admit(self._evaluate_latency_hint()):
                governor = (
                    EvaluationGovernor(budget, token=CancellationToken())
                    if budget is not None
                    else None
                )
                try:
                    run = generic_join(
                        query,
                        self._db,
                        frontier_block=request.frontier_block,
                        sink=CountSink(),
                        governor=governor,
                    )
                except ResourceGovernanceError as exc:
                    snapshot = exc.snapshot
                    raise ServiceError(
                        _VERDICT_CODES.get(type(exc), "budget-cancelled"),
                        snapshot.describe(),
                        detail={
                            "reason": snapshot.reason,
                            "nodes_visited": snapshot.nodes_visited,
                            "elapsed_seconds": snapshot.elapsed_seconds,
                            "memory_bytes": snapshot.memory_bytes,
                            "peak_memory_bytes": snapshot.peak_memory_bytes,
                            "ladder": list(snapshot.ladder),
                        },
                    ) from exc
        except ServiceError as exc:
            raise self._fail("evaluate", exc)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        self._record("evaluate", elapsed_ms)
        return EvaluateResponse(
            count=run.count,
            nodes_visited=run.nodes_visited,
            elapsed_ms=elapsed_ms,
            degradations=governor.ladder if governor is not None else (),
        )

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Request counts, cache budgets/hit rates, admission state,
        and latency percentiles."""
        solver = self._solver
        with self._lock:
            latencies = {
                endpoint: sorted(samples)
                for endpoint, samples in self._latencies.items()
            }
            requests = dict(self.requests)
            errors = dict(self.errors)
            stats_hits = self.statistics_hits
            stats_misses = self.statistics_misses
            query_cache = self._queries.stats()
            statistics_cache = self._statistics.stats()
            uptime = time.monotonic() - self._started
        solver_caches = solver.cache_stats()
        latency_summary = {}
        for endpoint, samples in latencies.items():
            if samples:
                latency_summary[endpoint] = {
                    "count": len(samples),
                    "p50_ms": encode_float(_percentile(samples, 0.50)),
                    "p99_ms": encode_float(_percentile(samples, 0.99)),
                    "max_ms": encode_float(samples[-1]),
                }
            else:
                latency_summary[endpoint] = {"count": 0}
        total_bytes = (
            (query_cache["bytes"] or 0)
            + (statistics_cache["bytes"] or 0)
            + sum(
                layer["bytes"] or 0
                for name, layer in solver_caches.items()
                if name != "models"
            )
        )
        return {
            "uptime_seconds": uptime,
            "requests": requests,
            "errors": errors,
            "lp_mode": solver.resolved_lp_mode(),
            "solver": {
                "assembly_hits": solver.assembly_hits,
                "assembly_misses": solver.assembly_misses,
                "result_hits": solver.result_hits,
                "solves": solver.solves,
                "persistent_resolves": solver.persistent_resolves,
                "cached_assemblies": solver.cached_assemblies(),
                "cached_models": solver.cached_models(),
                "cached_results": solver.cached_results(),
            },
            "catalog": self._catalog.cache_stats(),
            "statistics_cache": {
                "hits": stats_hits,
                "misses": stats_misses,
            },
            "caches": {
                "budget_bytes": self._cache_bytes,
                "total_bytes": total_bytes,
                "queries": query_cache,
                "statistics": statistics_cache,
                "solver_results": solver_caches["results"],
                "solver_assemblies": solver_caches["assemblies"],
                "solver_models": solver_caches["models"],
            },
            "admission": self._admission.stats(),
            "latency": latency_summary,
        }
