"""Stdlib HTTP front-end for :class:`~repro.service.service.BoundService`.

A :class:`~http.server.ThreadingHTTPServer` (one thread per connection,
HTTP/1.1 keep-alive) serving four endpoints:

``POST /bound``
    :class:`~repro.service.protocol.BoundRequest` →
    :class:`~repro.service.protocol.BoundResponse`.
``POST /evaluate``
    :class:`~repro.service.protocol.EvaluateRequest` →
    :class:`~repro.service.protocol.EvaluateResponse`; budget verdicts
    come back as typed 422s, never a 500.
``GET /metrics``
    The service's counters, cache hit rates, and latency percentiles.
``GET /healthz``
    Liveness probe.

:func:`start_server` runs the server on a daemon thread (tests,
examples, benchmarks); the CLI's ``repro serve`` drives
:meth:`~socketserver.BaseServer.serve_forever` on the main thread.
:class:`BoundClient` is the matching stdlib client, reusing one
keep-alive connection per instance.
"""

from __future__ import annotations

import http.client
import json
import math
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .protocol import (
    BoundRequest,
    BoundResponse,
    EvaluateRequest,
    EvaluateResponse,
    ServiceError,
)
from .service import BoundService

__all__ = ["BoundServiceServer", "BoundClient", "start_server"]

#: Request bodies beyond this are refused (typed, before JSON parsing).
_MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    # HTTP/1.1 enables keep-alive: a planner loop issues thousands of
    # requests over one connection instead of a TCP handshake per bound
    protocol_version = "HTTP/1.1"
    server_version = "repro-bound-service"
    # headers and body are separate small writes; without TCP_NODELAY the
    # second one can sit behind Nagle + delayed-ACK for ~40 ms per request
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "log_requests", False):  # pragma: no cover
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, error: ServiceError) -> None:
        headers = None
        if error.code == "overloaded":
            # the standard header mirrors detail.retry_after_seconds so
            # off-the-shelf clients back off without parsing the body
            retry_after = error.detail.get("retry_after_seconds", 1)
            headers = {"Retry-After": str(max(1, math.ceil(retry_after)))}
        self._send_json(error.http_status, error.to_payload(), headers)

    def _read_payload(self) -> dict[str, Any]:
        length = self.headers.get("Content-Length")
        try:
            size = int(length or "")
        except ValueError:
            raise ServiceError(
                "bad-request", "missing or invalid Content-Length"
            ) from None
        if size > _MAX_BODY_BYTES:
            raise ServiceError(
                "bad-request", f"request body exceeds {_MAX_BODY_BYTES} bytes"
            )
        body = self.rfile.read(size)
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                "bad-request", f"request body is not JSON: {exc}"
            ) from exc
        return payload

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service: BoundService = self.server.service
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/metrics":
            self._send_json(200, service.metrics())
        else:
            self._send_error(
                ServiceError("not-found", f"no such endpoint: GET {self.path}")
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        service: BoundService = self.server.service
        try:
            payload = self._read_payload()
            if self.path == "/bound":
                response = service.bound(BoundRequest.from_payload(payload))
            elif self.path == "/evaluate":
                response = service.evaluate(
                    EvaluateRequest.from_payload(payload)
                )
            else:
                raise ServiceError(
                    "not-found", f"no such endpoint: POST {self.path}"
                )
        except ServiceError as exc:
            self._send_error(exc)
            return
        except Exception as exc:  # a bug, but the process must keep serving
            self._send_error(
                ServiceError("internal", f"{type(exc).__name__}: {exc}")
            )
            return
        self._send_json(200, response.to_payload())


class BoundServiceServer(ThreadingHTTPServer):
    """One service instance behind a threading HTTP server."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service: BoundService,
        address: tuple[str, int] = ("127.0.0.1", 0),
        log_requests: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.log_requests = log_requests

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def start_server(
    service: BoundService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> BoundServiceServer:
    """Start the HTTP front-end on a daemon thread and return it.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.url``).  Call ``server.shutdown()`` to stop.
    """
    server = BoundServiceServer(service, (host, port))
    thread = threading.Thread(
        target=server.serve_forever,
        name="bound-service-http",
        daemon=True,
    )
    thread.start()
    server._serve_thread = thread
    return server


class BoundClient:
    """A minimal stdlib client for the service's JSON protocol.

    Reuses one keep-alive connection (reconnecting transparently when
    the server closes it).  Raises
    :class:`~repro.service.protocol.ServiceError` for typed error
    responses, so callers handle budget verdicts by code.  Not
    thread-safe — use one client per thread.
    """

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        if url.startswith("http://"):
            url = url[len("http://"):]
        self._netloc = url.rstrip("/")
        self._timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "BoundClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self._netloc, timeout=self._timeout
                )
                self._connection.connect()
                # same Nagle/delayed-ACK stall as the server side: the
                # request line+headers and the JSON body are two writes
                self._connection.sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            try:
                self._connection.request(method, path, body, headers)
                response = self._connection.getresponse()
                data = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                # a dropped keep-alive connection: reconnect once
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(data)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                "internal", f"non-JSON response ({response.status}): {exc}"
            ) from exc
        if response.status >= 400 or "error" in decoded:
            error = decoded.get("error", {})
            raise ServiceError(
                error.get("code", "internal"),
                error.get("message", f"HTTP {response.status}"),
                detail=error.get("detail"),
            )
        return decoded

    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/metrics")

    def bound(self, request: BoundRequest | None = None, **fields) -> BoundResponse:
        """``bound(BoundRequest(...))`` or ``bound(query=..., ps=...)``."""
        if request is None:
            request = BoundRequest(**fields)
        payload = self._request("POST", "/bound", request.to_payload())
        return BoundResponse.from_payload(payload)

    def evaluate(
        self, request: EvaluateRequest | None = None, **fields
    ) -> EvaluateResponse:
        if request is None:
            request = EvaluateRequest(**fields)
        payload = self._request("POST", "/evaluate", request.to_payload())
        return EvaluateResponse.from_payload(payload)
