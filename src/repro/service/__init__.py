"""The bound-serving service: hot LP caches behind an HTTP front-end.

Bounds are the paper's cheap, cacheable product — built to be consumed
at optimizer-call rates — while evaluation is the expensive one.  This
package serves both from one long-lived process:
:class:`BoundService` owns the precomputed
:class:`~repro.core.StatisticsCatalog` and the warm
:class:`~repro.core.BoundSolver` caches (persistent HiGHS models under
``REPRO_LP=persistent``), :mod:`~repro.service.server` exposes them over
stdlib HTTP, and every dispatched evaluation carries a per-request
:class:`~repro.evaluation.EvaluationBudget` so one oversized query
degrades or stops with a typed verdict instead of taking the process
down.  Under real concurrency the service is hardened three ways:
every cache layer is LRU under a byte/entry budget, an
:class:`~repro.service.admission.AdmissionController` caps and queues
``/evaluate`` (refusals are typed ``overloaded`` 429s; in-flight work
is never killed), and all shared state is lock- or thread-local-
disciplined.  See ``docs/service.md`` for the API reference and
runbook.
"""

from .admission import AdmissionController
from .protocol import (
    ERROR_CODES,
    BoundRequest,
    BoundResponse,
    EvaluateRequest,
    EvaluateResponse,
    ServiceError,
)
from .server import BoundClient, BoundServiceServer, start_server
from .service import BoundService

__all__ = [
    "ERROR_CODES",
    "AdmissionController",
    "BoundClient",
    "BoundRequest",
    "BoundResponse",
    "BoundService",
    "BoundServiceServer",
    "EvaluateRequest",
    "EvaluateResponse",
    "ServiceError",
    "start_server",
]
