"""JSON wire protocol of the bound-serving service.

Requests and responses are flat JSON objects; every message type has a
``from_payload`` / ``to_payload`` pair so the server, the client, and the
tests share one codec.  Non-finite floats (p = ∞ above all) are encoded
as the strings ``"inf"`` / ``"-inf"`` / ``"nan"`` — standard JSON has no
Infinity literal, and the CLI already spells ℓ∞ as ``inf``.

Failures travel as :class:`ServiceError`: a *typed* error with a stable
``code`` (see :data:`ERROR_CODES`) and an HTTP status, rendered as
``{"error": {"code", "message", "detail"}}``.  Budget verdicts from a
governed evaluation are errors of this kind — a request the service
*refused to finish* is an application outcome (422), never a 500.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "ERROR_CODES",
    "BoundRequest",
    "BoundResponse",
    "EvaluateRequest",
    "EvaluateResponse",
    "ServiceError",
    "decode_float",
    "encode_float",
]

#: Stable error codes and the HTTP status each is served with.
ERROR_CODES = {
    "bad-request": 400,       # malformed JSON / missing or mistyped field
    "parse-error": 400,       # query text did not parse
    "unknown-relation": 400,  # query names a relation the DB lacks
    "not-found": 404,         # unknown endpoint
    "budget-memory": 422,     # evaluation hit its hard memory cap
    "budget-deadline": 422,   # evaluation ran past its deadline
    "budget-cancelled": 422,  # evaluation's cancellation token flipped
    "overloaded": 429,        # /evaluate refused: cap reached, queue full
    "internal": 500,          # anything else (a bug — report it)
}


class ServiceError(Exception):
    """A typed, HTTP-mappable service failure."""

    def __init__(
        self, code: str, message: str, detail: Mapping[str, Any] | None = None
    ) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.detail = dict(detail or {})

    @property
    def http_status(self) -> int:
        return ERROR_CODES[self.code]

    def to_payload(self) -> dict[str, Any]:
        return {
            "error": {
                "code": self.code,
                "message": self.message,
                "detail": self.detail,
            }
        }


def encode_float(value: float) -> float | str:
    """A float as JSON: finite numbers pass through, ∞/nan become strings."""
    value = float(value)
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    if math.isnan(value):
        return "nan"
    return value


def decode_float(value: Any, *, context: str = "value") -> float:
    """The inverse of :func:`encode_float`; raises a typed error."""
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise ServiceError(
            "bad-request", f"{context} must be a number or 'inf', got {value!r}"
        )
    if isinstance(value, str):
        text = value.strip().lower()
        if text in ("inf", "infinity", "∞"):
            return math.inf
        if text in ("-inf", "-infinity"):
            return -math.inf
        if text == "nan":
            return math.nan
        try:
            return float(text)
        except ValueError:
            raise ServiceError(
                "bad-request", f"unparseable {context}: {value!r}"
            ) from None
    return float(value)


def _require_str(payload: Mapping[str, Any], key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value.strip():
        raise ServiceError(
            "bad-request", f"field {key!r} must be a non-empty string"
        )
    return value


def _float_tuple(value: Any, context: str) -> tuple[float, ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise ServiceError(
            "bad-request", f"{context} must be a non-empty list of norms"
        )
    return tuple(decode_float(v, context=context) for v in value)


@dataclass(frozen=True)
class BoundRequest:
    """``POST /bound`` — a cardinality-bound request.

    ``family`` (optional) restricts the collected statistics to that norm
    sub-family via :meth:`repro.core.BoundSolver.solve_family` — the AGM
    baseline is ``family=[1]``, PANDA's is ``family=[1, "inf"]``.
    """

    query: str
    ps: tuple[float, ...] = (1.0, 2.0, math.inf)
    cone: str = "auto"
    family: tuple[float, ...] | None = None

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "BoundRequest":
        if not isinstance(payload, Mapping):
            raise ServiceError("bad-request", "request body must be an object")
        known = {"query", "ps", "cone", "family"}
        unknown = set(payload) - known
        if unknown:
            raise ServiceError(
                "bad-request", f"unknown field(s): {sorted(unknown)}"
            )
        query = _require_str(payload, "query")
        ps = (
            _float_tuple(payload["ps"], "ps")
            if "ps" in payload
            else (1.0, 2.0, math.inf)
        )
        cone = payload.get("cone", "auto")
        if not isinstance(cone, str):
            raise ServiceError("bad-request", "field 'cone' must be a string")
        family = (
            _float_tuple(payload["family"], "family")
            if payload.get("family") is not None
            else None
        )
        return cls(query=query, ps=ps, cone=cone, family=family)

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "query": self.query,
            "ps": [encode_float(p) for p in self.ps],
            "cone": self.cone,
        }
        if self.family is not None:
            payload["family"] = [encode_float(p) for p in self.family]
        return payload


@dataclass(frozen=True)
class BoundResponse:
    """The service's answer to a :class:`BoundRequest`."""

    log2_bound: float
    bound: float
    cone: str
    status: str
    norms_used: tuple[float, ...]
    certificate: str
    cached: bool
    elapsed_ms: float

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "BoundResponse":
        try:
            return cls(
                log2_bound=decode_float(
                    payload["log2_bound"], context="log2_bound"
                ),
                bound=decode_float(payload["bound"], context="bound"),
                cone=payload["cone"],
                status=payload["status"],
                norms_used=tuple(
                    decode_float(p, context="norms_used")
                    for p in payload["norms_used"]
                ),
                certificate=payload["certificate"],
                cached=bool(payload["cached"]),
                elapsed_ms=float(payload["elapsed_ms"]),
            )
        except KeyError as exc:
            raise ServiceError(
                "bad-request", f"bound response missing field {exc}"
            ) from exc

    def to_payload(self) -> dict[str, Any]:
        return {
            "log2_bound": encode_float(self.log2_bound),
            "bound": encode_float(self.bound),
            "cone": self.cone,
            "status": self.status,
            "norms_used": [encode_float(p) for p in self.norms_used],
            "certificate": self.certificate,
            "cached": self.cached,
            "elapsed_ms": self.elapsed_ms,
        }


@dataclass(frozen=True)
class EvaluateRequest:
    """``POST /evaluate`` — count a query's output under a budget.

    ``memory_budget`` takes the CLI's ``"HARD"`` / ``"SOFT:HARD"`` spec
    (K/M/G suffixes); together with ``deadline_seconds`` it becomes the
    per-request :class:`repro.evaluation.EvaluationBudget` the dispatched
    evaluation runs under.
    """

    query: str
    memory_budget: str | None = None
    deadline_seconds: float | None = None
    frontier_block: int | None = None

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "EvaluateRequest":
        if not isinstance(payload, Mapping):
            raise ServiceError("bad-request", "request body must be an object")
        known = {"query", "memory_budget", "deadline_seconds", "frontier_block"}
        unknown = set(payload) - known
        if unknown:
            raise ServiceError(
                "bad-request", f"unknown field(s): {sorted(unknown)}"
            )
        query = _require_str(payload, "query")
        memory = payload.get("memory_budget")
        if memory is not None and not isinstance(memory, str):
            raise ServiceError(
                "bad-request",
                "field 'memory_budget' must be a 'HARD' or 'SOFT:HARD' string",
            )
        deadline = payload.get("deadline_seconds")
        if deadline is not None:
            deadline = decode_float(deadline, context="deadline_seconds")
        block = payload.get("frontier_block")
        if block is not None:
            if not isinstance(block, int) or isinstance(block, bool) or block < 1:
                raise ServiceError(
                    "bad-request", "field 'frontier_block' must be an int ≥ 1"
                )
        return cls(
            query=query,
            memory_budget=memory,
            deadline_seconds=deadline,
            frontier_block=block,
        )

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"query": self.query}
        if self.memory_budget is not None:
            payload["memory_budget"] = self.memory_budget
        if self.deadline_seconds is not None:
            payload["deadline_seconds"] = encode_float(self.deadline_seconds)
        if self.frontier_block is not None:
            payload["frontier_block"] = self.frontier_block
        return payload


@dataclass(frozen=True)
class EvaluateResponse:
    """The service's answer to an :class:`EvaluateRequest`."""

    count: int
    nodes_visited: int
    elapsed_ms: float
    degradations: tuple[str, ...] = field(default_factory=tuple)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "EvaluateResponse":
        try:
            return cls(
                count=int(payload["count"]),
                nodes_visited=int(payload["nodes_visited"]),
                elapsed_ms=float(payload["elapsed_ms"]),
                degradations=tuple(payload.get("degradations", ())),
            )
        except KeyError as exc:
            raise ServiceError(
                "bad-request", f"evaluate response missing field {exc}"
            ) from exc

    def to_payload(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "nodes_visited": self.nodes_visited,
            "elapsed_ms": self.elapsed_ms,
            "degradations": list(self.degradations),
        }
