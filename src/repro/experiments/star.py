"""Experiment E14 — the blocked streaming frontier on star joins.

The worst case for a breadth-first Generic Join is a query whose
intermediate frontier dwarfs both input and output: the closed star
workload (:func:`repro.datasets.star_query` /
:func:`repro.datasets.star_database`) peaks at ``hubs · fan_out²`` live
partial bindings on the way to a ``hubs · fan_out``-row output.  This
driver meters exactly that: for each fan-out it evaluates the query with
the unblocked frontier and with a fixed ``frontier_block``, records peak
traced allocations (``tracemalloc``, which sees NumPy buffers) and wall
time, and cross-checks that output rows, row order, and the
``nodes_visited`` meter are bit-identical — the blocked engine is the
same search, sliced.

Shape to observe: unblocked peak memory grows quadratically with the
fan-out while the blocked peak stays flat at O(block × depth), without
giving up worst-case optimality (the meter is unchanged).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass

from ..datasets.generators import star_database, star_query
from ..evaluation import generic_join
from .harness import format_table

__all__ = ["StarRow", "run_star_experiment", "main"]

#: Fan-outs of the default sweep (frontier widths 64k .. 262k bindings).
DEFAULT_FAN_OUTS = (128, 256, 512)

#: Default block budget: a few hundred KB of live int64 columns.
DEFAULT_FRONTIER_BLOCK = 8192


@dataclass
class StarRow:
    """One (fan-out, engine) cell of the star sweep."""

    fan_out: int
    frontier_block: int | None
    output_count: int
    nodes_visited: int
    peak_mb: float
    seconds: float
    matches_unblocked: bool

    @property
    def label(self) -> str:
        if self.frontier_block is None:
            return "unblocked"
        return f"block={self.frontier_block}"


def _metered_run(query, db, frontier_block):
    tracemalloc.start()
    try:
        started = time.perf_counter()
        run = generic_join(query, db, frontier_block=frontier_block)
        elapsed = time.perf_counter() - started
        _, peak = tracemalloc.get_traced_memory()
    finally:
        # a raising run must not leave tracing on: the next start()
        # would accumulate peaks across runs and corrupt the comparison
        tracemalloc.stop()
    return run, peak / 1e6, elapsed


def run_star_experiment(
    fan_outs: tuple[int, ...] = DEFAULT_FAN_OUTS,
    arms: int = 2,
    num_hubs: int = 1,
    frontier_block: int = DEFAULT_FRONTIER_BLOCK,
) -> list[StarRow]:
    """Run E14: unblocked vs blocked rows, grouped per fan-out."""
    query = star_query(arms)
    rows: list[StarRow] = []
    for fan_out in fan_outs:
        db = star_database(fan_out, num_hubs=num_hubs, arms=arms)
        generic_join(query, db)  # warm the per-relation trie caches
        reference, ref_peak, ref_time = _metered_run(query, db, None)
        rows.append(
            StarRow(
                fan_out=fan_out,
                frontier_block=None,
                output_count=reference.count,
                nodes_visited=reference.nodes_visited,
                peak_mb=ref_peak,
                seconds=ref_time,
                matches_unblocked=True,
            )
        )
        blocked, blk_peak, blk_time = _metered_run(
            query, db, frontier_block
        )
        rows.append(
            StarRow(
                fan_out=fan_out,
                frontier_block=frontier_block,
                output_count=blocked.count,
                nodes_visited=blocked.nodes_visited,
                peak_mb=blk_peak,
                seconds=blk_time,
                matches_unblocked=(
                    list(blocked.output) == list(reference.output)
                    and blocked.nodes_visited == reference.nodes_visited
                ),
            )
        )
    return rows


def main(frontier_block: int = DEFAULT_FRONTIER_BLOCK) -> str:
    """Render the E14 table."""
    rows = run_star_experiment(frontier_block=frontier_block)
    table = format_table(
        ["fan-out", "engine", "|Q|", "nodes", "peak MB", "ms", "identical"],
        [
            (
                r.fan_out,
                r.label,
                r.output_count,
                r.nodes_visited,
                f"{r.peak_mb:.2f}",
                f"{r.seconds * 1e3:.1f}",
                "yes" if r.matches_unblocked else "NO",
            )
            for r in rows
        ],
    )
    return (
        "E14: closed star join — blocked vs unblocked frontier "
        "(identical = same rows, order, and meter)\n" + table
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
