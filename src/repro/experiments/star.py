"""Experiment E14 — blocked frontier and output sinks on star joins.

The worst case for a breadth-first Generic Join is a query whose
intermediate frontier dwarfs both input and output: the closed star
workload (:func:`repro.datasets.star_query` /
:func:`repro.datasets.star_database`) peaks at ``hubs · fan_out²`` live
partial bindings on the way to a ``hubs · fan_out``-row output.  This
driver meters exactly that, across both axes the engine can bound:

* the *frontier* — unblocked vs a fixed ``frontier_block``;
* the *output* — materialized vs a counting sink
  (:class:`~repro.relational.columnar.CountSink`) vs a spill-to-disk
  sink (:class:`~repro.relational.columnar.SpillSink`).

For each fan-out it runs the unblocked materialized reference, then the
blocked engine once per requested sink, recording peak traced
allocations (``tracemalloc``, which sees NumPy buffers) and wall time,
and cross-checks that counts, output rows (where the sink keeps them),
row order, and the ``nodes_visited`` meter are bit-identical — every
configuration is the same search, sliced and re-routed.

Shape to observe: unblocked peak memory grows quadratically with the
fan-out while every blocked configuration stays flat at
O(block × depth) (+ O(output) when materializing, O(chunk) when
spilling, O(1) when counting), without giving up worst-case optimality
(the meter is unchanged).
"""

from __future__ import annotations

import math
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..core import collect_statistics, lp_bound
from ..datasets.generators import star_database, star_query
from ..evaluation import (
    CancellationToken,
    EscalatingSink,
    EvaluationBudget,
    EvaluationGovernor,
    SupervisionPolicy,
    budget_from_spec,
    evaluate_parallel,
    generic_join,
    parse_fault_spec,
)
from ..relational import CountSink, SpillSink
from .harness import format_table, metered

__all__ = ["StarRow", "run_star_experiment", "main"]

#: Fan-outs of the default sweep (frontier widths 64k .. 262k bindings).
DEFAULT_FAN_OUTS = (128, 256, 512)

#: Default block budget: a few hundred KB of live int64 columns.
DEFAULT_FRONTIER_BLOCK = 8192

#: Sink modes the sweep reports, in report order.
SINK_MODES = ("materialize", "count", "spill")


@dataclass
class StarRow:
    """One (fan-out, engine, sink) cell of the star sweep."""

    fan_out: int
    frontier_block: int | None
    sink: str
    output_count: int
    nodes_visited: int
    peak_mb: float
    seconds: float
    matches_unblocked: bool
    workers: int | None = None
    #: Degradation-ladder steps the governor took (empty when ungoverned
    #: or when the budget was never under pressure).
    ladder: tuple[str, ...] = ()

    @property
    def label(self) -> str:
        base = (
            "unblocked"
            if self.frontier_block is None
            else f"block={self.frontier_block}"
        )
        if self.workers:
            return f"parallel[{self.workers}]·{base}"
        return base


def run_star_experiment(
    fan_outs: tuple[int, ...] = DEFAULT_FAN_OUTS,
    arms: int = 2,
    num_hubs: int = 1,
    frontier_block: int = DEFAULT_FRONTIER_BLOCK,
    sinks: tuple[str, ...] = SINK_MODES,
    spill_dir: str | None = None,
    include_unblocked: bool = True,
    parallel_workers: int | None = None,
    policy: SupervisionPolicy | None = None,
    injector=None,
    resume_dir: str | None = None,
    budget: EvaluationBudget | None = None,
    cancel_token: CancellationToken | None = None,
) -> list[StarRow]:
    """Run E14: a materialized reference plus one blocked row per sink.

    ``spill_dir`` roots the spill segments (one subdirectory per
    fan-out, removed after verification); by default they go to a
    temporary directory.  ``include_unblocked=False`` verifies against
    a *blocked* materialized run instead of the breadth-first engine —
    the escape hatch for fan-outs whose unblocked frontier (or whose
    output, with count/spill sinks) no longer fits in RAM; the
    reference rows themselves are only materialized when a requested
    sink compares rows rather than counts.

    ``parallel_workers`` adds one more row per (fan-out, sink) driving
    the supervised parallel evaluator
    (:func:`repro.evaluation.evaluate_parallel`) over the star's
    Lemma 2.5 part combinations, governed by ``policy`` and (for chaos
    runs) ``injector``; ``resume_dir`` roots per-cell checkpoint
    directories so an interrupted sweep resumes completed parts.  The
    parallel rows verify output counts (and row multisets where the
    sink keeps rows) against the reference; the bit-identical
    serial-vs-parallel checks live in the fault-tolerance test suite.

    ``budget`` governs every blocked run (and the parallel rows) with a
    fresh :class:`~repro.evaluation.EvaluationGovernor` — under memory
    pressure the degradation ladder kicks in (each row records the
    steps it took) while the ``identical`` column keeps verifying the
    output against the ungoverned reference.  ``cancel_token`` makes
    every run (including the reference) cooperatively cancellable.
    """
    unknown = [s for s in sinks if s not in SINK_MODES]
    if unknown:
        raise ValueError(f"unknown sink modes {unknown}; pick from {SINK_MODES}")
    query = star_query(arms)
    # count-only sweeps never need the reference rows in a Python list
    needs_rows = any(mode in ("materialize", "spill") for mode in sinks)
    rows: list[StarRow] = []
    governed = budget is not None or cancel_token is not None
    for fan_out in fan_outs:
        db = star_database(fan_out, num_hubs=num_hubs, arms=arms)
        generic_join(query, db, frontier_block=frontier_block)  # warm tries
        reference_block = None if include_unblocked else frontier_block
        # the reference stays *memory*-ungoverned (a budget would cap
        # its unblocked frontier), but honours the cancel token
        reference_governor = (
            EvaluationGovernor(
                token=cancel_token, phase=f"fan-out {fan_out} reference"
            )
            if cancel_token is not None
            else None
        )
        reference, ref_peak, ref_time = metered(
            lambda: generic_join(
                query,
                db,
                frontier_block=reference_block,
                governor=reference_governor,
            )
        )
        reference_rows = list(reference.output) if needs_rows else None
        rows.append(
            StarRow(
                fan_out=fan_out,
                frontier_block=reference_block,
                sink="materialize",
                output_count=reference.count,
                nodes_visited=reference.nodes_visited,
                peak_mb=ref_peak,
                seconds=ref_time,
                matches_unblocked=True,
            )
        )
        for mode in sinks:
            governor = (
                EvaluationGovernor(
                    budget,
                    token=cancel_token,
                    phase=f"fan-out {fan_out} {mode}",
                )
                if governed
                else None
            )
            if mode == "materialize":
                if budget is not None and budget.governs_memory:
                    # a governed materialization routes through an
                    # EscalatingSink so ladder rung 2 (materialize→spill)
                    # is available mid-run
                    if spill_dir is not None:
                        target = Path(spill_dir) / f"fanout-{fan_out}-escalate"
                        context = None
                    else:
                        context = tempfile.TemporaryDirectory()
                        target = Path(context.name) / "escalate"
                    try:
                        with EscalatingSink(target) as sink:
                            run, peak, secs = metered(
                                lambda: generic_join(
                                    query,
                                    db,
                                    frontier_block=frontier_block,
                                    sink=sink,
                                    governor=governor,
                                )
                            )
                            count = sink.n_rows
                            matches = (
                                sink.rows() == reference_rows
                                and run.nodes_visited
                                == reference.nodes_visited
                            )
                    finally:
                        if context is not None:
                            context.cleanup()
                else:
                    run, peak, secs = metered(
                        lambda: generic_join(
                            query,
                            db,
                            frontier_block=frontier_block,
                            governor=governor,
                        )
                    )
                    matches = (
                        list(run.output) == reference_rows
                        and run.nodes_visited == reference.nodes_visited
                    )
                    count = run.count
            elif mode == "count":
                sink = CountSink()
                run, peak, secs = metered(
                    lambda: generic_join(
                        query,
                        db,
                        frontier_block=frontier_block,
                        sink=sink,
                        governor=governor,
                    )
                )
                count = sink.total
                matches = (
                    count == reference.count
                    and run.nodes_visited == reference.nodes_visited
                )
            else:  # spill
                if spill_dir is not None:
                    target = Path(spill_dir) / f"fanout-{fan_out}"
                    context = None
                else:
                    context = tempfile.TemporaryDirectory()
                    target = Path(context.name) / "spill"
                try:
                    with SpillSink(target) as sink:
                        run, peak, secs = metered(
                            lambda: generic_join(
                                query,
                                db,
                                frontier_block=frontier_block,
                                sink=sink,
                                governor=governor,
                            )
                        )
                        count = sink.n_rows
                        matches = (
                            sink.rows() == reference_rows
                            and run.nodes_visited == reference.nodes_visited
                        )
                finally:
                    if context is not None:
                        context.cleanup()
            rows.append(
                StarRow(
                    fan_out=fan_out,
                    frontier_block=frontier_block,
                    sink=mode,
                    output_count=count,
                    nodes_visited=run.nodes_visited,
                    peak_mb=peak,
                    seconds=secs,
                    matches_unblocked=matches,
                    ladder=governor.ladder if governor is not None else (),
                )
            )
        if parallel_workers:
            rows.extend(
                _parallel_rows(
                    query,
                    db,
                    fan_out,
                    frontier_block,
                    sinks,
                    reference,
                    reference_rows,
                    parallel_workers,
                    policy,
                    injector,
                    resume_dir,
                    budget,
                    cancel_token,
                )
            )
    return rows


def _parallel_rows(
    query,
    db,
    fan_out: int,
    frontier_block: int,
    sinks: tuple[str, ...],
    reference,
    reference_rows,
    workers: int,
    policy: SupervisionPolicy | None,
    injector,
    resume_dir: str | None,
    budget: EvaluationBudget | None = None,
    cancel_token: CancellationToken | None = None,
) -> list[StarRow]:
    """One supervised-parallel row per sink mode for one fan-out."""
    stats = collect_statistics(query, db, ps=[1.0, 2.0, math.inf])
    bound = lp_bound(stats, query=query)
    rows: list[StarRow] = []
    for mode in sinks:
        run_dir = (
            str(Path(resume_dir) / f"fanout-{fan_out}-{mode}")
            if resume_dir
            else None
        )
        common = dict(
            workers=workers,
            frontier_block=frontier_block,
            policy=policy,
            injector=injector,
            run_dir=run_dir,
            resume=run_dir is not None,
            budget=budget,
            cancel_token=cancel_token,
        )
        if mode == "materialize":
            run, peak, secs = metered(
                lambda: evaluate_parallel(query, db, bound, **common)
            )
            count = run.count
            matches = count == reference.count and (
                reference_rows is None
                or sorted(run.output) == sorted(reference_rows)
            )
        elif mode == "count":
            sink = CountSink()
            run, peak, secs = metered(
                lambda: evaluate_parallel(
                    query, db, bound, sink=sink, **common
                )
            )
            count = sink.total
            matches = count == reference.count
        else:  # spill
            with tempfile.TemporaryDirectory() as scratch:
                with SpillSink(Path(scratch) / "spill") as sink:
                    run, peak, secs = metered(
                        lambda: evaluate_parallel(
                            query, db, bound, sink=sink, **common
                        )
                    )
                    count = sink.n_rows
                    matches = count == reference.count and (
                        reference_rows is None
                        or sorted(sink.rows()) == sorted(reference_rows)
                    )
        rows.append(
            StarRow(
                fan_out=fan_out,
                frontier_block=frontier_block,
                sink=mode,
                output_count=count,
                nodes_visited=run.nodes_visited,
                peak_mb=peak,
                seconds=secs,
                matches_unblocked=matches,
                workers=workers,
                ladder=tuple(
                    step
                    for outcome in run.outcomes
                    for step in outcome.ladder
                ),
            )
        )
    return rows


def main(
    frontier_block: int = DEFAULT_FRONTIER_BLOCK,
    sink: str | None = None,
    spill_dir: str | None = None,
    parallel_workers: int | None = None,
    part_timeout: float | None = None,
    retries: int | None = None,
    inject_faults: str | None = None,
    resume: str | None = None,
    memory_budget: str | None = None,
    deadline: float | None = None,
    cancel_token: CancellationToken | None = None,
) -> str:
    """Render the E14 table (all sink modes, or just the requested one).

    ``parallel_workers`` adds supervised-parallel rows;
    ``part_timeout``/``retries`` tune their supervision policy,
    ``inject_faults`` threads a deterministic fault plan through the
    workers (see :func:`repro.evaluation.parse_fault_spec`), and
    ``resume`` names a checkpoint directory to continue an interrupted
    sweep from.

    ``memory_budget`` (``"HARD"`` or ``"SOFT:HARD"``, K/M/G suffixes)
    and ``deadline`` (seconds) govern every blocked and parallel run
    (see :func:`repro.evaluation.budget_from_spec`); the ``ladder``
    column shows the degradation steps each governed run took.
    ``cancel_token`` is flipped by the CLI's signal handlers for a
    graceful Ctrl-C.
    """
    sinks = SINK_MODES if sink is None else (sink,)
    policy_kwargs = {}
    if part_timeout is not None:
        policy_kwargs["part_timeout"] = part_timeout
    if retries is not None:
        policy_kwargs["max_retries"] = retries
    budget = budget_from_spec(memory=memory_budget, deadline=deadline)
    rows = run_star_experiment(
        frontier_block=frontier_block,
        sinks=sinks,
        spill_dir=spill_dir,
        parallel_workers=parallel_workers,
        policy=SupervisionPolicy(**policy_kwargs) if policy_kwargs else None,
        injector=(
            parse_fault_spec(inject_faults) if inject_faults else None
        ),
        resume_dir=resume,
        budget=budget,
        cancel_token=cancel_token,
    )
    governed = budget is not None
    headers = [
        "fan-out", "engine", "sink", "|Q|", "nodes", "peak MB", "ms",
        "identical",
    ]
    if governed:
        headers.append("ladder")
    table = format_table(
        headers,
        [
            (
                r.fan_out,
                r.label,
                r.sink,
                r.output_count,
                r.nodes_visited,
                f"{r.peak_mb:.2f}",
                f"{r.seconds * 1e3:.1f}",
                "yes" if r.matches_unblocked else "NO",
            )
            + ((" → ".join(r.ladder) if r.ladder else "-",) if governed else ())
            for r in rows
        ],
    )
    return (
        "E14: closed star join — blocked frontier × output sinks "
        "(identical = same count/rows, order, and meter)\n" + table
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
