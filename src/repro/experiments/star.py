"""Experiment E14 — blocked frontier and output sinks on star joins.

The worst case for a breadth-first Generic Join is a query whose
intermediate frontier dwarfs both input and output: the closed star
workload (:func:`repro.datasets.star_query` /
:func:`repro.datasets.star_database`) peaks at ``hubs · fan_out²`` live
partial bindings on the way to a ``hubs · fan_out``-row output.  This
driver meters exactly that, across both axes the engine can bound:

* the *frontier* — unblocked vs a fixed ``frontier_block``;
* the *output* — materialized vs a counting sink
  (:class:`~repro.relational.columnar.CountSink`) vs a spill-to-disk
  sink (:class:`~repro.relational.columnar.SpillSink`).

For each fan-out it runs the unblocked materialized reference, then the
blocked engine once per requested sink, recording peak traced
allocations (``tracemalloc``, which sees NumPy buffers) and wall time,
and cross-checks that counts, output rows (where the sink keeps them),
row order, and the ``nodes_visited`` meter are bit-identical — every
configuration is the same search, sliced and re-routed.

Shape to observe: unblocked peak memory grows quadratically with the
fan-out while every blocked configuration stays flat at
O(block × depth) (+ O(output) when materializing, O(chunk) when
spilling, O(1) when counting), without giving up worst-case optimality
(the meter is unchanged).
"""

from __future__ import annotations

import tempfile
import time
import tracemalloc
from dataclasses import dataclass
from pathlib import Path

from ..datasets.generators import star_database, star_query
from ..evaluation import generic_join
from ..relational import CountSink, SpillSink
from .harness import format_table

__all__ = ["StarRow", "run_star_experiment", "main"]

#: Fan-outs of the default sweep (frontier widths 64k .. 262k bindings).
DEFAULT_FAN_OUTS = (128, 256, 512)

#: Default block budget: a few hundred KB of live int64 columns.
DEFAULT_FRONTIER_BLOCK = 8192

#: Sink modes the sweep reports, in report order.
SINK_MODES = ("materialize", "count", "spill")


@dataclass
class StarRow:
    """One (fan-out, engine, sink) cell of the star sweep."""

    fan_out: int
    frontier_block: int | None
    sink: str
    output_count: int
    nodes_visited: int
    peak_mb: float
    seconds: float
    matches_unblocked: bool

    @property
    def label(self) -> str:
        if self.frontier_block is None:
            return "unblocked"
        return f"block={self.frontier_block}"


def _metered(fn):
    """Run ``fn`` under tracemalloc: ``(result, peak_mb, seconds)``."""
    tracemalloc.start()
    try:
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        _, peak = tracemalloc.get_traced_memory()
    finally:
        # a raising run must not leave tracing on: the next start()
        # would accumulate peaks across runs and corrupt the comparison
        tracemalloc.stop()
    return result, peak / 1e6, elapsed


def run_star_experiment(
    fan_outs: tuple[int, ...] = DEFAULT_FAN_OUTS,
    arms: int = 2,
    num_hubs: int = 1,
    frontier_block: int = DEFAULT_FRONTIER_BLOCK,
    sinks: tuple[str, ...] = SINK_MODES,
    spill_dir: str | None = None,
    include_unblocked: bool = True,
) -> list[StarRow]:
    """Run E14: a materialized reference plus one blocked row per sink.

    ``spill_dir`` roots the spill segments (one subdirectory per
    fan-out, removed after verification); by default they go to a
    temporary directory.  ``include_unblocked=False`` verifies against
    a *blocked* materialized run instead of the breadth-first engine —
    the escape hatch for fan-outs whose unblocked frontier (or whose
    output, with count/spill sinks) no longer fits in RAM; the
    reference rows themselves are only materialized when a requested
    sink compares rows rather than counts.
    """
    unknown = [s for s in sinks if s not in SINK_MODES]
    if unknown:
        raise ValueError(f"unknown sink modes {unknown}; pick from {SINK_MODES}")
    query = star_query(arms)
    # count-only sweeps never need the reference rows in a Python list
    needs_rows = any(mode in ("materialize", "spill") for mode in sinks)
    rows: list[StarRow] = []
    for fan_out in fan_outs:
        db = star_database(fan_out, num_hubs=num_hubs, arms=arms)
        generic_join(query, db, frontier_block=frontier_block)  # warm tries
        reference_block = None if include_unblocked else frontier_block
        reference, ref_peak, ref_time = _metered(
            lambda: generic_join(query, db, frontier_block=reference_block)
        )
        reference_rows = list(reference.output) if needs_rows else None
        rows.append(
            StarRow(
                fan_out=fan_out,
                frontier_block=reference_block,
                sink="materialize",
                output_count=reference.count,
                nodes_visited=reference.nodes_visited,
                peak_mb=ref_peak,
                seconds=ref_time,
                matches_unblocked=True,
            )
        )
        for mode in sinks:
            if mode == "materialize":
                run, peak, secs = _metered(
                    lambda: generic_join(
                        query, db, frontier_block=frontier_block
                    )
                )
                matches = (
                    list(run.output) == reference_rows
                    and run.nodes_visited == reference.nodes_visited
                )
                count = run.count
            elif mode == "count":
                sink = CountSink()
                run, peak, secs = _metered(
                    lambda: generic_join(
                        query, db, frontier_block=frontier_block, sink=sink
                    )
                )
                count = sink.total
                matches = (
                    count == reference.count
                    and run.nodes_visited == reference.nodes_visited
                )
            else:  # spill
                if spill_dir is not None:
                    target = Path(spill_dir) / f"fanout-{fan_out}"
                    context = None
                else:
                    context = tempfile.TemporaryDirectory()
                    target = Path(context.name) / "spill"
                try:
                    with SpillSink(target) as sink:
                        run, peak, secs = _metered(
                            lambda: generic_join(
                                query,
                                db,
                                frontier_block=frontier_block,
                                sink=sink,
                            )
                        )
                        count = sink.n_rows
                        matches = (
                            sink.rows() == reference_rows
                            and run.nodes_visited == reference.nodes_visited
                        )
                finally:
                    if context is not None:
                        context.cleanup()
            rows.append(
                StarRow(
                    fan_out=fan_out,
                    frontier_block=frontier_block,
                    sink=mode,
                    output_count=count,
                    nodes_visited=run.nodes_visited,
                    peak_mb=peak,
                    seconds=secs,
                    matches_unblocked=matches,
                )
            )
    return rows


def main(
    frontier_block: int = DEFAULT_FRONTIER_BLOCK,
    sink: str | None = None,
    spill_dir: str | None = None,
) -> str:
    """Render the E14 table (all sink modes, or just the requested one)."""
    sinks = SINK_MODES if sink is None else (sink,)
    rows = run_star_experiment(
        frontier_block=frontier_block, sinks=sinks, spill_dir=spill_dir
    )
    table = format_table(
        [
            "fan-out", "engine", "sink", "|Q|", "nodes", "peak MB", "ms",
            "identical",
        ],
        [
            (
                r.fan_out,
                r.label,
                r.sink,
                r.output_count,
                r.nodes_visited,
                f"{r.peak_mb:.2f}",
                f"{r.seconds * 1e3:.1f}",
                "yes" if r.matches_unblocked else "NO",
            )
            for r in rows
        ],
    )
    return (
        "E14: closed star join — blocked frontier × output sinks "
        "(identical = same count/rows, order, and meter)\n" + table
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
