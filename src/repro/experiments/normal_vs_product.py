"""Experiment E6 — Example 6.7: normal vs product worst-case databases.

The query Q(X,Y,Z) = R1(X,Y) ∧ R2(Y,Z) ∧ R3(Z,X) ∧ S1(X) ∧ S2(Y) ∧ S3(Z)
with statistics ‖deg_{Ri}‖₄⁴ ≤ B and |Si| ≤ B has polymatroid bound B
(inequality 41).  The worst case is *not* a product database:

* the **normal database** (projections of the diagonal T = {(k,k,k)})
  reaches |Q| ≥ B/2 — tight;
* every **product database** satisfies N_X·N_Y·N_Z ≤ B^{3/5}, so its
  output is asymptotically smaller.

The experiment builds both, checks they satisfy the statistics, and
reports the achieved sizes against the LP bound (computed over the normal
cone, which also hands us the α coefficients that generate the normal
witness via Lemma 6.2 — exercising :mod:`repro.tightness` end to end).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.conditionals import (
    AbstractStatistic,
    ConcreteStatistic,
    Conditional,
    StatisticsSet,
)
from ..core.lp_bound import BoundSolver
from ..query.query import Atom, ConjunctiveQuery
from ..relational import Database, Relation
from ..tightness import build_worst_case

__all__ = [
    "Example67Result",
    "example67_query",
    "example67_statistics",
    "run_normal_vs_product",
    "main",
]


def example67_query() -> ConjunctiveQuery:
    """The triangle-plus-unaries query of Example 6.7."""
    return ConjunctiveQuery(
        [
            Atom("R1", ("X", "Y")),
            Atom("R2", ("Y", "Z")),
            Atom("R3", ("Z", "X")),
            Atom("S1", ("X",)),
            Atom("S2", ("Y",)),
            Atom("S3", ("Z",)),
        ],
        name="example67",
    )


def example67_statistics(b_log2: float) -> StatisticsSet:
    """The log-statistics (40): ℓ4-norms of the Ri's, cardinalities of the Si's.

    ``b_log2`` is the paper's b = log B; the ℓ4 assertions are
    ‖deg‖₄⁴ ≤ B, i.e. log2 ‖deg‖₄ ≤ b/4.
    """
    query = example67_query()
    atoms = {a.relation: a for a in query.atoms}
    conds = [
        (Conditional(frozenset("Y"), frozenset("X")), atoms["R1"]),
        (Conditional(frozenset("Z"), frozenset("Y")), atoms["R2"]),
        (Conditional(frozenset("X"), frozenset("Z")), atoms["R3"]),
    ]
    stats = [
        ConcreteStatistic(AbstractStatistic(c, 4.0), b_log2 / 4.0, atom)
        for c, atom in conds
    ]
    for var, rel in (("X", "S1"), ("Y", "S2"), ("Z", "S3")):
        stats.append(
            ConcreteStatistic(
                AbstractStatistic(Conditional(frozenset(var)), 1.0),
                b_log2,
                atoms[rel],
            )
        )
    return StatisticsSet(stats)


@dataclass
class Example67Result:
    b_log2: float
    log2_lp_bound: float
    normal_count: int
    normal_satisfies: bool
    product_count: int
    product_satisfies: bool
    log2_product_limit: float  # B^{3/5}


def _best_product_database(b_log2: float) -> Database:
    """The largest product database satisfying (40): N_X = N_Y = N_Z = B^{1/5}.

    By symmetry of the constraints N_X·N_Y⁴ ≤ B (etc.), the product
    N_X·N_Y·N_Z is maximised at the symmetric point.
    """
    n = max(1, int(2.0 ** (b_log2 / 5.0)))
    xs = list(range(n))
    pairs = [(i, j) for i in xs for j in xs]
    return Database(
        {
            "R1": Relation(("a", "b"), pairs),
            "R2": Relation(("a", "b"), pairs),
            "R3": Relation(("a", "b"), pairs),
            "S1": Relation(("a",), ((i,) for i in xs)),
            "S2": Relation(("a",), ((i,) for i in xs)),
            "S3": Relation(("a",), ((i,) for i in xs)),
        }
    )


def run_normal_vs_product(b_log2: float = 12.0) -> Example67Result:
    """Run E6 with B = 2^b_log2."""
    query = example67_query()
    stats = example67_statistics(b_log2)
    bound = BoundSolver().solve(stats, query=query, cone="normal")
    worst = build_worst_case(query, bound)
    normal_count = len(worst.witness)
    product_db = _best_product_database(b_log2)
    product_count = (
        len(product_db["S1"]) * len(product_db["S2"]) * len(product_db["S3"])
    )
    return Example67Result(
        b_log2=b_log2,
        log2_lp_bound=bound.log2_bound,
        normal_count=normal_count,
        normal_satisfies=stats.holds_on(worst.database, tolerance_log2=1e-6),
        product_count=product_count,
        product_satisfies=stats.holds_on(product_db, tolerance_log2=1e-6),
        log2_product_limit=3.0 * b_log2 / 5.0,
    )


def main(b_log2: float = 12.0) -> str:
    """Render E6."""
    res = run_normal_vs_product(b_log2)
    return "\n".join(
        [
            f"E6 (Example 6.7): B = 2^{res.b_log2:g}",
            f"  polymatroid/normal LP bound  = 2^{res.log2_lp_bound:.3f}"
            "  (paper: B)",
            f"  normal database output       = {res.normal_count}"
            f" = 2^{math.log2(res.normal_count):.3f}"
            f"  (satisfies stats: {res.normal_satisfies}; ≥ B/2 expected)",
            f"  best product database output = {res.product_count}"
            f" = 2^{math.log2(res.product_count):.3f}"
            f"  (satisfies stats: {res.product_satisfies};"
            f" ≤ B^(3/5) = 2^{res.log2_product_limit:.3f})",
        ]
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
