"""Experiment E10 — ablation: LP solver scaling, polymatroid vs normal cone.

Section 5 notes the bound LP is exponential in the query size.  This
ablation measures how the two cones scale on path queries of growing
length: the polymatroid cone needs ~n²·2^n Shannon rows, the normal cone
(exact for the simple statistics used everywhere in the experiments —
Theorem 6.1) needs only one column per intersection pattern.  Both must
agree on the bound value, which doubles as a correctness check.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from ..core import collect_statistics, lp_bound
from ..datasets.generators import power_law_graph
from ..query.query import Atom, ConjunctiveQuery
from ..relational import Database

__all__ = ["ScalingRow", "path_query", "run_lp_scaling", "main"]


def path_query(length: int) -> ConjunctiveQuery:
    """The path query R1(x1,x2) ∧ … ∧ R_length(x_length, x_{length+1})."""
    atoms = [
        Atom(f"R{i}", (f"x{i}", f"x{i + 1}")) for i in range(1, length + 1)
    ]
    return ConjunctiveQuery(atoms, name=f"path{length}")


@dataclass
class ScalingRow:
    num_variables: int
    log2_bound_normal: float
    log2_bound_polymatroid: float | None
    seconds_normal: float
    seconds_polymatroid: float | None

    @property
    def bounds_agree(self) -> bool:
        if self.log2_bound_polymatroid is None:
            return True
        return (
            abs(self.log2_bound_normal - self.log2_bound_polymatroid) < 1e-5
        )


def run_lp_scaling(
    lengths: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8),
    polymatroid_max_vars: int = 9,
    seed: int = 11,
) -> list[ScalingRow]:
    """Run E10 on path queries over a shared power-law edge relation."""
    edges = power_law_graph(800, 4000, 0.8, seed)
    rows = []
    for length in lengths:
        query = path_query(length)
        db = Database({f"R{i}": edges for i in range(1, length + 1)})
        stats = collect_statistics(
            query, db, ps=[1.0, 2.0, 3.0, 4.0, math.inf]
        )
        start = time.perf_counter()
        normal = lp_bound(stats, query=query, cone="normal")
        normal_time = time.perf_counter() - start
        poly_bound = None
        poly_time = None
        if query.num_variables <= polymatroid_max_vars:
            start = time.perf_counter()
            poly = lp_bound(stats, query=query, cone="polymatroid")
            poly_time = time.perf_counter() - start
            poly_bound = poly.log2_bound
        rows.append(
            ScalingRow(
                num_variables=query.num_variables,
                log2_bound_normal=normal.log2_bound,
                log2_bound_polymatroid=poly_bound,
                seconds_normal=normal_time,
                seconds_polymatroid=poly_time,
            )
        )
    return rows


def main() -> str:
    """Render E10."""
    from .harness import format_table

    rows = run_lp_scaling()
    table = format_table(
        ["#vars", "bound (normal)", "bound (polymatroid)", "t_normal", "t_poly"],
        [
            (
                r.num_variables,
                f"{r.log2_bound_normal:.3f}",
                "-" if r.log2_bound_polymatroid is None
                else f"{r.log2_bound_polymatroid:.3f}",
                f"{r.seconds_normal * 1e3:.1f}ms",
                "-" if r.seconds_polymatroid is None
                else f"{r.seconds_polymatroid * 1e3:.1f}ms",
            )
            for r in rows
        ],
    )
    agree = all(r.bounds_agree for r in rows)
    return (
        "E10: LP scaling, polymatroid vs normal cone "
        f"(bounds agree: {agree})\n" + table
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
