"""Experiment E12 — Appendix C.6: Loomis–Whitney queries (arity > 2).

All the headline experiments use binary relations; C.6 shows the
framework handles higher arities.  For the 4-variable Loomis–Whitney
query over ternary relations we compare the AGM bound (which is
|R|^{4/3}-style and tight for product instances), the C.6 ℓ2 bound, and
the full LP, on skewed synthetic ternary relations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core import collect_statistics, lp_bound
from ..core.degree import degree_sequence
from ..core.formulas import loomis_whitney_l2
from ..core.norms import log2_norm
from ..datasets.generators import zipf_values
from ..estimators.agm import agm_bound
from ..evaluation import count_query
from ..query.query import Atom, ConjunctiveQuery
from ..relational import Database, Relation

__all__ = [
    "LoomisWhitneyResult",
    "loomis_whitney_query",
    "skewed_ternary_instance",
    "run_loomis_whitney_experiment",
    "main",
]


def loomis_whitney_query() -> ConjunctiveQuery:
    """LW₄: one atom per 3-subset of {X, Y, Z, W}."""
    return ConjunctiveQuery(
        [
            Atom("A", ("X", "Y", "Z")),
            Atom("B", ("Y", "Z", "W")),
            Atom("C", ("Z", "W", "X")),
            Atom("D", ("W", "X", "Y")),
        ],
        name="LW4",
    )


def skewed_ternary_instance(
    rows: int = 3000, domain: int = 40, exponent: float = 0.9, seed: int = 17
) -> Database:
    """Four correlated skewed ternary relations over a shared tuple pool.

    All four relations are projections of one skewed 4-column pool, so the
    join is non-trivially large and the degree sequences are heavy-tailed
    — the regime where the ℓ2 bound pulls ahead of AGM.
    """
    rng = np.random.default_rng(seed)
    columns = [zipf_values(rows, domain, exponent, rng) for _ in range(4)]
    pool = list(zip(*(c.tolist() for c in columns)))  # (x, y, z, w)
    def proj(indices, attrs):
        return Relation(attrs, ({tuple(t[i] for i in indices) for t in pool}))

    return Database(
        {
            "A": proj((0, 1, 2), ("x", "y", "z")),
            "B": proj((1, 2, 3), ("y", "z", "w")),
            "C": proj((2, 3, 0), ("z", "w", "x")),
            "D": proj((3, 0, 1), ("w", "x", "y")),
        }
    )


@dataclass
class LoomisWhitneyResult:
    true_count: int
    log2_agm: float
    log2_c6_formula: float
    log2_lp: float
    lp_norms_used: list[float]

    def ratios(self) -> dict[str, float]:
        t = math.log2(max(1, self.true_count))
        return {
            "agm": 2.0 ** (self.log2_agm - t),
            "c6": 2.0 ** (self.log2_c6_formula - t),
            "lp": 2.0 ** (self.log2_lp - t),
        }


def run_loomis_whitney_experiment(
    rows: int = 3000, domain: int = 40, exponent: float = 0.9, seed: int = 17
) -> LoomisWhitneyResult:
    """Run E12 on one synthetic instance."""
    db = skewed_ternary_instance(rows, domain, exponent, seed)
    query = loomis_whitney_query()
    true_count = count_query(query, db)
    agm = agm_bound(query, db)
    # the C.6 closed form: ℓ2 on deg_A(YZ|X) and deg_C(WX|Z), sizes of B, D
    a, c = db["A"], db["C"]
    l2_a = log2_norm(degree_sequence(a, ["y", "z"], ["x"]), 2.0)
    l2_c = log2_norm(degree_sequence(c, ["w", "x"], ["z"]), 2.0)
    formula = loomis_whitney_l2(
        l2_a, math.log2(len(db["B"])), l2_c, math.log2(len(db["D"]))
    )
    stats = collect_statistics(
        query, db, ps=[1.0, 2.0, 3.0, 4.0, math.inf]
    )
    lp = lp_bound(stats, query=query)
    return LoomisWhitneyResult(
        true_count=true_count,
        log2_agm=agm,
        log2_c6_formula=formula,
        log2_lp=lp.log2_bound,
        lp_norms_used=lp.norms_used(),
    )


def main() -> str:
    """Render E12."""
    res = run_loomis_whitney_experiment()
    ratios = res.ratios()
    return "\n".join(
        [
            "E12 (Appendix C.6): Loomis–Whitney LW₄ on skewed ternary data",
            f"  true |Q|        = {res.true_count}",
            f"  AGM bound       = 2^{res.log2_agm:.2f}"
            f"  (ratio {ratios['agm']:.3g})",
            f"  C.6 ℓ2 formula  = 2^{res.log2_c6_formula:.2f}"
            f"  (ratio {ratios['c6']:.3g})",
            f"  full ℓp LP      = 2^{res.log2_lp:.2f}"
            f"  (ratio {ratios['lp']:.3g}, norms {res.lp_norms_used})",
        ]
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
