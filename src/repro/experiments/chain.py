"""Experiment E11 — Example 2.2 / Appendix C.4: path queries.

Path (chain) queries are the paper's archetype of the acyclic case where
classical bounds degenerate: PANDA extends (17) link by link, while the
ℓp family mixes an ℓ2 head, ℓ_{p−1} middles, and an ℓp tail (inequality
(20)).  The experiment runs paths of growing length over a SNAP-like edge
relation, reporting the {1}, {1,∞} and full-family bounds, the closed
form (20) for several p, the DSB chain bound, and the true count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core import collect_statistics, lp_bound
from ..core.degree import degree_sequence
from ..core.formulas import chain_bound
from ..core.norms import log2_norm
from ..datasets.snap import load_snap_graph
from ..estimators.dsb import dsb_chain
from ..estimators.textbook import textbook_estimate_log2
from ..evaluation import acyclic_count
from ..query.query import Atom, ConjunctiveQuery
from ..relational import Database
from .harness import format_table, ratio_to_true

__all__ = ["ChainRow", "chain_query_over", "run_chain_experiment", "main"]


def chain_query_over(length: int, relation_prefix: str = "R") -> ConjunctiveQuery:
    """R1(x1,x2) ∧ … ∧ R_length(x_length, x_{length+1})."""
    atoms = [
        Atom(f"{relation_prefix}{i}", (f"x{i}", f"x{i + 1}"))
        for i in range(1, length + 1)
    ]
    return ConjunctiveQuery(atoms, name=f"chain{length}")


@dataclass
class ChainRow:
    """One chain length's results (ratios to the true count)."""

    length: int
    true_count: int
    ratio_l1: float
    ratio_l1_inf: float
    ratio_full: float
    ratio_formula_p2: float
    ratio_formula_p3: float
    ratio_dsb: float
    ratio_estimator: float
    norms_used: list[float]


def run_chain_experiment(
    dataset: str = "ca-GrQc",
    lengths: tuple[int, ...] = (2, 3, 4, 5),
    max_p: int = 6,
) -> list[ChainRow]:
    """Run E11 on paths over one dataset's edge relation."""
    edges = load_snap_graph(dataset)
    seq_fw = degree_sequence(edges, ["y"], ["x"])
    seq_bw = degree_sequence(edges, ["x"], ["y"])
    log2_size = math.log2(len(edges))
    ps = [float(p) for p in range(1, max_p + 1)] + [math.inf]
    rows = []
    for length in lengths:
        query = chain_query_over(length)
        db = Database(
            {f"R{i}": edges for i in range(1, length + 1)}
        )
        true_count = acyclic_count(query, db)
        stats = collect_statistics(query, db, ps=ps)
        full = lp_bound(stats, query=query)
        l1 = lp_bound(stats.restrict_ps([1.0]), query=query)
        l1i = lp_bound(stats.restrict_ps([1.0, math.inf]), query=query)

        def formula(p: float) -> float:
            if length < 2:
                return math.inf
            middles = [log2_norm(seq_fw, p - 1.0)] * max(0, length - 2)
            return chain_bound(
                log2_size,
                log2_norm(seq_bw, 2.0),
                middles,
                log2_norm(seq_fw, p),
                p,
            )

        rows.append(
            ChainRow(
                length=length,
                true_count=true_count,
                ratio_l1=ratio_to_true(l1.log2_bound, true_count),
                ratio_l1_inf=ratio_to_true(l1i.log2_bound, true_count),
                ratio_full=ratio_to_true(full.log2_bound, true_count),
                ratio_formula_p2=ratio_to_true(formula(2.0), true_count),
                ratio_formula_p3=ratio_to_true(formula(3.0), true_count),
                ratio_dsb=ratio_to_true(
                    math.log2(max(1.0, dsb_chain(query, db))), true_count
                ),
                ratio_estimator=ratio_to_true(
                    textbook_estimate_log2(query, db), true_count
                ),
                norms_used=full.norms_used(),
            )
        )
    return rows


def main(dataset: str = "ca-GrQc") -> str:
    """Render E11."""
    rows = run_chain_experiment(dataset)
    table = format_table(
        ["len", "{1}", "{1,∞}", "full", "(20) p=2", "(20) p=3", "DSB",
         "Textbook", "|Q|"],
        [
            (
                r.length,
                f"{r.ratio_l1:.3g}",
                f"{r.ratio_l1_inf:.3g}",
                f"{r.ratio_full:.3g}",
                f"{r.ratio_formula_p2:.3g}",
                f"{r.ratio_formula_p3:.3g}",
                f"{r.ratio_dsb:.3g}",
                f"{r.ratio_estimator:.3g}",
                r.true_count,
            )
            for r in rows
        ],
    )
    return (
        f"E11 (Example 2.2): path queries on {dataset}, "
        "ratios bound/true\n" + table
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
