"""Experiment E3 — Figure 1: 33 JOB-like acyclic queries.

For every query: the ratio of our full-family ℓp bound (p ∈ [30] ∪ {∞}),
the AGM {1}-bound, the PANDA {1,∞}-bound, and the textbook estimate to
the true cardinality — plus the set of norms the optimal bound uses.

Paper's shape to reproduce: ours ≪ PANDA ≪ AGM (orders of magnitude);
the estimator underestimates everywhere; ℓ∞ appears in every optimal
certificate (key–foreign-key joins); a wide variety of intermediate p's
appear across queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core import BoundSolver, BoundTask, StatisticsCatalog, lp_bound_many
from ..datasets.imdb import imdb_database
from ..datasets.job_queries import JOB_QUERY_IDS, job_query
from ..estimators.textbook import textbook_estimate_log2
from ..evaluation import acyclic_count
from ..relational import Database
from .harness import format_scientific, format_table, ratio_to_true

__all__ = ["JobRow", "run_job_experiment", "main", "JOB_PS"]

JOB_PS: tuple[float, ...] = tuple(float(p) for p in range(1, 31)) + (math.inf,)


@dataclass
class JobRow:
    """One query's results (Figure 1 row)."""

    query_id: int
    num_relations: int
    true_count: int
    ratio_ours: float
    norms_used: list[float]
    ratio_agm: float
    ratio_panda: float
    ratio_estimator: float


def run_job_experiment(
    db: Database | None = None,
    query_ids: tuple[int, ...] | None = None,
    scale: float = 0.3,
    seed: int = 7,
) -> list[JobRow]:
    """Run E3; one row per query id (all 33 by default)."""
    database = db if db is not None else imdb_database(scale=scale, seed=seed)
    ids = query_ids or JOB_QUERY_IDS
    queries = [job_query(qid) for qid in ids]
    # batched pipeline: one catalog pass extracts every degree sequence of
    # the whole workload (prefix-shared lexsorts, multi-p norm batches),
    # then all 3 bounds per query fan out through one solver.
    catalog = StatisticsCatalog(database)
    all_stats = catalog.precompute(queries, ps=JOB_PS)
    tasks = []
    for query, stats in zip(queries, all_stats):
        tasks.append(BoundTask(stats, query=query))
        tasks.append(BoundTask(stats, query=query, family=(1.0,)))
        tasks.append(BoundTask(stats, query=query, family=(1.0, math.inf)))
    results = lp_bound_many(tasks, solver=BoundSolver())
    rows = []
    for i, (qid, query) in enumerate(zip(ids, queries)):
        true_count = acyclic_count(query, database)
        ours, agm, panda = results[3 * i: 3 * i + 3]
        rows.append(
            JobRow(
                query_id=qid,
                num_relations=len(query.atoms),
                true_count=true_count,
                ratio_ours=ratio_to_true(ours.log2_bound, true_count),
                norms_used=ours.norms_used(),
                ratio_agm=ratio_to_true(agm.log2_bound, true_count),
                ratio_panda=ratio_to_true(panda.log2_bound, true_count),
                ratio_estimator=ratio_to_true(
                    textbook_estimate_log2(query, database), true_count
                ),
            )
        )
    return rows


def _norms_label(norms: list[float]) -> str:
    parts = [
        "∞" if p == math.inf else format(p, "g") for p in sorted(norms)
    ]
    return "{" + ",".join(parts) + "}"


def main(scale: float = 0.3) -> str:
    """Render the Figure 1 table."""
    rows = run_job_experiment(scale=scale)
    table = format_table(
        ["Q#", "#Rel", "Ours", "Norms", "AGM {1}", "PANDA {1,∞}", "Textbook"],
        [
            (
                r.query_id,
                r.num_relations,
                format_scientific(r.ratio_ours),
                _norms_label(r.norms_used),
                format_scientific(r.ratio_agm),
                format_scientific(r.ratio_panda),
                format_scientific(r.ratio_estimator),
            )
            for r in rows
        ],
    )
    return (
        "E3 (Figure 1): JOB-like queries, ratios bound/true (1.0 = exact)\n"
        + table
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
