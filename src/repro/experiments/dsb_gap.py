"""Experiment E5 — Appendix C.3: the DSB vs ℓp-bound gap.

The gap instance: R is a (0, 1/3)-relation and S a (0, 2/3)-relation over
parameter M, joined on Y:

* the Degree Sequence Bound is Θ(M) — and |Q| = Θ(M), so it is tight;
* the best polymatroid bound from *all* ℓp-norms is Θ(M^{10/9}), attained
  by inequality (50) with (p,q) = (3,2);
* the witness instance (R', S') has degree sequences
  (M^{1/9} × M^{2/3} values) and (M^{1/3} × M^{2/3} values): it satisfies
  every ℓp-statistic of (R, S) yet its join has M^{10/9} tuples —
  proving no ℓp-based bound can do better.

The asymmetry comes from the norms↔sequence map (Lemma A.1) being
monotone in only one direction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core import BoundSolver, StatisticsCatalog
from ..core.formulas import dsb_gap_certificate
from ..core.norms import log2_norm
from ..core.degree import degree_sequence
from ..datasets.generators import alpha_beta_relation
from ..estimators.dsb import dsb_single_join
from ..evaluation import acyclic_count
from ..query import parse_query
from ..relational import Database, Relation

__all__ = ["DsbGapResult", "run_dsb_gap_experiment", "main", "witness_instance"]

GAP_QUERY = parse_query("gap(x,y,z) :- R(x,y), S(y,z)")


@dataclass
class DsbGapResult:
    """Everything the Appendix C.3 analysis measures, log2 scale."""

    m: int
    log2_m: float
    true_count: int
    log2_dsb: float
    log2_lp: float
    log2_certificate: float  # closed form (50)
    witness_count: int
    witness_satisfies_stats: bool

    @property
    def lp_exponent(self) -> float:
        """log_M of the LP bound — should approach 10/9 ≈ 1.111."""
        return self.log2_lp / self.log2_m

    @property
    def dsb_exponent(self) -> float:
        """log_M of the DSB — should approach 1."""
        return self.log2_dsb / self.log2_m


def witness_instance(m: int) -> Database:
    """The instance (R', S') of Appendix C.3 achieving M^{10/9}.

    deg_{R'}(X|Y) has M^{2/3} values of degree M^{1/9}; deg_{S'}(Z|Y) has
    M^{2/3} values of degree M^{1/3}; R' and S' share their Y-column, so
    |Q'| = M^{2/3} · M^{1/9} · M^{1/3} = M^{10/9}.
    """
    y_count = max(1, round(m ** (2.0 / 3.0)))
    deg_r = max(1, round(m ** (1.0 / 9.0)))
    deg_s = max(1, round(m ** (1.0 / 3.0)))
    r_rows = [
        (("rx", y, i), ("y", y))
        for y in range(y_count)
        for i in range(deg_r)
    ]
    s_rows = [
        (("y", y), ("sz", y, j))
        for y in range(y_count)
        for j in range(deg_s)
    ]
    return Database(
        {
            "R": Relation(("x", "y"), r_rows),
            "S": Relation(("y", "z"), s_rows),
        }
    )


def run_dsb_gap_experiment(m: int = 19683, max_p: int = 10) -> DsbGapResult:
    """Run E5 with parameter M (default 3^9, so M^{1/3}, M^{1/9} are exact)."""
    r = alpha_beta_relation(0.0, 1.0 / 3.0, m).with_name("R")
    s = alpha_beta_relation(0.0, 2.0 / 3.0, m).with_name("S")
    db = Database({"R": r, "S": s})
    true_count = acyclic_count(GAP_QUERY, db)
    dsb = dsb_single_join(GAP_QUERY, db)
    ps = [float(p) for p in range(1, max_p + 1)] + [math.inf]
    (stats,) = StatisticsCatalog(db).precompute([GAP_QUERY], ps=ps)
    lp = BoundSolver().solve(stats, query=GAP_QUERY)
    # atom R(x,y) binds the relation's (x, y) columns directly; atom S(y,z)
    # binds S.x to the query's y and S.y to the query's z.
    seq_r = degree_sequence(r, ["x"], ["y"])
    seq_s = degree_sequence(s, ["y"], ["x"])
    certificate = dsb_gap_certificate(
        log2_norm(seq_r, 3.0), math.log2(len(s)), log2_norm(seq_s, 2.0)
    )
    witness_db = witness_instance(m)
    witness_count = acyclic_count(GAP_QUERY, witness_db)
    return DsbGapResult(
        m=m,
        log2_m=math.log2(m),
        true_count=true_count,
        log2_dsb=math.log2(dsb),
        log2_lp=lp.log2_bound,
        log2_certificate=certificate,
        witness_count=witness_count,
        witness_satisfies_stats=stats.holds_on(witness_db, tolerance_log2=0.1),
    )


def main(m: int = 19683) -> str:
    """Render E5."""
    res = run_dsb_gap_experiment(m)
    lines = [
        f"E5 (Appendix C.3): DSB vs ℓp gap instance, M = {res.m}",
        f"  |Q| (true)                = 2^{math.log2(res.true_count):.3f}"
        f"  (exponent {math.log2(res.true_count)/res.log2_m:.3f})",
        f"  DSB                       = 2^{res.log2_dsb:.3f}"
        f"  (exponent {res.dsb_exponent:.3f}, paper: 1)",
        f"  ℓp LP bound (p ≤ 10, ∞)   = 2^{res.log2_lp:.3f}"
        f"  (exponent {res.lp_exponent:.3f}, paper: 10/9 ≈ 1.111)",
        f"  closed form (50)          = 2^{res.log2_certificate:.3f}",
        f"  witness |Q'|              = 2^{math.log2(res.witness_count):.3f}"
        f"  (satisfies the ℓp stats: {res.witness_satisfies_stats})",
    ]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())
