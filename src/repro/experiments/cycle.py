"""Experiment E4 — Example 2.3 / Appendix C.5: every ℓp is needed.

For each p, the (p+1)-cycle on an (α,β)-relation with α = β = 1/(p+1)
has |Q| = Θ(N) while:

* the AGM bound (52-left) is N^{(p+1)/2};
* the PANDA bound (52-right) is N^{2p/(p+1)};
* the ℓq bound (21) is N^{(p+1)/(q+1)} — minimised at q = p, where it is
  (1+o(1))·N.

The experiment computes all of these (closed forms *and* the LP, which
must agree with the best closed form) plus the true output size, showing
that the ℓp-norm statistic is the one that matters for the (p+1)-cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core import BoundSolver, StatisticsCatalog
from ..core.formulas import cycle_agm, cycle_bound, cycle_panda
from ..core.norms import log2_norm
from ..core.degree import degree_sequence
from ..datasets.generators import alpha_beta_relation
from ..evaluation import count_query
from ..query.query import Atom, ConjunctiveQuery
from ..relational import Database
from .harness import format_table, ratio_to_true

__all__ = ["CycleRow", "cycle_query", "run_cycle_experiment", "main"]


def cycle_query(length: int) -> ConjunctiveQuery:
    """The cycle query of the given length (number of atoms ≥ 3).

    Uses one relation symbol per atom, all bound to the same instance, so
    statistics guard cleanly (matching Example 2.3's R_0 … R_p)."""
    if length < 3:
        raise ValueError("cycles need at least 3 atoms")
    atoms = [
        Atom(f"R{i}", (f"x{i}", f"x{(i + 1) % length}"))
        for i in range(length)
    ]
    return ConjunctiveQuery(atoms, name=f"cycle{length}")


@dataclass
class CycleRow:
    """Bounds for one q on the (p+1)-cycle (log2 values and ratio)."""

    q: float
    log2_bound: float
    ratio: float


@dataclass
class CycleExperiment:
    """Full results for one p."""

    p: int
    m: int
    true_count: int
    rows: list[CycleRow]  # one per q = 1..p (the ℓq bounds)
    log2_agm: float
    log2_panda: float
    log2_lp: float
    lp_norms_used: list[float]

    @property
    def best_q(self) -> float:
        return min(self.rows, key=lambda r: r.log2_bound).q


def run_cycle_experiment(
    p: int, m: int = 2048, solver: BoundSolver | None = None
) -> CycleExperiment:
    """Run E4 for one p: the (p+1)-cycle on an (α,β)=(1/(p+1),1/(p+1)) relation.

    ``solver`` may be shared across runs (e.g. a scale sweep over ``m``
    re-solves the same cycle LP structure with only the norms changed).
    """
    length = p + 1
    relation = alpha_beta_relation(1.0 / length, 1.0 / length, m)
    query = cycle_query(length)
    db = Database({f"R{i}": relation for i in range(length)})
    true_count = count_query(query, db)
    seq = degree_sequence(relation, ["y"], ["x"])
    log2_size = math.log2(len(relation))
    rows = []
    for q in range(1, p + 1):
        lq = log2_norm(seq, float(q))
        rows.append(
            CycleRow(
                q=float(q),
                log2_bound=cycle_bound([lq] * length, float(q)),
                ratio=ratio_to_true(
                    cycle_bound([lq] * length, float(q)), true_count
                ),
            )
        )
    ps = [float(k) for k in range(1, p + 1)] + [math.inf]
    (stats,) = StatisticsCatalog(db).precompute([query], ps=ps)
    lp = (solver or BoundSolver()).solve(stats, query=query)
    return CycleExperiment(
        p=p,
        m=m,
        true_count=true_count,
        rows=rows,
        log2_agm=cycle_agm([log2_size] * length),
        log2_panda=cycle_panda(
            log2_size, log2_norm(seq, math.inf), length
        ),
        log2_lp=lp.log2_bound,
        lp_norms_used=lp.norms_used(),
    )


def main(ps: tuple[int, ...] = (2, 3, 4), m: int = 2048) -> str:
    """Render E4 for several cycle lengths."""
    sections = []
    solver = BoundSolver()
    for p in ps:
        exp = run_cycle_experiment(p, m=m, solver=solver)
        table = format_table(
            ["bound", "log2", "ratio to |Q|"],
            [
                *(
                    (f"ℓ{int(r.q)} (21)", f"{r.log2_bound:.2f}", f"{r.ratio:.2f}")
                    for r in exp.rows
                ),
                ("AGM {1}", f"{exp.log2_agm:.2f}",
                 f"{ratio_to_true(exp.log2_agm, exp.true_count):.2f}"),
                ("PANDA {1,∞}", f"{exp.log2_panda:.2f}",
                 f"{ratio_to_true(exp.log2_panda, exp.true_count):.2f}"),
                ("LP (all)", f"{exp.log2_lp:.2f}",
                 f"{ratio_to_true(exp.log2_lp, exp.true_count):.2f}"),
            ],
        )
        sections.append(
            f"E4: {p + 1}-cycle on (1/{p+1},1/{p+1})-relation, M={exp.m}, "
            f"|Q|={exp.true_count}, best closed-form q={exp.best_q:g}, "
            f"LP used norms {exp.lp_norms_used}\n{table}"
        )
    return "\n\n".join(sections)


if __name__ == "__main__":  # pragma: no cover
    print(main())
