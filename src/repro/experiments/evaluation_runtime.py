"""Experiment E8 — Sec. 2.2 / Theorem 2.6: evaluation within the bound.

Runs the paper's evaluation algorithm (Lemma 2.5 partitioning + per-part
PANDA stand-in) on graph workloads and compares the *metered* work —
search-tree nodes across all parts — against the Theorem 2.6 budget
c · Π_i B_i^{w_i}.  Also cross-checks that the partitioned evaluation
returns exactly the same output as a direct join.

With ``parallel_workers`` set, each workload additionally runs through
the supervised parallel evaluator
(:func:`repro.evaluation.evaluate_parallel`) — same part combinations
fanned across a process pool with timeout/retry/checkpoint supervision —
and the row verifies its count, part total, and node meter against the
serial run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core import BoundSolver, StatisticsCatalog
from ..datasets.snap import snap_database
from ..evaluation import (
    SupervisionPolicy,
    count_query,
    evaluate_parallel,
    evaluate_with_partitioning,
    parse_fault_spec,
)
from ..query import parse_query
from ..query.query import ConjunctiveQuery
from ..relational import Database

__all__ = ["RuntimeRow", "run_evaluation_experiment", "main"]

ONE_JOIN = parse_query("onejoin(x,y,z) :- R(x,y), R(y,z)")
TRIANGLE = parse_query("triangle(x,y,z) :- R(x,y), R(y,z), R(z,x)")


@dataclass
class RuntimeRow:
    """One workload's metered run."""

    workload: str
    output_count: int
    direct_count: int
    parts_evaluated: int
    log2_nodes: float
    log2_budget: float
    engine: str = "serial"

    @property
    def output_matches(self) -> bool:
        return self.output_count == self.direct_count

    @property
    def within_budget(self) -> bool:
        """nodes ≤ 2^budget · polylog — we allow a 2^6 polylog factor."""
        return self.log2_nodes <= self.log2_budget + 6.0


def _run_one(
    label: str,
    query: ConjunctiveQuery,
    db: Database,
    ps: list[float],
    catalog: StatisticsCatalog,
    solver: BoundSolver,
    parallel_workers: int | None = None,
    policy: SupervisionPolicy | None = None,
    injector=None,
    run_dir: str | None = None,
) -> list[RuntimeRow]:
    (stats,) = catalog.precompute([query], ps=ps)
    bound = solver.solve(stats, query=query)
    run = evaluate_with_partitioning(query, db, bound, max_parts=20000)
    direct = count_query(query, db)
    rows = [
        RuntimeRow(
            workload=label,
            output_count=run.count,
            direct_count=direct,
            parts_evaluated=run.parts_evaluated,
            log2_nodes=math.log2(max(1, run.nodes_visited)),
            log2_budget=run.log2_budget,
        )
    ]
    if parallel_workers:
        par = evaluate_parallel(
            query,
            db,
            bound,
            workers=parallel_workers,
            max_parts=20000,
            policy=policy,
            injector=injector,
            run_dir=run_dir,
            resume=run_dir is not None,
        )
        # the parallel merge must reproduce the serial run exactly:
        # same count, same part total, same node meter
        matches = (
            par.count == run.count
            and par.parts_evaluated == run.parts_evaluated
            and par.nodes_visited == run.nodes_visited
        )
        rows.append(
            RuntimeRow(
                workload=label,
                output_count=par.count,
                direct_count=run.count if matches else -1,
                parts_evaluated=par.parts_evaluated,
                log2_nodes=math.log2(max(1, par.nodes_visited)),
                log2_budget=par.log2_budget,
                engine=f"parallel[{parallel_workers}]",
            )
        )
    return rows


def run_evaluation_experiment(
    dataset: str = "ca-GrQc",
    parallel_workers: int | None = None,
    policy: SupervisionPolicy | None = None,
    injector=None,
    resume_dir: str | None = None,
) -> list[RuntimeRow]:
    """Run E8 on one dataset: the one-join and the triangle.

    ``parallel_workers`` adds one supervised-parallel row per workload
    (verified against the serial run); ``resume_dir`` roots per-workload
    checkpoint directories for interrupted runs.
    """
    db = snap_database(dataset)
    # both workloads share one catalog (the triangle reuses the one-join's
    # degree sequences) and one solver.
    catalog = StatisticsCatalog(db)
    solver = BoundSolver()
    ps = [1.0, 2.0, math.inf]
    rows: list[RuntimeRow] = []
    for label, query in (
        (f"one-join/{dataset}", ONE_JOIN),
        (f"triangle/{dataset}", TRIANGLE),
    ):
        run_dir = None
        if resume_dir is not None:
            run_dir = f"{resume_dir}/{label.replace('/', '-')}"
        rows.extend(
            _run_one(
                label,
                query,
                db,
                ps,
                catalog,
                solver,
                parallel_workers=parallel_workers,
                policy=policy,
                injector=injector,
                run_dir=run_dir,
            )
        )
    return rows


def main(
    dataset: str = "ca-GrQc",
    parallel_workers: int | None = None,
    part_timeout: float | None = None,
    retries: int | None = None,
    inject_faults: str | None = None,
    resume: str | None = None,
) -> str:
    """Render E8 (optionally with supervised-parallel rows)."""
    policy_kwargs = {}
    if part_timeout is not None:
        policy_kwargs["part_timeout"] = part_timeout
    if retries is not None:
        policy_kwargs["max_retries"] = retries
    rows = run_evaluation_experiment(
        dataset,
        parallel_workers=parallel_workers,
        policy=SupervisionPolicy(**policy_kwargs) if policy_kwargs else None,
        injector=parse_fault_spec(inject_faults) if inject_faults else None,
        resume_dir=resume,
    )
    lines = [f"E8 (Theorem 2.6): partitioned evaluation on {dataset}"]
    for r in rows:
        lines.append(
            f"  {r.workload} [{r.engine}]: |Q|={r.output_count}"
            f" (matches: {r.output_matches});"
            f" {r.parts_evaluated} part combinations;"
            f" work 2^{r.log2_nodes:.2f} vs budget 2^{r.log2_budget:.2f}"
            f" (within budget: {r.within_budget})"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())
