"""Experiment E8 — Sec. 2.2 / Theorem 2.6: evaluation within the bound.

Runs the paper's evaluation algorithm (Lemma 2.5 partitioning + per-part
PANDA stand-in) on graph workloads and compares the *metered* work —
search-tree nodes across all parts — against the Theorem 2.6 budget
c · Π_i B_i^{w_i}.  Also cross-checks that the partitioned evaluation
returns exactly the same output as a direct join.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core import BoundSolver, StatisticsCatalog
from ..datasets.snap import snap_database
from ..evaluation import count_query, evaluate_with_partitioning
from ..query import parse_query
from ..query.query import ConjunctiveQuery
from ..relational import Database

__all__ = ["RuntimeRow", "run_evaluation_experiment", "main"]

ONE_JOIN = parse_query("onejoin(x,y,z) :- R(x,y), R(y,z)")
TRIANGLE = parse_query("triangle(x,y,z) :- R(x,y), R(y,z), R(z,x)")


@dataclass
class RuntimeRow:
    """One workload's metered run."""

    workload: str
    output_count: int
    direct_count: int
    parts_evaluated: int
    log2_nodes: float
    log2_budget: float

    @property
    def output_matches(self) -> bool:
        return self.output_count == self.direct_count

    @property
    def within_budget(self) -> bool:
        """nodes ≤ 2^budget · polylog — we allow a 2^6 polylog factor."""
        return self.log2_nodes <= self.log2_budget + 6.0


def _run_one(
    label: str,
    query: ConjunctiveQuery,
    db: Database,
    ps: list[float],
    catalog: StatisticsCatalog,
    solver: BoundSolver,
) -> RuntimeRow:
    (stats,) = catalog.precompute([query], ps=ps)
    bound = solver.solve(stats, query=query)
    run = evaluate_with_partitioning(query, db, bound, max_parts=20000)
    direct = count_query(query, db)
    return RuntimeRow(
        workload=label,
        output_count=run.count,
        direct_count=direct,
        parts_evaluated=run.parts_evaluated,
        log2_nodes=math.log2(max(1, run.nodes_visited)),
        log2_budget=run.log2_budget,
    )


def run_evaluation_experiment(
    dataset: str = "ca-GrQc",
) -> list[RuntimeRow]:
    """Run E8 on one dataset: the one-join and the triangle."""
    db = snap_database(dataset)
    # both workloads share one catalog (the triangle reuses the one-join's
    # degree sequences) and one solver.
    catalog = StatisticsCatalog(db)
    solver = BoundSolver()
    ps = [1.0, 2.0, math.inf]
    return [
        _run_one(f"one-join/{dataset}", ONE_JOIN, db, ps, catalog, solver),
        _run_one(f"triangle/{dataset}", TRIANGLE, db, ps, catalog, solver),
    ]


def main(dataset: str = "ca-GrQc") -> str:
    """Render E8."""
    rows = run_evaluation_experiment(dataset)
    lines = [f"E8 (Theorem 2.6): partitioned evaluation on {dataset}"]
    for r in rows:
        lines.append(
            f"  {r.workload}: |Q|={r.output_count}"
            f" (matches direct: {r.output_matches});"
            f" {r.parts_evaluated} part combinations;"
            f" work 2^{r.log2_nodes:.2f} vs budget 2^{r.log2_budget:.2f}"
            f" (within budget: {r.within_budget})"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())
