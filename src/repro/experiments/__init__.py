"""Experiments: one module per table/figure of the paper (see docs/architecture.md).

| id  | paper artifact        | module                |
|-----|-----------------------|-----------------------|
| E1  | App. C.1 triangle     | ``triangle``          |
| E2  | App. C.1 one-join     | ``one_join``          |
| E3  | Figure 1 (JOB)        | ``job``               |
| E4  | Example 2.3 cycles    | ``cycle``             |
| E5  | App. C.3 DSB gap      | ``dsb_gap``           |
| E6  | Example 6.7           | ``normal_vs_product`` |
| E7  | Theorem D.3(2)        | ``nonshannon``        |
| E8  | Sec. 2.2 / Thm 2.6    | ``evaluation_runtime``|
| E9  | norm-family ablation  | ``norm_ablation``     |
| E10 | LP scaling ablation   | ``lp_scaling``        |
| E11 | Example 2.2 chains    | ``chain``             |
| E12 | App. C.6 Loomis–Whitney | ``loomis_whitney``  |
| E13 | Appendix B ([14])     | ``appendix_b``        |
| E14 | blocked star frontier | ``star``              |
"""

from . import (
    appendix_b,
    chain,
    cycle,
    dsb_gap,
    evaluation_runtime,
    job,
    loomis_whitney,
    lp_scaling,
    nonshannon,
    norm_ablation,
    normal_vs_product,
    one_join,
    star,
    triangle,
)

__all__ = [
    "triangle",
    "one_join",
    "job",
    "cycle",
    "dsb_gap",
    "normal_vs_product",
    "nonshannon",
    "evaluation_runtime",
    "norm_ablation",
    "lp_scaling",
    "chain",
    "loomis_whitney",
    "appendix_b",
    "star",
]
