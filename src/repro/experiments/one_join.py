"""Experiment E2 — the one-join (self-join) query on SNAP-like graphs.

Q(x,y,z) = R(x,y) ∧ R(y,z) on each dataset's edge relation.  The paper's
Appendix C.1 second table: the {1}-bound is off by 3–6 orders of
magnitude, {1,∞} by up to 2, while the {2}-bound (Cauchy–Schwartz, Eq. 18)
is within small factors of the truth — exactly 1.0 on symmetric,
calibrated relations; the textbook estimator *under*-estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core import BoundSolver, BoundTask, StatisticsCatalog, lp_bound_many
from ..datasets.snap import SNAP_SPECS, snap_database
from ..estimators.textbook import textbook_estimate_log2
from ..evaluation import acyclic_count
from ..query import parse_query
from .harness import format_table, ratio_to_true

__all__ = ["OneJoinRow", "run_one_join_experiment", "main", "ONE_JOIN_QUERY"]

ONE_JOIN_QUERY = parse_query("onejoin(x,y,z) :- R(x,y), R(y,z)")


@dataclass
class OneJoinRow:
    """One dataset's results (ratios to the true cardinality)."""

    dataset: str
    true_count: int
    ratio_l1: float
    ratio_l1_inf: float
    ratio_l2: float
    ratio_estimator: float


def run_one_join_experiment(
    datasets: list[str] | None = None,
) -> list[OneJoinRow]:
    """Run E2; returns one row per dataset."""
    names = datasets or [spec.name for spec in SNAP_SPECS]
    ps = [1.0, 2.0, math.inf]
    families = ((1.0,), (1.0, math.inf), (2.0,))
    # every dataset solves the same three LP structures — the shared
    # solver re-solves them with only the b vector swapped per dataset.
    solver = BoundSolver()
    tasks: list[BoundTask] = []
    per_dataset = []
    for name in names:
        db = snap_database(name)
        true_count = acyclic_count(ONE_JOIN_QUERY, db)
        (stats,) = StatisticsCatalog(db).precompute([ONE_JOIN_QUERY], ps=ps)
        per_dataset.append((name, db, true_count))
        tasks.extend(
            BoundTask(stats, query=ONE_JOIN_QUERY, family=family)
            for family in families
        )
    results = lp_bound_many(tasks, solver=solver)
    rows = []
    for i, (name, db, true_count) in enumerate(per_dataset):
        l1, l1i, l2 = results[3 * i: 3 * i + 3]
        rows.append(
            OneJoinRow(
                dataset=name,
                true_count=true_count,
                ratio_l1=ratio_to_true(l1.log2_bound, true_count),
                ratio_l1_inf=ratio_to_true(l1i.log2_bound, true_count),
                ratio_l2=ratio_to_true(l2.log2_bound, true_count),
                ratio_estimator=ratio_to_true(
                    textbook_estimate_log2(ONE_JOIN_QUERY, db), true_count
                ),
            )
        )
    return rows


def main() -> str:
    """Render the Appendix C.1 one-join table."""
    rows = run_one_join_experiment()
    table = format_table(
        ["Dataset", "{1}", "{1,∞}", "{2}", "Textbook", "|Q|"],
        [
            (
                r.dataset,
                f"{r.ratio_l1:,.2f}",
                f"{r.ratio_l1_inf:.2f}",
                f"{r.ratio_l2:.2f}",
                f"{r.ratio_estimator:.2f}",
                r.true_count,
            )
            for r in rows
        ],
    )
    return "E2: one-join query, ratios bound/true (1.0 = exact)\n" + table


if __name__ == "__main__":  # pragma: no cover
    print(main())
