"""Experiment E2 — the one-join (self-join) query on SNAP-like graphs.

Q(x,y,z) = R(x,y) ∧ R(y,z) on each dataset's edge relation.  The paper's
Appendix C.1 second table: the {1}-bound is off by 3–6 orders of
magnitude, {1,∞} by up to 2, while the {2}-bound (Cauchy–Schwartz, Eq. 18)
is within small factors of the truth — exactly 1.0 on symmetric,
calibrated relations; the textbook estimator *under*-estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core import collect_statistics, lp_bound
from ..datasets.snap import SNAP_SPECS, snap_database
from ..estimators.textbook import textbook_estimate_log2
from ..evaluation import acyclic_count
from ..query import parse_query
from .harness import format_table, ratio_to_true

__all__ = ["OneJoinRow", "run_one_join_experiment", "main", "ONE_JOIN_QUERY"]

ONE_JOIN_QUERY = parse_query("onejoin(x,y,z) :- R(x,y), R(y,z)")


@dataclass
class OneJoinRow:
    """One dataset's results (ratios to the true cardinality)."""

    dataset: str
    true_count: int
    ratio_l1: float
    ratio_l1_inf: float
    ratio_l2: float
    ratio_estimator: float


def run_one_join_experiment(
    datasets: list[str] | None = None,
) -> list[OneJoinRow]:
    """Run E2; returns one row per dataset."""
    names = datasets or [spec.name for spec in SNAP_SPECS]
    ps = [1.0, 2.0, math.inf]
    rows = []
    for name in names:
        db = snap_database(name)
        true_count = acyclic_count(ONE_JOIN_QUERY, db)
        stats = collect_statistics(ONE_JOIN_QUERY, db, ps=ps)
        rows.append(
            OneJoinRow(
                dataset=name,
                true_count=true_count,
                ratio_l1=ratio_to_true(
                    lp_bound(
                        stats.restrict_ps([1.0]), query=ONE_JOIN_QUERY
                    ).log2_bound,
                    true_count,
                ),
                ratio_l1_inf=ratio_to_true(
                    lp_bound(
                        stats.restrict_ps([1.0, math.inf]),
                        query=ONE_JOIN_QUERY,
                    ).log2_bound,
                    true_count,
                ),
                ratio_l2=ratio_to_true(
                    lp_bound(
                        stats.restrict_ps([2.0]), query=ONE_JOIN_QUERY
                    ).log2_bound,
                    true_count,
                ),
                ratio_estimator=ratio_to_true(
                    textbook_estimate_log2(ONE_JOIN_QUERY, db), true_count
                ),
            )
        )
    return rows


def main() -> str:
    """Render the Appendix C.1 one-join table."""
    rows = run_one_join_experiment()
    table = format_table(
        ["Dataset", "{1}", "{1,∞}", "{2}", "Textbook", "|Q|"],
        [
            (
                r.dataset,
                f"{r.ratio_l1:,.2f}",
                f"{r.ratio_l1_inf:.2f}",
                f"{r.ratio_l2:.2f}",
                f"{r.ratio_estimator:.2f}",
                r.true_count,
            )
            for r in rows
        ],
    )
    return "E2: one-join query, ratios bound/true (1.0 = exact)\n" + table


if __name__ == "__main__":  # pragma: no cover
    print(main())
