"""Experiment E9 — ablation: bound quality vs available norm family.

The paper remarks (Sec. 2.1, Example 2.2) that its JOB bounds drew on
ℓp-norms across the whole range p ∈ {1, …, 29, ∞}, arguing for keeping a
wide variety of precomputed statistics.  This ablation quantifies that:
for nested norm families

    {1} ⊂ {1,∞} ⊂ {1,2,∞} ⊂ {1,2,3,∞} ⊂ … ⊂ {1..30,∞}

it reports the geometric-mean ratio (bound / true) over the JOB-like
queries, showing monotone improvement with diminishing returns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core import BoundSolver, BoundTask, StatisticsCatalog, lp_bound_many
from ..datasets.imdb import imdb_database
from ..datasets.job_queries import JOB_QUERY_IDS, job_query
from ..evaluation import acyclic_count
from ..relational import Database
from .harness import format_table

__all__ = ["AblationRow", "run_norm_ablation", "main", "DEFAULT_FAMILIES"]

DEFAULT_FAMILIES: tuple[tuple[float, ...], ...] = (
    (1.0,),
    (1.0, math.inf),
    (1.0, 2.0, math.inf),
    (1.0, 2.0, 3.0, math.inf),
    (1.0, 2.0, 3.0, 4.0, 5.0, math.inf),
    tuple(float(p) for p in range(1, 11)) + (math.inf,),
    tuple(float(p) for p in range(1, 31)) + (math.inf,),
)


def _family_label(family: tuple[float, ...]) -> str:
    finite = [p for p in family if p != math.inf]
    label = f"{{1..{int(max(finite))}}}" if len(finite) > 1 else "{1}"
    if math.inf in family:
        label = label[:-1] + ",∞}"
    return label


@dataclass
class AblationRow:
    family: tuple[float, ...]
    label: str
    geomean_ratio: float
    worst_ratio: float


def run_norm_ablation(
    db: Database | None = None,
    query_ids: tuple[int, ...] | None = None,
    families: tuple[tuple[float, ...], ...] = DEFAULT_FAMILIES,
    scale: float = 0.3,
    seed: int = 7,
) -> list[AblationRow]:
    """Run E9: one row per norm family."""
    database = db if db is not None else imdb_database(scale=scale, seed=seed)
    ids = query_ids or JOB_QUERY_IDS
    all_ps = sorted(set().union(*families))
    queries = [job_query(qid) for qid in ids]
    # batched pipeline: the full-family statistics of all queries are
    # precomputed in one catalog pass, and the 7 families × |queries|
    # independent solves fan out through one solver (each family slices
    # the full statistics set instead of re-collecting it).
    catalog = StatisticsCatalog(database)
    all_stats = catalog.precompute(queries, ps=all_ps)
    true_counts = [acyclic_count(query, database) for query in queries]
    tasks = [
        BoundTask(stats, query=query, family=family)
        for family in families
        for query, stats in zip(queries, all_stats)
    ]
    results = lp_bound_many(tasks, solver=BoundSolver())
    rows = []
    for k, family in enumerate(families):
        family_results = results[k * len(queries): (k + 1) * len(queries)]
        log2_ratios = [
            result.log2_bound - math.log2(true_count)
            for result, true_count in zip(family_results, true_counts)
        ]
        rows.append(
            AblationRow(
                family=family,
                label=_family_label(family),
                geomean_ratio=2.0 ** (sum(log2_ratios) / len(log2_ratios)),
                worst_ratio=2.0 ** max(log2_ratios),
            )
        )
    return rows


def main(scale: float = 0.3) -> str:
    """Render E9."""
    rows = run_norm_ablation(scale=scale)
    table = format_table(
        ["Norm family", "geomean ratio", "worst ratio"],
        [
            (r.label, f"{r.geomean_ratio:.3g}", f"{r.worst_ratio:.3g}")
            for r in rows
        ],
    )
    return "E9: bound quality vs available norms (JOB-like queries)\n" + table


if __name__ == "__main__":  # pragma: no cover
    print(main())
