"""Experiment E1 — the triangle query on SNAP-like graphs (Appendix C.1).

For each dataset, computes the ratio of four upper bounds and the textbook
estimate to the true (ordered) triangle count:

* the {1}-bound (AGM),
* the {1,∞}-bound (PANDA),
* the {2}-bound (the paper's headline column),
* the full {1..15,∞}-bound (best available),
* the textbook / DuckDB-style estimate (not a bound; over-estimates here).

Paper's shape to reproduce: {2} ≪ {1,∞} ≤ {1}; the estimator overestimates
on this cyclic query; the best full-family bound coincides with {2}.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core import BoundSolver, BoundTask, StatisticsCatalog, lp_bound_many
from ..datasets.snap import SNAP_SPECS, snap_database
from ..estimators.textbook import textbook_estimate_log2
from ..evaluation import count_query
from ..query import parse_query
from .harness import format_table, ratio_to_true

__all__ = ["TriangleRow", "run_triangle_experiment", "main", "TRIANGLE_QUERY"]

TRIANGLE_QUERY = parse_query("triangle(x,y,z) :- R(x,y), R(y,z), R(z,x)")

#: The bound families of the Appendix C.1 table, solved per dataset.
_FAMILIES = ((1.0,), (1.0, math.inf), (1.0, 2.0))


@dataclass
class TriangleRow:
    """One dataset's results (ratios to the true cardinality)."""

    dataset: str
    true_count: int
    ratio_l1: float
    ratio_l1_inf: float
    ratio_l2: float
    ratio_full: float
    ratio_estimator: float
    norms_used: list[float]


def run_triangle_experiment(
    datasets: list[str] | None = None,
    max_p: int = 15,
) -> list[TriangleRow]:
    """Run E1; returns one row per dataset."""
    names = datasets or [spec.name for spec in SNAP_SPECS]
    ps = [float(p) for p in range(1, max_p + 1)] + [math.inf]
    # batched pipeline: per-dataset catalogs precompute the statistics in
    # one pass; every dataset solves the same four LP structures, so one
    # shared BoundSolver re-solves them with only the b vector swapped.
    solver = BoundSolver()
    tasks: list[BoundTask] = []
    per_dataset = []
    for name in names:
        db = snap_database(name)
        true_count = count_query(TRIANGLE_QUERY, db)
        (stats,) = StatisticsCatalog(db).precompute([TRIANGLE_QUERY], ps=ps)
        per_dataset.append((name, db, true_count))
        tasks.append(BoundTask(stats, query=TRIANGLE_QUERY))
        tasks.extend(
            BoundTask(stats, query=TRIANGLE_QUERY, family=family)
            for family in _FAMILIES
        )
    results = lp_bound_many(tasks, solver=solver)
    rows = []
    for i, (name, db, true_count) in enumerate(per_dataset):
        full, l1, l1i, l2 = results[4 * i: 4 * i + 4]
        rows.append(
            TriangleRow(
                dataset=name,
                true_count=true_count,
                ratio_l1=ratio_to_true(l1.log2_bound, true_count),
                ratio_l1_inf=ratio_to_true(l1i.log2_bound, true_count),
                ratio_l2=ratio_to_true(l2.log2_bound, true_count),
                ratio_full=ratio_to_true(full.log2_bound, true_count),
                ratio_estimator=ratio_to_true(
                    textbook_estimate_log2(TRIANGLE_QUERY, db), true_count
                ),
                norms_used=full.norms_used(),
            )
        )
    return rows


def main() -> str:
    """Render the Appendix C.1 triangle table."""
    rows = run_triangle_experiment()
    table = format_table(
        ["Dataset", "{1}", "{1,∞}", "{2}", "full", "Textbook", "|Q|"],
        [
            (
                r.dataset,
                f"{r.ratio_l1:.2f}",
                f"{r.ratio_l1_inf:.2f}",
                f"{r.ratio_l2:.2f}",
                f"{r.ratio_full:.2f}",
                f"{r.ratio_estimator:.2f}",
                r.true_count,
            )
            for r in rows
        ],
    )
    return "E1: triangle query, ratios bound/true (1.0 = exact)\n" + table


if __name__ == "__main__":  # pragma: no cover
    print(main())
