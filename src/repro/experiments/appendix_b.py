"""Experiment E13 — Appendix B: the [14] bound vs ours, and Example B.1.

Two parts:

1. **Example B.1**: on the 2-cycle Q(u,v) = R(u,v) ∧ S(v,u) with diagonal
   relations, the [14] LP claims N^{2/3} while |Q| = N — the modular cone
   is unsound below the girth threshold.  Our polymatroid bound on the
   same statistics is N (sound and tight).
2. **Theorem B.2 regime**: on cycles with girth ≥ p + 1, the modular and
   polymatroid values coincide for every admissible p, so the [14] bound
   is exactly our bound restricted to one norm — and strictly weaker than
   the full multi-norm LP whenever mixing norms helps.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.generators import alpha_beta_relation, matching_relation
from ..estimators.jayaraman import jayaraman_bound
from ..evaluation import count_query
from ..query import parse_query
from ..relational import Database
from .cycle import cycle_query
from .harness import format_table

__all__ = ["ExampleB1Result", "run_example_b1", "run_theorem_b2", "main"]


@dataclass
class ExampleB1Result:
    n: int
    true_count: int
    log2_claim_modular: float  # the unsound N^{2/3} claim
    log2_polymatroid: float    # the sound value on the same statistics

    @property
    def modular_undershoots(self) -> bool:
        return 2.0 ** self.log2_claim_modular < self.true_count


def run_example_b1(n: int = 4096) -> ExampleB1Result:
    """The 2-cycle counterexample with diagonal relations of size n."""
    diag = matching_relation(n)
    db = Database({"R": diag, "S": diag})
    query = parse_query("Q(u,v) :- R(u,v), S(v,u)")
    res = jayaraman_bound(query, db, p=2.0)
    return ExampleB1Result(
        n=n,
        true_count=count_query(query, db),
        log2_claim_modular=res.log2_bound_modular,
        log2_polymatroid=res.log2_bound_polymatroid,
    )


@dataclass
class TheoremB2Row:
    cycle_length: int
    p: float
    applicable: bool
    log2_modular: float
    log2_polymatroid: float

    @property
    def agree(self) -> bool:
        return abs(self.log2_modular - self.log2_polymatroid) < 1e-5


def run_theorem_b2(
    m: int = 1024, lengths: tuple[int, ...] = (3, 4, 5)
) -> list[TheoremB2Row]:
    """Sweep (cycle length, p): agreement iff girth ≥ p + 1."""
    rows = []
    for length in lengths:
        relation = alpha_beta_relation(1.0 / length, 1.0 / length, m)
        query = cycle_query(length)
        db = Database({f"R{i}": relation for i in range(length)})
        for p in (1.0, 2.0, 3.0, 4.0):
            res = jayaraman_bound(query, db, p=p)
            rows.append(
                TheoremB2Row(
                    cycle_length=length,
                    p=p,
                    applicable=res.applicable,
                    log2_modular=res.log2_bound_modular,
                    log2_polymatroid=res.log2_bound_polymatroid,
                )
            )
    return rows


def main() -> str:
    """Render E13."""
    b1 = run_example_b1()
    lines = [
        "E13 (Appendix B): the [14] modular-cone bound",
        f"  Example B.1, N = {b1.n}: |Q| = {b1.true_count}, "
        f"[14] claims 2^{b1.log2_claim_modular:.2f} = N^(2/3) "
        f"(undershoots: {b1.modular_undershoots}); "
        f"sound polymatroid value 2^{b1.log2_polymatroid:.2f}",
        "",
        "  Theorem B.2 sweep (modular = polymatroid iff girth ≥ p+1):",
    ]
    rows = run_theorem_b2()
    table = format_table(
        ["cycle", "p", "girth ≥ p+1", "modular", "polymatroid", "agree"],
        [
            (
                r.cycle_length,
                f"{r.p:g}",
                r.applicable,
                f"{r.log2_modular:.3f}",
                f"{r.log2_polymatroid:.3f}",
                r.agree,
            )
            for r in rows
        ],
    )
    lines.append(table)
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())
