"""Experiment E7 — Theorem D.3(2): the polymatroid bound is not tight.

The 4-variable α-acyclic query

    Q(A,B,X,Y) = R1(A,B,X,Y) ∧ R2(B,X) ∧ R3(B,Y) ∧ R4(X,Y)
                 ∧ R5(A,Y) ∧ R6(A,X)

with the (non-simple) log-statistics of Appendix D.2 (scaled by k):

* polymatroid LP bound = 4k bits — the Figure 2 polymatroid is feasible
  with h(ABXY) = 4k;
* adding the Zhang–Yeung non-Shannon inequality to the cone drops the
  bound to 35k/9 bits — the certificate of Proposition D.5;
* hence the polymatroid bound overshoots the (almost-)entropic bound by
  the exponent factor 36/35, i.e. no database can come closer than
  2^{35k/9} while the polymatroid LP claims 2^{4k}.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.conditionals import (
    AbstractStatistic,
    ConcreteStatistic,
    Conditional,
    StatisticsSet,
)
from ..core.lp_bound import BoundSolver
from ..entropy.zhang_yeung import zhang_yeung_coefficients
from ..query.query import Atom, ConjunctiveQuery

__all__ = [
    "NonShannonResult",
    "theorem_d3_query",
    "theorem_d3_statistics",
    "run_nonshannon_experiment",
    "main",
]

_VARIABLES = ("A", "B", "X", "Y")


def theorem_d3_query() -> ConjunctiveQuery:
    """The α-acyclic query of Theorem D.3(2)."""
    return ConjunctiveQuery(
        [
            Atom("R1", ("A", "B", "X", "Y")),
            Atom("R2", ("B", "X")),
            Atom("R3", ("B", "Y")),
            Atom("R4", ("X", "Y")),
            Atom("R5", ("A", "Y")),
            Atom("R6", ("A", "X")),
        ],
        name="thmD3",
    )


def theorem_d3_statistics(k: float = 1.0) -> StatisticsSet:
    """The 11 log-statistics (Σ, k·b) of Appendix D.2.

    b = (4/5, 2, 2, 3, 3, 5/3, 5/3, 5/3, 5/3, 2, 3) for the statistics in
    the paper's order.
    """
    query = theorem_d3_query()
    atom = {a.relation: a for a in query.atoms}

    def cond(v: str, u: str = "") -> Conditional:
        return Conditional(frozenset(v), frozenset(u))

    entries = [
        (cond("B", "AXY"), 5.0, 4.0 / 5.0, "R1"),
        (cond("A", "BXY"), 2.0, 2.0, "R1"),
        (cond("XY", "AB"), 2.0, 2.0, "R1"),
        (cond("BX"), 1.0, 3.0, "R2"),
        (cond("BY"), 1.0, 3.0, "R3"),
        (cond("Y", "X"), 3.0, 5.0 / 3.0, "R4"),
        (cond("X", "Y"), 3.0, 5.0 / 3.0, "R4"),
        (cond("Y", "A"), 3.0, 5.0 / 3.0, "R5"),
        (cond("A", "Y"), 3.0, 5.0 / 3.0, "R5"),
        (cond("A", "X"), 2.0, 2.0, "R6"),
        (cond("AX"), 1.0, 3.0, "R6"),
    ]
    return StatisticsSet(
        ConcreteStatistic(AbstractStatistic(c, p), k * b, atom[guard])
        for c, p, b, guard in entries
    )


@dataclass
class NonShannonResult:
    k: float
    log2_polymatroid: float
    log2_with_zhang_yeung: float

    @property
    def exponent_ratio(self) -> float:
        """ZY-enhanced / polymatroid — the paper's 35/36 ≈ 0.9722."""
        return self.log2_with_zhang_yeung / self.log2_polymatroid


def run_nonshannon_experiment(k: float = 1.0) -> NonShannonResult:
    """Run E7: polymatroid LP with and without the ZY inequality."""
    query = theorem_d3_query()
    stats = theorem_d3_statistics(k)
    solver = BoundSolver()
    plain = solver.solve(stats, query=query, cone="polymatroid")
    zy = zhang_yeung_coefficients(query.variables)
    enhanced = solver.solve(
        stats, query=query, cone="polymatroid", extra_inequalities=[zy]
    )
    return NonShannonResult(
        k=k,
        log2_polymatroid=plain.log2_bound,
        log2_with_zhang_yeung=enhanced.log2_bound,
    )


def main(k: float = 1.0) -> str:
    """Render E7."""
    res = run_nonshannon_experiment(k)
    return "\n".join(
        [
            f"E7 (Theorem D.3(2)): non-Shannon gap, k = {res.k:g}",
            f"  polymatroid bound      = {res.log2_polymatroid:.4f} bits"
            f"  (paper: 4k = {4 * res.k:g})",
            f"  + Zhang–Yeung         = {res.log2_with_zhang_yeung:.4f} bits"
            f"  (paper: 35k/9 = {35 * res.k / 9:.4f})",
            f"  exponent ratio         = {res.exponent_ratio:.4f}"
            f"  (paper: 35/36 = {35 / 36:.4f})",
        ]
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
