"""Shared experiment utilities: ratios, tables, timing."""

from __future__ import annotations

import math
import time
import tracemalloc
from contextlib import contextmanager
from typing import Iterable, Sequence

__all__ = [
    "ratio_to_true",
    "format_table",
    "format_scientific",
    "metered",
    "timer",
]


def metered(fn):
    """Run ``fn`` under tracemalloc: ``(result, peak_mb, seconds)``.

    ``tracemalloc`` sees NumPy buffer allocations, so the peak reflects
    columnar frontiers and chunk buffers, not just Python objects.
    """
    tracemalloc.start()
    try:
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        _, peak = tracemalloc.get_traced_memory()
    finally:
        # a raising run must not leave tracing on: the next start()
        # would accumulate peaks across runs and corrupt the comparison
        tracemalloc.stop()
    return result, peak / 1e6, elapsed


def ratio_to_true(log2_bound: float, true_count: int) -> float:
    """bound / true-cardinality, computed in log space (1.0 is perfect).

    Returns ``inf`` when the bound is unbounded and ``nan`` when the true
    count is zero (ratios are undefined then, as in the paper).
    """
    if true_count <= 0:
        return math.nan
    if log2_bound == math.inf:
        return math.inf
    return 2.0 ** (log2_bound - math.log2(true_count))


def format_scientific(value: float) -> str:
    """Format like the paper's Figure 1 (e.g. 1.90E+00)."""
    if value != value:  # NaN
        return "n/a"
    if value == math.inf:
        return "inf"
    return f"{value:.2E}"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width ASCII table for experiment reports."""
    rendered = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([str(cell) for cell in row])
    widths = [
        max(len(line[col]) for line in rendered)
        for col in range(len(rendered[0]))
    ]
    lines = []
    for i, line in enumerate(rendered):
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(line, widths)).rstrip()
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


@contextmanager
def timer():
    """``with timer() as t: ...; t()`` → elapsed seconds."""
    start = time.perf_counter()
    yield lambda: time.perf_counter() - start
