"""Full conjunctive (join) queries.

The paper (Eq. 6) considers *full* conjunctive queries

    Q(X) = ⋀_{j∈[m]} R_j(Z_j)

where every variable in the body also appears in the head.  An
:class:`Atom` pairs a relation name with a tuple of variables; a
:class:`ConjunctiveQuery` is a list of atoms.  Self-joins are expressed by
repeating the same relation name with different variable tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Atom", "ConjunctiveQuery"]


@dataclass(frozen=True)
class Atom:
    """One relational atom R(Z) in a query body.

    ``relation`` is the name of the relation in the database; ``variables``
    are the query variables bound to its columns, in column order.  Repeated
    variables within an atom (e.g. ``R(x, x)``) are allowed and mean an
    equality selection on that relation.
    """

    relation: str
    variables: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "variables", tuple(self.variables))

    @property
    def variable_set(self) -> frozenset[str]:
        """The set of variables appearing in this atom."""
        return frozenset(self.variables)

    @property
    def arity(self) -> int:
        return len(self.variables)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.variables)})"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A full conjunctive query: a conjunction of atoms.

    Parameters
    ----------
    atoms:
        The body atoms.
    name:
        Optional display name ("Q" by default).

    Examples
    --------
    >>> q = ConjunctiveQuery([Atom("R", ("x", "y")), Atom("S", ("y", "z"))])
    >>> sorted(q.variables)
    ['x', 'y', 'z']
    """

    atoms: tuple[Atom, ...]
    name: str = "Q"

    def __init__(self, atoms: Iterable[Atom], name: str = "Q") -> None:
        object.__setattr__(self, "atoms", tuple(atoms))
        object.__setattr__(self, "name", name)
        if not self.atoms:
            raise ValueError("a conjunctive query needs at least one atom")

    @property
    def variables(self) -> tuple[str, ...]:
        """All variables, in first-appearance order."""
        seen: dict[str, None] = {}
        for atom in self.atoms:
            for v in atom.variables:
                seen.setdefault(v, None)
        return tuple(seen)

    @property
    def variable_set(self) -> frozenset[str]:
        return frozenset(self.variables)

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Distinct relation names referenced, in first-appearance order."""
        seen: dict[str, None] = {}
        for atom in self.atoms:
            seen.setdefault(atom.relation, None)
        return tuple(seen)

    def atoms_with_variable(self, var: str) -> list[Atom]:
        """All atoms whose variable set contains ``var``."""
        return [a for a in self.atoms if var in a.variable_set]

    def guards_for(self, variable_sets: Sequence[frozenset[str]]) -> list[Atom]:
        """Atoms guarding every set in ``variable_sets`` (i.e. covering their union)."""
        union: frozenset[str] = frozenset().union(*variable_sets)
        return [a for a in self.atoms if union <= a.variable_set]

    def is_full(self) -> bool:
        """Full conjunctive queries output all variables; always true here."""
        return True

    def __str__(self) -> str:
        head = f"{self.name}({', '.join(self.variables)})"
        body = " ∧ ".join(str(a) for a in self.atoms)
        return f"{head} = {body}"


def _module_self_test() -> None:  # pragma: no cover - exercised by tests/
    q = ConjunctiveQuery([Atom("R", ("x", "y")), Atom("R", ("y", "z"))])
    assert q.relation_names == ("R",)
