"""Query hypergraphs: acyclicity tests, girth, fractional edge covers.

A join query induces a hypergraph whose nodes are the query variables and
whose hyperedges are the atoms' variable sets.  The paper needs three
structural notions:

* **α-acyclicity** (GYO reduction) — the class where classical upper bounds
  degenerate and where the paper's ℓp bounds shine (Sec. 1, Example 2.2);
* **Berge-acyclicity** — the class where the Degree Sequence Bound [6]
  applies (Appendix C.3);
* **girth** of the query graph for binary-relation queries — the
  applicability condition of Jayaraman et al. [14] (Appendix B);
* the **fractional edge cover** LP whose optimum gives the AGM bound.
"""

from __future__ import annotations

import math
from typing import Sequence

import networkx as nx
import numpy as np
from scipy.optimize import linprog

from .query import ConjunctiveQuery

__all__ = [
    "Hypergraph",
    "is_alpha_acyclic",
    "is_berge_acyclic",
    "girth",
    "fractional_edge_cover",
]


class Hypergraph:
    """The hypergraph of a conjunctive query (or of explicit edge sets)."""

    def __init__(self, edges: Sequence[frozenset[str]]) -> None:
        self.edges: list[frozenset[str]] = [frozenset(e) for e in edges]
        self.nodes: frozenset[str] = (
            frozenset().union(*self.edges) if self.edges else frozenset()
        )

    @classmethod
    def of_query(cls, query: ConjunctiveQuery) -> "Hypergraph":
        return cls([atom.variable_set for atom in query.atoms])

    # ------------------------------------------------------------------
    def gyo_reduction(self) -> list[frozenset[str]]:
        """Run the GYO reduction; return the remaining hyperedges.

        Repeatedly (a) remove *ear* vertices that appear in exactly one
        hyperedge, and (b) remove hyperedges contained in another hyperedge.
        The hypergraph is α-acyclic iff the result is empty (or a single
        empty edge).
        """
        edges = [set(e) for e in self.edges]
        changed = True
        while changed:
            changed = False
            # remove edges contained in other edges
            kept: list[set] = []
            for i, e in enumerate(edges):
                contained = any(
                    e <= f for j, f in enumerate(edges) if i != j
                ) or (e and any(e == f for f in kept))
                if e and not contained:
                    kept.append(e)
                elif e and contained:
                    changed = True
            edges = kept
            # remove isolated (ear) vertices
            counts: dict[str, int] = {}
            for e in edges:
                for v in e:
                    counts[v] = counts.get(v, 0) + 1
            for e in edges:
                lonely = {v for v in e if counts[v] == 1}
                if lonely:
                    e -= lonely
                    changed = True
        return [frozenset(e) for e in edges if e]

    def is_alpha_acyclic(self) -> bool:
        """α-acyclicity via GYO: the reduction must eliminate everything."""
        return not self.gyo_reduction()

    def is_berge_acyclic(self) -> bool:
        """Berge-acyclicity: the bipartite incidence graph is a forest.

        Berge-acyclic implies α-acyclic and implies all degree sequences of
        join variables are simple (the DSB's applicability condition).
        """
        incidence = nx.Graph()
        for i, e in enumerate(self.edges):
            for v in e:
                incidence.add_edge(("edge", i), ("node", v))
        return nx.is_forest(incidence) if incidence.number_of_edges() else True

    def girth(self) -> float:
        """Girth of the *query graph* (only defined for binary edges).

        The query graph is a multigraph: two atoms over the same variable
        pair form a 2-cycle (the situation of Example B.1).  Returns
        ``inf`` for forests.  Raises ``ValueError`` when a hyperedge is not
        binary, because girth is a graph notion (Appendix B applies to
        binary-relation queries only).
        """
        g = nx.Graph()
        g.add_nodes_from(self.nodes)
        seen_pairs: set[frozenset[str]] = set()
        has_parallel = False
        for e in self.edges:
            if len(e) == 1:
                continue
            if len(e) != 2:
                raise ValueError(
                    f"girth needs binary edges, got arity {len(e)}"
                )
            if e in seen_pairs:
                has_parallel = True
            seen_pairs.add(e)
            u, v = sorted(e)
            g.add_edge(u, v)
        if has_parallel:
            return 2
        try:
            simple = nx.girth(g)
        except AttributeError:  # pragma: no cover - older networkx
            cycles = nx.cycle_basis(g)
            simple = min((len(c) for c in cycles), default=math.inf)
        return simple

    # ------------------------------------------------------------------
    def fractional_edge_cover(
        self, weights: Sequence[float] | None = None
    ) -> tuple[float, np.ndarray]:
        """Minimum-weight fractional edge cover.

        Solves ``min Σ_j c_j x_j`` subject to ``Σ_{j: v∈e_j} x_j ≥ 1`` for
        every node v and ``x ≥ 0``.  With ``weights`` c_j = log|R_j| the
        optimal value is the (log of the) AGM bound; with unit weights the
        optimum is the fractional edge cover number ρ*.

        Returns ``(optimal value, x*)``.
        """
        m = len(self.edges)
        if m == 0:
            return 0.0, np.zeros(0)
        cost = np.ones(m) if weights is None else np.asarray(weights, float)
        nodes = sorted(self.nodes)
        a_ub = np.zeros((len(nodes), m))
        for i, v in enumerate(nodes):
            for j, e in enumerate(self.edges):
                if v in e:
                    a_ub[i, j] = -1.0  # -Σ x_j ≤ -1
        b_ub = -np.ones(len(nodes))
        res = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=(0, None), method="highs")
        if not res.success:
            raise RuntimeError(f"edge cover LP failed: {res.message}")
        return float(res.fun), res.x


def is_alpha_acyclic(query: ConjunctiveQuery) -> bool:
    """Whether the query's hypergraph is α-acyclic."""
    return Hypergraph.of_query(query).is_alpha_acyclic()


def is_berge_acyclic(query: ConjunctiveQuery) -> bool:
    """Whether the query's hypergraph is Berge-acyclic."""
    return Hypergraph.of_query(query).is_berge_acyclic()


def girth(query: ConjunctiveQuery) -> float:
    """Girth of a binary-relation query's graph (inf if acyclic)."""
    return Hypergraph.of_query(query).girth()


def fractional_edge_cover(
    query: ConjunctiveQuery, weights: Sequence[float] | None = None
) -> tuple[float, np.ndarray]:
    """Fractional edge cover of the query hypergraph; see Hypergraph."""
    return Hypergraph.of_query(query).fractional_edge_cover(weights)
