"""Query model: conjunctive queries, hypergraphs, parsing."""

from .hypergraph import (
    Hypergraph,
    fractional_edge_cover,
    girth,
    is_alpha_acyclic,
    is_berge_acyclic,
)
from .parser import parse_query
from .query import Atom, ConjunctiveQuery

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Hypergraph",
    "parse_query",
    "is_alpha_acyclic",
    "is_berge_acyclic",
    "girth",
    "fractional_edge_cover",
]
