"""A tiny datalog-style parser for join queries.

Accepts strings such as::

    Q(x, y, z) :- R(x, y), S(y, z), T(z, x)

or just the body::

    R(x, y), S(y, z)

and produces a :class:`~repro.query.query.ConjunctiveQuery`.  Since the
paper only considers *full* queries, any head is accepted but its variable
list is ignored beyond choosing the query name.
"""

from __future__ import annotations

import re

from .query import Atom, ConjunctiveQuery

__all__ = ["parse_query"]

_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*)\s*\(([^)]*)\)\s*")


def _parse_atoms(body: str) -> list[Atom]:
    atoms = []
    pos = 0
    while pos < len(body):
        match = _ATOM_RE.match(body, pos)
        if not match:
            raise ValueError(f"cannot parse atom at: {body[pos:]!r}")
        name, arglist = match.groups()
        variables = tuple(v.strip() for v in arglist.split(",") if v.strip())
        if not variables:
            raise ValueError(f"atom {name} has no variables")
        atoms.append(Atom(name, variables))
        pos = match.end()
        if pos < len(body):
            if body[pos] != ",":
                raise ValueError(f"expected ',' at: {body[pos:]!r}")
            pos += 1
    return atoms


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a datalog-style join query.

    Examples
    --------
    >>> q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
    >>> str(q)
    'Q(x, y, z) = R(x, y) ∧ S(y, z)'
    >>> parse_query("R(x,y), R(y,z)").num_variables
    3
    """
    text = text.strip()
    name = "Q"
    if ":-" in text:
        head, body = text.split(":-", 1)
        match = _ATOM_RE.match(head)
        if match:
            name = match.group(1)
        elif head.strip():
            raise ValueError(f"cannot parse head: {head!r}")
    else:
        body = text
    atoms = _parse_atoms(body)
    return ConjunctiveQuery(atoms, name=name)
