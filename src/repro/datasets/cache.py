"""Opt-in on-disk cache for generated fixture datasets.

Generation is deterministic but not free: the IMDB substrate and the
power-law SNAP stand-ins cost seconds per benchmark session, and CI
regenerated them on every push.  When the ``REPRO_DATASET_CACHE``
environment variable names a directory, generated databases round-trip
through compressed ``.npz`` files keyed by generator name and
parameters — one array per relation column, plus a JSON manifest
preserving relation names, attribute order, and row order, so the
reloaded database is byte-identical to a fresh generation (rows are
reconstructed through :meth:`Relation.from_columns`, which preserves
first-occurrence order and the rows are already distinct).

The CI workflow persists the directory with ``actions/cache`` keyed on
the hash of the generator sources, so a cache entry can never survive a
generator change.  Only int64-encodable relations are cacheable (that
covers the SNAP and IMDB stand-ins); databases containing anything else
are silently regenerated every time.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from functools import lru_cache
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from ..relational import Database, Relation

__all__ = ["cache_directory", "cached_database"]

#: Bump to invalidate every cache entry written by older layouts.
_FORMAT_VERSION = 1

_ENV_VAR = "REPRO_DATASET_CACHE"


@lru_cache(maxsize=1)
def _source_fingerprint() -> str:
    """Hash of the generator and relational sources, baked into entry names.

    CI already keys its ``actions/cache`` on the same files, but local
    users of ``REPRO_DATASET_CACHE`` have no such key — without this, an
    edit to ``power_law_graph`` or a ``SnapSpec`` seed would silently
    keep serving pre-edit fixtures.  Any source change rolls every entry
    over to a fresh name (stale files are just never read again).
    """
    digest = hashlib.sha256()
    roots = (Path(__file__).parent, Path(__file__).parent.parent / "relational")
    for root in roots:
        for source in sorted(root.glob("*.py")):
            digest.update(source.name.encode())
            digest.update(source.read_bytes())
    return digest.hexdigest()[:12]


def cache_directory() -> Path | None:
    """The cache root, or ``None`` when caching is disabled."""
    root = os.environ.get(_ENV_VAR)
    if not root:
        return None
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def _entry_path(directory: Path, kind: str, params: Mapping) -> Path:
    tag = "-".join(f"{k}={params[k]}" for k in sorted(params))
    safe = "".join(c if c.isalnum() or c in "=.-" else "_" for c in tag)
    return (
        directory
        / f"{kind}-{safe}-v{_FORMAT_VERSION}-{_source_fingerprint()}.npz"
    )


def _store(path: Path, db: Database) -> None:
    arrays: dict[str, np.ndarray] = {}
    manifest = []
    for index, name in enumerate(db):
        relation = db[name]
        twin = relation.columnar()
        if twin is None:
            return  # non-integer values: not cacheable, regenerate always
        manifest.append({"name": name, "attributes": list(relation.attributes)})
        for position, attr in enumerate(relation.attributes):
            arrays[f"r{index}c{position}"] = twin.dictionary(attr)[
                twin.codes(attr)
            ]
    arrays["manifest"] = np.array(json.dumps(manifest))
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    tmp.replace(path)  # atomic: concurrent benchmark workers race safely


def _load(path: Path) -> Database | None:
    try:
        with np.load(path, allow_pickle=False) as archive:
            manifest = json.loads(str(archive["manifest"]))
            relations = {}
            for index, entry in enumerate(manifest):
                attributes = tuple(entry["attributes"])
                columns = [
                    archive[f"r{index}c{position}"]
                    for position in range(len(attributes))
                ]
                relations[entry["name"]] = Relation.from_columns(
                    attributes, columns, name=entry["name"]
                )
        return Database(relations)
    except (
        OSError,
        KeyError,
        ValueError,
        json.JSONDecodeError,
        zipfile.BadZipFile,  # zip magic present but the archive truncated
    ):
        return None  # corrupt/partial entry: fall through to regeneration


def cached_database(
    kind: str, params: Mapping, build: Callable[[], Database]
) -> Database:
    """``build()`` through the cache (a transparent no-op when disabled)."""
    directory = cache_directory()
    if directory is None:
        return build()
    path = _entry_path(directory, kind, params)
    if path.exists():
        cached = _load(path)
        if cached is not None:
            return cached
    db = build()
    _store(path, db)
    return db
