"""Synthetic datasets: SNAP-like graphs, IMDB/JOB substrate, gadgets."""

from .generators import (
    alpha_beta_relation,
    clique_graph,
    fan_out_relation,
    matching_relation,
    power_law_graph,
    star_database,
    star_query,
    zipf_values,
)
from .imdb import IMDB_RELATIONS, imdb_database
from .job_queries import JOB_QUERIES, JOB_QUERY_IDS, job_query
from .snap import SNAP_SPECS, SnapSpec, load_snap_graph, snap_database

__all__ = [
    "power_law_graph",
    "alpha_beta_relation",
    "matching_relation",
    "zipf_values",
    "fan_out_relation",
    "clique_graph",
    "star_query",
    "star_database",
    "SNAP_SPECS",
    "SnapSpec",
    "load_snap_graph",
    "snap_database",
    "imdb_database",
    "IMDB_RELATIONS",
    "JOB_QUERIES",
    "JOB_QUERY_IDS",
    "job_query",
]
