"""33 acyclic join queries mirroring the JOB benchmark's join templates.

The Join Order Benchmark's 113 queries are variations, with different
selection predicates, of 33 *join templates* over 4–14 relations; the
paper evaluates exactly those templates (Fig. 1).  Selections are out of
scope (as in the paper), so each template here is a full conjunctive query
over the synthetic IMDB schema of :mod:`repro.datasets.imdb`, with
relation counts per query matching Figure 1's "# Relations" column.

All queries are α-acyclic (verified in tests) and every statistic the
experiments collect over them is simple, so bounds use the fast exact
normal-cone LP.
"""

from __future__ import annotations

from ..query.parser import parse_query
from ..query.query import ConjunctiveQuery

__all__ = ["JOB_QUERIES", "job_query", "JOB_QUERY_IDS"]

_RAW: dict[int, str] = {
    # ---- small star queries (4–6 relations) -----------------------------
    1: "Q(m,k,c,ct,co) :- title(m,k), kind_type(k), movie_companies(m,c,ct),"
       " company_name(c,co), company_type(ct)",
    2: "Q(m,k,w,i1) :- title(m,k), kind_type(k), movie_keyword(m,w),"
       " keyword(w), movie_info(m,i1)",
    3: "Q(m,k,i1,w) :- title(m,k), movie_info(m,i1), info_type(i1),"
       " movie_keyword(m,w)",
    4: "Q(m,k,i1,i2) :- title(m,k), movie_info(m,i1), info_type(i1),"
       " movie_info_idx(m,i2), info_type(i2)",
    5: "Q(m,k,c,ct,i1) :- title(m,k), movie_companies(m,c,ct),"
       " company_type(ct), movie_info(m,i1), info_type(i1)",
    6: "Q(m,k,w,p,r) :- title(m,k), movie_keyword(m,w), keyword(w),"
       " cast_info(m,p,r), name(p,g)",
    # ---- medium queries (7–9 relations) ---------------------------------
    7: "Q(m,k,p,r,g,a,pi,i1) :- title(m,k), cast_info(m,p,r), role_type(r),"
       " name(p,g), aka_name(p,a), person_info(p,pi), movie_info(m,i1),"
       " info_type(i1)",
    8: "Q(m,k,c,ct,p,r,g) :- title(m,k), movie_companies(m,c,ct),"
       " company_name(c,co), cast_info(m,p,r), role_type(r), name(p,g),"
       " aka_name(p,a)",
    9: "Q(m,k,c,ct,co,p,r,g) :- title(m,k), movie_companies(m,c,ct),"
       " company_name(c,co), company_type(ct), cast_info(m,p,r),"
       " role_type(r), name(p,g), aka_name(p,a)",
    10: "Q(m,k,c,ct,co,p,r) :- title(m,k), kind_type(k),"
        " movie_companies(m,c,ct), company_name(c,co), company_type(ct),"
        " cast_info(m,p,r), role_type(r)",
    11: "Q(m,k,c,ct,co,w,lt,m2) :- title(m,k), movie_companies(m,c,ct),"
        " company_name(c,co), company_type(ct), movie_keyword(m,w),"
        " keyword(w), movie_link(m,m2,lt), link_type(lt)",
    12: "Q(m,k,c,ct,i1,i2) :- title(m,k), kind_type(k),"
        " movie_companies(m,c,ct), company_name(c,co), company_type(ct),"
        " movie_info(m,i1), info_type(i1), movie_info_idx(m,i2)",
    13: "Q(m,k,c,ct,co,i1,i2) :- title(m,k), kind_type(k),"
        " movie_companies(m,c,ct), company_name(c,co), company_type(ct),"
        " movie_info(m,i1), info_type(i1), movie_info_idx(m,i2),"
        " info_type(i2)",
    14: "Q(m,k,i1,i2,w) :- title(m,k), kind_type(k), movie_info(m,i1),"
        " info_type(i1), movie_info_idx(m,i2), info_type(i2),"
        " movie_keyword(m,w), keyword(w)",
    15: "Q(m,k,c,ct,i1,w,at) :- title(m,k), kind_type(k),"
        " movie_companies(m,c,ct), company_name(c,co), company_type(ct),"
        " movie_info(m,i1), info_type(i1), movie_keyword(m,w),"
        " aka_title(m,at)",
    16: "Q(m,k,c,ct,w,p,r,a) :- title(m,k), movie_companies(m,c,ct),"
        " company_name(c,co), company_type(ct), movie_keyword(m,w),"
        " keyword(w), cast_info(m,p,r), aka_name(p,a)",
    17: "Q(m,k,c,w,p,r) :- title(m,k), movie_companies(m,c,ct),"
        " company_name(c,co), movie_keyword(m,w), keyword(w),"
        " cast_info(m,p,r), name(p,g)",
    18: "Q(m,k,i1,i2,p,r,g) :- title(m,k), movie_info(m,i1), info_type(i1),"
        " movie_info_idx(m,i2), info_type(i2), cast_info(m,p,r), name(p,g)",
    # ---- large queries (10–14 relations) ---------------------------------
    19: "Q(m,k,c,ct,co,i1,p,r,g,a) :- title(m,k), kind_type(k),"
        " movie_companies(m,c,ct), company_name(c,co), company_type(ct),"
        " movie_info(m,i1), info_type(i1), cast_info(m,p,r), name(p,g),"
        " aka_name(p,a)",
    20: "Q(m,k,cc,w,p,r,g,i1) :- title(m,k), kind_type(k),"
        " complete_cast(m,cc), comp_cast_type(cc), movie_keyword(m,w),"
        " keyword(w), cast_info(m,p,r), role_type(r), name(p,g),"
        " movie_info(m,i1)",
    21: "Q(m,k,c,ct,co,lt,m2,w) :- title(m,k), kind_type(k),"
        " movie_companies(m,c,ct), company_name(c,co), company_type(ct),"
        " movie_link(m,m2,lt), link_type(lt), movie_keyword(m,w),"
        " keyword(w)",
    22: "Q(m,k,c,ct,co,i1,i2,w,p,r) :- title(m,k), kind_type(k),"
        " movie_companies(m,c,ct), company_name(c,co), company_type(ct),"
        " movie_info(m,i1), info_type(i1), movie_info_idx(m,i2),"
        " movie_keyword(m,w), keyword(w), cast_info(m,p,r)",
    23: "Q(m,k,cc,c,ct,co,i1,w,at) :- title(m,k), kind_type(k),"
        " complete_cast(m,cc), comp_cast_type(cc), movie_companies(m,c,ct),"
        " company_name(c,co), company_type(ct), movie_info(m,i1),"
        " info_type(i1), movie_keyword(m,w), keyword(w)",
    24: "Q(m,k,c,ct,co,i1,i2,w,p,r,g,a) :- title(m,k), kind_type(k),"
        " movie_companies(m,c,ct), company_name(c,co), company_type(ct),"
        " movie_info(m,i1), info_type(i1), movie_info_idx(m,i2),"
        " movie_keyword(m,w), keyword(w), cast_info(m,p,r), name(p,g)",
    25: "Q(m,k,i1,i2,w,p,r,g) :- title(m,k), movie_info(m,i1),"
        " info_type(i1), movie_info_idx(m,i2), info_type(i2),"
        " movie_keyword(m,w), keyword(w), cast_info(m,p,r), name(p,g)",
    26: "Q(m,k,cc,w,p,r,g,c,ct,i1) :- title(m,k), kind_type(k),"
        " complete_cast(m,cc), comp_cast_type(cc), movie_keyword(m,w),"
        " keyword(w), cast_info(m,p,r), name(p,g), movie_companies(m,c,ct),"
        " company_name(c,co), movie_info(m,i1), info_type(i1)",
    27: "Q(m,k,c,ct,co,lt,m2,w,cc) :- title(m,k), kind_type(k),"
        " movie_companies(m,c,ct), company_name(c,co), company_type(ct),"
        " movie_link(m,m2,lt), link_type(lt), movie_keyword(m,w),"
        " keyword(w), complete_cast(m,cc), comp_cast_type(cc),"
        " aka_title(m,at)",
    28: "Q(m,k,cc,c,ct,co,i1,w,p,r,g,a,pi) :- title(m,k), kind_type(k),"
        " complete_cast(m,cc), comp_cast_type(cc), movie_companies(m,c,ct),"
        " company_name(c,co), company_type(ct), movie_info(m,i1),"
        " info_type(i1), movie_keyword(m,w), keyword(w), cast_info(m,p,r),"
        " name(p,g), aka_name(p,a)",
    29: "Q(m,k,cc,w,p,r,g,a,pi,i1,at) :- title(m,k), kind_type(k),"
        " complete_cast(m,cc), comp_cast_type(cc), movie_keyword(m,w),"
        " keyword(w), cast_info(m,p,r), role_type(r), name(p,g),"
        " aka_name(p,a), person_info(p,pi), movie_info(m,i1)",
    30: "Q(m,k,cc,i1,i2,w,p,r,g,a) :- title(m,k), kind_type(k),"
        " complete_cast(m,cc), comp_cast_type(cc), movie_info(m,i1),"
        " info_type(i1), movie_info_idx(m,i2), movie_keyword(m,w),"
        " keyword(w), cast_info(m,p,r), name(p,g), aka_name(p,a)",
    31: "Q(m,k,cc,i1,i2,w,p,r,g,a,pi) :- title(m,k), kind_type(k),"
        " complete_cast(m,cc), comp_cast_type(cc), movie_info(m,i1),"
        " info_type(i1), movie_info_idx(m,i2), movie_keyword(m,w),"
        " keyword(w), cast_info(m,p,r), name(p,g), aka_name(p,a),"
        " person_info(p,pi)",
    32: "Q(m,k,lt,m2,w) :- title(m,k), kind_type(k), movie_link(m,m2,lt),"
        " link_type(lt), movie_keyword(m,w), keyword(w)",
    33: "Q(m,k,c,ct,co,lt,m2,k2,i2,p,r,g) :- title(m,k), kind_type(k),"
        " movie_companies(m,c,ct), company_name(c,co), company_type(ct),"
        " movie_link(m,m2,lt), link_type(lt), title(m2,k2),"
        " movie_info_idx(m2,i2), info_type(i2), cast_info(m,p,r),"
        " role_type(r), name(p,g), aka_name(p,a)",
}

JOB_QUERY_IDS: tuple[int, ...] = tuple(sorted(_RAW))

JOB_QUERIES: dict[int, ConjunctiveQuery] = {
    qid: parse_query(text.replace("Q(", f"job{qid:02d}(", 1))
    for qid, text in _RAW.items()
}


def job_query(qid: int) -> ConjunctiveQuery:
    """The JOB-like join template with the given 1-based id."""
    try:
        return JOB_QUERIES[qid]
    except KeyError:
        raise KeyError(f"JOB query ids are 1..33, got {qid}") from None
