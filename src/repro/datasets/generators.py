"""Synthetic data generators: skewed graphs and the paper's gadgets.

Everything is seeded and deterministic.  Four families:

* :func:`power_law_graph` — heavy-tailed random graphs standing in for the
  SNAP datasets (see :mod:`repro.datasets.snap` for the substitution
  argument);
* :func:`alpha_beta_relation` — the (α,β)-relations of Definition C.1
  (M^α values of degree M^β, the rest of degree 1, on both sides), the
  paper's gadget for every asymptotic separation;
* :func:`zipf_values` — Zipf-distributed foreign keys for the IMDB-like
  benchmark substrate;
* the adversarial-frontier gadgets — :func:`fan_out_relation`,
  :func:`clique_graph`, and the :func:`star_query`/:func:`star_database`
  workload whose intermediate WCOJ frontier is quadratically larger than
  its output (the stress case for the blocked streaming frontier).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..query import parse_query
from ..query.query import ConjunctiveQuery
from ..relational import Database, Relation

__all__ = [
    "zipf_values",
    "power_law_graph",
    "alpha_beta_relation",
    "matching_relation",
    "fan_out_relation",
    "clique_graph",
    "star_query",
    "star_database",
]


def zipf_values(
    count: int, domain: int, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """``count`` draws from {0..domain−1} with P(rank r) ∝ (r+1)^−exponent.

    ``exponent = 0`` is uniform; larger exponents concentrate mass on a few
    hot values — the skew that separates ℓp bounds from ℓ1/ℓ∞ bounds.
    """
    if domain < 1:
        raise ValueError("domain must be ≥ 1")
    weights = (np.arange(1, domain + 1, dtype=float)) ** (-float(exponent))
    weights /= weights.sum()
    return rng.choice(domain, size=count, p=weights)


def power_law_graph(
    num_nodes: int,
    num_edges: int,
    exponent: float,
    seed: int,
    symmetric: bool = True,
) -> Relation:
    """A heavy-tailed random graph as an edge relation R(x, y).

    Endpoints are sampled independently from a Zipf(``exponent``) law over
    the nodes; self-loops and duplicate edges are discarded, and with
    ``symmetric=True`` every edge appears in both orientations (the
    treatment the paper applies to the SNAP graphs).  Generation oversamples
    until the requested number of (undirected) edges is reached or the
    space saturates.
    """
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    target = num_edges
    attempts = 0
    while len(edges) < target and attempts < 40:
        need = max(1024, 2 * (target - len(edges)))
        xs = zipf_values(need, num_nodes, exponent, rng)
        ys = zipf_values(need, num_nodes, exponent, rng)
        # vectorized pre-filter: drop self-loops, canonicalise, and reduce
        # the batch to its first-occurrence distinct edges so the Python
        # loop (kept for exact insertion-order determinism against the
        # accumulated set) only touches genuine candidates.
        lo = np.minimum(xs, ys)
        hi = np.maximum(xs, ys)
        proper = lo != hi
        lo, hi = lo[proper], hi[proper]
        _, first = np.unique(lo * np.int64(num_nodes) + hi, return_index=True)
        first.sort()
        for x, y in zip(lo[first].tolist(), hi[first].tolist()):
            edges.add((x, y))
            if len(edges) >= target:
                break
        attempts += 1
    # column-first materialization: both orientations interleaved exactly
    # as the row loop produced them, deduplicated (vacuously) vectorized.
    pairs = np.fromiter(
        (v for edge in edges for v in edge), dtype=np.int64, count=2 * len(edges)
    ).reshape(-1, 2)
    if symmetric:
        both = np.empty((2 * len(pairs), 2), dtype=np.int64)
        both[0::2] = pairs
        both[1::2] = pairs[:, ::-1]
        pairs = both
    return Relation.from_columns(
        ("x", "y"), [pairs[:, 0], pairs[:, 1]], name="edges"
    )


def alpha_beta_relation(alpha: float, beta: float, m: int) -> Relation:
    """An (α,β)-relation (Def. C.1) with parameter M = ``m``.

    Both deg(Y|X) and deg(X|Y) are the (α,β)-sequence: ⌈M^α⌉ values of
    degree ⌈M^β⌉ and M − ⌈M^α⌉ values of degree 1.  Constructed as the
    disjoint union of footnote 5 of the paper, with tagged value spaces to
    keep the three parts disjoint:

    * a block {(i, (i,j))} giving X-side heavy hitters,
    * a block {((i,j), i)} giving Y-side heavy hitters,
    * a diagonal {(i, i)} of degree-1 values padding both sides to M values.

    Requires α + β ≤ 1 (else the padding count would be negative).
    """
    if alpha < 0 or beta < 0 or alpha + beta > 1 + 1e-12:
        raise ValueError(f"need α, β ≥ 0 and α+β ≤ 1; got {alpha}, {beta}")
    heavy = max(1, round(m ** alpha)) if alpha > 0 else 1
    degree = max(1, round(m ** beta)) if beta > 0 else 1
    rows: list[tuple] = []
    for i in range(heavy):
        for j in range(degree):
            rows.append((("hx", i), ("hxv", i, j)))
            rows.append((("hyv", i, j), ("hy", i)))
    padding = m - heavy - heavy * degree
    for i in range(max(0, padding)):
        rows.append((("d", i), ("d", i)))
    return Relation(("x", "y"), rows, name=f"ab({alpha:g},{beta:g})")


def matching_relation(n: int, attributes: Sequence[str] = ("x", "y")) -> Relation:
    """The diagonal {(i, i) : i < n} — Example B.1's worst case for [14]."""
    return Relation(tuple(attributes), ((i, i) for i in range(n)), name="diag")


def fan_out_relation(
    num_hubs: int,
    fan_out: int,
    attributes: Sequence[str] = ("h", "v"),
    name: str = "fan",
) -> Relation:
    """Every hub joined to every leaf: {(h, v) : h < num_hubs, v < fan_out}.

    The maximal-fan-out gadget: deg(v | h) = ``fan_out`` for every hub,
    so any query re-using the hub variable multiplies frontiers by
    ``fan_out`` per arm.  Built column-first (vectorized, no Python row
    loop).
    """
    if num_hubs < 1 or fan_out < 1:
        raise ValueError("num_hubs and fan_out must be ≥ 1")
    hubs = np.repeat(np.arange(num_hubs, dtype=np.int64), fan_out)
    leaves = np.tile(np.arange(fan_out, dtype=np.int64), num_hubs)
    return Relation.from_columns(tuple(attributes), [hubs, leaves], name=name)


def clique_graph(
    num_nodes: int, attributes: Sequence[str] = ("x", "y"), name: str = "K"
) -> Relation:
    """The complete graph K_n as ordered pairs {(i, j) : i ≠ j}.

    Every k-clique query on it realises its AGM bound up to constants —
    the classical worst case for join evaluation, useful for metering
    adversarial (dense) frontiers at small sizes.
    """
    if num_nodes < 2:
        raise ValueError("clique_graph needs at least 2 nodes")
    n = np.int64(num_nodes)
    flat = np.arange(n * (n - 1), dtype=np.int64)
    xs = flat // (n - 1)
    rest = flat % (n - 1)
    ys = rest + (rest >= xs)  # skip the diagonal
    return Relation.from_columns(tuple(attributes), [xs, ys], name=name)


def star_query(arms: int = 2) -> ConjunctiveQuery:
    """The closed star query with ``arms`` arms.

    ``q(h, x1..xk, z) :- R1(h,x1), …, Rk(h,xk), T1(x1,z), …, Tk(xk,z)``:
    a hub fans out into ``k`` arm variables which must then agree on one
    closing variable ``z``.  On :func:`star_database` instances with
    ``arms=2`` the default (most-shared-first) WCOJ order binds
    ``h, x1, x2, z``, so the live frontier peaks at
    ``num_hubs · fan_out²`` partial bindings while the output is only
    ``num_hubs · fan_out`` rows — the gap the blocked frontier closes.
    """
    if arms < 1:
        raise ValueError("star_query needs at least one arm")
    xs = [f"x{i}" for i in range(1, arms + 1)]
    body = ", ".join(f"R{i}(h,{x})" for i, x in enumerate(xs, start=1))
    tails = ", ".join(f"T{i}({x},z)" for i, x in enumerate(xs, start=1))
    head = ",".join(["h", *xs, "z"])
    return parse_query(f"star{arms}({head}) :- {body}, {tails}")


def star_database(
    fan_out: int, num_hubs: int = 1, arms: int = 2
) -> Database:
    """The database :func:`star_query` runs against.

    Every arm relation ``Ri`` is the same :func:`fan_out_relation`
    (each hub sees all ``fan_out`` leaves) and every closing tail ``Ti``
    is the diagonal over the leaves, so a binding survives the last
    level iff all arms chose the same leaf.  One relation object is
    shared across the arm (and tail) names — set semantics make the
    self-share exact and the sorted-codes tries are built once.
    """
    if arms < 1:
        raise ValueError("star_database needs at least one arm")
    fan = fan_out_relation(num_hubs, fan_out, ("h", "v"), name="fan")
    tail = matching_relation(fan_out, ("v", "z")).with_name("tail")
    relations: dict[str, Relation] = {}
    for i in range(1, arms + 1):
        relations[f"R{i}"] = fan
        relations[f"T{i}"] = tail
    return Database(relations)
