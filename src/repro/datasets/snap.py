"""Synthetic stand-ins for the SNAP graphs of Appendix C.1.

No network access is available, so each of the seven SNAP datasets the
paper uses is replaced by a seeded power-law graph whose size is scaled to
laptop range and whose skew is calibrated so that the *ordering* of the
bounds ({2} ≪ {1,∞} ≪ {1}) and the estimator's failure directions match
the paper.  The collaboration networks (ca-*) get moderate skew, the
social networks (soc-*) and twitter heavy skew — mirroring the published
degree profiles that drive the paper's numbers (e.g. soc-LiveJournal's
{1,∞} ratio being ~80× worse than ca-GrQc's).

See docs/architecture.md for where these stand-ins sit in the
reproduction's paper-to-code map.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational import Database, Relation
from .cache import cached_database
from .generators import power_law_graph

__all__ = ["SnapSpec", "SNAP_SPECS", "load_snap_graph", "snap_database"]


@dataclass(frozen=True)
class SnapSpec:
    """Generator parameters for one synthetic SNAP stand-in."""

    name: str
    num_nodes: int
    num_edges: int
    exponent: float
    seed: int


# Scaled-down counterparts of the paper's seven datasets.  Node/edge
# counts keep the originals' ratios; exponents grade from the milder
# collaboration networks to the heavy-tailed social graphs.
SNAP_SPECS: tuple[SnapSpec, ...] = (
    SnapSpec("ca-GrQc", 2500, 7000, 0.35, 101),
    SnapSpec("ca-HepTh", 5000, 13000, 0.35, 102),
    SnapSpec("facebook", 2000, 20000, 0.45, 103),
    SnapSpec("soc-Epinions", 8000, 40000, 0.75, 104),
    SnapSpec("soc-LiveJournal", 12000, 48000, 0.80, 105),
    SnapSpec("soc-pokec", 10000, 44000, 0.72, 106),
    SnapSpec("twitter", 6000, 36000, 0.70, 107),
)

_SPEC_BY_NAME = {spec.name: spec for spec in SNAP_SPECS}


def load_snap_graph(name: str) -> Relation:
    """The synthetic edge relation for a named dataset (deduplicated,
    symmetric — the paper deduplicated twitter the same way)."""
    try:
        spec = _SPEC_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; have {sorted(_SPEC_BY_NAME)}"
        ) from None
    return power_law_graph(
        spec.num_nodes, spec.num_edges, spec.exponent, spec.seed
    ).with_name(name)


def snap_database(name: str) -> Database:
    """A single-relation database {R: edges} for the graph queries.

    Generation round-trips through the on-disk fixture cache when
    ``REPRO_DATASET_CACHE`` is set (see :mod:`repro.datasets.cache`).
    """
    if name not in _SPEC_BY_NAME:  # fail fast on unknown names, cached or not
        raise KeyError(
            f"unknown dataset {name!r}; have {sorted(_SPEC_BY_NAME)}"
        )
    return cached_database(
        "snap", {"name": name}, lambda: Database({"R": load_snap_graph(name)})
    )
