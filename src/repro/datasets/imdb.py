"""A synthetic IMDB-like database — the JOB benchmark substrate.

The paper's Figure 1 runs 33 acyclic join queries over IMDB.  The real
dataset is unavailable offline, so this module generates a scaled,
schema-compatible stand-in: a star/snowflake schema around ``title`` with
key–foreign-key joins everywhere (primary keys give the ℓ∞ = 1 statistics
the paper observes in every optimal bound) and Zipf-skewed foreign keys
(the skew that separates ℓp bounds from ℓ1/ℓ∞ bounds).

All relations' columns are join keys or low-cardinality dimension values;
queries in :mod:`repro.datasets.job_queries` bind every column, making
them full conjunctive queries as the paper requires.
"""

from __future__ import annotations

import numpy as np

from ..relational import Database, Relation
from .cache import cached_database
from .generators import zipf_values

__all__ = ["imdb_database", "IMDB_RELATIONS"]

#: relation name -> attribute tuple (documentation + test fixture)
IMDB_RELATIONS: dict[str, tuple[str, ...]] = {
    "title": ("mid", "kind"),
    "kind_type": ("kind",),
    "movie_companies": ("mid", "cid", "ctid"),
    "company_name": ("cid", "country"),
    "company_type": ("ctid",),
    "movie_info": ("mid", "it"),
    "movie_info_idx": ("mid", "it"),
    "info_type": ("it",),
    "movie_keyword": ("mid", "kw"),
    "keyword": ("kw",),
    "cast_info": ("mid", "pid", "role"),
    "role_type": ("role",),
    "name": ("pid", "gender"),
    "aka_name": ("pid", "aka"),
    "person_info": ("pid", "pit"),
    "movie_link": ("mid", "mid2", "lt"),
    "link_type": ("lt",),
    "complete_cast": ("mid", "cc"),
    "comp_cast_type": ("cc",),
    "aka_title": ("mid", "at"),
}


def _fk_table(
    rng: np.random.Generator,
    rows: int,
    columns: tuple[str, ...],
    domains: tuple[int, ...],
    exponents: tuple[float, ...],
) -> Relation:
    data = [
        zipf_values(rows, domain, exponent, rng)
        for domain, exponent in zip(domains, exponents)
    ]
    # column-first: vectorized dedup in the columnar backend, no tuple
    # round-trip (first-occurrence row order matches the tuple path).
    return Relation.from_columns(columns, data)


def imdb_database(scale: float = 1.0, seed: int = 7) -> Database:
    """Generate the synthetic IMDB instance.

    ``scale`` multiplies every table's row target (fact tables only);
    dimension-table sizes grow with sqrt(scale).  The default produces
    ~45k tuples total — large enough for meaningful skew, small enough
    that all 33 JOB-like counts run in seconds via ``acyclic_count``.
    Generation round-trips through the on-disk fixture cache when
    ``REPRO_DATASET_CACHE`` is set (see :mod:`repro.datasets.cache`).
    """
    return cached_database(
        "imdb",
        {"scale": scale, "seed": seed},
        lambda: _build_imdb_database(scale, seed),
    )


def _build_imdb_database(scale: float, seed: int) -> Database:
    rng = np.random.default_rng(seed)
    movies = max(50, int(1200 * scale))
    companies = max(20, int(250 * np.sqrt(scale)))
    persons = max(40, int(2500 * np.sqrt(scale)))
    keywords = max(30, int(800 * np.sqrt(scale)))
    kinds, ctypes, infotypes, roles = 7, 4, 50, 11
    genders, countries, pinfotypes, linktypes, cctypes = 3, 40, 30, 17, 4

    relations: dict[str, Relation] = {}
    relations["title"] = Relation.from_columns(
        ("mid", "kind"),
        [np.arange(movies), zipf_values(movies, kinds, 0.6, rng)],
    )
    relations["kind_type"] = Relation(("kind",), ((k,) for k in range(kinds)))
    relations["movie_companies"] = _fk_table(
        rng, int(3 * movies), ("mid", "cid", "ctid"),
        (movies, companies, ctypes), (0.8, 0.7, 0.5),
    )
    relations["company_name"] = Relation.from_columns(
        ("cid", "country"),
        [np.arange(companies), zipf_values(companies, countries, 0.9, rng)],
    )
    relations["company_type"] = Relation(
        ("ctid",), ((c,) for c in range(ctypes))
    )
    relations["movie_info"] = _fk_table(
        rng, int(5 * movies), ("mid", "it"), (movies, 40), (0.9, 0.8)
    )
    relations["movie_info_idx"] = _fk_table(
        rng, int(2 * movies), ("mid", "it"), (movies, 10), (0.7, 0.6)
    )
    relations["info_type"] = Relation(
        ("it",), ((i,) for i in range(infotypes))
    )
    relations["movie_keyword"] = _fk_table(
        rng, int(4 * movies), ("mid", "kw"), (movies, keywords), (0.95, 0.85)
    )
    relations["keyword"] = Relation(("kw",), ((k,) for k in range(keywords)))
    relations["cast_info"] = _fk_table(
        rng, int(8 * movies), ("mid", "pid", "role"),
        (movies, persons, roles), (0.85, 0.8, 0.5),
    )
    relations["role_type"] = Relation(("role",), ((r,) for r in range(roles)))
    relations["name"] = Relation.from_columns(
        ("pid", "gender"),
        [np.arange(persons), zipf_values(persons, genders, 0.3, rng)],
    )
    aka_rows = int(1.0 * movies)
    relations["aka_name"] = Relation.from_columns(
        ("pid", "aka"),
        [zipf_values(aka_rows, persons, 0.9, rng), np.arange(aka_rows)],
    )
    relations["person_info"] = _fk_table(
        rng, int(3 * movies), ("pid", "pit"), (persons, pinfotypes), (0.85, 0.6)
    )
    relations["movie_link"] = _fk_table(
        rng, max(20, int(0.3 * movies)), ("mid", "mid2", "lt"),
        (movies, movies, linktypes), (0.8, 0.8, 0.4),
    )
    relations["link_type"] = Relation(
        ("lt",), ((lt,) for lt in range(linktypes))
    )
    relations["complete_cast"] = _fk_table(
        rng, max(20, int(0.5 * movies)), ("mid", "cc"), (movies, cctypes),
        (0.7, 0.4),
    )
    relations["comp_cast_type"] = Relation(
        ("cc",), ((c,) for c in range(cctypes))
    )
    at_rows = max(20, int(0.4 * movies))
    relations["aka_title"] = Relation.from_columns(
        ("mid", "at"),
        [zipf_values(at_rows, movies, 0.8, rng), np.arange(at_rows)],
    )
    return Database(relations)
