"""The AGM bound [1] — the paper's {1}-bound baseline.

The AGM bound is |Q| ≤ Π_j |R_j|^{x*_j} where x* is a minimum fractional
edge cover weighted by log|R_j|.  Two equivalent implementations are
provided and cross-checked in tests:

* :func:`agm_bound` — directly via the fractional edge cover LP;
* restricting the main LP of :mod:`repro.core.lp_bound` to the ℓ1
  cardinality statistics, which the paper shows is the same thing.
"""

from __future__ import annotations

import math

from ..query.hypergraph import Hypergraph
from ..query.query import ConjunctiveQuery
from ..relational import Database
from ..core.conditionals import StatisticsSet, collect_statistics
from ..core.lp_bound import BoundResult, lp_bound

__all__ = ["agm_bound", "agm_bound_lp", "agm_statistics"]


def agm_statistics(query: ConjunctiveQuery, db: Database) -> StatisticsSet:
    """Just the cardinality (ℓ1) statistics of the query's atoms."""
    return collect_statistics(
        query,
        db,
        ps=(),
        include_cardinalities=True,
        include_distinct_counts=False,
    )


def agm_bound(query: ConjunctiveQuery, db: Database) -> float:
    """log2 of the AGM bound, via the fractional edge cover LP.

    Uses |Π_{vars(atom)}(R)| per atom (equals |R| for the usual case where
    the atom binds every column of a distinct-variable relation).
    """
    weights = []
    for atom in query.atoms:
        relation = db[atom.relation]
        distinct_vars = tuple(dict.fromkeys(atom.variables))
        attrs = []
        seen = set()
        for position, var in enumerate(atom.variables):
            if var not in seen:
                seen.add(var)
                attrs.append(relation.attributes[position])
        count = relation.distinct_count(attrs)
        if count == 0:
            return -math.inf  # empty relation ⇒ empty output
        weights.append(math.log2(count))
    value, _ = Hypergraph.of_query(query).fractional_edge_cover(weights)
    return float(value)


def agm_bound_lp(query: ConjunctiveQuery, db: Database) -> BoundResult:
    """The AGM bound through the general ℓp machinery ({1}-statistics)."""
    return lp_bound(agm_statistics(query, db), query=query)
