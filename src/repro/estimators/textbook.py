"""The textbook cardinality estimator — our stand-in for DuckDB.

Traditional estimators (System R lineage; Ramakrishnan & Gehrke [26], the
formula (15) the paper quotes) estimate a join by applying

    |R ⋈ S| ≈ |R| · |S| / max(V(R, Y), V(S, Y))            (15)

*repeatedly along a join order*, where V(·, Y) is a distinct count.  Each
newly joined atom contributes one such denominator for its join key; when
an atom closes a cycle (both its variables already bound, as in the
triangle's third atom) the single-key formula under-counts the extra
equality — which is precisely why such estimators **over**-estimate cyclic
queries while the uniformity+independence assumptions make them
**under**-estimate skewed acyclic joins.  The paper observes exactly this
double failure for DuckDB; reproducing it is this module's purpose.
Intermediate distinct counts follow the usual rule V(join, Y) =
min of the joined relations' V's.

This estimator is *not* an upper bound.
"""

from __future__ import annotations

import math

from ..query.query import Atom, ConjunctiveQuery
from ..relational import Database

__all__ = ["textbook_estimate", "textbook_estimate_log2"]


def _base_ndv(atom: Atom, db: Database) -> dict[str, int]:
    relation = db[atom.relation]
    ndv: dict[str, int] = {}
    for position, var in enumerate(atom.variables):
        if var not in ndv:
            ndv[var] = relation.distinct_count(
                (relation.attributes[position],)
            )
    return ndv


def _greedy_order(query: ConjunctiveQuery) -> list[Atom]:
    remaining = list(query.atoms)
    ordered = [remaining.pop(0)]
    bound = set(ordered[0].variable_set)
    while remaining:
        pick = next(
            (a for a in remaining if a.variable_set & bound), remaining[0]
        )
        remaining.remove(pick)
        ordered.append(pick)
        bound |= pick.variable_set
    return ordered


def textbook_estimate_log2(query: ConjunctiveQuery, db: Database) -> float:
    """log2 of the textbook estimate of |Q(D)|; −inf for an estimated 0."""
    order = _greedy_order(query)
    first = order[0]
    size = len(db[first.relation])
    if size == 0:
        return -math.inf
    log2_est = math.log2(size)
    current_ndv = dict(_base_ndv(first, db))
    for atom in order[1:]:
        size = len(db[atom.relation])
        if size == 0:
            return -math.inf
        log2_est += math.log2(size)
        base = _base_ndv(atom, db)
        shared = [v for v in base if v in current_ndv]
        if shared:
            # formula (15): one join-key denominator per joined atom; use
            # the most selective single key (largest distinct count).
            denominator = max(
                max(current_ndv[v], base[v]) for v in shared
            )
            if denominator == 0:
                return -math.inf
            log2_est -= math.log2(denominator)
        for var, count in base.items():
            current_ndv[var] = min(current_ndv.get(var, count), count)
    return log2_est


def textbook_estimate(query: ConjunctiveQuery, db: Database) -> float:
    """The textbook estimate in linear space."""
    log2_value = textbook_estimate_log2(query, db)
    if log2_value == -math.inf:
        return 0.0
    return 2.0 ** log2_value
