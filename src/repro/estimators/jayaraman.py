"""The Jayaraman–Ropell–Rudra bound [14] — the Appendix B comparator.

For binary-relation queries and a single p, [14] solves the linear
program (42):

    min Σ_{(V,U)∈E} x_{V,U} · log L_{V,U}
    s.t. ∀U:  Σ_{(V,U)∈E} x_{V,U} + (1/p)·Σ_{(U,W)∈E} x_{U,W} ≥ 1,  x ≥ 0

with L_{V,U} = ‖deg(U|V)‖_p, and claims runtime (hence an output bound)
Π L^{x*}.  Appendix B shows this is exactly our bound restricted to the
**modular** cone — sound only when the query graph's girth exceeds p
(Theorem B.2), and wrong otherwise (Example B.1: the 2-cycle with p = 2).

This module exposes the bound with the girth guard, the unguarded raw LP
value for the counterexample analysis, and the Theorem B.2 validity test.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.conditionals import (
    AbstractStatistic,
    ConcreteStatistic,
    Conditional,
    StatisticsSet,
)
from ..core.degree import degree_sequence
from ..core.lp_bound import lp_bound
from ..core.norms import log2_norm
from ..query.hypergraph import girth
from ..query.query import ConjunctiveQuery
from ..relational import Database

__all__ = ["JayaramanResult", "jayaraman_bound", "jayaraman_statistics"]


@dataclass
class JayaramanResult:
    """The [14] bound plus its applicability analysis."""

    p: float
    girth: float
    applicable: bool  # girth ≥ p + 1 (Theorem B.2's condition)
    log2_bound_modular: float  # the raw LP (42) value
    log2_bound_polymatroid: float  # the sound value on the same statistics

    @property
    def sound(self) -> bool:
        """Whether the raw LP value is a valid upper bound here.

        By Theorem B.2 the modular value equals the polymatroid value when
        the girth condition holds; equality may also happen by luck.
        """
        return (
            self.log2_bound_modular >= self.log2_bound_polymatroid - 1e-6
        )


def jayaraman_statistics(
    query: ConjunctiveQuery, db: Database, p: float
) -> StatisticsSet:
    """One ℓp statistic ‖deg(second | first)‖_p per binary atom."""
    stats = []
    for atom in query.atoms:
        if atom.arity != 2:
            raise ValueError(
                f"[14] handles binary relations only; {atom} has arity "
                f"{atom.arity}"
            )
        relation = db[atom.relation]
        u_var, v_var = atom.variables
        seq = degree_sequence(
            relation, [relation.attributes[1]], [relation.attributes[0]]
        )
        stats.append(
            ConcreteStatistic(
                AbstractStatistic(
                    Conditional(frozenset({v_var}), frozenset({u_var})), p
                ),
                log2_norm(seq, p),
                atom,
            )
        )
    return StatisticsSet(stats)


def jayaraman_bound(
    query: ConjunctiveQuery, db: Database, p: float
) -> JayaramanResult:
    """Compute the [14] bound and check Theorem B.2's girth condition.

    Solves the LP (42) (equivalently: our bound over the modular cone) and
    the sound polymatroid bound on the same single-p statistics.  When the
    girth condition ``girth ≥ p + 1`` holds, the two coincide (Theorem
    B.2); the Example B.1 counterexample makes them differ.
    """
    stats = jayaraman_statistics(query, db, p)
    modular = lp_bound(stats, query=query, cone="modular")
    poly = lp_bound(stats, query=query, cone="polymatroid")
    g = girth(query)
    return JayaramanResult(
        p=p,
        girth=g,
        applicable=g >= p + 1,
        log2_bound_modular=modular.log2_bound,
        log2_bound_polymatroid=poly.log2_bound,
    )
