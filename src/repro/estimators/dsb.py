"""The Degree Sequence Bound (DSB) [6] — the Appendix C.3 comparator.

For the single join Q(X,Y,Z) = R(X,Y) ∧ S(Y,Z), with degree sequences
a_1 ≥ a_2 ≥ … (of deg_R(X|Y)) and b_1 ≥ b_2 ≥ … (of deg_S(Z|Y)), the DSB
is the tight bound

    DSB = Σ_i a_i · b_i                                            (49)

pairing the i-th largest degrees (sequences aligned by rank, the shorter
padded with zeros).  The DSB applies to Berge-acyclic queries in general;
we implement the exact two-relation form the paper analyses and a
rank-pairing generalisation for chains of joins (each internal variable
contributes its two facing degree sequences, combined greedily — this is
an upper bound for chains under the DSB's "domination" semantics and
reduces to (49) for a single join).

The subtle point reproduced by :mod:`repro.experiments.dsb_gap`: although
a length-M degree sequence and its first M norms are interconvertible
(Lemma A.1), the DSB can be *asymptotically better* than every ℓp bound,
because norm constraints admit instances whose degree sequences are not
dominated by the original ones.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.degree import degree_sequence
from ..query.hypergraph import is_berge_acyclic
from ..query.query import ConjunctiveQuery
from ..relational import Database

__all__ = ["dsb_pair", "dsb_single_join", "dsb_chain"]


def dsb_pair(a: Sequence[float], b: Sequence[float]) -> float:
    """Σ_i a_i·b_i over rank-aligned, non-increasing degree sequences."""
    a_arr = np.sort(np.asarray(a, float))[::-1]
    b_arr = np.sort(np.asarray(b, float))[::-1]
    m = min(a_arr.size, b_arr.size)
    if m == 0:
        return 0.0
    return float(np.dot(a_arr[:m], b_arr[:m]))


def dsb_single_join(
    query: ConjunctiveQuery, db: Database
) -> float:
    """The DSB (49) for a two-atom join sharing exactly one variable.

    Returns the bound in linear space (degree products do not overflow for
    realistic inputs).  Raises ``ValueError`` if the query is not a single
    join with one shared variable.
    """
    if len(query.atoms) != 2:
        raise ValueError("dsb_single_join needs exactly two atoms")
    left, right = query.atoms
    shared = left.variable_set & right.variable_set
    if len(shared) != 1:
        raise ValueError(
            f"atoms must share exactly one variable, share {sorted(shared)}"
        )
    (join_var,) = shared
    sequences = []
    for atom in (left, right):
        relation = db[atom.relation]
        mapping: dict[str, str] = {}
        for position, var in enumerate(atom.variables):
            mapping.setdefault(var, relation.attributes[position])
        others = sorted(atom.variable_set - {join_var})
        if others:
            seq = degree_sequence(
                relation, [mapping[v] for v in others], [mapping[join_var]]
            )
        else:
            seq = np.ones(
                relation.distinct_count((mapping[join_var],)), dtype=np.int64
            )
        sequences.append(seq)
    return dsb_pair(sequences[0], sequences[1])


def dsb_chain(query: ConjunctiveQuery, db: Database) -> float:
    """A DSB-style bound for chain queries R_1(X_1,X_2) ∧ … ∧ R_k(X_k,X_{k+1}).

    Processes the chain left to right, maintaining the non-increasing
    sequence of *path counts* per current-endpoint value; each join caps
    rank-wise products exactly as (49) does for one join.  For a two-atom
    chain this equals :func:`dsb_single_join`.  Requires Berge-acyclicity.
    """
    if not is_berge_acyclic(query):
        raise ValueError("the DSB applies to Berge-acyclic queries only")
    atoms = list(query.atoms)
    if any(a.arity != 2 for a in atoms):
        raise ValueError("dsb_chain handles binary atoms only")
    # verify chain shape: atoms[i] shares its second variable with atoms[i+1]
    for first, second in zip(atoms, atoms[1:]):
        if first.variables[1] != second.variables[0]:
            raise ValueError(
                "atoms must form a chain R1(x1,x2), R2(x2,x3), …"
            )
    # counts[r] = number of partial paths ending at the rank-r heaviest value
    first_rel = db[atoms[0].relation]
    counts = np.asarray(
        degree_sequence(
            first_rel,
            [first_rel.attributes[0]],
            [first_rel.attributes[1]],
        ),
        dtype=float,
    )
    for atom in atoms[1:]:
        relation = db[atom.relation]
        out_deg = np.asarray(
            degree_sequence(
                relation, [relation.attributes[1]], [relation.attributes[0]]
            ),
            dtype=float,
        )
        m = min(counts.size, out_deg.size)
        if m == 0:
            return 0.0
        # each of the top-r endpoint groups fans out by at most the rank-r
        # out-degree; the result is again sorted non-increasingly.
        counts = np.sort(counts[:m] * out_deg[:m])[::-1]
    return float(counts.sum())


def dsb_log2(value: float) -> float:
    """log2 helper mirroring the library's log-space conventions."""
    return math.log2(value) if value > 0 else -math.inf
