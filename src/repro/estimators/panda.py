"""The PANDA bound [17] — the paper's {1,∞}-bound baseline.

PANDA's bound uses cardinalities (ℓ1) and max degrees (ℓ∞).  In the
paper's framework it is exactly the LP bound restricted to p ∈ {1, ∞}
statistics, which is how we compute it.
"""

from __future__ import annotations

import math

from ..query.query import ConjunctiveQuery
from ..relational import Database
from ..core.conditionals import StatisticsSet, collect_statistics
from ..core.lp_bound import BoundResult, lp_bound

__all__ = ["panda_statistics", "panda_bound"]


def panda_statistics(query: ConjunctiveQuery, db: Database) -> StatisticsSet:
    """Cardinality (ℓ1) and max-degree (ℓ∞) statistics for every atom."""
    return collect_statistics(
        query,
        db,
        ps=(math.inf,),
        include_cardinalities=True,
        include_distinct_counts=True,
    )


def panda_bound(
    query: ConjunctiveQuery,
    db: Database,
    statistics: StatisticsSet | None = None,
) -> BoundResult:
    """log2 of the PANDA ({1,∞}) bound as a :class:`BoundResult`.

    When ``statistics`` is supplied it is first restricted to p ∈ {1, ∞},
    so a richer precomputed catalog can be reused.
    """
    if statistics is None:
        statistics = panda_statistics(query, db)
    else:
        statistics = statistics.restrict_ps([1.0, math.inf])
    return lp_bound(statistics, query=query)
