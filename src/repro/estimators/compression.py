"""Dominating compression of degree sequences (the SafeBound idea [7]).

The paper notes (Sec. 1.3, App. C.3) that full degree sequences are too
large to store, so practical DSB systems keep a lossy *upper-dominating*
compression: a short sequence that is rank-wise ≥ the original, which
keeps every DSB-style bound sound while shrinking the statistic to a few
segments.  We implement the standard piecewise-constant scheme: split the
(sorted, non-increasing) sequence into k geometric rank segments and
replace each segment by its maximum.

Properties (tested):
* domination: compressed[i] ≥ original[i] for every rank i;
* soundness: DSB and ℓp-norms computed on the compression upper-bound the
  originals;
* budget: the compression has at most k distinct values.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["compress_sequence", "compression_error_log2"]


def compress_sequence(degrees: Sequence[float], segments: int) -> np.ndarray:
    """A rank-wise dominating sequence with ≤ ``segments`` distinct values.

    Segment boundaries are geometric in the rank (1, 2, 4, 8, …), which is
    the right shape for heavy-tailed degree sequences: fine resolution for
    the few heavy hitters, coarse for the long tail.
    """
    if segments < 1:
        raise ValueError("need at least one segment")
    seq = np.sort(np.asarray(degrees, dtype=float))[::-1]
    if seq.size == 0:
        return seq
    if np.any(seq < 0):
        raise ValueError("degrees must be non-negative")
    n = seq.size
    if segments >= n:
        return seq.copy()  # one value per rank: lossless
    boundaries = [0]
    # geometric ranks, then force the last boundary to n
    edge = 1
    while len(boundaries) < segments and edge < n:
        boundaries.append(edge)
        edge *= 2
    boundaries.append(n)
    out = np.empty_like(seq)
    for start, stop in zip(boundaries, boundaries[1:]):
        if start >= n:
            break
        out[start:stop] = seq[start:stop].max()
    return out


def compression_error_log2(
    degrees: Sequence[float], segments: int, p: float
) -> float:
    """log2 of ‖compressed‖_p / ‖original‖_p — the bound inflation.

    Always ≥ 0 (domination); decreases as ``segments`` grows.
    """
    from ..core.norms import log2_norm

    seq = np.sort(np.asarray(degrees, dtype=float))[::-1]
    compressed = compress_sequence(seq, segments)
    return log2_norm(compressed, p) - log2_norm(seq, p)
