"""Baseline estimators and bounds: AGM, PANDA, DSB, textbook."""

from .agm import agm_bound, agm_bound_lp, agm_statistics
from .dsb import dsb_chain, dsb_pair, dsb_single_join
from .jayaraman import JayaramanResult, jayaraman_bound, jayaraman_statistics
from .panda import panda_bound, panda_statistics
from .textbook import textbook_estimate, textbook_estimate_log2

__all__ = [
    "agm_bound",
    "agm_bound_lp",
    "agm_statistics",
    "panda_bound",
    "panda_statistics",
    "dsb_pair",
    "dsb_single_join",
    "dsb_chain",
    "jayaraman_bound",
    "jayaraman_statistics",
    "JayaramanResult",
    "textbook_estimate",
    "textbook_estimate_log2",
]
