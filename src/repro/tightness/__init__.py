"""Tightness machinery: normal relations and worst-case instances."""

from .normal_relations import (
    basic_normal_relation,
    domain_product,
    normal_relation,
)
from .worst_case import WorstCaseInstance, build_worst_case

__all__ = [
    "basic_normal_relation",
    "domain_product",
    "normal_relation",
    "build_worst_case",
    "WorstCaseInstance",
]
