"""Normal relations: domain products of basic normal relations (Sec. 6).

The tightness proof of the polymatroid bound for simple statistics runs
through *normal relations*:

* the **basic normal relation** T^W_N (Def. 6.4) puts the value k on every
  attribute in W and 0 elsewhere, for k = 0..N−1;
* the **domain product** T ⊗ T' pairs values attribute-wise
  (|T ⊗ T'| = |T|·|T'|, and entropies add — Eq. 38);
* a **normal relation** is a domain product of basic ones; it is totally
  uniform and its entropy is the normal polymatroid Σ (log2 N_W)·h_W.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..relational import Relation

__all__ = ["basic_normal_relation", "domain_product", "normal_relation"]


def basic_normal_relation(
    variables: Sequence[str], w: Iterable[str], n: int
) -> Relation:
    """The basic normal relation T^W_N over the given attribute list.

    Rows are (k on attributes in W, 0 elsewhere) for k = 0..n−1.
    """
    variables = tuple(variables)
    w_set = frozenset(w)
    unknown = w_set - set(variables)
    if unknown:
        raise ValueError(f"W contains unknown attributes {sorted(unknown)}")
    if n < 1:
        raise ValueError(f"N must be ≥ 1, got {n}")
    rows = (
        tuple(k if v in w_set else 0 for v in variables) for k in range(n)
    )
    return Relation(variables, rows, name=f"T^{{{','.join(sorted(w_set))}}}_{n}")


def domain_product(left: Relation, right: Relation) -> Relation:
    """The domain product T ⊗ T' (Fagin's direct product).

    Both relations must share the same attribute tuple.  Each output row
    pairs a row of ``left`` with a row of ``right`` attribute-wise, values
    becoming 2-tuples; |T ⊗ T'| = |T| · |T'| and entropy vectors add.
    """
    if left.attributes != right.attributes:
        raise ValueError(
            f"attribute mismatch: {left.attributes} vs {right.attributes}"
        )
    rows = (
        tuple(zip(lrow, rrow)) for lrow in left for rrow in right
    )
    return Relation(left.attributes, rows, name=f"{left.name}⊗{right.name}")


def normal_relation(
    variables: Sequence[str],
    factors: Iterable[tuple[Iterable[str], int]],
) -> Relation:
    """The domain product ⊗_i T^{W_i}_{N_i}.

    ``factors`` is an iterable of (W, N) pairs.  With no factors the result
    is the single all-zero row (entropy 0).  The result is totally uniform
    with entropy Σ_i (log2 N_i) · h_{W_i} (Prop. 6.5 + Eq. 38).
    """
    variables = tuple(variables)
    result: Relation | None = None
    for w, n in factors:
        factor = basic_normal_relation(variables, w, n)
        result = factor if result is None else domain_product(result, factor)
    if result is None:
        return Relation(variables, [tuple(0 for _ in variables)], name="T^∅")
    return result


def entropy_matches_normal(
    relation: Relation, coefficients: dict[frozenset[str], float]
) -> bool:
    """Debug helper: does the relation's entropy equal Σ α_W·h_W?

    Exact only when every 2^α_W is an integer; tests use powers of two.
    """
    from ..entropy.vectors import entropy_of_relation, normal

    empirical = entropy_of_relation(relation)
    expected = normal(relation.attributes, coefficients)
    import numpy as np

    return bool(np.allclose(empirical.values, expected.values, atol=1e-9))
