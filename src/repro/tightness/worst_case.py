"""Worst-case database construction (Lemma 6.2 / Corollary 6.3).

For *simple* statistics the polymatroid bound is tight: take the optimal
normal polymatroid h* = Σ α_W h_W from the bound LP (normal cone), round
each coefficient down to β_W = log2 ⌊2^{α_W}⌋, build the normal relation
T = ⊗_W T^W_{2^{β_W}}, and project it onto every atom's variables.  The
resulting database satisfies (Σ, B) and its query output is T itself, of
size ≥ 2^{h*(X)} / 2^c where c is the number of non-zero coefficients.

This module turns that proof into runnable code: it materialises the
worst-case instance and reports the achieved output size against the
bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.lp_bound import BoundResult
from ..query.query import ConjunctiveQuery
from ..relational import Database, Relation
from .normal_relations import normal_relation

__all__ = ["WorstCaseInstance", "build_worst_case"]


@dataclass
class WorstCaseInstance:
    """A materialised tightness witness."""

    database: Database
    witness: Relation
    log2_bound: float
    log2_achieved: float
    num_factors: int

    @property
    def log2_gap(self) -> float:
        """Bound minus achieved (≤ num_factors by Lemma 6.2)."""
        return self.log2_bound - self.log2_achieved

    def is_tight(self) -> bool:
        """Gap within the Lemma 6.2 guarantee of one bit per factor."""
        return self.log2_gap <= self.num_factors + 1e-6


def build_worst_case(
    query: ConjunctiveQuery, bound: BoundResult
) -> WorstCaseInstance:
    """Materialise the Lemma 6.2 worst-case database for an LP bound.

    ``bound`` must come from the *normal* (or modular) cone so that the
    optimal h* is available as step-function coefficients.  The instance
    can be large — 2^{h*(X)} tuples — so callers should keep bounds small
    (tests use b ≤ ~16 bits).
    """
    if bound.normal_coefficients is None:
        raise ValueError(
            "worst-case construction needs a normal-cone bound "
            f"(got cone={bound.cone!r}, status={bound.status!r})"
        )
    if bound.log2_bound > 24:
        raise ValueError(
            f"bound of 2^{bound.log2_bound:.3g} tuples is too large to "
            "materialise; rescale the statistics first"
        )
    variables = bound.variables
    factors = []
    for mask, alpha in sorted(bound.normal_coefficients.items()):
        n_w = int(math.floor(2.0 ** alpha))
        if n_w < 1:
            n_w = 1
        w = [v for i, v in enumerate(variables) if mask >> i & 1]
        factors.append((w, n_w))
    witness = normal_relation(variables, factors)
    relations: dict[str, Relation] = {}
    for atom in query.atoms:
        distinct_vars = tuple(dict.fromkeys(atom.variables))
        projected = witness.project(distinct_vars)
        if len(distinct_vars) != len(atom.variables):
            # repeated variables: duplicate the column accordingly
            positions = [distinct_vars.index(v) for v in atom.variables]
            projected = Relation(
                tuple(f"c{i}" for i in range(len(atom.variables))),
                (tuple(row[i] for i in positions) for row in projected),
            )
        else:
            projected = projected.rename(
                {
                    var: f"c{i}"
                    for i, var in enumerate(distinct_vars)
                }
            )
        if atom.relation in relations:
            # self-join: the relation must serve every atom; union the
            # projections (all have the same arity by schema consistency).
            existing = relations[atom.relation]
            merged = Relation(
                existing.attributes,
                list(existing) + list(projected),
                name=atom.relation,
            )
            relations[atom.relation] = merged
        else:
            relations[atom.relation] = projected
    return WorstCaseInstance(
        database=Database(relations),
        witness=witness,
        log2_bound=bound.log2_bound,
        log2_achieved=math.log2(len(witness)),
        # Lemma 6.2's constant c: every non-zero coefficient may lose up to
        # one bit to the ⌊2^α⌋ rounding (including those that round to 1).
        num_factors=len(factors),
    )
