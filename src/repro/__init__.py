"""LpBound — join size bounds from ℓp-norms on degree sequences.

A from-scratch reproduction of "Join Size Bounds using ℓp-Norms on Degree
Sequences" (Abo Khamis, Nakos, Olteanu, Suciu — PODS 2024).

Quick start::

    from repro import parse_query, Relation, Database
    from repro import collect_statistics, lp_bound

    db = Database({"R": Relation(("x", "y"), edges)})
    q = parse_query("Q(x,y,z) :- R(x,y), R(y,z), R(z,x)")
    stats = collect_statistics(q, db, ps=[1, 2, 3, float("inf")])
    print(lp_bound(stats, query=q).bound)

See docs/architecture.md for the paper-to-code map and the subsystem
design notes, and docs/service.md for the bound-serving service.
"""

from .core import (
    BoundResult,
    BoundSolver,
    BoundTask,
    BoundTaskError,
    ConcreteStatistic,
    Conditional,
    StatisticsCatalog,
    StatisticsSet,
    collect_statistics,
    degree_sequence,
    log2_norm,
    lp_bound,
    lp_bound_many,
    lp_norm,
    product_form,
    verify_certificate,
)
from .query import Atom, ConjunctiveQuery, parse_query
from .relational import Database, Relation

__version__ = "1.0.0"

__all__ = [
    "Relation",
    "Database",
    "Atom",
    "ConjunctiveQuery",
    "parse_query",
    "Conditional",
    "ConcreteStatistic",
    "StatisticsSet",
    "collect_statistics",
    "degree_sequence",
    "log2_norm",
    "lp_norm",
    "lp_bound",
    "lp_bound_many",
    "BoundResult",
    "BoundSolver",
    "BoundTask",
    "BoundTaskError",
    "StatisticsCatalog",
    "product_form",
    "verify_certificate",
    "__version__",
]
