"""In-memory relations with set semantics.

The paper works with relations under set semantics: a relation is a finite
set of tuples over a fixed list of named attributes.  This module provides
an immutable :class:`Relation` that deduplicates on construction and offers
the handful of relational-algebra operations the rest of the library needs
(projection, selection, renaming) together with cached hash indexes used by
the join algorithms and the degree-sequence computations.

Values may be any hashable Python objects.  Integer-only relations are the
common case (graphs, synthetic benchmarks), but domain products
(:mod:`repro.tightness.normal_relations`) produce tuple-valued attributes,
so nothing here assumes integers.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Iterator, Mapping, Sequence

__all__ = ["Relation"]


class Relation:
    """An immutable relation: a set of tuples over named attributes.

    Parameters
    ----------
    attributes:
        Attribute names, in column order.  Must be unique.
    rows:
        Iterable of tuples (or sequences) of values, one per attribute.
        Duplicates are removed (set semantics).

    Examples
    --------
    >>> r = Relation(("x", "y"), [(1, 2), (1, 3), (1, 2)])
    >>> len(r)
    2
    >>> sorted(r.project(("x",)))
    [(1,)]
    """

    __slots__ = ("_attributes", "_rows", "_row_set", "_indexes", "_name")

    def __init__(
        self,
        attributes: Sequence[str],
        rows: Iterable[Sequence] = (),
        name: str = "",
    ) -> None:
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise ValueError(f"duplicate attribute names in {attrs!r}")
        self._attributes = attrs
        arity = len(attrs)
        seen = set()
        materialized = []
        for row in rows:
            t = tuple(row)
            if len(t) != arity:
                raise ValueError(
                    f"row {t!r} has arity {len(t)}, expected {arity}"
                )
            if t not in seen:
                seen.add(t)
                materialized.append(t)
        self._rows = tuple(materialized)
        self._row_set = seen
        self._indexes: dict = {}
        self._name = name

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in column order."""
        return self._attributes

    @property
    def name(self) -> str:
        """Optional relation name (used in reports and error messages)."""
        return self._name

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._attributes)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __contains__(self, row) -> bool:
        return tuple(row) in self._row_set

    def __eq__(self, other) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self._attributes == other._attributes
            and self._row_set == other._row_set
        )

    def __hash__(self) -> int:
        return hash((self._attributes, frozenset(self._row_set)))

    def __repr__(self) -> str:
        label = self._name or "Relation"
        return f"<{label}({', '.join(self._attributes)}): {len(self)} rows>"

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Sequence], attributes: Sequence[str] = ("x", "y"),
        name: str = "",
    ) -> "Relation":
        """Build a binary relation (e.g. a graph edge set) from pairs."""
        attrs = tuple(attributes)
        if len(attrs) != 2:
            raise ValueError("from_pairs requires exactly two attributes")
        return cls(attrs, pairs, name=name)

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Return a copy with attributes renamed via ``mapping``.

        Attributes not present in ``mapping`` keep their names.
        """
        new_attrs = tuple(mapping.get(a, a) for a in self._attributes)
        out = Relation.__new__(Relation)
        out._attributes = new_attrs
        if len(set(new_attrs)) != len(new_attrs):
            raise ValueError(f"rename produced duplicates: {new_attrs!r}")
        out._rows = self._rows
        out._row_set = self._row_set
        out._indexes = {}
        out._name = self._name
        return out

    def with_name(self, name: str) -> "Relation":
        """Return the same relation carrying a different display name."""
        out = Relation.__new__(Relation)
        out._attributes = self._attributes
        out._rows = self._rows
        out._row_set = self._row_set
        out._indexes = self._indexes
        out._name = name
        return out

    # ------------------------------------------------------------------
    # relational algebra
    # ------------------------------------------------------------------
    def positions(self, attrs: Sequence[str]) -> tuple[int, ...]:
        """Column positions of ``attrs`` (raises KeyError if missing)."""
        pos = []
        for a in attrs:
            try:
                pos.append(self._attributes.index(a))
            except ValueError:
                raise KeyError(
                    f"attribute {a!r} not in {self._attributes!r}"
                ) from None
        return tuple(pos)

    def project(self, attrs: Sequence[str]) -> "Relation":
        """Project onto ``attrs`` (deduplicating)."""
        pos = self.positions(attrs)
        rows = {tuple(row[i] for i in pos) for row in self._rows}
        return Relation(tuple(attrs), rows, name=self._name)

    def select(self, predicate: Callable[[tuple], bool]) -> "Relation":
        """Keep rows on which ``predicate`` returns true."""
        return Relation(
            self._attributes,
            (row for row in self._rows if predicate(row)),
            name=self._name,
        )

    def select_eq(self, attr: str, value) -> "Relation":
        """Keep rows where column ``attr`` equals ``value`` (uses index)."""
        index = self.index_on((attr,))
        return Relation(
            self._attributes, index.get((value,), ()), name=self._name
        )

    def restrict_rows(self, rows: Iterable[tuple]) -> "Relation":
        """Build a relation over the same attributes from given rows."""
        return Relation(self._attributes, rows, name=self._name)

    # ------------------------------------------------------------------
    # indexes and statistics helpers
    # ------------------------------------------------------------------
    def index_on(self, attrs: Sequence[str]) -> Mapping[tuple, list]:
        """Hash index: key tuple over ``attrs`` -> list of full rows.

        The index is cached on the relation; relations are immutable so the
        cache never invalidates.
        """
        key = tuple(attrs)
        cached = self._indexes.get(key)
        if cached is not None:
            return cached
        pos = self.positions(key)
        index: dict[tuple, list] = defaultdict(list)
        for row in self._rows:
            index[tuple(row[i] for i in pos)].append(row)
        index = dict(index)
        self._indexes[key] = index
        return index

    def group_sizes(
        self, group_attrs: Sequence[str], value_attrs: Sequence[str]
    ) -> dict[tuple, int]:
        """Distinct ``value_attrs`` count per ``group_attrs`` value.

        This is the raw material of a degree sequence: for the conditional
        (V | U) the degree of a U-value u is the number of distinct
        V-values co-occurring with u in the projection onto U ∪ V.

        An empty ``group_attrs`` yields a single group keyed by ``()``.
        """
        gpos = self.positions(group_attrs)
        vpos = self.positions(value_attrs)
        groups: dict[tuple, set] = defaultdict(set)
        for row in self._rows:
            groups[tuple(row[i] for i in gpos)].add(
                tuple(row[i] for i in vpos)
            )
        return {key: len(values) for key, values in groups.items()}

    def distinct_count(self, attrs: Sequence[str]) -> int:
        """Number of distinct values in the projection onto ``attrs``."""
        pos = self.positions(attrs)
        return len({tuple(row[i] for i in pos) for row in self._rows})

    def active_domain(self) -> set:
        """All values appearing in any column."""
        domain = set()
        for row in self._rows:
            domain.update(row)
        return domain

    def column(self, attr: str) -> list:
        """All values (with repetitions removed row-wise) of one column."""
        (pos,) = self.positions((attr,))
        return [row[pos] for row in self._rows]
