"""In-memory relations with set semantics.

The paper works with relations under set semantics: a relation is a finite
set of tuples over a fixed list of named attributes.  This module provides
an immutable :class:`Relation` that deduplicates on construction and offers
the handful of relational-algebra operations the rest of the library needs
(projection, selection, renaming) together with cached hash indexes used by
the join algorithms and the degree-sequence computations.

Values may be any hashable Python objects.  Integer-only relations are the
common case (graphs, synthetic benchmarks), but domain products
(:mod:`repro.tightness.normal_relations`) produce tuple-valued attributes,
so nothing here assumes integers.

Integer-valued relations additionally carry a lazily built, cached
columnar twin (:mod:`repro.relational.columnar`): dictionary-encoded
``int64`` NumPy code arrays per column.  The statistics hot paths —
``group_sizes``/``group_size_counts``, ``project``, ``distinct_count``,
``active_domain`` — dispatch to vectorized kernels whenever the twin
exists and transparently fall back to the original tuple-at-a-time
implementations (kept as the correctness oracle, exercised directly by the
equivalence test-suite) for relations holding non-integer values.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .columnar import ColumnarRelation, encode_column, encode_rows

__all__ = ["Relation"]


class Relation:
    """An immutable relation: a set of tuples over named attributes.

    Parameters
    ----------
    attributes:
        Attribute names, in column order.  Must be unique.
    rows:
        Iterable of tuples (or sequences) of values, one per attribute.
        Duplicates are removed (set semantics).

    Examples
    --------
    >>> r = Relation(("x", "y"), [(1, 2), (1, 3), (1, 2)])
    >>> len(r)
    2
    >>> sorted(r.project(("x",)))
    [(1,)]
    """

    __slots__ = (
        "_attributes", "_rows", "_row_set", "_indexes", "_name", "_columnar",
    )

    def __init__(
        self,
        attributes: Sequence[str],
        rows: Iterable[Sequence] = (),
        name: str = "",
    ) -> None:
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise ValueError(f"duplicate attribute names in {attrs!r}")
        self._attributes = attrs
        arity = len(attrs)
        seen = set()
        materialized = []
        for row in rows:
            t = tuple(row)
            if len(t) != arity:
                raise ValueError(
                    f"row {t!r} has arity {len(t)}, expected {arity}"
                )
            if t not in seen:
                seen.add(t)
                materialized.append(t)
        self._rows = tuple(materialized)
        self._row_set = seen
        self._indexes: dict = {}
        self._name = name
        self._columnar: ColumnarRelation | None | bool = None

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in column order."""
        return self._attributes

    @property
    def name(self) -> str:
        """Optional relation name (used in reports and error messages)."""
        return self._name

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._attributes)

    def __len__(self) -> int:
        if self._rows is None:
            return self._columnar.n_rows
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._materialized_rows())

    def __contains__(self, row) -> bool:
        return tuple(row) in self._materialized_set()

    def __eq__(self, other) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self._attributes == other._attributes
            and self._materialized_set() == other._materialized_set()
        )

    def __hash__(self) -> int:
        return hash((self._attributes, frozenset(self._materialized_set())))

    def __repr__(self) -> str:
        label = self._name or "Relation"
        return f"<{label}({', '.join(self._attributes)}): {len(self)} rows>"

    def __getstate__(self):
        # Compact transport for process pools: derived caches (hash
        # indexes, the row set) rebuild on demand in the receiving
        # process, and when the columnar twin exists it alone carries
        # the rows (tuples decode lazily on the other side).
        columnar = self._columnar
        if isinstance(columnar, ColumnarRelation):
            return (self._attributes, self._name, None, columnar)
        return (
            self._attributes,
            self._name,
            self._materialized_rows(),
            columnar,
        )

    def __setstate__(self, state):
        self._attributes, self._name, self._rows, self._columnar = state
        self._row_set = None
        self._indexes = {}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Sequence], attributes: Sequence[str] = ("x", "y"),
        name: str = "",
    ) -> "Relation":
        """Build a binary relation (e.g. a graph edge set) from pairs."""
        attrs = tuple(attributes)
        if len(attrs) != 2:
            raise ValueError("from_pairs requires exactly two attributes")
        return cls(attrs, pairs, name=name)

    @classmethod
    def from_columns(
        cls,
        attributes: Sequence[str],
        columns: Sequence,
        name: str = "",
    ) -> "Relation":
        """Build a relation column-first, deduplicating vectorized.

        ``columns`` holds one sequence (list or NumPy array) per attribute.
        Integer columns are deduplicated through the columnar backend's
        composite keys — preserving first-occurrence row order exactly like
        the row-at-a-time constructor — and skip the per-row Python loop
        entirely; anything else falls back to the tuple constructor.
        """
        attrs = tuple(attributes)
        cols = list(columns)
        if len(cols) != len(attrs):
            raise ValueError(
                f"{len(cols)} columns for {len(attrs)} attributes"
            )
        lengths = {len(c) for c in cols}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        if not attrs:
            return cls(attrs, [] if not cols else [], name=name)
        encoded = [encode_column(c) for c in cols]
        if any(e is None for e in encoded):
            return cls(attrs, zip(*cols), name=name)
        n = lengths.pop() if lengths else 0
        from .columnar import composite_codes

        keys, _ = composite_codes(
            [codes for codes, _ in encoded],
            [len(d) for _, d in encoded],
            n,
        )
        _, first = np.unique(keys, return_index=True)
        first.sort()
        decoded = [d[codes[first]].tolist() for codes, d in encoded]
        rows = list(zip(*decoded))
        out = cls._from_distinct_rows(attrs, rows, name)
        # dropping duplicate rows cannot drop a dictionary value (its first
        # row survives), so the encoding is exact — keep it instead of
        # re-running encode_rows on the first columnar() call.
        out._columnar = ColumnarRelation(
            attrs,
            {a: codes[first] for a, (codes, _) in zip(attrs, encoded)},
            {a: d for a, (_, d) in zip(attrs, encoded)},
            len(first),
        )
        return out

    @classmethod
    def _from_distinct_rows(
        cls, attributes: tuple[str, ...], rows: list[tuple], name: str
    ) -> "Relation":
        """Internal: wrap rows already known distinct and well-formed."""
        if len(set(attributes)) != len(attributes):
            raise ValueError(f"duplicate attribute names in {attributes!r}")
        out = cls.__new__(cls)
        out._attributes = attributes
        out._rows = tuple(rows)
        out._row_set = set(rows)
        out._indexes = {}
        out._name = name
        out._columnar = None
        return out

    @classmethod
    def _from_columnar(
        cls, columnar: ColumnarRelation, name: str = ""
    ) -> "Relation":
        """Internal: wrap an encoded table whose rows are known distinct.

        Tuple materialization (``_rows``/``_row_set``) is deferred until
        something row-oriented — iteration, membership, equality — asks
        for it; the statistics paths and joins never do.
        """
        attributes = columnar.attributes
        if len(set(attributes)) != len(attributes):
            raise ValueError(f"duplicate attribute names in {attributes!r}")
        out = cls.__new__(cls)
        out._attributes = attributes
        out._rows = None
        out._row_set = None
        out._indexes = {}
        out._name = name
        out._columnar = columnar
        return out

    def _materialized_rows(self) -> tuple:
        """Row tuples, decoding the columnar twin on first use."""
        if self._rows is None:
            self._rows = tuple(self._columnar.decode_rows(self._attributes))
        return self._rows

    def _materialized_set(self) -> set:
        if self._row_set is None:
            self._row_set = set(self._materialized_rows())
        return self._row_set

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Return a copy with attributes renamed via ``mapping``.

        Attributes not present in ``mapping`` keep their names.
        """
        new_attrs = tuple(mapping.get(a, a) for a in self._attributes)
        out = Relation.__new__(Relation)
        out._attributes = new_attrs
        if len(set(new_attrs)) != len(new_attrs):
            raise ValueError(f"rename produced duplicates: {new_attrs!r}")
        out._rows = self._rows
        out._row_set = self._row_set
        out._indexes = {}
        out._name = self._name
        cached = self._columnar
        if isinstance(cached, ColumnarRelation):
            out._columnar = cached.renamed(mapping)
        else:
            out._columnar = cached
        return out

    def with_name(self, name: str) -> "Relation":
        """Return the same relation carrying a different display name."""
        out = Relation.__new__(Relation)
        out._attributes = self._attributes
        out._rows = self._rows
        out._row_set = self._row_set
        out._indexes = self._indexes
        out._name = name
        out._columnar = self._columnar
        return out

    # ------------------------------------------------------------------
    # relational algebra
    # ------------------------------------------------------------------
    def positions(self, attrs: Sequence[str]) -> tuple[int, ...]:
        """Column positions of ``attrs`` (raises KeyError if missing)."""
        pos = []
        for a in attrs:
            try:
                pos.append(self._attributes.index(a))
            except ValueError:
                raise KeyError(
                    f"attribute {a!r} not in {self._attributes!r}"
                ) from None
        return tuple(pos)

    def project(self, attrs: Sequence[str]) -> "Relation":
        """Project onto ``attrs`` (deduplicating)."""
        pos = self.positions(attrs)
        col = self.columnar()
        if col is not None:
            rows, twin = col.project_with_rows(tuple(attrs))
            out = Relation._from_distinct_rows(tuple(attrs), rows, self._name)
            out._columnar = twin
            return out
        return self._project_tuples(attrs, pos)

    def _project_tuples(
        self, attrs: Sequence[str], pos: tuple[int, ...]
    ) -> "Relation":
        """Tuple-oracle projection (fallback path)."""
        rows = {
            tuple(row[i] for i in pos) for row in self._materialized_rows()
        }
        return Relation(tuple(attrs), rows, name=self._name)

    def select(self, predicate: Callable[[tuple], bool]) -> "Relation":
        """Keep rows on which ``predicate`` returns true."""
        return Relation(
            self._attributes,
            (row for row in self._materialized_rows() if predicate(row)),
            name=self._name,
        )

    def select_eq(self, attr: str, value) -> "Relation":
        """Keep rows where column ``attr`` equals ``value`` (uses index)."""
        index = self.index_on((attr,))
        return Relation(
            self._attributes, index.get((value,), ()), name=self._name
        )

    def restrict_rows(self, rows: Iterable[tuple]) -> "Relation":
        """Build a relation over the same attributes from given rows."""
        return Relation(self._attributes, rows, name=self._name)

    def _take_rows(self, indices) -> "Relation":
        """Row subset by positional indices (rows stay distinct).

        With a columnar twin this is one gather per column and the result
        stays lazily encoded; otherwise the materialized tuples are
        indexed directly.  Used by the partitioning and semijoin kernels,
        which select rows by position rather than by value.
        """
        col = self.columnar()
        if col is not None:
            return Relation._from_columnar(col.take(indices), name=self._name)
        rows = self._materialized_rows()
        return Relation._from_distinct_rows(
            self._attributes, [rows[i] for i in indices], self._name
        )

    # ------------------------------------------------------------------
    # columnar backend
    # ------------------------------------------------------------------
    def columnar(self) -> ColumnarRelation | None:
        """The cached dictionary-encoded twin, or ``None`` (fallback).

        Encoding is attempted once per relation and the outcome — the
        :class:`ColumnarRelation` or the fact that the values are not
        int64-encodable — is cached; relations are immutable so the cache
        never invalidates.
        """
        cached = self._columnar
        if cached is None:
            cached = encode_rows(self._attributes, self._rows)
            self._columnar = cached if cached is not None else False
        return cached or None

    # ------------------------------------------------------------------
    # indexes and statistics helpers
    # ------------------------------------------------------------------
    def index_on(self, attrs: Sequence[str]) -> Mapping[tuple, list]:
        """Hash index: key tuple over ``attrs`` -> list of full rows.

        The index is cached on the relation; relations are immutable so the
        cache never invalidates.
        """
        key = tuple(attrs)
        cached = self._indexes.get(key)
        if cached is not None:
            return cached
        pos = self.positions(key)
        index: dict[tuple, list] = defaultdict(list)
        for row in self._materialized_rows():
            index[tuple(row[i] for i in pos)].append(row)
        index = dict(index)
        self._indexes[key] = index
        return index

    def group_sizes(
        self, group_attrs: Sequence[str], value_attrs: Sequence[str]
    ) -> dict[tuple, int]:
        """Distinct ``value_attrs`` count per ``group_attrs`` value.

        This is the raw material of a degree sequence: for the conditional
        (V | U) the degree of a U-value u is the number of distinct
        V-values co-occurring with u in the projection onto U ∪ V.

        An empty ``group_attrs`` yields a single group keyed by ``()``.
        """
        gpos = self.positions(group_attrs)
        vpos = self.positions(value_attrs)
        col = self.columnar()
        if col is not None:
            return col.group_sizes(tuple(group_attrs), tuple(value_attrs))
        return self._group_sizes_tuples(gpos, vpos)

    def _group_sizes_tuples(
        self, gpos: tuple[int, ...], vpos: tuple[int, ...]
    ) -> dict[tuple, int]:
        """Tuple-oracle grouping (fallback path)."""
        groups: dict[tuple, set] = defaultdict(set)
        for row in self._materialized_rows():
            groups[tuple(row[i] for i in gpos)].add(
                tuple(row[i] for i in vpos)
            )
        return {key: len(values) for key, values in groups.items()}

    def group_size_counts(
        self, group_attrs: Sequence[str], value_attrs: Sequence[str]
    ) -> "np.ndarray":
        """The multiset of :meth:`group_sizes` values as an int64 array.

        This is all a degree sequence needs; the columnar path never
        decodes group keys.  Order is unspecified (callers sort).
        """
        gpos = self.positions(group_attrs)
        vpos = self.positions(value_attrs)
        col = self.columnar()
        if col is not None:
            return col.group_size_counts(
                tuple(group_attrs), tuple(value_attrs)
            )
        sizes = self._group_sizes_tuples(gpos, vpos)
        return np.fromiter(sizes.values(), dtype=np.int64, count=len(sizes))

    def prefix_group_size_counts(
        self,
        order_attrs: Sequence[str],
        splits: Sequence[tuple[int, int]],
    ) -> list["np.ndarray"]:
        """Group-size multisets for many conditionals sharing a sort order.

        Split ``(u_len, uv_len)`` is the conditional grouped by
        ``order_attrs[:u_len]`` counting distinct ``order_attrs[u_len:uv_len]``
        values.  With a columnar twin all splits are served from a single
        lexsort (:func:`repro.relational.columnar.prefix_run_counts`);
        otherwise each split falls back to :meth:`group_size_counts`.
        """
        self.positions(order_attrs)  # validate attribute names
        col = self.columnar()
        if col is not None:
            return col.prefix_group_size_counts(tuple(order_attrs), splits)
        return [
            self.group_size_counts(
                tuple(order_attrs[:u_len]),
                tuple(order_attrs[u_len:uv_len]),
            )
            for u_len, uv_len in splits
        ]

    def distinct_count(self, attrs: Sequence[str]) -> int:
        """Number of distinct values in the projection onto ``attrs``."""
        pos = self.positions(attrs)
        col = self.columnar()
        if col is not None:
            return col.distinct_count(tuple(attrs))
        return len(
            {tuple(row[i] for i in pos) for row in self._materialized_rows()}
        )

    def active_domain(self) -> set:
        """All values appearing in any column."""
        col = self.columnar()
        if col is not None:
            return col.active_domain()
        domain = set()
        for row in self._materialized_rows():
            domain.update(row)
        return domain

    def column(self, attr: str) -> list:
        """All values (with repetitions removed row-wise) of one column."""
        (pos,) = self.positions((attr,))
        return [row[pos] for row in self._materialized_rows()]
