"""Database instances: named collections of relations.

A :class:`Database` maps relation names to :class:`~repro.relational.relation.Relation`
instances.  It is the object the paper calls a *database instance* D; queries
are evaluated against it and statistics (Σ, B) are checked against it via
:meth:`Database.satisfies`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from .relation import Relation

__all__ = ["Database"]


class Database:
    """An immutable mapping from relation names to relations.

    Examples
    --------
    >>> r = Relation(("x", "y"), [(1, 2)])
    >>> db = Database({"R": r})
    >>> db["R"].arity
    2
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: Mapping[str, Relation]) -> None:
        self._relations = {
            name: rel.with_name(name) if rel.name != name else rel
            for name, rel in relations.items()
        }

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(
                f"relation {name!r} not in database "
                f"(have: {sorted(self._relations)})"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> list[str]:
        """Relation names, sorted."""
        return sorted(self._relations)

    def relations(self) -> Iterable[Relation]:
        """All relations."""
        return self._relations.values()

    def total_tuples(self) -> int:
        """Total tuple count across all relations."""
        return sum(len(r) for r in self._relations.values())

    def active_domain_size(self) -> int:
        """Size of the union of all columns' value sets (the paper's N).

        When every relation has a columnar twin the union is one
        ``np.unique`` over the concatenated per-column value arrays;
        any non-encodable relation drops the whole computation to the
        set-union fallback (the value spaces must unify exactly).
        """
        twins = [rel.columnar() for rel in self._relations.values()]
        if twins and all(t is not None for t in twins):
            arrays = [
                arr for twin in twins for arr in twin.present_value_arrays()
            ]
            if not arrays:
                return 0
            return int(np.unique(np.concatenate(arrays)).size)
        domain = set()
        for rel in self._relations.values():
            domain.update(rel.active_domain())
        return len(domain)

    def with_relation(self, name: str, relation: Relation) -> "Database":
        """A new database with one relation added or replaced."""
        updated = dict(self._relations)
        updated[name] = relation
        return Database(updated)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{len(rel)}" for name, rel in sorted(self._relations.items())
        )
        return f"<Database {parts}>"

    # ------------------------------------------------------------------
    def satisfies(self, statistics, tolerance_log2: float = 1e-9) -> bool:
        """Check ``D |= (Σ, B)``: every concrete statistic holds on D.

        ``statistics`` is an iterable of
        :class:`repro.core.conditionals.ConcreteStatistic`.  Import is done
        lazily to keep the relational substrate free of core dependencies.
        """
        for stat in statistics:
            if stat.measured_log2(self) > stat.log2_bound + tolerance_log2:
                return False
        return True
