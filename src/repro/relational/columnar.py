"""Dictionary-encoded columnar backend for relations.

The paper's standing assumption is that ℓp-norm statistics are cheap to
precompute at scale; with rows stored as Python tuples the statistics
kernels (``group_sizes``, projections, distinct counts, joins) run per-row
Python loops and sit orders of magnitude off the hardware ceiling.  This
module provides the vectorized substrate: every integer-valued relation
lazily materializes one ``int64`` NumPy *code* array per column together
with a sorted *dictionary* (the distinct values), i.e. a dictionary
encoding ``value = dictionary[code]``.

Key design points:

* Dictionaries are sorted, so codes are order-preserving within a column
  and two columns can be aligned with :func:`remap_codes` (a vectorized
  ``searchsorted``) — the primitive behind the columnar hash join.
* Multi-column keys are flattened to a single ``int64`` per row by
  :func:`composite_codes` (mixed-radix over dictionary cardinalities,
  re-factorized through ``np.unique`` whenever the radix product would
  approach 2^63).
* Grouping/deduplication is ``np.unique`` on composite keys; distinct
  counts per group come from ``np.bincount`` — no Python-level loop ever
  touches a row.

Relations holding arbitrary hashable values (e.g. the tuple-tagged domains
of :mod:`repro.tightness.normal_relations`) are *not* encodable:
:func:`encode_rows` returns ``None`` and callers fall back to the original
tuple-at-a-time paths, which remain the correctness oracle for the
property-based equivalence suite.
"""

from __future__ import annotations

import operator
import os
from collections import Counter
from typing import Iterator, Sequence

import numpy as np

from . import kernels

__all__ = [
    "ColumnarRelation",
    "CodeTrie",
    "ChunkedColumns",
    "OutputSink",
    "MaterializeSink",
    "CountSink",
    "GroupCountSink",
    "SpillSink",
    "align_composite_keys",
    "dict_mapping",
    "encode_column",
    "encode_rows",
    "remap_codes",
    "composite_codes",
    "mixed_radix_keys",
    "prefix_run_counts",
]

#: Radix products stay below this to keep composite keys overflow-free.
_MAX_RADIX = 1 << 62

_EMPTY_CODES = np.zeros(0, dtype=np.int64)


def encode_column(values: Sequence) -> tuple[np.ndarray, np.ndarray] | None:
    """Dictionary-encode one column of plain integers.

    Returns ``(codes, dictionary)`` with ``dictionary`` sorted ascending and
    ``dictionary[codes]`` reproducing the input, or ``None`` when the values
    are not all int64-representable integers (floats, strings, tuples,
    booleans, out-of-range ints — the fallback path).
    """
    try:
        arr = np.asarray(values)
    except (ValueError, TypeError, OverflowError):
        return None
    if arr.ndim != 1 or arr.dtype.kind not in "iu":
        return None
    if arr.dtype.kind == "u" and arr.dtype.itemsize >= 8:
        if arr.size and arr.max() > np.iinfo(np.int64).max:
            return None
    arr = arr.astype(np.int64, copy=False)
    dictionary, codes = np.unique(arr, return_inverse=True)
    return codes.astype(np.int64, copy=False), dictionary


def encode_rows(
    attributes: Sequence[str], rows: Sequence[tuple]
) -> "ColumnarRelation | None":
    """Encode row-major tuples into a :class:`ColumnarRelation`.

    Returns ``None`` if any column fails :func:`encode_column`.
    """
    attrs = tuple(attributes)
    n = len(rows)
    if n == 0:
        return ColumnarRelation(
            attrs,
            {a: _EMPTY_CODES for a in attrs},
            {a: _EMPTY_CODES for a in attrs},
            0,
        )
    codes: dict[str, np.ndarray] = {}
    dicts: dict[str, np.ndarray] = {}
    for position, attr in enumerate(attrs):
        encoded = encode_column([row[position] for row in rows])
        if encoded is None:
            return None
        codes[attr], dicts[attr] = encoded
    return ColumnarRelation(attrs, codes, dicts, n)


def dict_mapping(
    source_dict: np.ndarray, target_dict: np.ndarray
) -> np.ndarray:
    """Code-to-code translation table between two sorted dictionaries.

    ``mapping[source_code]`` is the target code of the same value, or −1
    when the value is absent from ``target_dict``.  One ``searchsorted``
    over the (small) dictionaries; hoistable out of per-slice loops so a
    blocked traversal pays the table once per level instead of once per
    slice, and the table the fused membership kernel
    (:func:`repro.relational.kernels.find_children`) consumes directly.
    """
    if len(target_dict) == 0:
        return np.full(len(source_dict), -1, dtype=np.int64)
    pos = np.searchsorted(target_dict, source_dict)
    pos_clipped = np.minimum(pos, len(target_dict) - 1)
    valid = target_dict[pos_clipped] == source_dict
    return np.where(valid, pos_clipped, np.int64(-1))


def remap_codes(
    codes: np.ndarray, source_dict: np.ndarray, target_dict: np.ndarray
) -> np.ndarray:
    """Re-express codes of ``source_dict`` in ``target_dict``'s code space.

    Values absent from ``target_dict`` map to −1.  Vectorized: one
    ``searchsorted`` over the (small) dictionaries plus one gather over the
    rows — the primitive that aligns join columns encoded independently.
    """
    if len(target_dict) == 0:
        return np.full(len(codes), -1, dtype=np.int64)
    return dict_mapping(source_dict, target_dict)[codes]


def composite_codes(
    code_arrays: Sequence[np.ndarray],
    cardinalities: Sequence[int],
    n_rows: int,
) -> tuple[np.ndarray, int]:
    """Flatten multi-column codes to one comparable ``int64`` key per row.

    Returns ``(keys, radix)`` with every key in ``[0, radix)``; equal rows
    get equal keys.  Mixed-radix accumulation, re-factorized via
    ``np.unique`` whenever the radix product would overflow — after
    re-factorization the running radix is at most ``n_rows``, so any
    realistic column count is safe.
    """
    if not code_arrays:
        return np.zeros(n_rows, dtype=np.int64), 1
    keys = code_arrays[0]
    radix = max(1, int(cardinalities[0]))
    for codes, card in zip(code_arrays[1:], cardinalities[1:]):
        card = max(1, int(card))
        if radix * card >= _MAX_RADIX:
            uniq, keys = np.unique(keys, return_inverse=True)
            keys = keys.astype(np.int64, copy=False)
            radix = max(1, len(uniq))
            if radix * card >= _MAX_RADIX:  # pragma: no cover - >2^31 rows
                raise OverflowError("composite key radix exceeds int64")
        keys = keys * card + codes
        radix *= card
    return keys, radix


def mixed_radix_keys(
    code_arrays: Sequence[np.ndarray], cardinalities: Sequence[int]
) -> np.ndarray | None:
    """Composite ``int64`` key per row, *without* re-factorization.

    Unlike :func:`composite_codes`, the key space is a pure mixed-radix
    number over ``cardinalities``, so two arrays built with the same
    cardinalities are directly comparable — the property the semijoin and
    counting kernels need to match keys *across* relations.  Returns
    ``None`` when the radix product would overflow ``int64`` (callers fall
    back to the tuple path).

    Dispatches through :func:`repro.relational.kernels.composite_keys`:
    under the Numba kernel mode, keys whose dictionaries fit the packing
    budget are *bit-packed* (shift/or into one ``int64``) instead of
    arithmetically accumulated.  Key order and equality — everything the
    sort/membership/fold consumers observe — are identical either way;
    both sides of any cross-relation match are built with the same
    ``cardinalities``, hence the same scheme.
    """
    return kernels.composite_keys(code_arrays, cardinalities)


def prefix_run_counts(
    columns: Sequence[np.ndarray],
    splits: Sequence[tuple[int, int]],
) -> list[np.ndarray]:
    """Group-size multisets for many conditionals from ONE lexsort.

    ``columns`` are code arrays in a shared sort order; each split
    ``(u_len, uv_len)`` asks for the conditional whose grouping columns are
    ``columns[:u_len]`` and whose counted columns are
    ``columns[u_len:uv_len]`` — i.e. the number of distinct length-``uv_len``
    prefixes under each distinct length-``u_len`` prefix.  All splits are
    served from a single ``np.lexsort`` of the longest prefix: level ``d``'s
    run boundaries (where the length-(d+1) prefix changes) are one
    cumulative ``!=`` pass per column, and every split reduces to run-length
    arithmetic over two boundary masks.

    The returned arrays are the same multisets
    :meth:`ColumnarRelation.group_size_counts` produces per conditional
    (order unspecified — degree sequences sort anyway).
    """
    if not splits:
        return []
    depth = max(uv for _, uv in splits)
    if depth > len(columns):
        raise ValueError(
            f"split depth {depth} exceeds {len(columns)} sort columns"
        )
    n = len(columns[0]) if columns else 0
    if n == 0:
        return [np.zeros(0, dtype=np.int64) for _ in splits]
    order = np.lexsort(tuple(reversed(list(columns[:depth]))))
    # new_at[d][i] <=> row i starts a new distinct length-(d+1) prefix
    new_at: list[np.ndarray] = []
    prev: np.ndarray | None = None
    for column in columns[:depth]:
        sorted_col = column[order]
        new = np.empty(n, dtype=bool)
        new[0] = True
        np.not_equal(sorted_col[1:], sorted_col[:-1], out=new[1:])
        if prev is not None:
            new |= prev
        new_at.append(new)
        prev = new
    out: list[np.ndarray] = []
    for u_len, uv_len in splits:
        if not (0 <= u_len <= uv_len <= depth):
            raise ValueError(f"bad split {(u_len, uv_len)} for depth {depth}")
        if uv_len == 0:
            # (∅ | ∅): the single empty group holds one (empty) value.
            out.append(np.ones(1, dtype=np.int64))
        elif u_len == 0:
            # one group (the empty U-tuple) counting all distinct UV rows
            out.append(
                np.array([int(new_at[uv_len - 1].sum())], dtype=np.int64)
            )
        elif u_len == uv_len:
            # V = ∅: every distinct U-value has degree 1 (the empty tuple)
            out.append(
                np.ones(int(new_at[u_len - 1].sum()), dtype=np.int64)
            )
        else:
            uv_rows = np.nonzero(new_at[uv_len - 1])[0]
            group_start = new_at[u_len - 1][uv_rows]
            starts = np.nonzero(group_start)[0]
            counts = np.diff(np.append(starts, len(uv_rows)))
            out.append(counts.astype(np.int64, copy=False))
    return out


def align_composite_keys(
    code_arrays: Sequence[np.ndarray],
    source_dicts: Sequence[np.ndarray],
    target_dicts: Sequence[np.ndarray],
    cards: Sequence[int],
) -> tuple[np.ndarray, np.ndarray | None] | None:
    """Remap per-column codes into a target code space and flatten to keys.

    The shared kernel behind cross-relation key matching (semijoins, the
    counting fold): each column's codes are re-expressed in the matching
    ``target_dicts`` entry via :func:`remap_codes`, rows holding a value
    absent from a target dictionary are dropped (they cannot match any
    target row), and the survivors flatten to :func:`mixed_radix_keys`
    over ``cards``.

    Returns ``(keys, kept_row_indices)`` — ``kept_row_indices`` is
    ``None`` when no row was dropped — or ``None`` when the radix product
    would overflow ``int64`` (callers fall back to the tuple path).
    """
    arrays = []
    valid = None
    for codes, s_dict, t_dict in zip(code_arrays, source_dicts, target_dicts):
        if s_dict is not t_dict:
            codes = remap_codes(codes, s_dict, t_dict)
            mask = codes >= 0
            valid = mask if valid is None else valid & mask
        arrays.append(codes)
    kept = None
    if valid is not None and not valid.all():
        kept = np.nonzero(valid)[0]
        arrays = [a[kept] for a in arrays]
    keys = mixed_radix_keys(arrays, cards)
    if keys is None:  # pragma: no cover - astronomically wide keys
        return None
    return keys, kept


class ChunkedColumns:
    """Streaming accumulator for column-chunked results.

    Producers that emit output in chunks (the blocked WCOJ frontier, the
    Theorem 2.6 output union) append one equal-length array per column;
    the chunks are held as-is and concatenated exactly once at
    :meth:`finalize` — appending chunk ``k`` costs O(1), not O(rows so
    far), so accumulating ``K`` chunks copies each row once instead of
    the O(K) times repeated ``np.concatenate`` calls would.
    """

    __slots__ = ("_chunks", "_n_rows")

    def __init__(self, n_columns: int) -> None:
        self._chunks: list[list[np.ndarray]] = [[] for _ in range(n_columns)]
        self._n_rows = 0

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_chunks(self) -> int:
        return len(self._chunks[0]) if self._chunks else 0

    def append(self, columns: Sequence[np.ndarray]) -> None:
        """Add one chunk (one array per column, equal lengths)."""
        if len(columns) != len(self._chunks):
            raise ValueError(
                f"{len(columns)} columns for a {len(self._chunks)}-column "
                "accumulator"
            )
        for store, column in zip(self._chunks, columns):
            store.append(column)
        if self._chunks:
            self._n_rows += len(columns[0])

    def iter_chunks(self) -> Iterator[list[np.ndarray]]:
        """The appended chunks, in order, as one array-list per chunk.

        Lets a consumer drain the accumulator chunk-at-a-time without
        the :meth:`finalize` concatenation — the mid-run
        materialize→spill escalation replays these as the first disk
        segments, preserving emission order exactly.
        """
        for k in range(self.n_chunks):
            yield [store[k] for store in self._chunks]

    def finalize(self) -> list[np.ndarray]:
        """One array per column: a single concatenation pass per column."""
        out = []
        for store in self._chunks:
            if not store:
                out.append(_EMPTY_CODES)
            elif len(store) == 1:
                out.append(store[0])
            else:
                out.append(np.concatenate(store))
        return out


def _columns_from_rows(rows: Sequence[tuple], arity: int) -> list[np.ndarray]:
    """Row-major tuples → one array per column, without value corruption.

    Plain-int columns become ``int64`` arrays (matching the columnar
    engine's decoded emissions bit for bit); anything else is kept as an
    ``object`` array — ``np.asarray`` would silently stringify mixed
    columns like ``[1, "a"]``, which must round-trip unchanged through
    aggregating and spilling sinks.
    """
    columns: list[np.ndarray] = []
    for i in range(arity):
        values = [row[i] for row in rows]
        if all(type(v) is int for v in values):
            try:
                columns.append(np.array(values, dtype=np.int64))
                continue
            except OverflowError:
                pass
        column = np.empty(len(values), dtype=object)
        column[:] = values
        columns.append(column)
    return columns


class OutputSink:
    """Streaming consumer of a join's finished output rows.

    The evaluators (:func:`repro.evaluation.wcoj.generic_join` and the
    Theorem 2.6 pipeline) emit output in batches instead of holding
    |Q(D)| rows in RAM; a sink decides what happens to each batch —
    materialize, count, aggregate, or spill to disk.  Lifecycle:

    1. ``open(variables)`` — once per output schema.  Re-opening with the
       *same* variables is a no-op, so one sink can absorb every part of
       a partitioned evaluation (part outputs are disjoint, see
       :func:`repro.evaluation.lp_join.evaluate_with_partitioning`).
    2. ``append(columns)`` / ``append_rows(rows)`` — zero or more times,
       in output order.  ``columns`` is one equal-length array per
       variable, in ``variables`` order (the columnar engine emits
       decoded ``int64`` value columns); ``append_rows`` is the
       row-major convenience the tuple fallback uses.
    3. Results come from sink-specific accessors (``total``,
       ``counts()``, ``relation()``, ``iter_chunks()``); nothing is
       buffered past what the accessor semantics require.

    Subclasses implement :meth:`_consume_columns` (and may override
    :meth:`_consume_rows` when a columnar detour would lose fidelity).
    A sink that only consumes batch *sizes* sets :attr:`needs_values`
    to ``False``; producers may then call :meth:`append_size` instead
    of decoding value columns the sink would discard.
    """

    #: Whether this sink reads row values (``False`` ⇒ sizes suffice).
    needs_values = True

    def __init__(self) -> None:
        self._variables: tuple[str, ...] | None = None
        self._n_rows = 0

    @property
    def variables(self) -> tuple[str, ...]:
        if self._variables is None:
            raise RuntimeError("sink has not been opened")
        return self._variables

    @property
    def n_rows(self) -> int:
        """Rows consumed so far (an exact Python int, never an int64)."""
        return self._n_rows

    def open(self, variables: Sequence[str]) -> None:
        """Fix the output schema; idempotent for an identical schema."""
        variables = tuple(variables)
        if self._variables is None:
            self._variables = variables
            self._opened(variables)
        elif self._variables != variables:
            raise ValueError(
                f"sink already open for {self._variables}, got {variables}"
            )

    def _opened(self, variables: tuple[str, ...]) -> None:
        """Subclass hook run once on the first :meth:`open`."""

    def append(self, columns: Sequence[np.ndarray]) -> None:
        """Consume one batch of value columns (``variables`` order)."""
        if self._variables is None:
            raise RuntimeError("sink has not been opened")
        if len(columns) != len(self._variables):
            raise ValueError(
                f"{len(columns)} columns for {len(self._variables)} variables"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ValueError(
                f"ragged batch: column lengths {sorted(lengths)}"
            )
        n = lengths.pop() if lengths else 0
        if n:
            self._consume_columns(list(columns), n)
            self._n_rows += n

    def append_size(self, n: int) -> None:
        """Count ``n`` finished rows without their values.

        Only sinks with ``needs_values = False`` accept this — it is the
        producers' fast path for counting-style sinks, skipping the
        decode of value columns the sink would discard.
        """
        if self.needs_values:
            raise TypeError(
                f"{type(self).__name__} consumes row values; use append()"
            )
        if self._variables is None:
            raise RuntimeError("sink has not been opened")
        if n < 0:
            raise ValueError(f"negative batch size {n}")
        self._n_rows += int(n)

    def append_rows(self, rows: Sequence[tuple]) -> None:
        """Consume one batch of row tuples (``variables`` order)."""
        if self._variables is None:
            raise RuntimeError("sink has not been opened")
        rows = list(rows)
        if rows:
            self._consume_rows(rows, len(rows))
            self._n_rows += len(rows)

    def _consume_columns(self, columns: list[np.ndarray], n: int) -> None:
        raise NotImplementedError

    def _consume_rows(self, rows: list[tuple], n: int) -> None:
        self._consume_columns(
            _columns_from_rows(rows, len(self._variables)), n
        )


class MaterializeSink(OutputSink):
    """Today's behaviour as a sink: accumulate, then build a Relation.

    Wraps a :class:`ChunkedColumns` accumulator (append O(1) per chunk,
    one concatenation pass per column); :meth:`relation` materializes the
    collected rows in emission order.  This is the explicit spelling of
    the default path — evaluators short-circuit ``sink=None`` to an
    internal code-space accumulator, and this sink exists so the
    streamed interface itself is testable against that fast path.
    """

    def __init__(self) -> None:
        super().__init__()
        self._acc: ChunkedColumns | None = None

    def _opened(self, variables: tuple[str, ...]) -> None:
        self._acc = ChunkedColumns(len(variables))

    def _consume_columns(self, columns: list[np.ndarray], n: int) -> None:
        self._acc.append(columns)

    def relation(self, name: str = ""):
        """The collected output as a Relation (rows in emission order)."""
        from .relation import Relation

        variables = self.variables
        if not variables:
            return Relation((), [()] if self._n_rows else [], name=name)
        return Relation.from_columns(
            variables, self._acc.finalize(), name=name
        )


class CountSink(OutputSink):
    """|Q(D)| without materializing a single output row.

    Batch sizes fold into an exact Python-int total — the same big-int
    promotion discipline as :func:`repro.evaluation.acyclic_count`:
    nothing is ever accumulated in a wrapping ``int64``, so counts past
    2^63 (e.g. per-part counts folded in via :meth:`add`) stay exact.
    ``needs_values`` is ``False``: the evaluators skip the value-column
    decode entirely and report batch sizes via :meth:`append_size`.
    """

    needs_values = False

    def _consume_columns(self, columns: list[np.ndarray], n: int) -> None:
        pass  # the base class already counted the batch

    def _consume_rows(self, rows: list[tuple], n: int) -> None:
        pass

    def add(self, count: int) -> None:
        """Fold in an externally computed (possibly huge) exact count."""
        count = operator.index(count)
        if count < 0:
            raise ValueError(f"negative count {count}")
        self._n_rows += count

    @property
    def total(self) -> int:
        """The exact output count, as a Python int."""
        return self._n_rows


class GroupCountSink(OutputSink):
    """Output counts per projection of the binding.

    ``group_vars`` selects the projection; :meth:`counts` returns a
    ``Counter`` mapping each projected tuple to the number of output
    rows it appears in — identical to ``Counter(projected rows)`` of the
    materialized output, with peak memory O(#groups) instead of
    O(|Q(D)|).
    """

    def __init__(self, group_vars: Sequence[str]) -> None:
        super().__init__()
        self._group_vars = tuple(group_vars)
        self._positions: tuple[int, ...] | None = None
        self._counter: Counter = Counter()

    def _opened(self, variables: tuple[str, ...]) -> None:
        missing = [v for v in self._group_vars if v not in variables]
        if missing:
            raise ValueError(
                f"group variables {missing} not in output {variables}"
            )
        self._positions = tuple(
            variables.index(v) for v in self._group_vars
        )

    def _consume_columns(self, columns: list[np.ndarray], n: int) -> None:
        if not self._positions:
            self._counter[()] += n
            return
        projected = [columns[p].tolist() for p in self._positions]
        self._counter.update(zip(*projected))

    def _consume_rows(self, rows: list[tuple], n: int) -> None:
        if not self._positions:
            self._counter[()] += n
            return
        positions = self._positions
        self._counter.update(
            tuple(row[p] for p in positions) for row in rows
        )

    def counts(self) -> Counter:
        """Projected-tuple → multiplicity (a copy; keys are plain tuples)."""
        return Counter(self._counter)


class SpillSink(OutputSink):
    """Stream the output to disk; hold at most one chunk in RAM.

    Batches buffer in a :class:`ChunkedColumns` until ``chunk_rows`` rows
    are pending, then flush as one atomic ``.npz`` segment through a
    :class:`~repro.relational.chunkstore.SegmentStore` — peak live
    memory beyond the evaluator's O(block × depth) is O(chunk).
    :meth:`iter_chunks`/:meth:`iter_rows` re-iterate the spilled output
    in emission order with one chunk live at a time, so the round trip
    is bit-identical (rows, order, and dtype) to a materialized run.

    Use as a context manager: closing removes every segment the sink
    wrote (and its directory, if then empty) on success *and* on
    exception.  Concurrent runs must be given distinct directories.
    """

    def __init__(
        self, directory: str | os.PathLike, chunk_rows: int = 1 << 16
    ) -> None:
        super().__init__()
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be ≥ 1, got {chunk_rows}")
        self._directory = directory
        self._chunk_rows = int(chunk_rows)
        self._store = None
        self._buffer: ChunkedColumns | None = None
        self._buffered = 0
        self._closed = False

    def _opened(self, variables: tuple[str, ...]) -> None:
        from .chunkstore import SegmentStore

        if not variables:
            raise ValueError(
                "a zero-variable output has nothing to spill; use CountSink"
            )
        self._store = SegmentStore(self._directory, len(variables))
        self._buffer = ChunkedColumns(len(variables))

    @property
    def store(self):
        """The backing :class:`SegmentStore` (``None`` before open)."""
        return self._store

    def _consume_columns(self, columns: list[np.ndarray], n: int) -> None:
        if self._closed:
            raise RuntimeError("sink is closed")
        self._buffer.append(columns)
        self._buffered += n
        if self._buffered >= self._chunk_rows:
            self.flush()

    def flush(self) -> None:
        """Write any buffered rows as one segment."""
        if self._closed:
            # the segments are gone: answering from the empty store
            # would silently contradict n_rows
            raise RuntimeError("sink is closed; its segments were removed")
        if self._buffered:
            self._store.write(self._buffer.finalize(), n_rows=self._buffered)
            self._buffer = ChunkedColumns(len(self.variables))
            self._buffered = 0

    def iter_chunks(self) -> Iterator[list[np.ndarray]]:
        """Spilled column chunks, in emission order, one live at a time."""
        self.flush()
        yield from self._store.iter_chunks()

    def iter_rows(self) -> Iterator[tuple]:
        """Spilled rows as tuples, in emission order."""
        for chunk in self.iter_chunks():
            yield from zip(*[column.tolist() for column in chunk])

    def rows(self) -> list[tuple]:
        """Materialize every spilled row (test/report convenience)."""
        return list(self.iter_rows())

    def close(self) -> None:
        """Delete this sink's segments (idempotent)."""
        if self._store is not None:
            self._store.delete()
        self._buffer = None
        self._buffered = 0
        self._closed = True

    def __enter__(self) -> "SpillSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class CodeTrie:
    """A sorted-codes trie over per-variable code columns.

    The columnar replacement for the nested-dict tries of Generic Join:
    rows are sorted lexicographically in the given column order, and trie
    level ``d`` is the *sorted* array of composite node keys

        ``parent_node_id * card_d + code_d``

    with one entry per distinct length-(d+1) prefix.  A node's children
    occupy the contiguous ``searchsorted``-delimited range
    ``[searchsorted(keys, node·card), searchsorted(keys, (node+1)·card))``
    and a child's *position in the level array* is its node id at the next
    level — so descending, enumerating children, and membership tests are
    all ``O(log n)`` gathers, vectorized over whole batches of bindings.

    ``columns`` must already live in a code space shared by every trie
    that will be intersected against this one (one global dictionary per
    variable); ``cards`` are those dictionaries' sizes.  Raises
    ``OverflowError`` if a level's key space would exceed ``int64``.
    """

    __slots__ = ("n_rows", "n_levels", "cards", "level_keys", "_starts")

    def __init__(
        self, columns: Sequence[np.ndarray], cards: Sequence[int]
    ) -> None:
        self.n_levels = len(columns)
        self.n_rows = len(columns[0]) if self.n_levels else 0
        self.cards = [max(1, int(c)) for c in cards]
        self._starts: list[np.ndarray | None] = [None] * self.n_levels
        if self.n_rows == 0:
            self.level_keys = [_EMPTY_CODES] * self.n_levels
            return
        order = np.lexsort(tuple(reversed(list(columns))))
        node = np.zeros(self.n_rows, dtype=np.int64)
        n_nodes = 1
        level_keys: list[np.ndarray] = []
        new = np.empty(self.n_rows, dtype=bool)
        new[0] = True
        for column, card in zip(columns, self.cards):
            if n_nodes * card >= _MAX_RADIX:  # pragma: no cover - huge
                raise OverflowError("trie level key radix exceeds int64")
            # rows are lexsorted, so `pair` is non-decreasing: run starts
            # give the distinct prefixes *and* the next level's node ids.
            pair = node * card + column[order]
            np.not_equal(pair[1:], pair[:-1], out=new[1:])
            level_keys.append(pair[new])
            node = np.cumsum(new) - 1
            n_nodes = len(level_keys[-1])
        self.level_keys = level_keys

    def _child_starts(self, depth: int) -> np.ndarray:
        """``starts[n] .. starts[n+1]``: node n's child range at ``depth``.

        Node ids at ``depth`` are ranks into the previous level's key
        array, so the ranges are computable once per level (a bincount +
        cumsum, cached) and :meth:`children_ranges` becomes pure gathers.
        """
        starts = self._starts[depth]
        if starts is None:
            n_nodes = 1 if depth == 0 else len(self.level_keys[depth - 1])
            parents = self.level_keys[depth] // self.cards[depth]
            starts = np.zeros(n_nodes + 1, dtype=np.int64)
            np.cumsum(np.bincount(parents, minlength=n_nodes), out=starts[1:])
            self._starts[depth] = starts
        return starts

    def children_ranges(
        self, depth: int, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per node: (first child position, child count) at ``depth``."""
        if len(self.level_keys[depth]) == 0:
            zeros = np.zeros(len(nodes), dtype=np.int64)
            return zeros, zeros
        return kernels.gather_ranges(self._child_starts(depth), nodes)

    def expand_children(
        self,
        depth: int,
        nodes: np.ndarray,
        ranges: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Enumerate every child of every node in the batch.

        Returns ``(parent_index, child_node_ids, child_codes)`` where
        ``parent_index[i]`` points into ``nodes`` — the batch-expansion
        primitive of the vectorized Generic Join.  ``ranges`` may pass a
        precomputed :meth:`children_ranges` result.
        """
        first, counts = (
            ranges if ranges is not None else self.children_ranges(depth, nodes)
        )
        total = int(counts.sum())
        parent = np.repeat(np.arange(len(nodes)), counts)
        offsets = np.cumsum(counts) - counts
        positions = (
            np.arange(total)
            - np.repeat(offsets, counts)
            + np.repeat(first, counts)
        )
        codes = (
            self.level_keys[depth][positions]
            - np.repeat(nodes, counts) * self.cards[depth]
        )
        return parent, positions, codes

    def children_at(
        self,
        depth: int,
        nodes: np.ndarray,
        first: np.ndarray,
        offsets: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One chosen child per node: the ``offsets[i]``-th of node ``i``.

        The restartable slice of :meth:`expand_children`: callers that
        enumerate a batch's flattened child space in fixed-size blocks
        compute, per block entry, its parent node and the offset inside
        that parent's child range, and gather just those children — the
        full ``Σ counts``-sized expansion is never materialized.
        ``first`` is the per-entry gather of :meth:`children_ranges`'s
        first-child positions; offsets must satisfy
        ``0 ≤ offsets[i] < counts`` for the matching node.

        Returns ``(child_node_ids, child_codes)``.
        """
        return kernels.children_at(
            self.level_keys[depth], nodes, first, offsets, self.cards[depth]
        )

    def find_children(
        self,
        depth: int,
        nodes: np.ndarray,
        codes: np.ndarray,
        mapping: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized membership: does node ``i`` have child ``codes[i]``?

        ``mapping`` optionally re-expresses the codes in this trie's code
        space first (a :func:`dict_mapping` table; −1 ⇒ absent, the
        candidate fails) — fused with the search under the Numba kernels.
        Returns ``(found_mask, child_node_ids)`` (ids valid where found).
        """
        return kernels.find_children(
            self.level_keys[depth], nodes, codes, self.cards[depth], mapping
        )


class ColumnarRelation:
    """The encoded twin of a :class:`~repro.relational.relation.Relation`.

    Holds per-attribute code arrays and sorted dictionaries; all operations
    are NumPy-vectorized and return plain Python values (``int`` not
    ``np.int64``) so results are bit-for-bit interchangeable with the tuple
    oracle's.
    """

    __slots__ = ("attributes", "n_rows", "_codes", "_dicts", "_tries")

    def __init__(
        self,
        attributes: tuple[str, ...],
        codes: dict[str, np.ndarray],
        dicts: dict[str, np.ndarray],
        n_rows: int,
    ) -> None:
        self.attributes = attributes
        self.n_rows = n_rows
        self._codes = codes
        self._dicts = dicts

    def __getstate__(self):
        # the trie cache is a per-process acceleration structure built
        # from codes+dicts on demand; shipping it to a pool worker would
        # multiply the payload for nothing
        return (self.attributes, self.n_rows, self._codes, self._dicts)

    def __setstate__(self, state):
        self.attributes, self.n_rows, self._codes, self._dicts = state

    def codes(self, attr: str) -> np.ndarray:
        """The int64 code array of one column."""
        return self._codes[attr]

    def trie(self, attrs: Sequence[str]) -> "CodeTrie":
        """The :class:`CodeTrie` over ``attrs`` in that column order.

        Tries are cached per column order (relations are immutable), so
        repeated evaluations — every part combination of the Theorem 2.6
        algorithm re-joins the same parts — pay the lexsort once.
        """
        key = tuple(attrs)
        try:
            cache = self._tries
        except AttributeError:
            cache = self._tries = {}
        trie = cache.get(key)
        if trie is None:
            trie = CodeTrie(
                [self._codes[a] for a in key],
                [len(self._dicts[a]) for a in key],
            )
            cache[key] = trie
        return trie

    def dictionary(self, attr: str) -> np.ndarray:
        """The sorted distinct values (code -> value) of one column."""
        return self._dicts[attr]

    def take(self, indices: np.ndarray) -> "ColumnarRelation":
        """Row subset by positional indices (one gather per column).

        Dictionaries are shared unchanged — they may become supersets of
        the values actually present, which every kernel here tolerates
        (only codes witness occurrence).
        """
        return ColumnarRelation(
            self.attributes,
            {a: c[indices] for a, c in self._codes.items()},
            self._dicts,
            len(indices),
        )

    def renamed(self, mapping) -> "ColumnarRelation":
        """Share the arrays under renamed attributes (zero copy)."""
        attrs = tuple(mapping.get(a, a) for a in self.attributes)
        codes = {mapping.get(a, a): c for a, c in self._codes.items()}
        dicts = {mapping.get(a, a): d for a, d in self._dicts.items()}
        return ColumnarRelation(attrs, codes, dicts, self.n_rows)

    # ------------------------------------------------------------------
    # key construction and decoding
    # ------------------------------------------------------------------
    def key_codes(self, attrs: Sequence[str]) -> tuple[np.ndarray, int]:
        """Composite int64 key per row over ``attrs`` (empty -> all zeros)."""
        return composite_codes(
            [self._codes[a] for a in attrs],
            [len(self._dicts[a]) for a in attrs],
            self.n_rows,
        )

    def decode_rows(
        self, attrs: Sequence[str], indices: np.ndarray | None = None
    ) -> list[tuple]:
        """Materialize rows (all, or the selected indices) as tuples of
        Python ints."""
        if not attrs:
            n = self.n_rows if indices is None else len(indices)
            return [()] * n
        if indices is None:
            columns = [self._dicts[a][self._codes[a]].tolist() for a in attrs]
        else:
            columns = [
                self._dicts[a][self._codes[a][indices]].tolist() for a in attrs
            ]
        return list(zip(*columns))

    # ------------------------------------------------------------------
    # vectorized statistics kernels
    # ------------------------------------------------------------------
    def group_size_counts(
        self, group_attrs: Sequence[str], value_attrs: Sequence[str]
    ) -> np.ndarray:
        """Distinct ``value_attrs`` count per ``group_attrs`` group.

        The counts come back ordered by composite group key — exactly the
        multiset a degree sequence sorts, without decoding any group key.
        """
        counts, _, _ = self._grouped_distinct(group_attrs, value_attrs)
        return counts

    def prefix_group_size_counts(
        self,
        order_attrs: Sequence[str],
        splits: Sequence[tuple[int, int]],
    ) -> list[np.ndarray]:
        """Many conditionals' group-size multisets from one lexsort.

        Each split ``(u_len, uv_len)`` is served over the column prefix of
        ``order_attrs``: grouping columns ``order_attrs[:u_len]``, counted
        columns ``order_attrs[u_len:uv_len]``.  See :func:`prefix_run_counts`.
        """
        return prefix_run_counts(
            [self._codes[a] for a in order_attrs], splits
        )

    def group_sizes(
        self, group_attrs: Sequence[str], value_attrs: Sequence[str]
    ) -> dict[tuple, int]:
        """Vectorized equivalent of ``Relation.group_sizes``."""
        counts, group_keys, all_group_keys = self._grouped_distinct(
            group_attrs, value_attrs
        )
        if counts.size == 0:
            return {}
        # one representative row index per distinct group key: np.unique on
        # the full key column is sorted, hence aligned with `group_keys`.
        _, first_row = np.unique(all_group_keys, return_index=True)
        keys = self.decode_rows(tuple(group_attrs), first_row)
        return dict(zip(keys, counts.tolist()))

    def _grouped_distinct(
        self, group_attrs: Sequence[str], value_attrs: Sequence[str]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(counts per group, distinct group keys, per-row group keys)."""
        gkeys, gradix = self.key_codes(tuple(group_attrs))
        vkeys, vradix = self.key_codes(tuple(value_attrs))
        if self.n_rows == 0:
            return _EMPTY_CODES, _EMPTY_CODES, gkeys
        if gradix * vradix >= _MAX_RADIX:
            _, gkeys_d = np.unique(gkeys, return_inverse=True)
            uniq_v, vkeys = np.unique(vkeys, return_inverse=True)
            vradix = max(1, len(uniq_v))
            pair_base = gkeys_d.astype(np.int64)
        else:
            pair_base = gkeys
        # sort + run-length instead of np.unique: one O(N log N) sort gives
        # both the distinct (group, value) pairs and, because the group is
        # the high radix digit, the per-group runs in one pass.
        keys = np.sort(pair_base * vradix + vkeys)
        new_pair = np.empty(keys.shape, dtype=bool)
        new_pair[0] = True
        np.not_equal(keys[1:], keys[:-1], out=new_pair[1:])
        group_of_pair = keys[new_pair] // vradix
        new_group = np.empty(group_of_pair.shape, dtype=bool)
        new_group[0] = True
        np.not_equal(group_of_pair[1:], group_of_pair[:-1], out=new_group[1:])
        starts = np.nonzero(new_group)[0]
        counts = np.diff(np.append(starts, len(group_of_pair)))
        return counts.astype(np.int64), group_of_pair[new_group], gkeys

    def distinct_count(self, attrs: Sequence[str]) -> int:
        """Number of distinct composite values over ``attrs``."""
        if self.n_rows == 0:
            return 0
        keys, _ = self.key_codes(tuple(attrs))
        return int(len(np.unique(keys)))

    def project_with_rows(
        self, attrs: Sequence[str]
    ) -> tuple[list[tuple], "ColumnarRelation"]:
        """Projection as (deduplicated decoded rows, encoded twin).

        Rows come first-occurrence first.  The twin reuses the sliced code
        arrays and the existing dictionaries (dropping duplicate rows
        cannot drop a dictionary value, so they stay valid), sparing the
        projected relation a re-encode on its next columnar use.
        """
        attrs = tuple(attrs)
        if self.n_rows == 0:
            twin = ColumnarRelation(
                attrs,
                {a: _EMPTY_CODES for a in attrs},
                {a: self._dicts[a] for a in attrs},
                0,
            )
            return [], twin
        keys, _ = self.key_codes(attrs)
        _, first = np.unique(keys, return_index=True)
        first.sort()
        twin = ColumnarRelation(
            attrs,
            {a: self._codes[a][first] for a in attrs},
            {a: self._dicts[a] for a in attrs},
            len(first),
        )
        return self.decode_rows(attrs, first), twin

    def project_rows(self, attrs: Sequence[str]) -> list[tuple]:
        """Deduplicated rows of the projection, first occurrence first."""
        return self.project_with_rows(attrs)[0]

    def present_value_arrays(self) -> list[np.ndarray]:
        """Per column, the values actually occurring in some row.

        Works from the code arrays, not the dictionaries: tables produced
        by selections or joins share (superset) dictionaries with their
        inputs, so only codes witness which values actually occur.
        """
        if not self.attributes or self.n_rows == 0:
            return []
        return [
            self._dicts[a][np.unique(self._codes[a])] for a in self.attributes
        ]

    def active_domain(self) -> set:
        """Union of all columns' value sets (as Python ints)."""
        present = self.present_value_arrays()
        if not present:
            return set()
        merged = np.unique(np.concatenate(present))
        return set(merged.tolist())
