"""Fused compiled kernels for the sorted-codes trie hot loops.

PRs 1–4 vectorized the Generic Join in NumPy, but the blocked
depth-first loop still pays one Python dispatch and several array
temporaries *per primitive per slice*: the k-th-child gather of
:meth:`~repro.relational.columnar.CodeTrie.children_at`, the
``searchsorted`` membership filter that intersects each binding's
smallest-view candidates against the other participating atoms, and the
``searchsorted`` parent-recovery step of the blocked frontier.  This
module provides those primitives as fused Numba ``njit`` kernels — one
compiled pass, no intermediate arrays — next to the original NumPy
implementations, selected by a process-wide *kernel mode*:

``REPRO_KERNELS=auto`` (default)
    Numba kernels when :mod:`numba` is importable, the NumPy path
    otherwise.
``REPRO_KERNELS=numba``
    Require the compiled kernels; raise :class:`KernelUnavailableError`
    if Numba is missing (CI pins this on its compiled leg so the fast
    path can never silently rot back to NumPy).
``REPRO_KERNELS=python``
    Force the NumPy path even when Numba is installed (the oracle leg).

Both paths are **bit-identical** in everything observable: output rows,
row order, every sink's result, and the ``nodes_visited`` meter.  The
NumPy implementations here are byte-for-byte the pre-kernel code, so
``REPRO_KERNELS=python`` *is* the oracle the differential suite
(``tests/relational/test_kernels.py``) compares against.

Composite keys additionally get a *bit-packed* layout under the Numba
mode: when every column's dictionary size fits the packing budget
(:func:`pack_plan`), a row's mixed-radix key is assembled with shifts
and ors into one ``int64`` — a single-integer compare downstream.
Bit-packing preserves the lexicographic order and the equality
structure of the arithmetic mixed-radix keys (each field is an
order-preserving code narrower than its 2^bits slot), so sorts,
run-length groupings, and ``searchsorted`` matches agree exactly with
the NumPy path even though the raw key *values* differ.  When the
radices overflow — the same ``>= 2^62`` product test as the oracle —
both modes return ``None`` and callers fall back to the tuple path, so
the fallback decisions can never diverge between modes.

Nothing in this module imports the rest of the package; the columnar
substrate imports *it* (no cycles), and worker processes of
:func:`~repro.evaluation.parallel.evaluate_parallel` re-activate the
supervisor's mode explicitly via :func:`set_mode` so the whole fleet
computes on one path regardless of the multiprocessing start method.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Sequence

import numpy as np

__all__ = [
    "KernelUnavailableError",
    "MODES",
    "active_mode",
    "children_at",
    "composite_keys",
    "configured_mode",
    "find_children",
    "forced",
    "gather_ranges",
    "numba_available",
    "pack_plan",
    "set_mode",
    "slice_parents",
]

MODES = ("auto", "numba", "python")

_ENV_VAR = "REPRO_KERNELS"

#: Radix products stay below this to keep composite keys overflow-free.
#: Mirrors ``columnar._MAX_RADIX`` — the kernels must make exactly the
#: oracle's fallback decisions or the two modes would disagree on which
#: relations drop to the tuple path.
_MAX_RADIX = 1 << 62

#: A bit-packed key must stay a non-negative ``int64``.
_PACK_MAX_BITS = 62

_EMPTY_CODES = np.zeros(0, dtype=np.int64)


class KernelUnavailableError(RuntimeError):
    """The ``numba`` kernel mode was requested but Numba is missing."""


try:  # pragma: no cover - exercised on the CI numba leg
    from numba import njit as _njit

    _HAVE_NUMBA = True
except ImportError:
    _HAVE_NUMBA = False


def numba_available() -> bool:
    """Whether the compiled kernels can be activated in this process."""
    return _HAVE_NUMBA


def configured_mode() -> str:
    """The mode requested by ``REPRO_KERNELS`` (default ``auto``)."""
    mode = os.environ.get(_ENV_VAR, "auto").strip().lower() or "auto"
    if mode not in MODES:
        raise ValueError(
            f"{_ENV_VAR}={mode!r} is not one of {', '.join(MODES)}"
        )
    return mode


def _resolve(mode: str) -> str:
    if mode == "auto":
        return "numba" if _HAVE_NUMBA else "python"
    if mode == "numba" and not _HAVE_NUMBA:
        raise KernelUnavailableError(
            "kernel mode 'numba' requested but numba is not importable; "
            "install the optional extra (pip install 'repro[kernels]') "
            "or use REPRO_KERNELS=python"
        )
    return mode


#: The resolved mode (``"numba"`` | ``"python"``), lazily bound so that
#: importing the package never fails — a bad ``REPRO_KERNELS`` value or
#: a missing Numba surfaces on the first kernel *use* (or an explicit
#: :func:`set_mode`), with a message naming the fix.
_ACTIVE: str | None = None


def active_mode() -> str:
    """The resolved kernel mode of this process."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _resolve(configured_mode())
    return _ACTIVE


def set_mode(mode: str | None = None) -> str:
    """Activate a kernel mode process-wide; ``None`` re-reads the env var.

    Returns the resolved mode.  Raises :class:`KernelUnavailableError`
    for ``"numba"`` without Numba and ``ValueError`` for unknown names —
    *before* touching the active mode, so a failed switch leaves the
    process on its previous path.
    """
    global _ACTIVE
    if mode is None:
        mode = configured_mode()
    elif mode not in MODES:
        raise ValueError(f"kernel mode {mode!r} is not one of {', '.join(MODES)}")
    _ACTIVE = _resolve(mode)
    return _ACTIVE


@contextmanager
def forced(mode: str):
    """Temporarily activate ``mode`` (tests and mode-pinned benchmarks)."""
    global _ACTIVE
    prior = _ACTIVE
    set_mode(mode)
    try:
        yield active_mode()
    finally:
        _ACTIVE = prior


def _use_numba() -> bool:
    return active_mode() == "numba"


# ----------------------------------------------------------------------
# compiled kernels (defined only when Numba is importable; every kernel
# has a byte-for-byte-equivalent NumPy twin in the dispatchers below)
# ----------------------------------------------------------------------
if _HAVE_NUMBA:  # pragma: no cover - exercised on the CI numba leg

    @_njit(cache=True, inline="always")
    def _bisect_left_nb(keys, target):
        lo = 0
        hi = keys.shape[0]
        while lo < hi:
            mid = (lo + hi) >> 1
            if keys[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @_njit(cache=True)
    def _children_at_nb(keys, nodes, first, offsets, card):
        n = nodes.shape[0]
        positions = np.empty(n, dtype=np.int64)
        codes = np.empty(n, dtype=np.int64)
        for i in range(n):
            p = first[i] + offsets[i]
            positions[i] = p
            codes[i] = keys[p] - nodes[i] * card
        return positions, codes

    @_njit(cache=True)
    def _gather_ranges_nb(starts, nodes):
        n = nodes.shape[0]
        first = np.empty(n, dtype=np.int64)
        counts = np.empty(n, dtype=np.int64)
        for i in range(n):
            node = nodes[i]
            f = starts[node]
            first[i] = f
            counts[i] = starts[node + 1] - f
        return first, counts

    @_njit(cache=True)
    def _find_children_nb(keys, nodes, codes, card):
        n = nodes.shape[0]
        last = keys.shape[0] - 1
        found = np.empty(n, dtype=np.bool_)
        positions = np.empty(n, dtype=np.int64)
        for i in range(n):
            target = nodes[i] * card + codes[i]
            p = _bisect_left_nb(keys, target)
            if p > last:
                p = last
            positions[i] = p
            found[i] = keys[p] == target
        return found, positions

    @_njit(cache=True)
    def _find_children_mapped_nb(keys, nodes, codes, card, mapping):
        n = nodes.shape[0]
        last = keys.shape[0] - 1
        found = np.empty(n, dtype=np.bool_)
        positions = np.empty(n, dtype=np.int64)
        for i in range(n):
            c = mapping[codes[i]]
            target = nodes[i] * card + c
            p = _bisect_left_nb(keys, target)
            if p > last:
                p = last
            positions[i] = p
            found[i] = keys[p] == target and c >= 0
        return found, positions

    @_njit(cache=True)
    def _slice_parents_nb(ends, flat_starts, lo, hi):
        m = hi - lo
        parents = np.empty(m, dtype=np.int64)
        offsets = np.empty(m, dtype=np.int64)
        # leftmost parent whose end exceeds ``lo`` (searchsorted 'right');
        # ends is a cumsum, so later candidates advance monotonically.
        j = _bisect_left_nb(ends, lo + 1)
        for i in range(m):
            flat = lo + i
            while ends[j] <= flat:
                j += 1
            parents[i] = j
            offsets[i] = flat - flat_starts[j]
        return parents, offsets

    @_njit(cache=True)
    def _shift_or_nb(acc, codes, shift):
        n = acc.shape[0]
        out = np.empty(n, dtype=np.int64)
        for i in range(n):
            out[i] = (acc[i] << shift) | codes[i]
        return out


# ----------------------------------------------------------------------
# dispatchers — the NumPy branches are the pre-kernel code, unchanged
# ----------------------------------------------------------------------
def children_at(
    level_keys: np.ndarray,
    nodes: np.ndarray,
    first: np.ndarray,
    offsets: np.ndarray,
    card: int,
) -> tuple[np.ndarray, np.ndarray]:
    """One chosen child per node: ``(positions, codes)``.

    ``positions[i] = first[i] + offsets[i]`` into ``level_keys`` and
    ``codes[i] = level_keys[positions[i]] - nodes[i] * card`` — the
    restartable k-th-child gather behind
    :meth:`~repro.relational.columnar.CodeTrie.children_at`.
    """
    if _use_numba():
        return _children_at_nb(level_keys, nodes, first, offsets, card)
    positions = first + offsets
    codes = level_keys[positions] - nodes * card
    return positions, codes


def gather_ranges(
    starts: np.ndarray, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per node: ``(starts[n], starts[n+1] - starts[n])`` in one pass."""
    if _use_numba():
        return _gather_ranges_nb(starts, nodes)
    first = starts[nodes]
    return first, starts[nodes + 1] - first


def find_children(
    level_keys: np.ndarray,
    nodes: np.ndarray,
    codes: np.ndarray,
    card: int,
    mapping: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched trie membership: ``(found_mask, child_node_ids)``.

    Does node ``i`` have child ``codes[i]``?  With ``mapping`` the codes
    are first re-expressed in the target trie's code space
    (``mapping[code] == -1`` ⇒ the value is absent from the target
    dictionary and the candidate fails) — the fused spelling of
    ``remap_codes`` + membership the intersection filter runs per
    non-seed atom.  Ids are valid where found.
    """
    if len(level_keys) == 0:
        zeros = np.zeros(len(nodes), dtype=np.int64)
        return np.zeros(len(nodes), dtype=bool), zeros
    if _use_numba():
        if mapping is None:
            return _find_children_nb(level_keys, nodes, codes, card)
        return _find_children_mapped_nb(
            level_keys, nodes, codes, card, mapping
        )
    if mapping is not None:
        codes = mapping[codes]
    target = nodes * card + codes
    positions = np.searchsorted(level_keys, target, side="left")
    clipped = np.minimum(positions, len(level_keys) - 1)
    found = level_keys[clipped] == target
    if mapping is not None:
        found &= codes >= 0
    return found, clipped


def slice_parents(
    ends: np.ndarray, flat_starts: np.ndarray, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray]:
    """Parent recovery for one candidate slice ``[lo, hi)``.

    ``ends`` is the cumsum of per-parent child counts and
    ``flat_starts = ends - counts``; candidate ``flat`` belongs to the
    parent whose half-open span covers it, at offset
    ``flat - flat_starts[parent]`` — the blocked frontier's
    ``searchsorted`` recovery step, fused into one pointer sweep.
    """
    if _use_numba():
        return _slice_parents_nb(ends, flat_starts, lo, hi)
    flat = np.arange(lo, hi)
    parents = np.searchsorted(ends, flat, side="right")
    return parents, flat - flat_starts[parents]


def pack_plan(
    cards: Sequence[int],
) -> tuple[str, list[int] | None] | None:
    """How composite keys over ``cards`` are assembled, or ``None``.

    Returns ``("packed", bits)`` when every column fits a bit field and
    the fields fit one non-negative ``int64`` (``Σ bits ≤ 62``),
    ``("arithmetic", None)`` when they do not but the plain mixed-radix
    product still fits, and ``None`` when the radix product reaches
    2^62 — exactly the oracle's overflow test, so both kernel modes
    agree on when callers must fall back to the tuple path.
    """
    radix = 1
    for card in cards:
        radix *= max(1, int(card))
        if radix >= _MAX_RADIX:
            return None
    bits = [(max(1, int(card)) - 1).bit_length() for card in cards]
    if sum(bits) <= _PACK_MAX_BITS:
        return "packed", bits
    return "arithmetic", None


def composite_keys(
    code_arrays: Sequence[np.ndarray], cards: Sequence[int]
) -> np.ndarray | None:
    """One comparable ``int64`` key per row, ``None`` on radix overflow.

    The kernel-layer implementation of
    :func:`~repro.relational.columnar.mixed_radix_keys`: under the
    Numba mode a :func:`pack_plan`-approved key is bit-packed (shift/or
    per column, single-int64 compares downstream); every other case —
    the NumPy mode, or dictionaries too wide to pack — uses the
    arithmetic mixed-radix accumulation unchanged.  Key order and
    equality are identical either way; only the raw values differ.
    """
    plan = pack_plan(cards)
    if plan is None:
        return None
    if not code_arrays:
        return _EMPTY_CODES
    keys = code_arrays[0]
    scheme, bits = plan
    if scheme == "packed" and _use_numba():
        for codes, width in zip(code_arrays[1:], bits[1:]):
            keys = _shift_or_nb(keys, codes, width)
        return keys
    for codes, card in zip(code_arrays[1:], cards[1:]):
        keys = keys * max(1, int(card)) + codes
    return keys
