"""Relational substrate: set-semantics relations and database instances."""

from .database import Database
from .relation import Relation

__all__ = ["Relation", "Database"]
