"""Relational substrate: set-semantics relations and database instances.

Integer-valued relations are backed by the dictionary-encoded columnar
engine in :mod:`repro.relational.columnar`; relations over arbitrary
hashable values transparently use the original tuple paths.
"""

from . import kernels
from .columnar import (
    ColumnarRelation,
    CountSink,
    GroupCountSink,
    MaterializeSink,
    OutputSink,
    SpillSink,
)
from .database import Database
from .relation import Relation

__all__ = [
    "Relation",
    "Database",
    "ColumnarRelation",
    "OutputSink",
    "MaterializeSink",
    "CountSink",
    "GroupCountSink",
    "SpillSink",
    "kernels",
]
