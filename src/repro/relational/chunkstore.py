"""Spill-to-disk chunk store: ordered ``.npz`` segment files.

The blocked WCOJ frontier bounds *live* memory, but a materializing
accumulator still holds all |Q(D)| output rows in RAM — the gap this
module closes for :class:`~repro.relational.columnar.SpillSink`.  A
:class:`SegmentStore` persists column chunks as numbered ``.npz``
segments inside one directory and re-iterates them in exactly the order
they were written, so a spilled output round-trips rows, row order, and
dtypes bit-identically while only one chunk is ever live.

Robustness properties the tests pin down:

* **Atomic writes** — each segment is written to a ``*.tmp`` sibling,
  fsynced, and moved into place with ``os.replace``; a crash can never
  leave a half-written file under a segment name.
* **Validated reads** — a truncated, corrupt, or wrong-shape segment
  raises :class:`ChunkStoreError` naming the file instead of yielding
  garbage rows.
* **No cross-run collisions** — segment names are deterministic per
  store, so concurrent runs must be given distinct directories (the
  CLI's ``--spill-dir``); :meth:`SegmentStore.delete` removes only the
  segments this store wrote and the directory only if it is empty.
"""

from __future__ import annotations

import os
import pickle
import zipfile
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

__all__ = ["ChunkStoreError", "SegmentStore"]

_SEGMENT_NAME = "segment-{:08d}.npz"


class ChunkStoreError(RuntimeError):
    """A segment file is missing, truncated, corrupt, or mis-shaped."""


class SegmentStore:
    """An ordered on-disk store of equal-arity column chunks.

    Parameters
    ----------
    directory:
        Where segments live; created (with parents) if missing.
    n_columns:
        Arity of every chunk.  Zero-column chunks are legal (only the
        row count is stored) so counting-style consumers can share the
        interface.
    """

    def __init__(self, directory: str | os.PathLike, n_columns: int) -> None:
        if n_columns < 0:
            raise ValueError(f"n_columns must be ≥ 0, got {n_columns}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.n_columns = int(n_columns)
        self._paths: list[Path] = []
        self._n_rows = 0

    @property
    def n_rows(self) -> int:
        """Total rows across every segment written so far."""
        return self._n_rows

    @property
    def n_segments(self) -> int:
        return len(self._paths)

    def segments(self) -> tuple[Path, ...]:
        """Segment paths, in write (= iteration) order."""
        return tuple(self._paths)

    def write(
        self, columns: Sequence[np.ndarray], n_rows: int | None = None
    ) -> Path:
        """Persist one chunk as the next segment, atomically.

        ``n_rows`` is only needed for zero-column chunks; otherwise it is
        validated against the column lengths.
        """
        columns = [np.asarray(c) for c in columns]
        if len(columns) != self.n_columns:
            raise ValueError(
                f"{len(columns)} columns for a {self.n_columns}-column store"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged chunk: column lengths {sorted(lengths)}")
        if lengths:
            (length,) = lengths
            if n_rows is not None and n_rows != length:
                raise ValueError(
                    f"n_rows={n_rows} but columns hold {length} rows"
                )
            n_rows = length
        elif n_rows is None:
            raise ValueError("zero-column chunks need an explicit n_rows")
        path = self.directory / _SEGMENT_NAME.format(len(self._paths))
        tmp = self.directory / (path.name + ".tmp")
        payload = {f"column_{i}": c for i, c in enumerate(columns)}
        payload["n_rows"] = np.int64(n_rows)
        try:
            with open(tmp, "wb") as handle:
                np.savez(handle, **payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self._paths.append(path)
        self._n_rows += n_rows
        return path

    def read(self, path: str | os.PathLike) -> list[np.ndarray]:
        """Load one segment's columns, validating shape and row count.

        Raises :class:`ChunkStoreError` (never returns garbage) when the
        file is unreadable, truncated, or holds the wrong arrays.
        """
        try:
            with np.load(path, allow_pickle=True) as archive:
                n_rows = int(archive["n_rows"])
                columns = [
                    archive[f"column_{i}"] for i in range(self.n_columns)
                ]
        except (OSError, ValueError, KeyError, EOFError,
                zipfile.BadZipFile, pickle.UnpicklingError) as exc:
            raise ChunkStoreError(
                f"segment {path} is corrupt or truncated: {exc}"
            ) from exc
        for i, column in enumerate(columns):
            if column.ndim != 1 or len(column) != n_rows:
                raise ChunkStoreError(
                    f"segment {path} column {i} has shape {column.shape}, "
                    f"expected ({n_rows},)"
                )
        return columns

    def iter_chunks(self) -> Iterator[list[np.ndarray]]:
        """Yield every segment's columns, in write order, one live chunk
        at a time."""
        for path in self._paths:
            yield self.read(path)

    def delete(self) -> None:
        """Remove every segment this store wrote; drop the directory if
        it is empty afterwards (another run's files are left alone)."""
        for path in self._paths:
            path.unlink(missing_ok=True)
        self._paths.clear()
        self._n_rows = 0
        try:
            self.directory.rmdir()
        except OSError:
            pass
