"""Spill-to-disk chunk store: ordered ``.npz`` segment files.

The blocked WCOJ frontier bounds *live* memory, but a materializing
accumulator still holds all |Q(D)| output rows in RAM — the gap this
module closes for :class:`~repro.relational.columnar.SpillSink`.  A
:class:`SegmentStore` persists column chunks as numbered ``.npz``
segments inside one directory and re-iterates them in exactly the order
they were written, so a spilled output round-trips rows, row order, and
dtypes bit-identically while only one chunk is ever live.

Robustness properties the tests pin down:

* **Atomic, durable writes** — each segment is written to a ``*.tmp``
  sibling, fsynced, and moved into place with ``os.replace``, after
  which the parent *directory* is fsynced too: a crash (or a hard
  ``SIGKILL``) can neither leave a half-written file under a segment
  name nor lose a completed rename that was still sitting in the
  directory's dirty metadata.
* **Validated reads** — a truncated, corrupt, or wrong-shape segment
  raises :class:`ChunkStoreError` naming the file instead of yielding
  garbage rows.
* **Self-describing directories** — every store stamps its directory
  with a small ``store.json`` manifest (format tag + column arity).
  Opening a directory whose manifest is foreign, unparsable, or
  declares a different arity raises :class:`ChunkStoreError` instead of
  silently interleaving two stores' segments;
  :meth:`SegmentStore.attach` re-opens a stamped directory and
  re-registers its surviving segments in write order (validating every
  one), which is what checkpoint-resume builds on.
* **No cross-run collisions** — segment names are deterministic per
  store, so concurrent runs must be given distinct directories (the
  CLI's ``--spill-dir``); :meth:`SegmentStore.delete` removes only the
  segments this store wrote (plus its manifest stamp) and the directory
  only if it is empty.

:func:`atomic_write_json` and :func:`fsync_dir` expose the same
write-to-tmp + ``os.replace`` + directory-fsync discipline for callers
persisting their own manifests (the parallel evaluator's per-run
checkpoint in :mod:`repro.evaluation.parallel`).
"""

from __future__ import annotations

import json
import os
import pickle
import zipfile
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "ChunkStoreError",
    "SegmentStore",
    "atomic_write_json",
    "fsync_dir",
]

_SEGMENT_NAME = "segment-{:08d}.npz"
_STORE_MANIFEST = "store.json"
_STORE_FORMAT = "repro-segment-store/v1"


def fsync_dir(directory: str | os.PathLike) -> None:
    """Flush a directory's metadata (renames, creations) to disk.

    ``os.replace`` makes a write atomic but not *durable*: the rename
    lives in the directory's metadata until that is synced.  A no-op on
    platforms that cannot open directories for syncing.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir opens
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: str | os.PathLike, payload: dict) -> None:
    """Write JSON durably: tmp sibling + fsync + ``os.replace`` + dir fsync.

    A reader never observes a partial file, and once this returns the
    content survives a hard kill.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        _unlink_quietly(tmp)
    fsync_dir(path.parent)


class ChunkStoreError(RuntimeError):
    """A segment file is missing, truncated, corrupt, unwritable, or
    mis-shaped."""


def _unlink_quietly(path: Path) -> None:
    """Best-effort tmp-file removal: never mask the original error.

    An ``OSError`` here (permissions yanked mid-run, directory removed)
    must not shadow the write failure that is already propagating — and
    on the success path there is nothing to remove anyway.
    """
    try:
        path.unlink(missing_ok=True)
    except OSError:  # pragma: no cover - cleanup during FS failure
        pass


class SegmentStore:
    """An ordered on-disk store of equal-arity column chunks.

    Parameters
    ----------
    directory:
        Where segments live; created (with parents) if missing.
    n_columns:
        Arity of every chunk.  Zero-column chunks are legal (only the
        row count is stored) so counting-style consumers can share the
        interface.
    """

    def __init__(self, directory: str | os.PathLike, n_columns: int) -> None:
        if n_columns < 0:
            raise ValueError(f"n_columns must be ≥ 0, got {n_columns}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.n_columns = int(n_columns)
        self._paths: list[Path] = []
        self._n_rows = 0
        self._stamp()

    def _stamp(self) -> None:
        """Validate or create this directory's ``store.json`` manifest.

        Raises :class:`ChunkStoreError` when the directory already
        carries a manifest this store did not write — a foreign file
        named ``store.json``, an unparsable one, or one declaring a
        different format/arity — instead of mixing segments of two
        incompatible stores in one directory.
        """
        manifest = self.directory / _STORE_MANIFEST
        if manifest.exists():
            try:
                payload = json.loads(manifest.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                raise ChunkStoreError(
                    f"{manifest} exists but is not a segment-store "
                    f"manifest: {exc}"
                ) from exc
            if (
                not isinstance(payload, dict)
                or payload.get("format") != _STORE_FORMAT
            ):
                raise ChunkStoreError(
                    f"{manifest} belongs to a foreign store "
                    f"(format {payload.get('format') if isinstance(payload, dict) else payload!r})"
                )
            if payload.get("n_columns") != self.n_columns:
                raise ChunkStoreError(
                    f"{manifest} declares {payload.get('n_columns')} "
                    f"columns, store opened with {self.n_columns}"
                )
        else:
            atomic_write_json(
                manifest,
                {"format": _STORE_FORMAT, "n_columns": self.n_columns},
            )

    @classmethod
    def attach(
        cls,
        directory: str | os.PathLike,
        n_columns: int,
        segment_names: Sequence[str] | None = None,
    ) -> "SegmentStore":
        """Re-open a stamped store directory, re-registering its segments.

        ``segment_names`` pins the exact expected segment files (a
        checkpoint manifest's record); by default every ``segment-*.npz``
        present is taken, in name (= write) order.  Every segment is
        read and validated up front, so an attach that returns has a
        fully trustworthy store — a missing, truncated, or corrupt
        segment raises :class:`ChunkStoreError` naming the file.
        """
        directory = Path(directory)
        if not (directory / _STORE_MANIFEST).exists():
            raise ChunkStoreError(
                f"{directory} is not a segment store (no {_STORE_MANIFEST})"
            )
        store = cls(directory, n_columns)
        if segment_names is None:
            names = sorted(p.name for p in directory.glob("segment-*.npz"))
        else:
            names = list(segment_names)
        for name in names:
            path = directory / name
            if not path.exists():
                raise ChunkStoreError(f"segment {path} is missing")
            columns = store.read(path)
            store._paths.append(path)
            store._n_rows += (
                len(columns[0]) if columns else int(_read_n_rows(path))
            )
        return store

    @property
    def n_rows(self) -> int:
        """Total rows across every segment written so far."""
        return self._n_rows

    @property
    def n_segments(self) -> int:
        return len(self._paths)

    def segments(self) -> tuple[Path, ...]:
        """Segment paths, in write (= iteration) order."""
        return tuple(self._paths)

    def write(
        self, columns: Sequence[np.ndarray], n_rows: int | None = None
    ) -> Path:
        """Persist one chunk as the next segment, atomically.

        ``n_rows`` is only needed for zero-column chunks; otherwise it is
        validated against the column lengths.
        """
        columns = [np.asarray(c) for c in columns]
        if len(columns) != self.n_columns:
            raise ValueError(
                f"{len(columns)} columns for a {self.n_columns}-column store"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged chunk: column lengths {sorted(lengths)}")
        if lengths:
            (length,) = lengths
            if n_rows is not None and n_rows != length:
                raise ValueError(
                    f"n_rows={n_rows} but columns hold {length} rows"
                )
            n_rows = length
        elif n_rows is None:
            raise ValueError("zero-column chunks need an explicit n_rows")
        path = self.directory / _SEGMENT_NAME.format(len(self._paths))
        tmp = self.directory / (path.name + ".tmp")
        payload = {f"column_{i}": c for i, c in enumerate(columns)}
        payload["n_rows"] = np.int64(n_rows)
        try:
            try:
                with open(tmp, "wb") as handle:
                    np.savez(handle, **payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            except OSError as exc:
                # ENOSPC/EACCES/EIO mid-flush: surface a store error
                # naming the segment and the rows that did not land —
                # callers (SpillSink, the parallel supervisor) already
                # treat ChunkStoreError as "this spill is lost"
                raise ChunkStoreError(
                    f"could not write segment {path} ({n_rows} rows at "
                    f"risk): {exc}"
                ) from exc
        finally:
            _unlink_quietly(tmp)
        # the rename itself must survive a hard kill: sync the directory
        fsync_dir(self.directory)
        self._paths.append(path)
        self._n_rows += n_rows
        return path

    def read(self, path: str | os.PathLike) -> list[np.ndarray]:
        """Load one segment's columns, validating shape and row count.

        Raises :class:`ChunkStoreError` (never returns garbage) when the
        file is unreadable, truncated, or holds the wrong arrays.
        """
        try:
            with np.load(path, allow_pickle=True) as archive:
                n_rows = int(archive["n_rows"])
                columns = [
                    archive[f"column_{i}"] for i in range(self.n_columns)
                ]
        except (OSError, ValueError, KeyError, EOFError,
                zipfile.BadZipFile, pickle.UnpicklingError) as exc:
            raise ChunkStoreError(
                f"segment {path} is corrupt or truncated: {exc}"
            ) from exc
        for i, column in enumerate(columns):
            if column.ndim != 1 or len(column) != n_rows:
                raise ChunkStoreError(
                    f"segment {path} column {i} has shape {column.shape}, "
                    f"expected ({n_rows},)"
                )
        return columns

    def iter_chunks(self) -> Iterator[list[np.ndarray]]:
        """Yield every segment's columns, in write order, one live chunk
        at a time."""
        for path in self._paths:
            yield self.read(path)

    def delete(self) -> None:
        """Remove every segment this store wrote (and its manifest
        stamp); drop the directory if it is empty afterwards (another
        run's files are left alone)."""
        for path in self._paths:
            path.unlink(missing_ok=True)
        self._paths.clear()
        self._n_rows = 0
        (self.directory / _STORE_MANIFEST).unlink(missing_ok=True)
        try:
            self.directory.rmdir()
        except OSError:
            pass


def _read_n_rows(path: str | os.PathLike) -> int:
    """The declared row count of one segment (zero-column stores)."""
    try:
        with np.load(path, allow_pickle=True) as archive:
            return int(archive["n_rows"])
    except (OSError, ValueError, KeyError, EOFError,
            zipfile.BadZipFile, pickle.UnpicklingError) as exc:
        raise ChunkStoreError(
            f"segment {path} is corrupt or truncated: {exc}"
        ) from exc
