"""Normal polymatroids: step-function decompositions and membership tests.

The paper's tightness story (Sec. 6) runs through *normal* polymatroids —
positive linear combinations of step functions h_W.  For a candidate vector
h the decomposition, when it exists, is unique and can be recovered in
closed form: with A = h(X) and

    g(S) := h(X) − h(X − S)  =  Σ_{∅ ≠ W ⊆ S} α_W,

Möbius inversion over the subset lattice yields the coefficients α_W.
h is a normal polymatroid iff all recovered α_W are ≥ 0 and the
reconstruction matches h.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .vectors import EntropyVector, normal

__all__ = [
    "normal_coefficients",
    "is_normal",
    "normal_from_masks",
]


def normal_coefficients(
    vector: EntropyVector, tol: float = 1e-9
) -> dict[frozenset[str], float] | None:
    """Recover α_W with h = Σ α_W h_W, or ``None`` if h is not normal.

    Returns a dict over non-empty subsets W (zero coefficients omitted).
    """
    n = len(vector.variables)
    size = 1 << n
    full = size - 1
    values = vector.values
    # g[S] = h(X) - h(X \ S) = sum over non-empty W ⊆ S of α_W
    g = np.array([values[full] - values[full & ~s] for s in range(size)])
    # Möbius inversion on the subset lattice: α = Σ_{T⊆S} (−1)^{|S−T|} g(T).
    # Computed in-place per bit (the standard subset-sum inversion).
    alpha = g.copy()
    for i in range(n):
        bit = 1 << i
        for s in range(size):
            if s & bit:
                alpha[s] -= alpha[s & ~bit]
    coefficients: dict[frozenset[str], float] = {}
    for s in range(1, size):
        a = alpha[s]
        if a < -tol:
            return None
        if a > tol:
            coefficients[vector.subset_of_mask(s)] = float(a)
    candidate = normal(vector.variables, coefficients)
    if not np.allclose(candidate.values, values, atol=max(tol, 1e-8)):
        return None
    return coefficients


def is_normal(vector: EntropyVector, tol: float = 1e-9) -> bool:
    """Whether the vector lies in the normal-polymatroid cone N_n."""
    return normal_coefficients(vector, tol=tol) is not None


def normal_from_masks(
    variables: tuple[str, ...], mask_coefficients: Mapping[int, float]
) -> EntropyVector:
    """Build a normal polymatroid from {bitmask: α} coefficients."""
    coefficients = {}
    for mask, alpha in mask_coefficients.items():
        subset = frozenset(
            v for i, v in enumerate(variables) if mask >> i & 1
        )
        coefficients[subset] = alpha
    return normal(variables, coefficients)
