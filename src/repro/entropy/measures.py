"""Derived information measures and the modularization lemma.

Conveniences on top of :class:`~repro.entropy.vectors.EntropyVector`:

* mutual information I(A;B) and conditional mutual information I(A;B|C),
  used in the Zhang–Yeung derivation (Appendix D.2) and handy for
  exploratory work;
* :func:`modularize` — Lemma B.3's construction: given a polymatroid h and
  a variable order, the modular function h'(X_i) = h(X_i | X_1…X_{i−1})
  keeps h'(X) = h(X) while lowering every h'(U) and every
  h'(X_j | X_i) for i < j.  It is the engine of Theorem B.2 (girth
  condition for the modular cone's soundness).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .vectors import EntropyVector, modular

__all__ = [
    "mutual_information",
    "conditional_mutual_information",
    "modularize",
]


def mutual_information(
    h: EntropyVector, a: Iterable[str], b: Iterable[str]
) -> float:
    """I(A;B) = h(A) + h(B) − h(AB) (≥ 0 for polymatroids)."""
    a, b = list(a), list(b)
    return h.h(a) + h.h(b) - h.h([*a, *b])


def conditional_mutual_information(
    h: EntropyVector,
    a: Iterable[str],
    b: Iterable[str],
    c: Iterable[str],
) -> float:
    """I(A;B|C) = h(AC) + h(BC) − h(ABC) − h(C).

    Its non-negativity for all disjoint A, B, C is exactly submodularity,
    so it is ≥ 0 on polymatroids (and on all entropic vectors).
    """
    a, b, c = list(a), list(b), list(c)
    return (
        h.h([*a, *c])
        + h.h([*b, *c])
        - h.h([*a, *b, *c])
        - h.h(c)
    )


def modularize(
    h: EntropyVector, order: Sequence[str] | None = None
) -> EntropyVector:
    """Lemma B.3: the chain-rule modularization of a polymatroid.

    With the order X_1, …, X_n, sets h'({X_i}) := h(X_i | X_1 … X_{i−1})
    and extends modularly.  Lemma B.3 guarantees:

    * h'(X) = h(X)  (the chain rule telescopes);
    * h'(U) ≤ h(U) for every U;
    * h'(X_j | X_i) ≤ h(X_j | X_i) for every i before j in the order.
    """
    order = tuple(order) if order is not None else h.variables
    if set(order) != set(h.variables):
        raise ValueError(
            f"order {order} must permute the variables {h.variables}"
        )
    singleton_values: dict[str, float] = {}
    prefix: list[str] = []
    for var in order:
        singleton_values[var] = h.conditional([var], prefix)
        prefix.append(var)
    return modular(h.variables, singleton_values)
