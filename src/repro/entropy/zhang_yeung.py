"""The Zhang–Yeung non-Shannon inequality and the Fig. 2 polymatroid.

Appendix D.2 of the paper uses Zhang and Yeung's inequality [28]

    I(X;Y) ≤ 2·I(X;Y|A) + I(X;Y|B) + I(A;B) + I(A;Y|X) + I(A;X|Y)

to prove that the polymatroid bound is not tight in general (Theorem
D.3(2)): a 4-variable α-acyclic query admits statistics under which the
polymatroid LP reports 4k bits while the (almost-)entropic bound is at
most 35k/9 bits — an exponent gap of 35/36.

This module provides the inequality as a subset-indexed coefficient vector
(convention ``c · h ≥ 0``, valid for all entropic h but *not* for all
polymatroids), and the witness polymatroid of Figure 2 that violates it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .vectors import EntropyVector

__all__ = [
    "zhang_yeung_coefficients",
    "figure2_polymatroid",
    "FIGURE2_VARIABLES",
]

FIGURE2_VARIABLES: tuple[str, ...] = ("A", "B", "X", "Y")


def zhang_yeung_coefficients(
    variables: Sequence[str],
    a: str = "A",
    b: str = "B",
    x: str = "X",
    y: str = "Y",
) -> np.ndarray:
    """Coefficient vector c of the ZY inequality with c·h ≥ 0 for entropic h.

    Expanded in plain entropies the inequality reads (paper, proof of
    Prop. D.5)::

        0 ≤ 3h(XY) − 2h(X) − 2h(Y) − 4h(AXY) − h(BXY)
            + 3h(AX) + 3h(AY) + h(BX) + h(BY) − h(AB) − h(A)

    ``variables`` fixes the bitmask indexing; ``a``, ``b``, ``x``, ``y``
    choose which four variables play the ZY roles (they must be distinct
    members of ``variables``).
    """
    variables = tuple(variables)
    index = {v: i for i, v in enumerate(variables)}
    for v in (a, b, x, y):
        if v not in index:
            raise KeyError(f"{v!r} not among variables {variables}")
    if len({a, b, x, y}) != 4:
        raise ValueError("ZY roles must be four distinct variables")

    def mask(*names: str) -> int:
        m = 0
        for name in names:
            m |= 1 << index[name]
        return m

    c = np.zeros(1 << len(variables))
    c[mask(x, y)] += 3
    c[mask(x)] -= 2
    c[mask(y)] -= 2
    c[mask(a, x, y)] -= 4
    c[mask(b, x, y)] -= 1
    c[mask(a, x)] += 3
    c[mask(a, y)] += 3
    c[mask(b, x)] += 1
    c[mask(b, y)] += 1
    c[mask(a, b)] -= 1
    c[mask(a)] -= 1
    return c


def figure2_polymatroid() -> EntropyVector:
    """The polymatroid of Figure 2 on variables (A, B, X, Y).

    h(∅)=0; singletons have h=2; the pairs AX, AY, XY, BX, BY have h=3;
    AB and every superset of size ≥ 3 has h=4.  It is a polymatroid that
    satisfies the log-statistics (Σ, b) of Theorem D.3(2) and *violates*
    the Zhang–Yeung inequality — the engine of the 35/36 gap.
    """
    variables = FIGURE2_VARIABLES
    index = {v: i for i, v in enumerate(variables)}

    def mask(*names: str) -> int:
        m = 0
        for name in names:
            m |= 1 << index[name]
        return m

    values = np.zeros(16)
    explicit = {
        mask("A"): 2.0,
        mask("B"): 2.0,
        mask("X"): 2.0,
        mask("Y"): 2.0,
        mask("A", "X"): 3.0,
        mask("A", "Y"): 3.0,
        mask("X", "Y"): 3.0,
        mask("B", "X"): 3.0,
        mask("B", "Y"): 3.0,
        mask("A", "B"): 4.0,
    }
    for m in range(1, 16):
        values[m] = explicit.get(m, 4.0)
    return EntropyVector(variables, values)
