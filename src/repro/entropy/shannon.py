"""Elemental Shannon inequalities as sparse constraint matrices.

The polymatroid cone Γ_n is cut out by h(∅)=0 together with the *elemental*
inequalities (a minimal generating set of (24)–(26)):

* monotonicity at the top:  h([n]) − h([n] − i) ≥ 0           (n of them)
* submodularity:  h(S+i) + h(S+j) − h(S+i+j) − h(S) ≥ 0
  for all i < j and S ⊆ [n] − {i,j}          (C(n,2)·2^{n−2} of them)

This module produces them as a ``scipy.sparse`` matrix ``A`` over the 2^n
subset-indexed coordinates with the convention **A · h ≥ 0**, ready to drop
into the bound LP of Sec. 5 (Example 5.3).
"""

from __future__ import annotations

from functools import lru_cache
from math import comb

import numpy as np
from scipy import sparse

__all__ = ["elemental_inequalities", "count_elemental", "shannon_violations"]


def count_elemental(n: int) -> int:
    """Number of elemental inequalities for n variables."""
    if n == 0:
        return 0
    if n == 1:
        return 1  # just h({1}) ≥ 0 (monotonicity at the top)
    return n + comb(n, 2) * (1 << (n - 2))


def elemental_inequalities(n: int) -> sparse.csr_matrix:
    """Sparse matrix A with one row per elemental inequality, A·h ≥ 0.

    Columns are indexed by subset bitmask (column 0 is h(∅), always with
    coefficient 0 or cancelled; callers typically pin h(∅)=0).

    The matrix is memoised per ``n`` (building the 2^n-column block is the
    dominant setup cost of repeated ``lp_bound`` calls in a workload);
    treat the returned matrix as read-only — copy before mutating.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return _elemental_inequalities_cached(n)


@lru_cache(maxsize=None)
def _elemental_inequalities_cached(n: int) -> sparse.csr_matrix:
    size = 1 << n
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    row = 0
    full = size - 1
    # monotonicity at the top: h(full) - h(full \ {i}) >= 0
    for i in range(n):
        rows += [row, row]
        cols += [full, full & ~(1 << i)]
        data += [1.0, -1.0]
        row += 1
    # submodularity: h(S+i) + h(S+j) - h(S+i+j) - h(S) >= 0
    for i in range(n):
        for j in range(i + 1, n):
            bi, bj = 1 << i, 1 << j
            rest = [k for k in range(n) if k != i and k != j]
            for sub in range(1 << len(rest)):
                s = 0
                for t, k in enumerate(rest):
                    if sub >> t & 1:
                        s |= 1 << k
                rows += [row, row, row, row]
                cols += [s | bi, s | bj, s | bi | bj, s]
                data += [1.0, 1.0, -1.0, -1.0]
                row += 1
    matrix = sparse.csr_matrix(
        (data, (rows, cols)), shape=(row, size), dtype=float
    )
    # column 0 may carry a -1 from S=∅ submodularity rows; callers pin
    # h(∅)=0 so this is harmless, but we zero it out for clarity.
    matrix = matrix.tolil()
    matrix[:, 0] = 0.0
    return matrix.tocsr()


def shannon_violations(values: np.ndarray, tol: float = 1e-9) -> int:
    """Number of violated elemental inequalities for a raw subset vector."""
    size = len(values)
    n = size.bit_length() - 1
    if 1 << n != size:
        raise ValueError("vector length must be a power of two")
    a = elemental_inequalities(n)
    products = a.dot(np.asarray(values, float))
    return int(np.sum(products < -tol))
