"""Information-theoretic machinery: entropy vectors, cones, inequalities."""

from .groups import (
    coordinate_subgroup_relation,
    coset_relation,
    kernel_subgroup,
)
from .measures import (
    conditional_mutual_information,
    modularize,
    mutual_information,
)
from .polymatroids import is_normal, normal_coefficients, normal_from_masks
from .shannon import count_elemental, elemental_inequalities, shannon_violations
from .vectors import (
    EntropyVector,
    entropy_of_relation,
    is_totally_uniform,
    modular,
    normal,
    step_function,
)
from .zhang_yeung import (
    FIGURE2_VARIABLES,
    figure2_polymatroid,
    zhang_yeung_coefficients,
)

__all__ = [
    "EntropyVector",
    "step_function",
    "modular",
    "normal",
    "entropy_of_relation",
    "is_totally_uniform",
    "elemental_inequalities",
    "count_elemental",
    "shannon_violations",
    "normal_coefficients",
    "is_normal",
    "normal_from_masks",
    "zhang_yeung_coefficients",
    "figure2_polymatroid",
    "FIGURE2_VARIABLES",
    "mutual_information",
    "conditional_mutual_information",
    "modularize",
    "coset_relation",
    "coordinate_subgroup_relation",
    "kernel_subgroup",
]
