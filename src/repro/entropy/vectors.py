"""Entropy vectors over the subset lattice of a variable set.

An entropy vector h assigns a real h(S) ≥ 0 to every subset S of the
variables X, with h(∅)=0.  We store it densely as a numpy array indexed by
bitmask (bit i set ⟺ variable i in S), which makes Shannon-inequality
checks and LP assembly fast.

Constructors cover the special families from Sec. 3 of the paper:

* :func:`step_function` — h_W(U) = 1 iff W ∩ U ≠ ∅  (Eq. 27);
* :func:`modular` — positive combinations of singleton steps;
* :func:`normal` — positive combinations of arbitrary steps (N_n);
* :func:`entropy_of_relation` — the empirical entropic vector of a relation
  under the uniform distribution on its tuples (used for tightness proofs
  and for Theorem 1.1's proof-side checks).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..relational import Relation

__all__ = [
    "EntropyVector",
    "step_function",
    "modular",
    "normal",
    "entropy_of_relation",
    "is_totally_uniform",
]


class EntropyVector:
    """A vector in R^{2^X} with named variables, h(∅) = 0 enforced.

    Values are in **bits** (log base 2) throughout the library.
    """

    __slots__ = ("variables", "_index", "values")

    def __init__(self, variables: Sequence[str], values: np.ndarray) -> None:
        self.variables = tuple(variables)
        self._index = {v: i for i, v in enumerate(self.variables)}
        values = np.asarray(values, dtype=float)
        if values.shape != (1 << len(self.variables),):
            raise ValueError(
                f"need {1 << len(self.variables)} entries, got {values.shape}"
            )
        if abs(values[0]) > 1e-12:
            raise ValueError(f"h(∅) must be 0, got {values[0]}")
        self.values = values

    # ------------------------------------------------------------------
    def mask(self, subset: Iterable[str]) -> int:
        """Bitmask of a set of variable names."""
        m = 0
        for v in subset:
            m |= 1 << self._index[v]
        return m

    def subset_of_mask(self, mask: int) -> frozenset[str]:
        return frozenset(
            v for i, v in enumerate(self.variables) if mask >> i & 1
        )

    def h(self, subset: Iterable[str]) -> float:
        """h(S) for a set of variable names."""
        return float(self.values[self.mask(subset)])

    def conditional(self, vs: Iterable[str], us: Iterable[str]) -> float:
        """h(V | U) = h(U ∪ V) − h(U)."""
        mu = self.mask(us)
        mv = self.mask(vs)
        return float(self.values[mu | mv] - self.values[mu])

    @property
    def full(self) -> float:
        """h(X), the entropy of all variables."""
        return float(self.values[-1])

    # ------------------------------------------------------------------
    def is_polymatroid(self, tol: float = 1e-9) -> bool:
        """Check the basic Shannon inequalities (24)–(26).

        Uses the *elemental* inequalities, which generate all of them:
        monotonicity h(X) ≥ h(X−i) and submodularity
        h(S+i) + h(S+j) ≥ h(S+i+j) + h(S).
        """
        n = len(self.variables)
        vals = self.values
        total = (1 << n) - 1
        for i in range(n):
            if vals[total] < vals[total & ~(1 << i)] - tol:
                return False
        for i in range(n):
            for j in range(i + 1, n):
                bi, bj = 1 << i, 1 << j
                rest = [k for k in range(n) if k != i and k != j]
                for sub in range(1 << len(rest)):
                    s = 0
                    for t, k in enumerate(rest):
                        if sub >> t & 1:
                            s |= 1 << k
                    if vals[s | bi] + vals[s | bj] < vals[s | bi | bj] + vals[s] - tol:
                        return False
        return True

    def is_modular(self, tol: float = 1e-9) -> bool:
        """h is modular iff h(S) = Σ_{i∈S} h({i}) for all S."""
        n = len(self.variables)
        singles = [self.values[1 << i] for i in range(n)]
        for mask in range(1 << n):
            expected = sum(singles[i] for i in range(n) if mask >> i & 1)
            if abs(self.values[mask] - expected) > tol:
                return False
        return True

    # ------------------------------------------------------------------
    def __add__(self, other: "EntropyVector") -> "EntropyVector":
        if self.variables != other.variables:
            raise ValueError("variable sets differ")
        return EntropyVector(self.variables, self.values + other.values)

    def scale(self, factor: float) -> "EntropyVector":
        """factor · h (factor ≥ 0 keeps polymatroids polymatroid)."""
        return EntropyVector(self.variables, self.values * factor)

    def __eq__(self, other) -> bool:
        if not isinstance(other, EntropyVector):
            return NotImplemented
        return self.variables == other.variables and np.allclose(
            self.values, other.values
        )

    def __repr__(self) -> str:
        entries = ", ".join(
            f"h({''.join(sorted(self.subset_of_mask(m))) or '∅'})="
            f"{self.values[m]:.3g}"
            for m in range(len(self.values))
        )
        return f"<EntropyVector {entries}>"


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------
def step_function(variables: Sequence[str], w: Iterable[str]) -> EntropyVector:
    """The step function h_W (Eq. 27): h_W(U) = 1 iff W ∩ U ≠ ∅."""
    variables = tuple(variables)
    index = {v: i for i, v in enumerate(variables)}
    wmask = 0
    for v in w:
        wmask |= 1 << index[v]
    if wmask == 0:
        raise ValueError("W must be non-empty")
    size = 1 << len(variables)
    values = np.fromiter(
        (1.0 if mask & wmask else 0.0 for mask in range(size)),
        dtype=float,
        count=size,
    )
    return EntropyVector(variables, values)


def modular(
    variables: Sequence[str], singleton_values: Mapping[str, float]
) -> EntropyVector:
    """The modular function with h({v}) = singleton_values[v] (default 0)."""
    variables = tuple(variables)
    size = 1 << len(variables)
    singles = np.array(
        [float(singleton_values.get(v, 0.0)) for v in variables]
    )
    values = np.zeros(size)
    for mask in range(size):
        values[mask] = sum(singles[i] for i in range(len(variables)) if mask >> i & 1)
    return EntropyVector(variables, values)


def normal(
    variables: Sequence[str],
    coefficients: Mapping[frozenset[str], float],
) -> EntropyVector:
    """The normal polymatroid Σ_W α_W · h_W (Eq. 37); α_W ≥ 0 required."""
    variables = tuple(variables)
    size = 1 << len(variables)
    values = np.zeros(size)
    index = {v: i for i, v in enumerate(variables)}
    for w, alpha in coefficients.items():
        if alpha < 0:
            raise ValueError(f"negative coefficient for {set(w)}: {alpha}")
        if not w:
            continue
        wmask = 0
        for v in w:
            wmask |= 1 << index[v]
        for mask in range(size):
            if mask & wmask:
                values[mask] += alpha
    return EntropyVector(variables, values)


def entropy_of_relation(
    relation: Relation, variables: Sequence[str] | None = None
) -> EntropyVector:
    """Empirical entropic vector of the uniform distribution on a relation.

    For each subset S of attributes, h(S) is the Shannon entropy (bits) of
    the marginal of the uniform-on-tuples distribution projected onto S.
    For a *totally uniform* relation this equals log2 |Π_S(R)|.
    """
    attrs = tuple(variables) if variables is not None else relation.attributes
    pos = relation.positions(attrs)
    n = len(attrs)
    total = len(relation)
    if total == 0:
        raise ValueError("cannot take the entropy of an empty relation")
    size = 1 << n
    values = np.zeros(size)
    for mask in range(1, size):
        cols = [pos[i] for i in range(n) if mask >> i & 1]
        counts = Counter(tuple(row[c] for c in cols) for row in relation)
        h = 0.0
        for count in counts.values():
            prob = count / total
            h -= prob * math.log2(prob)
        values[mask] = h
    return EntropyVector(attrs, values)


def is_totally_uniform(relation: Relation, tol: float = 1e-9) -> bool:
    """Whether every marginal of the relation is uniform (Sec. 6).

    Equivalent test: h_R(S) = log2 |Π_S(R)| for every subset S.
    """
    h = entropy_of_relation(relation)
    n = len(relation.attributes)
    for mask in range(1, 1 << n):
        subset = [relation.attributes[i] for i in range(n) if mask >> i & 1]
        if abs(h.values[mask] - math.log2(relation.distinct_count(subset))) > tol:
            return False
    return True
