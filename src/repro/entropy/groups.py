"""Group-realizable entropic vectors (Appendix D.2 / Chan–Yeung [4]).

Given a finite group G and subgroups G_1, …, G_n, the relation

    R = { (aG_1, …, aG_n) : a ∈ G }                      (58)

is totally uniform and its entropic vector satisfies
h(U) = log |G| / |∩_{i∈U} G_i|.  Chan and Yeung proved that scaled limits
of such vectors fill the entropic cone — the engine behind the asymptotic
tightness of the almost-entropic bound (Theorem D.3(1)).

We realise the abelian case G = (Z_m)^k with subgroups given as subsets of
coordinates (coordinate subgroups) or, more generally, as kernels of
integer matrices mod m.  Coordinate subgroups already generate all normal
polymatroids (they produce exactly the normal relations of Sec. 6); matrix
kernels reach genuinely non-normal entropic vectors such as the XOR
parity vector.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from ..relational import Relation

__all__ = ["coset_relation", "coordinate_subgroup_relation", "kernel_subgroup"]


def kernel_subgroup(matrix: Sequence[Sequence[int]], m: int, k: int) -> frozenset:
    """The subgroup {x ∈ (Z_m)^k : A·x ≡ 0 (mod m)} as a frozenset of tuples."""
    a = np.asarray(matrix, dtype=int)
    if a.ndim != 2 or a.shape[1] != k:
        raise ValueError(f"matrix must have {k} columns, got {a.shape}")
    members = []
    for x in itertools.product(range(m), repeat=k):
        if np.all(a.dot(np.asarray(x)) % m == 0):
            members.append(tuple(x))
    return frozenset(members)


def coset_relation(
    variables: Sequence[str],
    subgroups: Sequence[frozenset],
    m: int,
    k: int,
) -> Relation:
    """The relation (58) for G = (Z_m)^k and the given subgroups.

    Each attribute value is the coset a·G_i, represented canonically as a
    frozenset of tuples.  |R| = |G| / |∩_i G_i| and, for every subset U of
    attributes, h_R(U) = log2 (|G| / |∩_{i∈U} G_i|).
    """
    variables = tuple(variables)
    if len(subgroups) != len(variables):
        raise ValueError("one subgroup per variable required")
    group = list(itertools.product(range(m), repeat=k))
    rows = []
    for a in group:
        row = []
        for sub in subgroups:
            coset = frozenset(
                tuple((ai + gi) % m for ai, gi in zip(a, g)) for g in sub
            )
            row.append(coset)
        rows.append(tuple(row))
    return Relation(variables, rows, name="coset")


def coordinate_subgroup_relation(
    variables: Sequence[str],
    coordinate_sets: Sequence[Sequence[int]],
    m: int,
    k: int,
) -> Relation:
    """Coset relation whose subgroups fix the given coordinates to 0.

    Subgroup i is {x : x_j = 0 for j ∈ coordinate_sets[i]}; the resulting
    entropic vector is Σ_j (log2 m) · h_{W_j} with W_j = {variables whose
    subgroup constrains coordinate j} — a normal polymatroid, realising
    Sec. 6's normal relations through the group lens.
    """
    subgroups = []
    for coords in coordinate_sets:
        coords = set(coords)
        if any(c < 0 or c >= k for c in coords):
            raise ValueError(f"coordinates must be in [0, {k}), got {coords}")
        members = frozenset(
            x
            for x in itertools.product(range(m), repeat=k)
            if all(x[c] == 0 for c in coords)
        )
        subgroups.append(members)
    return coset_relation(variables, subgroups, m, k)
