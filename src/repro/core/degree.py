"""Degree sequences deg_R(V | U) of relations (Sec. 1.2).

For a relation S and attribute sets U, V, ``deg_S(V | U)`` is the sorted
(non-increasing) sequence of the degrees of the U-nodes in the bipartite
graph between Π_U(S) and Π_V(S) with edges Π_{U∪V}(S): the i-th entry is
the number of distinct V-values co-occurring with the i-th most frequent
U-value.

Edge cases follow the paper's definitions:

* ``U = ∅``: a single node on the U-side; the sequence is the single value
  |Π_V(S)|, so its ℓ1 (and ℓ∞) norm is the distinct count of V — this is
  how cardinality assertions are special cases of ℓp statistics.
* ``V = ∅``: every U-value has degree 1 (the empty tuple); the sequence is
  (1, …, 1) of length |Π_U(S)|, whose ℓ1 norm is the distinct count of U.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..relational import Relation

__all__ = ["degree_sequence", "max_degree", "average_degree"]


def degree_sequence(
    relation: Relation,
    v_attrs: Sequence[str],
    u_attrs: Sequence[str] = (),
) -> np.ndarray:
    """The degree sequence deg_relation(V | U), non-increasing.

    ``v_attrs``/``u_attrs`` name columns of ``relation``; overlap is allowed
    (shared attributes contribute degree structure exactly as the
    projection-based definition prescribes).
    """
    counts = relation.group_size_counts(tuple(u_attrs), tuple(v_attrs))
    if counts.size == 0:
        return np.zeros(0, dtype=np.int64)
    out = counts.copy()
    out[::-1].sort()
    return out


def max_degree(
    relation: Relation, v_attrs: Sequence[str], u_attrs: Sequence[str] = ()
) -> int:
    """||deg(V|U)||_∞ as an integer (0 for an empty relation).

    Works on the raw group-size counts — the max of a multiset does not
    need the O(N log N) sort a full degree sequence pays.
    """
    counts = relation.group_size_counts(tuple(u_attrs), tuple(v_attrs))
    return int(counts.max()) if counts.size else 0


def average_degree(
    relation: Relation, v_attrs: Sequence[str], u_attrs: Sequence[str] = ()
) -> float:
    """avg(deg(V|U)) — what the textbook estimator (15)/(16) uses.

    Computed from the unsorted counts; the mean is order-independent.
    """
    counts = relation.group_size_counts(tuple(u_attrs), tuple(v_attrs))
    return float(counts.mean()) if counts.size else 0.0
