"""ℓp-norms of degree sequences, in log space, plus Lemma A.1.

Degree sequences on realistic data are long and skewed, and the paper's
experiments use norms up to ℓ30: ``d**30`` overflows float64 for degrees as
small as ~10^10.  All norms are therefore computed and carried in **log2**
space via ``scipy.special.logsumexp``; linear-space values are derived and
may legitimately be ``inf``.

Lemma A.1 (Appendix A) — the first m ℓp-norms of a length-m sequence
determine the sequence — is implemented by :func:`sequence_from_norms`
through Newton's identities and polynomial root extraction.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np
from scipy.special import logsumexp

__all__ = [
    "log2_norm",
    "log2_norms",
    "lp_norm",
    "norms_of_sequence",
    "sequence_from_norms",
    "power_sums_from_norms",
]

_LN2 = math.log(2.0)


def _as_positive_array(degrees: Iterable[float]) -> np.ndarray:
    d = np.asarray(list(degrees) if not isinstance(degrees, np.ndarray) else degrees,
                   dtype=float)
    if d.ndim != 1:
        raise ValueError("degree sequence must be one-dimensional")
    if np.any(d <= 0):
        raise ValueError("degrees must be strictly positive")
    return d


def log2_norm(degrees: Iterable[float], p: float) -> float:
    """log2 of the ℓp-norm of a degree sequence.

    ``p`` may be any value in (0, ∞]; ``p = math.inf`` gives the max degree
    (log2 of it).  An empty sequence has norm 0, whose log2 is −inf.
    """
    d = _as_positive_array(degrees)
    if d.size == 0:
        return -math.inf
    if p == math.inf:
        return float(np.log2(d.max()))
    if p <= 0:
        raise ValueError(f"p must be positive, got {p}")
    log_d = np.log(d)
    return float(logsumexp(p * log_d) / (p * _LN2))


def lp_norm(degrees: Iterable[float], p: float) -> float:
    """The ℓp-norm in linear space (may overflow to ``inf`` for large p)."""
    l2 = log2_norm(degrees, p)
    if l2 == -math.inf:
        return 0.0
    try:
        return 2.0 ** l2
    except OverflowError:  # pragma: no cover - 2.0**float raises only at huge l2
        return math.inf


def log2_norms(
    degrees: Iterable[float], ps: Iterable[float]
) -> dict[float, float]:
    """log2 ℓp-norms for every p in ``ps``, in one vectorized batch.

    ``log(d)`` is computed once and all finite p values are evaluated by a
    single 2-D ``logsumexp`` (one row per p); results are bit-for-bit
    identical to calling :func:`log2_norm` per p.
    """
    ps = list(ps)
    d = _as_positive_array(degrees)
    for p in ps:
        if p != math.inf and p <= 0:
            raise ValueError(f"p must be positive, got {p}")
    if d.size == 0:
        return {p: -math.inf for p in ps}
    out: dict[float, float] = {}
    finite = [p for p in ps if p != math.inf]
    if finite:
        p_arr = np.asarray(finite, dtype=float)
        log_d = np.log(d)
        batched = logsumexp(p_arr[:, None] * log_d[None, :], axis=1)
        for p, value in zip(finite, batched / (p_arr * _LN2)):
            out[p] = float(value)
    if len(finite) != len(ps):
        out[math.inf] = float(np.log2(d.max()))
    return {p: out[p] for p in ps}


def norms_of_sequence(
    degrees: Sequence[float], ps: Iterable[float]
) -> dict[float, float]:
    """ℓp-norms (linear space) for each p in ``ps`` (batched; see
    :func:`log2_norms`)."""
    ps = list(ps)
    logs = log2_norms(degrees, ps)
    out: dict[float, float] = {}
    for p in ps:
        l2 = logs[p]
        if l2 == -math.inf:
            out[p] = 0.0
        else:
            try:
                out[p] = 2.0 ** l2
            except OverflowError:  # pragma: no cover - huge l2 only
                out[p] = math.inf
    return out


def power_sums_from_norms(norms: Sequence[float]) -> list[float]:
    """Convert norms (ℓ1, ℓ2, …, ℓm) to power sums (Σd, Σd², …, Σd^m)."""
    return [float(norm) ** (k + 1) for k, norm in enumerate(norms)]


def sequence_from_norms(norms: Sequence[float], tol: float = 1e-6) -> np.ndarray:
    """Recover the degree sequence from its first m ℓp-norms (Lemma A.1).

    Parameters
    ----------
    norms:
        ``norms[k]`` is the ℓ_{k+1}-norm of a non-increasing sequence of m
        strictly positive degrees, for k = 0..m−1.
    tol:
        Tolerance for discarding imaginary parts of the recovered roots.

    Returns
    -------
    The degrees sorted in non-increasing order.

    Notes
    -----
    Newton's identities convert power sums p_k = ℓ_k^k into elementary
    symmetric polynomials e_k:  k·e_k = Σ_{i=1..k} (−1)^{i−1} e_{k−i} p_i.
    Vieta then gives the monic polynomial with the degrees as roots.  The
    inversion is numerically delicate for long, spread-out sequences — the
    paper stores a handful of norms precisely because the full inverse map
    is impractical; tests exercise short sequences.
    """
    m = len(norms)
    if m == 0:
        return np.zeros(0)
    p = power_sums_from_norms(norms)
    e = [1.0] + [0.0] * m
    for k in range(1, m + 1):
        acc = 0.0
        for i in range(1, k + 1):
            acc += (-1) ** (i - 1) * e[k - i] * p[i - 1]
        e[k] = acc / k
    # polynomial λ^m − e1·λ^{m−1} + e2·λ^{m−2} − … + (−1)^m e_m
    coefficients = [(-1) ** k * e[k] for k in range(m + 1)]
    roots = np.roots(coefficients)
    if np.any(np.abs(roots.imag) > tol * (1 + np.abs(roots.real))):
        raise ValueError(
            "norms are inconsistent with a real degree sequence "
            f"(roots {roots})"
        )
    degrees = np.sort(roots.real)[::-1]
    if np.any(degrees < -tol):
        raise ValueError(f"recovered negative degrees: {degrees}")
    return np.clip(degrees, 0.0, None)
