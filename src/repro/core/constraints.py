"""Schema constraints as ℓp statistics: FDs and keys.

The paper situates itself against the functional-dependency bounds of
[11, 16]: an FD U → V is exactly the assertion ‖deg(V|U)‖_∞ ≤ 1, i.e. a
*free* ℓ∞ statistic with log-bound 0, and a key of R is the FD from the
key columns to the rest.  Feeding these into the bound LP recovers the
FD-aware bounds as a special case of the ℓp framework — these helpers
build the corresponding :class:`ConcreteStatistic` objects so schema
knowledge can join measured statistics in one LP.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..query.query import Atom, ConjunctiveQuery
from .conditionals import (
    AbstractStatistic,
    ConcreteStatistic,
    Conditional,
    StatisticsSet,
)

__all__ = ["fd_statistic", "key_statistic", "key_statistics_for_query"]

import math


def fd_statistic(
    guard: Atom, determinant: Iterable[str], dependent: Iterable[str]
) -> ConcreteStatistic:
    """The statistic for the functional dependency U → V on an atom.

    Encodes ‖deg_guard(V|U)‖_∞ ≤ 1 (log2-bound 0).  The FD is an
    *assertion*: feeding it to the LP is only sound if the data really
    satisfies it (checkable via ``stat.holds_on(db)``).
    """
    u = frozenset(determinant)
    v = frozenset(dependent)
    if not v:
        raise ValueError("the dependent set V must be non-empty")
    if u & v:
        # X → X-overlap is trivially true; keep only the informative part
        v = v - u
        if not v:
            raise ValueError("V ⊆ U makes the FD vacuous")
    return ConcreteStatistic(
        AbstractStatistic(Conditional(v, u), math.inf), 0.0, guard
    )


def key_statistic(guard: Atom, key: Iterable[str]) -> ConcreteStatistic:
    """The FD statistic for ``key`` being a key of the guard atom.

    A key K of R(Z) is the FD K → Z − K.
    """
    key_set = frozenset(key)
    rest = guard.variable_set - key_set
    if not key_set <= guard.variable_set:
        raise ValueError(
            f"key {sorted(key_set)} not within {guard} variables"
        )
    if not rest:
        raise ValueError("the key covers the whole atom; nothing to assert")
    return fd_statistic(guard, key_set, rest)


def key_statistics_for_query(
    query: ConjunctiveQuery,
    keys: dict[str, Sequence[str]],
) -> StatisticsSet:
    """Key statistics for every atom whose relation has a declared key.

    ``keys`` maps relation names to *column positions by variable name at
    that position* — i.e. the key is given as attribute positions via the
    relation's first atom occurrence.  For the common case of binary and
    ternary atoms it is simplest to give the key as the set of variable
    positions: here we accept column indices.

    Example: ``{"title": [0]}`` declares the first column of ``title`` a
    key; for every atom title(m, k) this yields ‖deg(k|m)‖_∞ ≤ 1.
    """
    stats = []
    for atom in query.atoms:
        positions = keys.get(atom.relation)
        if positions is None:
            continue
        key_vars = {atom.variables[i] for i in positions}
        rest = atom.variable_set - key_vars
        if not rest:
            continue
        stats.append(fd_statistic(atom, key_vars, rest))
    return StatisticsSet(stats)
