"""The ℓp-norm bound as a linear program (Sec. 5, Theorem 5.2).

Theorem 5.2 identifies the best upper bound derivable from a statistics set
(Σ, B) with the optimum of

    Log-L-Bound_K(Σ, b)  =  max h(X)
                            s.t.  h ∈ K,
                                  (1/p_i)·h(U_i) + h(V_i|U_i) ≤ b_i  ∀τ_i∈Σ

over a cone K of set functions.  This module implements the LP for three
cones:

``polymatroid``
    K = Γ_n, cut out by the elemental Shannon inequalities.  The exact
    polymatroid bound of the paper; 2^n LP variables.
``normal``
    K = N_n, parameterised by step-function coefficients α_W ≥ 0.  By
    Theorem 6.1 this equals the polymatroid bound whenever all statistics
    are *simple* (|U| ≤ 1) — and it is dramatically smaller: one LP column
    per distinct intersection pattern of W with the constraint sets.
``modular``
    K = M_n (singleton steps only).  This is the cone implicitly used by
    Jayaraman et al. [14]; Appendix B shows it is *not* sound in general —
    exposed here to reproduce that analysis, not for estimation.

Results carry dual weights: the witness inequality (8) behind the bound
and therefore "which norms were used" (the paper's Fig. 1 Norms column).

Solve modes
-----------
Two solve paths answer every LP, selected by a process-wide *LP mode*
(``REPRO_LP``, mirroring ``REPRO_KERNELS``):

``REPRO_LP=oneshot``
    :func:`scipy.optimize.linprog` (method ``highs``), one cold solve per
    request.  This is the oracle path — :func:`lp_bound` always uses it.
``REPRO_LP=persistent``
    A long-lived :mod:`highspy` model per (cone, order, structure),
    cached by :class:`BoundSolver` next to its assemblies: re-solves swap
    only the statistic rows' bounds, so HiGHS warm-starts from the
    previous basis instead of re-presolving and solving cold.  Requires
    the ``repro[service]`` extra; raises :class:`LpUnavailableError`
    without it.
``REPRO_LP=auto`` (default)
    ``persistent`` when :mod:`highspy` is importable, else ``oneshot``.

Both paths solve the *identical* constraint system; optima agree to
solver tolerance (the differential suite ``tests/core/test_lp_modes.py``
enforces 1e-6 on ``log2_bound`` across the E-family), but last-bit
values and degenerate dual witnesses may differ — anything that needs
bit-identical numbers pins ``oneshot``.
"""

from __future__ import annotations

import math
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from ..entropy.shannon import elemental_inequalities
from ..entropy.vectors import EntropyVector
from ..query.query import ConjunctiveQuery
from .conditionals import ConcreteStatistic, StatisticsSet
from .lru import LruCache

__all__ = [
    "BoundResult",
    "BoundSolver",
    "BoundTask",
    "BoundTaskError",
    "LpUnavailableError",
    "lp_bound",
    "lp_bound_many",
    "CONES",
    "LP_MODES",
    "active_lp_mode",
    "configured_lp_mode",
    "forced_lp_mode",
    "highspy_available",
    "set_lp_mode",
]

CONES = ("auto", "polymatroid", "normal", "modular")

_POLYMATROID_MAX_VARS = 14
_NORMAL_MAX_VARS = 22

# ----------------------------------------------------------------------
# LP solve modes (REPRO_LP), mirroring relational.kernels' REPRO_KERNELS
# ----------------------------------------------------------------------

LP_MODES = ("auto", "persistent", "oneshot")

_LP_ENV_VAR = "REPRO_LP"


class LpUnavailableError(RuntimeError):
    """The ``persistent`` LP mode was requested but highspy is missing."""


try:  # pragma: no cover - exercised on the CI service leg
    import highspy as _highspy

    _HAVE_HIGHSPY = True
except ImportError:
    _highspy = None
    _HAVE_HIGHSPY = False


def highspy_available() -> bool:
    """Whether the persistent warm-started path can run in this process."""
    return _HAVE_HIGHSPY


def configured_lp_mode() -> str:
    """The mode requested by ``REPRO_LP`` (default ``auto``)."""
    mode = os.environ.get(_LP_ENV_VAR, "auto").strip().lower() or "auto"
    if mode not in LP_MODES:
        raise ValueError(
            f"{_LP_ENV_VAR}={mode!r} is not one of {', '.join(LP_MODES)}"
        )
    return mode


def _resolve_lp_mode(mode: str) -> str:
    if mode not in LP_MODES:
        raise ValueError(
            f"LP mode {mode!r} is not one of {', '.join(LP_MODES)}"
        )
    if mode == "auto":
        return "persistent" if _HAVE_HIGHSPY else "oneshot"
    if mode == "persistent" and not _HAVE_HIGHSPY:
        raise LpUnavailableError(
            "LP mode 'persistent' requested but highspy is not importable; "
            "install the optional extra (pip install 'repro[service]') "
            "or use REPRO_LP=oneshot"
        )
    return mode


#: The resolved mode (``"persistent"`` | ``"oneshot"``), lazily bound so
#: importing the package never fails — a bad ``REPRO_LP`` value or a
#: missing highspy surfaces on the first governed solve (or an explicit
#: :func:`set_lp_mode`), with a message naming the fix.
_LP_ACTIVE: str | None = None


def active_lp_mode() -> str:
    """The resolved LP mode of this process."""
    global _LP_ACTIVE
    if _LP_ACTIVE is None:
        _LP_ACTIVE = _resolve_lp_mode(configured_lp_mode())
    return _LP_ACTIVE


def set_lp_mode(mode: str | None = None) -> str:
    """Pin the process-wide LP mode (``None`` re-reads ``REPRO_LP``)."""
    global _LP_ACTIVE
    if mode is None:
        mode = configured_lp_mode()
    _LP_ACTIVE = _resolve_lp_mode(mode)
    return _LP_ACTIVE


@contextmanager
def forced_lp_mode(mode: str):
    """Temporarily pin the LP mode (tests and benchmarks)."""
    global _LP_ACTIVE
    previous = _LP_ACTIVE
    _LP_ACTIVE = _resolve_lp_mode(mode)
    try:
        yield _LP_ACTIVE
    finally:
        _LP_ACTIVE = previous


@dataclass
class BoundResult:
    """Outcome of the bound LP.

    ``log2_bound`` is the log2 of the upper bound on |Q(D)| (``inf`` when
    the statistics do not bound the output, e.g. a join column without any
    statistic).  ``dual_weights[i]`` is the weight w_i of statistic i in
    the witness inequality (8); Σ w_i·b_i = log2_bound at optimality.
    """

    log2_bound: float
    cone: str
    status: str
    variables: tuple[str, ...]
    statistics: StatisticsSet
    dual_weights: np.ndarray | None = None
    h_values: np.ndarray | None = None
    normal_coefficients: dict[int, float] | None = field(default=None, repr=False)

    @property
    def bound(self) -> float:
        """The bound in linear space (may overflow to inf)."""
        if self.log2_bound == math.inf:
            return math.inf
        if self.log2_bound == -math.inf:
            return 0.0
        try:
            return 2.0 ** self.log2_bound
        except OverflowError:  # pragma: no cover
            return math.inf

    def used_statistics(
        self, tol: float = 1e-7
    ) -> list[tuple[ConcreteStatistic, float]]:
        """Statistics with non-zero dual weight, i.e. those the bound uses."""
        if self.dual_weights is None:
            return []
        return [
            (stat, float(w))
            for stat, w in zip(self.statistics, self.dual_weights)
            if w > tol
        ]

    def norms_used(self, tol: float = 1e-7) -> list[float]:
        """Sorted distinct p values carrying dual weight (Fig. 1 column)."""
        return sorted({stat.p for stat, _ in self.used_statistics(tol)})

    def witness_inequality(self, tol: float = 1e-7) -> str:
        """Human-readable rendering of the witness inequality (8)."""
        terms = []
        for stat, w in self.used_statistics(tol):
            cond = stat.conditional
            u = ",".join(sorted(cond.u)) or "∅"
            v = ",".join(sorted(cond.v))
            inv_p = 0.0 if stat.p == math.inf else 1.0 / stat.p
            terms.append(f"{w:.4g}·({inv_p:.4g}·h({u}) + h({v}|{u}))")
        lhs = " + ".join(terms) if terms else "0"
        return f"{lhs} ≥ h({','.join(self.variables)})"

    def entropy_vector(self) -> EntropyVector:
        """The optimal h* as an :class:`EntropyVector` (primal witness)."""
        if self.h_values is None:
            raise ValueError(f"no primal solution (status: {self.status})")
        return EntropyVector(self.variables, self.h_values)


def _variable_order(
    query: ConjunctiveQuery | None,
    statistics: StatisticsSet,
    variables: Sequence[str] | None,
) -> tuple[str, ...]:
    if variables is not None:
        return tuple(variables)
    if query is not None:
        return query.variables
    seen: dict[str, None] = {}
    for stat in statistics:
        for v in sorted(stat.conditional.variables):
            seen.setdefault(v, None)
    return tuple(seen)


def _stat_structure(
    variables: tuple[str, ...], statistics: StatisticsSet
) -> tuple[tuple[tuple[int, int, float], ...], np.ndarray]:
    """The LP-relevant *structure* of a statistics set, plus its b vector.

    Each statistic contributes one constraint
    (1/p)h(U) + h(UV) − h(U) ≤ b  ⟺  h(UV) + (1/p − 1)·h(U) ≤ b,
    fully described by ``(mask_u, mask_uv, 1/p)`` over subset masks — at
    most two nonzeros, never a dense 2^n row.  The structure is the
    constraint matrix's identity: two statistics sets with equal structure
    differ only in ``b``, which is exactly what :class:`BoundSolver`'s
    re-solve path swaps.
    """
    index = {v: i for i, v in enumerate(variables)}
    struct = []
    b = np.empty(len(statistics))
    for i, stat in enumerate(statistics):
        cond = stat.conditional
        mask_u = 0
        for u in cond.u:
            mask_u |= 1 << index[u]
        mask_uv = mask_u
        for v in cond.v:
            mask_uv |= 1 << index[v]
        inv_p = 0.0 if stat.p == math.inf else 1.0 / stat.p
        struct.append((mask_u, mask_uv, inv_p))
        b[i] = stat.log2_bound
    return tuple(struct), b


def _solve(
    c: np.ndarray,
    a_ub,
    b_ub: np.ndarray,
    bounds,
) -> "linprog.OptimizeResult":
    return linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")


@lru_cache(maxsize=None)
def _neg_shannon_block(n: int) -> tuple[sparse.csr_matrix, int]:
    """The memoised −A block of the elemental inequalities plus its row
    count — rebuilt-per-call negation was the dominant setup cost of
    repeated polymatroid bounds.  Read-only (``sparse.vstack`` copies)."""
    shannon = elemental_inequalities(n)
    return (-shannon).tocsr(), shannon.shape[0]


@dataclass
class _Assembly:
    """A cached constraint skeleton: everything but the b vector.

    For the polymatroid cone ``a_stats`` holds the statistic rows (≤2
    nonzeros each, assembled as COO — never through dense 2^n rows) and
    ``a_ub`` the full stat+Shannon matrix; for the step cones ``a_ub`` is
    the dense statistic-row matrix over the deduplicated step-function
    ``candidates`` (``None`` when there are no statistics).
    """

    cone: str
    num_stats: int
    a_ub: "sparse.csr_matrix | np.ndarray | None"
    c: np.ndarray
    bounds: list[tuple[float, float | None]]
    a_stats: "sparse.csr_matrix | None" = None
    candidates: np.ndarray | None = None


def _stat_block(
    struct: Sequence[tuple[int, int, float]], size: int
) -> sparse.csr_matrix:
    """The statistic constraint rows as a sparse matrix, built directly in
    COO form (duplicate entries sum; explicit zeros are eliminated, so the
    result is bit-identical to densifying each row first)."""
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for i, (mask_u, mask_uv, inv_p) in enumerate(struct):
        rows.append(i)
        cols.append(mask_uv)
        data.append(1.0)
        if mask_u:
            rows.append(i)
            cols.append(mask_u)
            data.append(inv_p - 1.0)
    block = sparse.coo_matrix(
        (data, (rows, cols)), shape=(len(struct), size)
    ).tocsr()
    block.eliminate_zeros()
    return block


def _assemble_polymatroid(
    n: int, struct: Sequence[tuple[int, int, float]]
) -> _Assembly:
    if n > _POLYMATROID_MAX_VARS:
        raise ValueError(
            f"polymatroid cone limited to {_POLYMATROID_MAX_VARS} variables "
            f"(got {n}); use cone='normal' for simple statistics"
        )
    size = 1 << n
    neg_shannon, _ = _neg_shannon_block(n)  # −A from A·h ≥ 0
    a_stats = _stat_block(struct, size) if struct else None
    if a_stats is not None:
        a_ub = sparse.vstack([a_stats, neg_shannon], format="csr")
    else:
        a_ub = sparse.vstack([neg_shannon], format="csr")
    c = np.zeros(size)
    c[size - 1] = -1.0
    bounds = [(0.0, 0.0)] + [(0.0, None)] * (size - 1)
    return _Assembly("polymatroid", len(struct), a_ub, c, bounds, a_stats)


def _step_candidates(
    n: int, cone: str, struct: Sequence[tuple[int, int, float]]
) -> np.ndarray:
    """Step-function masks W: singletons (modular) or all non-empty W
    deduplicated by intersection pattern with the constraint sets."""
    if cone == "modular":
        return np.array([1 << i for i in range(n)], dtype=np.int64)
    if n > _NORMAL_MAX_VARS:
        raise ValueError(
            f"normal cone limited to {_NORMAL_MAX_VARS} variables (got {n})"
        )
    all_w = np.arange(1, 1 << n, dtype=np.int64)
    relevant = sorted({m for mu, muv, _ in struct for m in (mu, muv) if m})
    if not relevant:
        return all_w[:1]
    patterns = np.stack([(all_w & g) != 0 for g in relevant], axis=1)
    _, keep = np.unique(patterns, axis=0, return_index=True)
    return all_w[np.sort(keep)]


def _assemble_step_cone(
    n: int, cone: str, struct: Sequence[tuple[int, int, float]]
) -> _Assembly:
    candidates = _step_candidates(n, cone, struct)
    m = len(candidates)
    rows = []
    for mask_u, mask_uv, inv_p in struct:
        hit_uv = ((candidates & mask_uv) != 0).astype(float)
        hit_u = (
            ((candidates & mask_u) != 0).astype(float) if mask_u else 0.0
        )
        rows.append(hit_uv + (inv_p - 1.0) * hit_u)
    a_ub = np.array(rows) if rows else None
    # every non-empty W intersects X, so h(X) = Σ_W α_W
    c = -np.ones(m)
    bounds = [(0.0, None)] * m
    return _Assembly(cone, len(struct), a_ub, c, bounds, None, candidates)


def _optimal_result(
    assembly: _Assembly,
    variables: tuple[str, ...],
    statistics: StatisticsSet,
    log2_bound: float,
    x: np.ndarray,
    stat_duals: np.ndarray,
) -> BoundResult:
    """Wrap an optimal (objective, primal, stat duals) into a BoundResult.

    Shared by the scipy one-shot path and the persistent HiGHS path — the
    two differ only in how the raw solution was produced.
    """
    if assembly.cone == "polymatroid":
        return BoundResult(
            log2_bound,
            "polymatroid",
            "optimal",
            variables,
            statistics,
            dual_weights=stat_duals,
            h_values=np.asarray(x, float),
        )
    alpha = {
        int(w): float(a)
        for w, a in zip(assembly.candidates, x)
        if a > 1e-12
    }
    size = 1 << len(variables)
    h_values = np.zeros(size)
    for w_mask, a in alpha.items():
        masks = np.arange(size)
        h_values[(masks & w_mask) != 0] += a
    return BoundResult(
        log2_bound,
        assembly.cone,
        "optimal",
        variables,
        statistics,
        dual_weights=stat_duals,
        h_values=h_values,
        normal_coefficients=alpha,
    )


def _solve_assembly(
    assembly: _Assembly,
    b_stats: np.ndarray,
    variables: tuple[str, ...],
    statistics: StatisticsSet,
    extra_inequalities: Sequence[np.ndarray] = (),
) -> BoundResult:
    """Run the LP for an assembled skeleton and wrap up a BoundResult."""
    cone = assembly.cone
    if cone == "polymatroid":
        a_ub = assembly.a_ub
        extra_rows = len(extra_inequalities)
        if extra_rows:
            size = len(assembly.c)
            blocks = [a_ub]
            for vec in extra_inequalities:
                vec = np.asarray(vec, float)
                if vec.shape != (size,):
                    raise ValueError(
                        f"extra inequality must have length {size}, "
                        f"got {vec.shape}"
                    )
                blocks.append(sparse.csr_matrix(-vec.reshape(1, -1)))
            a_ub = sparse.vstack(blocks, format="csr")
        shannon_rows = a_ub.shape[0] - assembly.num_stats - extra_rows
        b_ub = np.concatenate(
            [b_stats, np.zeros(shannon_rows + extra_rows)]
        )
        res = _solve(assembly.c, a_ub, b_ub, assembly.bounds)
    else:
        b_arr = b_stats if assembly.num_stats else None
        res = _solve(assembly.c, assembly.a_ub, b_arr, assembly.bounds)
    if res.status == 3:
        return BoundResult(math.inf, cone, "unbounded", variables, statistics)
    if res.status == 2:
        return BoundResult(-math.inf, cone, "infeasible", variables, statistics)
    if res.status != 0:
        return BoundResult(
            math.nan, cone, f"error: {res.message}", variables, statistics
        )
    if cone == "polymatroid":
        duals = -np.asarray(res.ineqlin.marginals[: assembly.num_stats], float)
    elif assembly.num_stats:
        duals = -np.asarray(res.ineqlin.marginals, float)
    else:
        duals = np.zeros(0)
    return _optimal_result(
        assembly, variables, statistics, float(-res.fun), res.x, duals
    )


class _PersistentModel:
    """A long-lived HiGHS model for one cached assembly.

    Built once per (cone, order, structure) from the same matrices the
    one-shot path hands to scipy; every re-solve swaps only the statistic
    rows' upper bounds (the Shannon rows stay ≤ 0), so HiGHS keeps the
    previous basis and warm-starts the simplex instead of solving cold.
    Thread-safe: one model is shared across :func:`lp_bound_many`'s
    thread pool, serialised by a per-model lock (HiGHS instances are not
    reentrant).
    """

    def __init__(self, assembly: _Assembly) -> None:
        if not _HAVE_HIGHSPY:  # pragma: no cover - guarded by callers
            raise LpUnavailableError("highspy is not importable")
        if not assembly.num_stats:
            raise ValueError("persistent models need ≥ 1 statistic row")
        self._assembly = assembly
        self._lock = threading.Lock()
        self.resolves = 0
        matrix = sparse.csr_matrix(assembly.a_ub)
        num_rows, num_cols = matrix.shape
        inf = _highspy.kHighsInf
        lp = _highspy.HighsLp()
        lp.num_col_ = num_cols
        lp.num_row_ = num_rows
        lp.col_cost_ = np.asarray(assembly.c, dtype=np.float64)
        lp.col_lower_ = np.array(
            [low for low, _ in assembly.bounds], dtype=np.float64
        )
        lp.col_upper_ = np.array(
            [inf if high is None else high for _, high in assembly.bounds],
            dtype=np.float64,
        )
        lp.row_lower_ = np.full(num_rows, -inf)
        lp.row_upper_ = np.zeros(num_rows)
        lp.a_matrix_.format_ = _highspy.MatrixFormat.kRowwise
        lp.a_matrix_.start_ = matrix.indptr
        lp.a_matrix_.index_ = matrix.indices
        lp.a_matrix_.value_ = matrix.data
        solver = _highspy.Highs()
        solver.setOptionValue("output_flag", False)
        solver.passModel(lp)
        self._solver = solver
        self._inf = inf

    def solve(
        self,
        b_stats: np.ndarray,
        variables: tuple[str, ...],
        statistics: StatisticsSet,
    ) -> BoundResult:
        assembly = self._assembly
        with self._lock:
            solver = self._solver
            for i, value in enumerate(np.asarray(b_stats, dtype=float)):
                solver.changeRowBounds(i, -self._inf, float(value))
            solver.run()
            status = solver.getModelStatus()
            Status = _highspy.HighsModelStatus
            if status in (Status.kUnbounded, Status.kUnboundedOrInfeasible):
                # h ≡ 0 is always feasible for our LPs (b ≥ 0), so an
                # ambiguous presolve verdict means unbounded in practice
                return BoundResult(
                    math.inf,
                    assembly.cone,
                    "unbounded",
                    variables,
                    statistics,
                )
            if status == Status.kInfeasible:
                return BoundResult(
                    -math.inf,
                    assembly.cone,
                    "infeasible",
                    variables,
                    statistics,
                )
            if status != Status.kOptimal:
                return BoundResult(
                    math.nan,
                    assembly.cone,
                    f"error: {solver.modelStatusToString(status)}",
                    variables,
                    statistics,
                )
            self.resolves += 1
            solution = solver.getSolution()
            x = np.asarray(solution.col_value, dtype=float)
            duals = -np.asarray(
                solution.row_dual[: assembly.num_stats], dtype=float
            )
            objective = float(solver.getObjectiveValue())
        return _optimal_result(
            assembly, variables, statistics, -objective, x, duals
        )


def _polymatroid_lp(
    variables: tuple[str, ...],
    statistics: StatisticsSet,
    extra_inequalities: Sequence[np.ndarray],
) -> BoundResult:
    struct, b_stats = _stat_structure(variables, statistics)
    assembly = _assemble_polymatroid(len(variables), struct)
    return _solve_assembly(
        assembly, b_stats, variables, statistics, extra_inequalities
    )


def _step_cone_lp(
    variables: tuple[str, ...],
    statistics: StatisticsSet,
    cone: str,
) -> BoundResult:
    """LP over positive combinations of step functions.

    ``cone='normal'`` uses all non-empty W (deduplicated by intersection
    pattern with the constraint sets); ``cone='modular'`` only singletons.
    """
    struct, b_stats = _stat_structure(variables, statistics)
    assembly = _assemble_step_cone(len(variables), cone, struct)
    return _solve_assembly(assembly, b_stats, variables, statistics)


def lp_bound(
    statistics: StatisticsSet | Iterable[ConcreteStatistic],
    query: ConjunctiveQuery | None = None,
    cone: str = "auto",
    variables: Sequence[str] | None = None,
    extra_inequalities: Sequence[np.ndarray] = (),
) -> BoundResult:
    """Compute the ℓp bound of Theorem 5.2 for a statistics set.

    Parameters
    ----------
    statistics:
        Concrete statistics (Σ, B); bounds are log2 values.
    query:
        The query, used to fix the variable order (and X = all variables).
        May be omitted when ``variables`` is given or when the statistics'
        conditionals already mention every variable.
    cone:
        One of :data:`CONES`.  ``auto`` picks ``normal`` when every
        statistic is simple (exact by Theorem 6.1) and ``polymatroid``
        otherwise.
    extra_inequalities:
        Additional valid entropic inequalities c·h ≥ 0 (subset-indexed
        vectors) to tighten the cone — e.g. Zhang–Yeung instantiations for
        the Appendix D.2 analysis.  Only supported by the polymatroid cone.

    Returns
    -------
    A :class:`BoundResult`; ``result.log2_bound`` bounds log2 |Q(D)| for
    every database D satisfying (Σ, B) (Theorem 1.1 + Theorem 5.2).
    """
    if not isinstance(statistics, StatisticsSet):
        statistics = StatisticsSet(statistics)
    order = _variable_order(query, statistics, variables)
    cone = _resolve_cone(cone, order, statistics, bool(extra_inequalities))
    if cone in ("normal", "modular"):
        return _step_cone_lp(order, statistics, cone)
    return _polymatroid_lp(order, statistics, list(extra_inequalities))


def _resolve_cone(
    cone: str,
    order: tuple[str, ...],
    statistics: StatisticsSet,
    has_extra: bool,
) -> str:
    """Validate inputs and resolve ``auto`` to a concrete cone."""
    if not order:
        raise ValueError("no variables: provide a query or variables=")
    if cone not in CONES:
        raise ValueError(f"unknown cone {cone!r}; expected one of {CONES}")
    if cone == "auto":
        if has_extra:
            return "polymatroid"
        if statistics.is_simple and len(order) <= _NORMAL_MAX_VARS:
            return "normal"
        return "polymatroid"
    if cone in ("normal", "modular") and has_extra:
        raise ValueError("extra_inequalities require the polymatroid cone")
    return cone


class BoundSolver:
    """Structure-cached LP solving for repeated bound computations.

    A workload (an experiment sweep, a join-order search, a scale series)
    solves the *same LP shapes* over and over: the constraint matrix is
    fully determined by the variable order and the statistics structure
    (which conditionals, which p's — see :func:`_stat_structure`), while
    only the right-hand side ``b`` carries the measured norms.  The solver
    therefore keeps two caches:

    * an **assembly cache** keyed by (cone, variable order, structure):
      the sparse constraint skeleton is built once and re-solves swap only
      ``b_ub`` — scale sweeps and per-dataset repetitions of one query
      template never re-assemble;
    * a **result memo** keyed additionally by the ``b`` values: repeated
      requests for the *identical* bound (the plan-search pattern — every
      candidate plan re-costs the same subqueries) are answered without
      calling the LP solver at all.

    Under LP mode ``oneshot`` every fresh solve goes through the exact
    code path of :func:`lp_bound` on a bit-identical constraint matrix,
    so results are numerically identical to the one-shot path; memo hits
    return the previously computed numbers re-bound to the caller's
    statistics set.  Under ``persistent`` (see the module docstring) the
    solver additionally keeps one warm :class:`_PersistentModel` per
    assembly and re-solves swap only the statistic bounds — optima agree
    with the oracle to solver tolerance, not bit-identically.

    **Locking discipline** (the solver is shared by
    :func:`lp_bound_many`'s thread pool and by every thread of the
    bound service's HTTP front-end): all cache and counter mutations
    happen under ``self._lock``; LP solves and assembly construction
    always run *outside* it, so a slow solve never blocks other
    threads' cache hits.  The result-memo hit path first probes the
    memo with a recency-neutral lock-free read
    (:meth:`~repro.core.lru.LruCache.peek`, a plain dict read — atomic
    under the GIL) and takes the lock only to bump the hit counter and
    LRU recency; a warm request therefore holds the lock for a
    dictionary operation, never for LP work.  Whether the *calling
    thread's* last solve was a memo hit is recorded thread-locally and
    exposed as :attr:`last_solve_cached` — reading shared counters
    before/after a solve is racy under concurrency and must not be
    used for that purpose.

    All three caches are LRU under optional budgets
    (``max_cached_results`` / ``result_cache_bytes`` for the result
    memo, ``max_cached_assemblies`` / ``assembly_cache_bytes`` for the
    constraint skeletons; persistent models share the assemblies'
    entry cap — their real memory lives in native HiGHS structures the
    byte estimator cannot see).  ``None`` (the default) leaves a
    budget unbounded, the historical behaviour.  An evicted entry is
    simply recomputed on the next request — results are unaffected.

    ``lp_mode`` pins this solver to a mode; ``None`` (default) follows
    the process-wide :func:`active_lp_mode` at each solve.
    """

    def __init__(
        self,
        memoize_results: bool = True,
        lp_mode: str | None = None,
        max_cached_results: int | None = None,
        result_cache_bytes: int | None = None,
        max_cached_assemblies: int | None = None,
        assembly_cache_bytes: int | None = None,
    ) -> None:
        if lp_mode is not None and lp_mode not in LP_MODES:
            raise ValueError(
                f"lp_mode {lp_mode!r} is not one of {', '.join(LP_MODES)}"
            )
        self._assemblies: LruCache = LruCache(
            max_cached_assemblies, assembly_cache_bytes
        )
        self._models: LruCache = LruCache(max_cached_assemblies)
        self._results: LruCache = LruCache(
            max_cached_results, result_cache_bytes
        )
        self._memoize = memoize_results
        self._lp_mode = lp_mode
        self._lock = threading.Lock()
        self._tls = threading.local()
        self.assembly_hits = 0
        self.assembly_misses = 0
        self.result_hits = 0
        self.solves = 0
        self.persistent_resolves = 0
        self.family_slices = 0

    # ------------------------------------------------------------------
    def cached_assemblies(self) -> int:
        return len(self._assemblies)

    def cached_models(self) -> int:
        """Warm persistent HiGHS models held (0 under ``oneshot``)."""
        return len(self._models)

    def cached_results(self) -> int:
        return len(self._results)

    @property
    def last_solve_cached(self) -> bool:
        """Whether *this thread's* most recent solve was a memo hit.

        Thread-local, so concurrent callers each see their own flag —
        the atomic replacement for comparing the shared ``result_hits``
        counter before and after a solve, which under-/over-counts as
        soon as two threads interleave.
        """
        return getattr(self._tls, "last_cached", False)

    def cache_stats(self) -> dict[str, dict]:
        """Entry/byte/eviction accounting for each cache layer."""
        with self._lock:
            return {
                "results": self._results.stats(),
                "assemblies": self._assemblies.stats(),
                "models": self._models.stats(),
            }

    def resolved_lp_mode(self) -> str:
        """The concrete mode this solver's next fresh solve will use."""
        if self._lp_mode is not None:
            return _resolve_lp_mode(self._lp_mode)
        return active_lp_mode()

    # ------------------------------------------------------------------
    def _assembly_for(
        self,
        cone: str,
        order: tuple[str, ...],
        struct: tuple[tuple[int, int, float], ...],
    ) -> _Assembly:
        key = (cone, order, struct)
        with self._lock:
            assembly = self._assemblies.get(key)
            if assembly is not None:
                self.assembly_hits += 1
                return assembly
            self.assembly_misses += 1
        if cone == "polymatroid":
            assembly = _assemble_polymatroid(len(order), struct)
        else:
            assembly = _assemble_step_cone(len(order), cone, struct)
        with self._lock:
            return self._assemblies.add(key, assembly)

    def solve(
        self,
        statistics: StatisticsSet | Iterable[ConcreteStatistic],
        query: ConjunctiveQuery | None = None,
        cone: str = "auto",
        variables: Sequence[str] | None = None,
        extra_inequalities: Sequence[np.ndarray] = (),
    ) -> BoundResult:
        """Drop-in replacement for :func:`lp_bound`, served from the caches.

        ``extra_inequalities`` bypass the caches (their vectors have no
        compact structure key) and delegate to :func:`lp_bound` directly.
        """
        if not isinstance(statistics, StatisticsSet):
            statistics = StatisticsSet(statistics)
        if extra_inequalities:
            self._tls.last_cached = False
            return lp_bound(
                statistics,
                query=query,
                cone=cone,
                variables=variables,
                extra_inequalities=extra_inequalities,
            )
        order = _variable_order(query, statistics, variables)
        cone = _resolve_cone(cone, order, statistics, False)
        struct, b_stats = _stat_structure(order, statistics)
        return self._solve_structured(cone, order, struct, b_stats, statistics)

    def _solve_structured(
        self,
        cone: str,
        order: tuple[str, ...],
        struct: tuple[tuple[int, int, float], ...],
        b_stats: np.ndarray,
        statistics: StatisticsSet,
        assembly: _Assembly | None = None,
    ) -> BoundResult:
        self._tls.last_cached = False
        memo_key = None
        if self._memoize:
            memo_key = (cone, order, struct, b_stats.tobytes())
            # lock-free fast path: a recency-neutral dict probe — the
            # warm plan-search pattern never contends on the lock for
            # more than the counter/recency bump below
            cached = self._results.peek(memo_key)
            if cached is not None:
                with self._lock:
                    self.result_hits += 1
                    self._results.touch(memo_key)
                self._tls.last_cached = True
                return replace(cached, statistics=statistics)
        if assembly is None:
            assembly = self._assembly_for(cone, order, struct)
        if self.resolved_lp_mode() == "persistent" and assembly.num_stats:
            model = self._model_for(cone, order, struct, assembly)
            result = model.solve(b_stats, order, statistics)
            with self._lock:
                self.persistent_resolves += 1
        else:
            result = _solve_assembly(assembly, b_stats, order, statistics)
        with self._lock:
            self.solves += 1
            if memo_key is not None:
                self._results.add(memo_key, result)
        return result

    def _model_for(
        self,
        cone: str,
        order: tuple[str, ...],
        struct: tuple[tuple[int, int, float], ...],
        assembly: _Assembly,
    ) -> _PersistentModel:
        key = (cone, order, struct)
        with self._lock:
            model = self._models.get(key)
        if model is None:
            model = _PersistentModel(assembly)
            with self._lock:
                model = self._models.add(key, model)
        return model

    def solve_family(
        self,
        statistics: StatisticsSet,
        ps: Iterable[float],
        query: ConjunctiveQuery | None = None,
        cone: str = "auto",
        variables: Sequence[str] | None = None,
    ) -> BoundResult:
        """Bound from the sub-family of ``statistics`` with p ∈ ``ps``.

        Equivalent to ``solve(statistics.restrict_ps(ps), ...)`` — but on
        the polymatroid cone the restricted constraint matrix is obtained
        by *slicing rows* of the cached full-family assembly (statistic
        rows are independent, so the slice is bit-identical to assembling
        the restricted set from scratch).  Step cones re-derive their
        candidate columns from the restricted masks — the deduplication
        pattern changes with the family — and go through the normal
        structure cache instead.
        """
        if not isinstance(statistics, StatisticsSet):
            statistics = StatisticsSet(statistics)
        allowed = set(ps)
        restricted = statistics.restrict_ps(allowed)
        order = _variable_order(query, restricted, variables)
        cone = _resolve_cone(cone, order, restricted, False)
        known = set(order)
        if cone != "polymatroid" or any(
            not (s.conditional.variables <= known) for s in statistics
        ):
            # step cones re-derive candidates; a full set mentioning
            # variables outside the restricted order cannot share masks.
            return self.solve(
                restricted, query=query, cone=cone, variables=variables
            )
        full_struct, full_b = _stat_structure(order, statistics)
        keep = [i for i, s in enumerate(statistics) if s.p in allowed]
        struct = tuple(full_struct[i] for i in keep)
        b_stats = full_b[keep]
        key = ("polymatroid", order, struct)
        with self._lock:
            assembly = self._assemblies.get(key)
        if assembly is None:
            full = self._assembly_for("polymatroid", order, full_struct)
            if full.a_stats is not None and keep:
                neg_shannon, _ = _neg_shannon_block(len(order))
                a_stats = full.a_stats[keep]
                assembly = _Assembly(
                    "polymatroid",
                    len(struct),
                    sparse.vstack([a_stats, neg_shannon], format="csr"),
                    full.c,
                    full.bounds,
                    a_stats,
                )
            else:
                assembly = _assemble_polymatroid(len(order), struct)
            with self._lock:
                assembly = self._assemblies.add(key, assembly)
                self.family_slices += 1
        else:
            with self._lock:
                self.assembly_hits += 1
        return self._solve_structured(
            "polymatroid", order, struct, b_stats, restricted, assembly
        )


@dataclass
class BoundTask:
    """One independent bound computation for :func:`lp_bound_many`.

    ``family`` (when given) restricts ``statistics`` to that norm family
    via :meth:`BoundSolver.solve_family`; ``statistics`` then holds the
    full set.
    """

    statistics: StatisticsSet
    query: ConjunctiveQuery | None = None
    cone: str = "auto"
    variables: tuple[str, ...] | None = None
    family: tuple[float, ...] | None = None


def _run_task(task: BoundTask, solver: BoundSolver) -> BoundResult:
    if task.family is not None:
        return solver.solve_family(
            task.statistics,
            task.family,
            query=task.query,
            cone=task.cone,
            variables=task.variables,
        )
    return solver.solve(
        task.statistics,
        query=task.query,
        cone=task.cone,
        variables=task.variables,
    )


def _run_task_cold(task: BoundTask) -> BoundResult:
    """Process-pool worker: the plain one-shot path (nothing shared)."""
    statistics = task.statistics
    if task.family is not None:
        statistics = statistics.restrict_ps(task.family)
    return lp_bound(
        statistics,
        query=task.query,
        cone=task.cone,
        variables=task.variables,
    )


class BoundTaskError(RuntimeError):
    """A :func:`lp_bound_many` task failed; names which one.

    A batch of hundreds of LPs failing with a bare solver exception is
    undebuggable — this wrapper pins the task index (and the query name,
    when the task has one) onto the failure, with the original exception
    chained as ``__cause__``.
    """

    def __init__(self, index: int, task: BoundTask, cause: BaseException):
        self.index = index
        self.task = task
        name = task.query.name if task.query is not None else None
        label = f"bound task {index}"
        if name:
            label += f" (query {name!r})"
        super().__init__(
            f"{label} failed: {type(cause).__name__}: {cause}"
        )


def _identified(result_fn, index: int, task: BoundTask) -> BoundResult:
    """Run ``result_fn``, wrapping any failure with the task identity."""
    try:
        return result_fn()
    except BoundTaskError:
        raise
    except Exception as exc:
        raise BoundTaskError(index, task, exc) from exc


def lp_bound_many(
    tasks: Iterable[BoundTask],
    solver: BoundSolver | None = None,
    max_workers: int | None = None,
    executor: str = "auto",
) -> list[BoundResult]:
    """Solve many independent bound LPs, preserving task order.

    ``executor`` is one of ``"auto"``, ``"serial"``, ``"thread"``,
    ``"process"``.  ``auto`` picks threads when more than one worker is
    available and serial otherwise; the thread pool shares one
    :class:`BoundSolver` (pass ``solver=`` to share caches across calls),
    while the process pool re-solves cold in each worker (results are
    identical either way).  The result list is always in task order.

    A task that fails raises :class:`BoundTaskError` carrying the task's
    index and query name (original exception chained), whichever
    executor ran it.
    """
    tasks = list(tasks)
    if solver is None:
        solver = BoundSolver()
    workers = max_workers or min(max(len(tasks), 1), os.cpu_count() or 1)
    if executor == "auto":
        executor = "thread" if workers > 1 else "serial"
    if executor == "serial":
        return [
            _identified(lambda: _run_task(task, solver), index, task)
            for index, task in enumerate(tasks)
        ]
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            def run(pair: tuple[int, BoundTask]) -> BoundResult:
                index, task = pair
                return _identified(
                    lambda: _run_task(task, solver), index, task
                )

            return list(pool.map(run, enumerate(tasks)))
    if executor == "process":
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_task_cold, task) for task in tasks]
            return [
                _identified(future.result, index, task)
                for index, (future, task) in enumerate(zip(futures, tasks))
            ]
    raise ValueError(
        f"unknown executor {executor!r}; "
        "expected auto, serial, thread, or process"
    )
