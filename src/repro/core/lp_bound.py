"""The ℓp-norm bound as a linear program (Sec. 5, Theorem 5.2).

Theorem 5.2 identifies the best upper bound derivable from a statistics set
(Σ, B) with the optimum of

    Log-L-Bound_K(Σ, b)  =  max h(X)
                            s.t.  h ∈ K,
                                  (1/p_i)·h(U_i) + h(V_i|U_i) ≤ b_i  ∀τ_i∈Σ

over a cone K of set functions.  This module implements the LP for three
cones:

``polymatroid``
    K = Γ_n, cut out by the elemental Shannon inequalities.  The exact
    polymatroid bound of the paper; 2^n LP variables.
``normal``
    K = N_n, parameterised by step-function coefficients α_W ≥ 0.  By
    Theorem 6.1 this equals the polymatroid bound whenever all statistics
    are *simple* (|U| ≤ 1) — and it is dramatically smaller: one LP column
    per distinct intersection pattern of W with the constraint sets.
``modular``
    K = M_n (singleton steps only).  This is the cone implicitly used by
    Jayaraman et al. [14]; Appendix B shows it is *not* sound in general —
    exposed here to reproduce that analysis, not for estimation.

Results carry dual weights: the witness inequality (8) behind the bound
and therefore "which norms were used" (the paper's Fig. 1 Norms column).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from ..entropy.shannon import elemental_inequalities
from ..entropy.vectors import EntropyVector
from ..query.query import ConjunctiveQuery
from .conditionals import ConcreteStatistic, StatisticsSet

__all__ = ["BoundResult", "lp_bound", "CONES"]

CONES = ("auto", "polymatroid", "normal", "modular")

_POLYMATROID_MAX_VARS = 14
_NORMAL_MAX_VARS = 22


@dataclass
class BoundResult:
    """Outcome of the bound LP.

    ``log2_bound`` is the log2 of the upper bound on |Q(D)| (``inf`` when
    the statistics do not bound the output, e.g. a join column without any
    statistic).  ``dual_weights[i]`` is the weight w_i of statistic i in
    the witness inequality (8); Σ w_i·b_i = log2_bound at optimality.
    """

    log2_bound: float
    cone: str
    status: str
    variables: tuple[str, ...]
    statistics: StatisticsSet
    dual_weights: np.ndarray | None = None
    h_values: np.ndarray | None = None
    normal_coefficients: dict[int, float] | None = field(default=None, repr=False)

    @property
    def bound(self) -> float:
        """The bound in linear space (may overflow to inf)."""
        if self.log2_bound == math.inf:
            return math.inf
        if self.log2_bound == -math.inf:
            return 0.0
        try:
            return 2.0 ** self.log2_bound
        except OverflowError:  # pragma: no cover
            return math.inf

    def used_statistics(
        self, tol: float = 1e-7
    ) -> list[tuple[ConcreteStatistic, float]]:
        """Statistics with non-zero dual weight, i.e. those the bound uses."""
        if self.dual_weights is None:
            return []
        return [
            (stat, float(w))
            for stat, w in zip(self.statistics, self.dual_weights)
            if w > tol
        ]

    def norms_used(self, tol: float = 1e-7) -> list[float]:
        """Sorted distinct p values carrying dual weight (Fig. 1 column)."""
        return sorted({stat.p for stat, _ in self.used_statistics(tol)})

    def witness_inequality(self, tol: float = 1e-7) -> str:
        """Human-readable rendering of the witness inequality (8)."""
        terms = []
        for stat, w in self.used_statistics(tol):
            cond = stat.conditional
            u = ",".join(sorted(cond.u)) or "∅"
            v = ",".join(sorted(cond.v))
            inv_p = 0.0 if stat.p == math.inf else 1.0 / stat.p
            terms.append(f"{w:.4g}·({inv_p:.4g}·h({u}) + h({v}|{u}))")
        lhs = " + ".join(terms) if terms else "0"
        return f"{lhs} ≥ h({','.join(self.variables)})"

    def entropy_vector(self) -> EntropyVector:
        """The optimal h* as an :class:`EntropyVector` (primal witness)."""
        if self.h_values is None:
            raise ValueError(f"no primal solution (status: {self.status})")
        return EntropyVector(self.variables, self.h_values)


def _variable_order(
    query: ConjunctiveQuery | None,
    statistics: StatisticsSet,
    variables: Sequence[str] | None,
) -> tuple[str, ...]:
    if variables is not None:
        return tuple(variables)
    if query is not None:
        return query.variables
    seen: dict[str, None] = {}
    for stat in statistics:
        for v in sorted(stat.conditional.variables):
            seen.setdefault(v, None)
    return tuple(seen)


def _stat_row(
    stat: ConcreteStatistic, index: dict[str, int], size: int
) -> tuple[np.ndarray, float]:
    """Dense coefficient row of the statistic constraint over subset masks.

    (1/p)h(U) + h(UV) − h(U) ≤ b  ⟺  h(UV) + (1/p − 1)·h(U) ≤ b.
    """
    row = np.zeros(size)
    cond = stat.conditional
    mask_u = 0
    for u in cond.u:
        mask_u |= 1 << index[u]
    mask_uv = mask_u
    for v in cond.v:
        mask_uv |= 1 << index[v]
    inv_p = 0.0 if stat.p == math.inf else 1.0 / stat.p
    row[mask_uv] += 1.0
    if mask_u:
        row[mask_u] += inv_p - 1.0
    return row, stat.log2_bound


def _solve(
    c: np.ndarray,
    a_ub,
    b_ub: np.ndarray,
    bounds,
) -> "linprog.OptimizeResult":
    return linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")


@lru_cache(maxsize=None)
def _neg_shannon_block(n: int) -> tuple[sparse.csr_matrix, int]:
    """The memoised −A block of the elemental inequalities plus its row
    count — rebuilt-per-call negation was the dominant setup cost of
    repeated polymatroid bounds.  Read-only (``sparse.vstack`` copies)."""
    shannon = elemental_inequalities(n)
    return (-shannon).tocsr(), shannon.shape[0]


def _polymatroid_lp(
    variables: tuple[str, ...],
    statistics: StatisticsSet,
    extra_inequalities: Sequence[np.ndarray],
) -> BoundResult:
    n = len(variables)
    if n > _POLYMATROID_MAX_VARS:
        raise ValueError(
            f"polymatroid cone limited to {_POLYMATROID_MAX_VARS} variables "
            f"(got {n}); use cone='normal' for simple statistics"
        )
    index = {v: i for i, v in enumerate(variables)}
    size = 1 << n
    stat_rows = []
    b_stats = []
    for stat in statistics:
        row, b = _stat_row(stat, index, size)
        stat_rows.append(row)
        b_stats.append(b)
    neg_shannon, shannon_rows = _neg_shannon_block(n)  # −A from A·h ≥ 0
    blocks = []
    if stat_rows:
        blocks.append(sparse.csr_matrix(np.array(stat_rows)))
    blocks.append(neg_shannon)
    for vec in extra_inequalities:
        vec = np.asarray(vec, float)
        if vec.shape != (size,):
            raise ValueError(
                f"extra inequality must have length {size}, got {vec.shape}"
            )
        blocks.append(sparse.csr_matrix(-vec.reshape(1, -1)))
    a_ub = sparse.vstack(blocks, format="csr")
    b_ub = np.concatenate(
        [
            np.asarray(b_stats, float),
            np.zeros(shannon_rows + len(extra_inequalities)),
        ]
    )
    c = np.zeros(size)
    c[size - 1] = -1.0
    bounds = [(0.0, 0.0)] + [(0.0, None)] * (size - 1)
    res = _solve(c, a_ub, b_ub, bounds)
    num_stats = len(stat_rows)
    if res.status == 3:
        return BoundResult(math.inf, "polymatroid", "unbounded", variables, statistics)
    if res.status == 2:
        return BoundResult(-math.inf, "polymatroid", "infeasible", variables, statistics)
    if res.status != 0:
        return BoundResult(
            math.nan, "polymatroid", f"error: {res.message}", variables, statistics
        )
    duals = -np.asarray(res.ineqlin.marginals[:num_stats], float)
    return BoundResult(
        float(-res.fun),
        "polymatroid",
        "optimal",
        variables,
        statistics,
        dual_weights=duals,
        h_values=np.asarray(res.x, float),
    )


def _step_cone_lp(
    variables: tuple[str, ...],
    statistics: StatisticsSet,
    cone: str,
) -> BoundResult:
    """LP over positive combinations of step functions.

    ``cone='normal'`` uses all non-empty W (deduplicated by intersection
    pattern with the constraint sets); ``cone='modular'`` only singletons.
    """
    n = len(variables)
    index = {v: i for i, v in enumerate(variables)}
    stat_masks: list[tuple[int, int, float, float]] = []
    for stat in statistics:
        cond = stat.conditional
        mask_u = 0
        for u in cond.u:
            mask_u |= 1 << index[u]
        mask_uv = mask_u
        for v in cond.v:
            mask_uv |= 1 << index[v]
        inv_p = 0.0 if stat.p == math.inf else 1.0 / stat.p
        stat_masks.append((mask_u, mask_uv, inv_p, stat.log2_bound))

    if cone == "modular":
        candidates = np.array([1 << i for i in range(n)], dtype=np.int64)
    else:
        if n > _NORMAL_MAX_VARS:
            raise ValueError(
                f"normal cone limited to {_NORMAL_MAX_VARS} variables (got {n})"
            )
        all_w = np.arange(1, 1 << n, dtype=np.int64)
        relevant = sorted(
            {m for mu, muv, _, _ in stat_masks for m in (mu, muv) if m}
        )
        if relevant:
            patterns = np.stack(
                [(all_w & g) != 0 for g in relevant], axis=1
            )
            _, keep = np.unique(patterns, axis=0, return_index=True)
            candidates = all_w[np.sort(keep)]
        else:
            candidates = all_w[:1]

    m = len(candidates)
    rows = []
    b_ub = []
    for mask_u, mask_uv, inv_p, b in stat_masks:
        hit_uv = ((candidates & mask_uv) != 0).astype(float)
        hit_u = (
            ((candidates & mask_u) != 0).astype(float) if mask_u else 0.0
        )
        rows.append(hit_uv + (inv_p - 1.0) * hit_u)
        b_ub.append(b)
    if rows:
        a_ub = np.array(rows)
        b_arr = np.asarray(b_ub, float)
    else:
        a_ub = None
        b_arr = None
    # every non-empty W intersects X, so h(X) = Σ_W α_W
    c = -np.ones(m)
    res = _solve(c, a_ub, b_arr, [(0.0, None)] * m)
    if res.status == 3:
        return BoundResult(math.inf, cone, "unbounded", variables, statistics)
    if res.status == 2:
        return BoundResult(-math.inf, cone, "infeasible", variables, statistics)
    if res.status != 0:
        return BoundResult(
            math.nan, cone, f"error: {res.message}", variables, statistics
        )
    duals = (
        -np.asarray(res.ineqlin.marginals, float) if rows else np.zeros(0)
    )
    alpha = {
        int(w): float(a)
        for w, a in zip(candidates, res.x)
        if a > 1e-12
    }
    size = 1 << n
    h_values = np.zeros(size)
    for w_mask, a in alpha.items():
        masks = np.arange(size)
        h_values[(masks & w_mask) != 0] += a
    return BoundResult(
        float(-res.fun),
        cone,
        "optimal",
        variables,
        statistics,
        dual_weights=duals,
        h_values=h_values,
        normal_coefficients=alpha,
    )


def lp_bound(
    statistics: StatisticsSet | Iterable[ConcreteStatistic],
    query: ConjunctiveQuery | None = None,
    cone: str = "auto",
    variables: Sequence[str] | None = None,
    extra_inequalities: Sequence[np.ndarray] = (),
) -> BoundResult:
    """Compute the ℓp bound of Theorem 5.2 for a statistics set.

    Parameters
    ----------
    statistics:
        Concrete statistics (Σ, B); bounds are log2 values.
    query:
        The query, used to fix the variable order (and X = all variables).
        May be omitted when ``variables`` is given or when the statistics'
        conditionals already mention every variable.
    cone:
        One of :data:`CONES`.  ``auto`` picks ``normal`` when every
        statistic is simple (exact by Theorem 6.1) and ``polymatroid``
        otherwise.
    extra_inequalities:
        Additional valid entropic inequalities c·h ≥ 0 (subset-indexed
        vectors) to tighten the cone — e.g. Zhang–Yeung instantiations for
        the Appendix D.2 analysis.  Only supported by the polymatroid cone.

    Returns
    -------
    A :class:`BoundResult`; ``result.log2_bound`` bounds log2 |Q(D)| for
    every database D satisfying (Σ, B) (Theorem 1.1 + Theorem 5.2).
    """
    if not isinstance(statistics, StatisticsSet):
        statistics = StatisticsSet(statistics)
    order = _variable_order(query, statistics, variables)
    if not order:
        raise ValueError("no variables: provide a query or variables=")
    if cone not in CONES:
        raise ValueError(f"unknown cone {cone!r}; expected one of {CONES}")
    if cone == "auto":
        if extra_inequalities:
            cone = "polymatroid"
        elif statistics.is_simple and len(order) <= _NORMAL_MAX_VARS:
            cone = "normal"
        else:
            cone = "polymatroid"
    if cone in ("normal", "modular"):
        if extra_inequalities:
            raise ValueError(
                "extra_inequalities require the polymatroid cone"
            )
        return _step_cone_lp(order, statistics, cone)
    return _polymatroid_lp(order, statistics, list(extra_inequalities))
