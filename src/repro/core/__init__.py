"""Core LpBound machinery: degree statistics and the bound LP."""

from .catalog import StatisticsCatalog
from .certificates import certificate_gap, product_form, verify_certificate
from .constraints import fd_statistic, key_statistic, key_statistics_for_query
from .conditionals import (
    AbstractStatistic,
    ConcreteStatistic,
    Conditional,
    StatisticsSet,
    collect_statistics,
)
from .degree import average_degree, degree_sequence, max_degree
from .lp_bound import (
    CONES,
    LP_MODES,
    BoundResult,
    BoundSolver,
    BoundTask,
    BoundTaskError,
    LpUnavailableError,
    active_lp_mode,
    configured_lp_mode,
    forced_lp_mode,
    highspy_available,
    lp_bound,
    lp_bound_many,
    set_lp_mode,
)
from .lru import LruCache, approx_bytes
from .norms import (
    log2_norm,
    lp_norm,
    norms_of_sequence,
    sequence_from_norms,
)

__all__ = [
    "Conditional",
    "AbstractStatistic",
    "ConcreteStatistic",
    "StatisticsSet",
    "StatisticsCatalog",
    "collect_statistics",
    "degree_sequence",
    "max_degree",
    "average_degree",
    "log2_norm",
    "lp_norm",
    "norms_of_sequence",
    "sequence_from_norms",
    "lp_bound",
    "lp_bound_many",
    "BoundResult",
    "BoundSolver",
    "BoundTask",
    "BoundTaskError",
    "LpUnavailableError",
    "LruCache",
    "approx_bytes",
    "CONES",
    "LP_MODES",
    "active_lp_mode",
    "configured_lp_mode",
    "forced_lp_mode",
    "highspy_available",
    "set_lp_mode",
    "product_form",
    "verify_certificate",
    "certificate_gap",
    "fd_statistic",
    "key_statistic",
    "key_statistics_for_query",
]
