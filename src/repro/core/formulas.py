"""Closed-form ℓp bounds from the paper, in log2 space.

Every formula here is an instance of Theorem 1.1 for a specific Shannon
inequality spelled out in the paper.  The LP of :mod:`repro.core.lp_bound`
subsumes them all (it optimises over *every* valid inequality); they are
kept explicit because the paper derives them by hand, we test the LP
against them, and they make the examples readable.

All inputs are log2 values (log2 of norms / cardinalities); all outputs are
log2 of the bound.  Linear-space convenience wrappers would overflow for
the norm magnitudes real data produces.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "agm_triangle",
    "triangle_l2",
    "triangle_l3",
    "join_agm",
    "join_panda",
    "join_l2",
    "join_lp_lq_distinct",
    "join_lp_lq",
    "chain_bound",
    "cycle_bound",
    "cycle_agm",
    "cycle_panda",
    "loomis_whitney_l2",
    "dsb_gap_certificate",
]


def agm_triangle(log2_r: float, log2_s: float, log2_t: float) -> float:
    """AGM bound (2) for the triangle: |Q| ≤ (|R||S||T|)^{1/2}."""
    return (log2_r + log2_s + log2_t) / 2.0


def triangle_l2(l2_r: float, l2_s: float, l2_t: float) -> float:
    """Bound (4): |Q| ≤ (‖deg_R(Y|X)‖₂² · ‖deg_S(Z|Y)‖₂² · ‖deg_T(X|Z)‖₂²)^{1/3}.

    Arguments are log2 of the three ℓ2-norms.
    """
    return 2.0 * (l2_r + l2_s + l2_t) / 3.0


def triangle_l3(l3_r: float, l3_s: float, log2_t: float) -> float:
    """Bound (5): |Q| ≤ (‖deg_R(Y|X)‖₃³ · ‖deg_S(Y|Z)‖₃³ · |T|⁵)^{1/6}."""
    return (3.0 * l3_r + 3.0 * l3_s + 5.0 * log2_t) / 6.0


def join_agm(log2_r: float, log2_s: float) -> float:
    """AGM bound for the single join R(X,Y) ⋈ S(Y,Z): |R|·|S|."""
    return log2_r + log2_s


def join_panda(
    log2_r: float, log2_s: float, linf_r: float, linf_s: float
) -> float:
    """PANDA bound (17): min(|S|·‖deg_R(X|Y)‖_∞, |R|·‖deg_S(Z|Y)‖_∞).

    ``linf_r`` is log2 ‖deg_R(X|Y)‖_∞ and ``linf_s`` log2 ‖deg_S(Z|Y)‖_∞.
    """
    return min(log2_s + linf_r, log2_r + linf_s)


def join_l2(l2_r: float, l2_s: float) -> float:
    """Cauchy–Schwartz bound (18): ‖deg_R(X|Y)‖₂ · ‖deg_S(Z|Y)‖₂."""
    return l2_r + l2_s


def join_lp_lq_distinct(
    lp_r: float, lq_s: float, log2_m: float, p: float, q: float
) -> float:
    """Bound (48): ‖deg_R(X|Y)‖_p · ‖deg_S(Z|Y)‖_q · M^{1−1/p−1/q}.

    M = min(|Π_Y(R)|, |Π_Y(S)|); requires 1/p + 1/q ≤ 1.
    """
    inv_p = 0.0 if p == math.inf else 1.0 / p
    inv_q = 0.0 if q == math.inf else 1.0 / q
    if inv_p + inv_q > 1.0 + 1e-12:
        raise ValueError(f"need 1/p + 1/q ≤ 1, got p={p}, q={q}")
    return lp_r + lq_s + (1.0 - inv_p - inv_q) * log2_m


def join_lp_lq(
    lp_r: float, lq_s: float, log2_s: float, p: float, q: float
) -> float:
    """Bound (19): ‖deg_R(X|Y)‖_p · ‖deg_S(Z|Y)‖_q^{q/(p(q−1))} · |S|^{1−q/(p(q−1))}.

    Requires 1/p + 1/q ≤ 1 (so the |S| exponent is ≥ 0).
    """
    inv_p = 0.0 if p == math.inf else 1.0 / p
    inv_q = 0.0 if q == math.inf else 1.0 / q
    if inv_p + inv_q > 1.0 + 1e-12:
        raise ValueError(f"need 1/p + 1/q ≤ 1, got p={p}, q={q}")
    if q == math.inf:
        exponent = 0.0 if p == math.inf else 1.0 / p  # limit q→∞ of q/(p(q−1))
    else:
        exponent = q / (p * (q - 1.0)) if p != math.inf else 0.0
    return lp_r + exponent * lq_s + (1.0 - exponent) * log2_s


def chain_bound(
    log2_r1: float,
    l2_r2: float,
    middle_lp_minus_1: Sequence[float],
    last_lp: float,
    p: float,
) -> float:
    """The path-query bound of Example 2.2, for a chain of length n−1 ≥ 2.

    |Q|^p ≤ |R₁|^{p−2} · ‖deg_{R₂}(X₁|X₂)‖₂² ·
            Π_{i=2..n−2} ‖deg_{R_i}(X_{i+1}|X_i)‖_{p−1}^{p−1} ·
            ‖deg_{R_{n−1}}(X_n|X_{n−1})‖_p^p,   valid for p ≥ 2.

    ``middle_lp_minus_1`` are the log2 ℓ_{p−1}-norms of the middle atoms
    R_i, i = 2..n−2 (empty for the shortest chain, n = 3).
    """
    if p < 2:
        raise ValueError(f"the chain bound needs p ≥ 2, got {p}")
    total = (
        (p - 2.0) * log2_r1
        + 2.0 * l2_r2
        + (p - 1.0) * sum(middle_lp_minus_1)
        + p * last_lp
    )
    return total / p


def cycle_bound(lq_norms: Sequence[float], q: float) -> float:
    """Bound (21) for the (p+1)-cycle: |Q| ≤ Π_i ‖deg_{R_i}(X_{i+1}|X_i)‖_q^{q/(q+1)}.

    ``lq_norms`` are the log2 ℓq-norms, one per cycle edge.
    """
    if q == math.inf:
        raise ValueError("use cycle_panda for the ℓ∞ form")
    return (q / (q + 1.0)) * sum(lq_norms)


def cycle_agm(log2_sizes: Sequence[float]) -> float:
    """AGM bound (52, left) for the cycle: |Q| ≤ Π|R_i|^{1/2}."""
    return sum(log2_sizes) / 2.0


def cycle_panda(log2_size: float, linf: float, cycle_length: int) -> float:
    """PANDA bound (52, right) for the uniform cycle: |R| · ‖deg‖_∞^{p−1}.

    ``cycle_length`` is the number of atoms (p+1 in the paper's notation).
    """
    return log2_size + (cycle_length - 2.0) * linf


def loomis_whitney_l2(
    l2_a: float, log2_b: float, l2_c: float, log2_d: float
) -> float:
    """Appendix C.6 bound for the 4-variable Loomis–Whitney query:

    |Q|⁴ ≤ ‖deg_A(YZ|X)‖₂² · |B| · ‖deg_C(WX|Z)‖₂² · |D|.
    """
    return (2.0 * l2_a + log2_b + 2.0 * l2_c + log2_d) / 4.0


def dsb_gap_certificate(l3_r: float, log2_s: float, l2_s: float) -> float:
    """Bound (50), the certificate of the Appendix C.3 gap instance:

    |Q| ≤ ‖deg_R(X|Y)‖₃ · |S|^{1/3} · ‖deg_S(Z|Y)‖₂^{2/3}.
    """
    return l3_r + log2_s / 3.0 + 2.0 * l2_s / 3.0
