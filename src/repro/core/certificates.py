"""Dual certificates for LP bounds.

A :class:`~repro.core.lp_bound.BoundResult` carries the dual weights w_i of
the statistics constraints.  At optimality they certify the bound through
Theorem 1.1: the inequality

    Σ_i w_i ((1/p_i)·h(U_i) + h(V_i|U_i)) ≥ h(X)

is valid on the cone, hence |Q| ≤ Π_i B_i^{w_i} and
log2 |Q| ≤ Σ_i w_i · b_i.  These helpers render and verify that
certificate.
"""

from __future__ import annotations

import math

from .lp_bound import BoundResult

__all__ = ["product_form", "verify_certificate", "certificate_gap"]


def product_form(result: BoundResult, tol: float = 1e-7) -> str:
    """The bound as a product of norms, e.g. ``||deg_R(y|x)||_2^0.667·…``."""
    factors = []
    for stat, weight in result.used_statistics(tol):
        p = "∞" if stat.p == math.inf else format(stat.p, "g")
        cond = stat.conditional
        u = ",".join(sorted(cond.u)) or "∅"
        v = ",".join(sorted(cond.v))
        factors.append(
            f"||deg_{stat.guard.relation}({v}|{u})||_{p}^{weight:.4g}"
        )
    return " · ".join(factors) if factors else "1"


def certificate_gap(result: BoundResult) -> float:
    """|Σ w_i·b_i − log2_bound| — zero (to LP tolerance) at optimality."""
    if result.dual_weights is None:
        raise ValueError(f"no certificate (status: {result.status})")
    total = sum(
        float(w) * stat.log2_bound
        for stat, w in zip(result.statistics, result.dual_weights)
    )
    return abs(total - result.log2_bound)


def verify_certificate(result: BoundResult, tol: float = 1e-5) -> bool:
    """Strong duality check: the dual weights reproduce the bound value.

    This validates that the reported bound really is of the Theorem 1.1
    product form Π B_i^{w_i}.
    """
    if result.status != "optimal":
        return False
    scale = max(1.0, abs(result.log2_bound))
    return certificate_gap(result) <= tol * scale
