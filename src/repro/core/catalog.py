"""A precomputed-statistics catalog — the system-facing interface.

The paper's standing assumption (Sec. 1, Sec. 2.1) is that ℓp-norms are
*precomputed* and merely looked up at estimation time; computing a degree
sequence costs O(N log N) once, after which every norm is O(length).
:class:`StatisticsCatalog` realises that split: it caches degree sequences
per (relation, conditional) and serves concrete statistics for any norm on
demand, so a workload of many queries over one database pays the
sequence-extraction cost once.

This is the object a query optimiser would hold; ``collect_statistics``
remains the convenient one-shot path for scripts and tests.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..query.query import Atom, ConjunctiveQuery
from ..relational import Database
from .conditionals import (
    AbstractStatistic,
    ConcreteStatistic,
    Conditional,
    StatisticsSet,
)
from .degree import degree_sequence
from .norms import log2_norm, log2_norms

__all__ = ["StatisticsCatalog"]


class StatisticsCatalog:
    """Per-database cache of degree sequences and their norms.

    Examples
    --------
    >>> catalog = StatisticsCatalog(db)
    >>> stats = catalog.statistics_for(query, ps=[1, 2, 3, float("inf")])
    >>> result = lp_bound(stats, query=query)   # doctest: +SKIP
    """

    def __init__(self, db: Database) -> None:
        self._db = db
        # (relation name, v-cols, u-cols) -> degree sequence
        self._sequences: dict[tuple, np.ndarray] = {}
        # (sequence key, p) -> log2 norm
        self._norms: dict[tuple, float] = {}

    @property
    def database(self) -> Database:
        return self._db

    def cached_sequences(self) -> int:
        """Number of degree sequences materialised so far."""
        return len(self._sequences)

    def cached_norms(self) -> int:
        """Number of (sequence, p) norms memoised so far."""
        return len(self._norms)

    # ------------------------------------------------------------------
    def sequence(
        self,
        relation_name: str,
        v_attrs: Sequence[str],
        u_attrs: Sequence[str] = (),
    ) -> np.ndarray:
        """The cached degree sequence deg_relation(V | U).

        Keys are canonicalised (column order within V and within U does not
        change the sequence), so self-join atoms binding the same columns
        under different variable names share one cache entry.
        """
        key = (relation_name, tuple(sorted(v_attrs)), tuple(sorted(u_attrs)))
        cached = self._sequences.get(key)
        if cached is None:
            cached = degree_sequence(self._db[relation_name], key[1], key[2])
            self._sequences[key] = cached
        return cached

    def log2_norm(
        self,
        relation_name: str,
        v_attrs: Sequence[str],
        u_attrs: Sequence[str],
        p: float,
    ) -> float:
        """The cached log2 ℓp-norm of deg_relation(V | U)."""
        key = (relation_name, tuple(sorted(v_attrs)), tuple(sorted(u_attrs)), p)
        cached = self._norms.get(key)
        if cached is None:
            cached = log2_norm(self.sequence(relation_name, v_attrs, u_attrs), p)
            self._norms[key] = cached
        return cached

    def log2_norms(
        self,
        relation_name: str,
        v_attrs: Sequence[str],
        u_attrs: Sequence[str],
        ps: Sequence[float],
    ) -> dict[float, float]:
        """Cached log2 ℓp-norms for all ``ps`` of one degree sequence.

        Misses are computed in a single vectorized batch
        (:func:`repro.core.norms.log2_norms`): the log of the sequence is
        taken once, not once per p.
        """
        v_key = tuple(sorted(v_attrs))
        u_key = tuple(sorted(u_attrs))
        missing = [
            p for p in ps
            if (relation_name, v_key, u_key, p) not in self._norms
        ]
        if missing:
            sequence = self.sequence(relation_name, v_attrs, u_attrs)
            for p, value in log2_norms(sequence, missing).items():
                self._norms[(relation_name, v_key, u_key, p)] = value
        return {
            p: self._norms[(relation_name, v_key, u_key, p)] for p in ps
        }

    # ------------------------------------------------------------------
    def _atom_statistics(
        self,
        atom: Atom,
        ps: Sequence[float],
        join_vars: frozenset[str],
    ) -> Iterable[ConcreteStatistic]:
        relation = self._db[atom.relation]
        if len(set(atom.variables)) != len(atom.variables):
            # repeated-variable atoms fall back to the uncached one-shot
            # path, which handles the diagonal selection correctly.
            from .conditionals import _atom_statistics as uncached

            yield from uncached(atom, relation, ps, join_vars, True, True)
            return
        mapping = {
            var: relation.attributes[i]
            for i, var in enumerate(atom.variables)
        }
        variables = atom.variables
        cond = Conditional(frozenset(variables))
        v_cols = [mapping[v] for v in sorted(variables)]
        yield ConcreteStatistic(
            AbstractStatistic(cond, 1.0),
            self.log2_norm(atom.relation, v_cols, (), 1.0),
            atom,
        )
        for var in variables:
            if var not in join_vars:
                continue
            yield ConcreteStatistic(
                AbstractStatistic(Conditional(frozenset({var})), 1.0),
                self.log2_norm(atom.relation, [mapping[var]], (), 1.0),
                atom,
            )
            others = frozenset(variables) - {var}
            if not others:
                continue
            v_cols = [mapping[v] for v in sorted(others)]
            norms = self.log2_norms(
                atom.relation, v_cols, [mapping[var]], tuple(ps)
            )
            for p in ps:
                yield ConcreteStatistic(
                    AbstractStatistic(Conditional(others, frozenset({var})), p),
                    norms[p],
                    atom,
                )

    def statistics_for(
        self,
        query: ConjunctiveQuery,
        ps: Sequence[float] = (1.0, 2.0, math.inf),
        join_variables_only: bool = True,
    ) -> StatisticsSet:
        """The same statistics family as :func:`collect_statistics`,
        served from the cache."""
        if join_variables_only:
            counts: dict[str, int] = {}
            for atom in query.atoms:
                for v in atom.variable_set:
                    counts[v] = counts.get(v, 0) + 1
            join_vars = frozenset(v for v, c in counts.items() if c >= 2)
        else:
            join_vars = query.variable_set
        stats: list[ConcreteStatistic] = []
        for atom in query.atoms:
            stats.extend(self._atom_statistics(atom, ps, join_vars))
        return StatisticsSet(stats).deduplicated()
