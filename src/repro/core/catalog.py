"""A precomputed-statistics catalog — the system-facing interface.

The paper's standing assumption (Sec. 1, Sec. 2.1) is that ℓp-norms are
*precomputed* and merely looked up at estimation time; computing a degree
sequence costs O(N log N) once, after which every norm is O(length).
:class:`StatisticsCatalog` realises that split: it caches degree sequences
per (relation, conditional) and serves concrete statistics for any norm on
demand, so a workload of many queries over one database pays the
sequence-extraction cost once.

:meth:`StatisticsCatalog.precompute` goes further: it plans every
(relation, V | U) degree-sequence request of a whole workload up front,
groups the requests by relation, and serves all conditionals that share a
sort-order prefix from a *single* lexsort of the relation's columnar code
matrix (:meth:`repro.relational.relation.Relation.prefix_group_size_counts`)
— e.g. the standard per-atom family of a binary relation needs two
lexsorts, not five extractions — with all requested ℓp-norms of each
sequence computed in one vectorized batch.

This is the object a query optimiser would hold; ``collect_statistics``
remains the convenient one-shot path for scripts and tests.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..query.query import Atom, ConjunctiveQuery
from ..relational import Database
from .conditionals import (
    AbstractStatistic,
    ConcreteStatistic,
    Conditional,
    StatisticsSet,
)
from .degree import degree_sequence
from .norms import log2_norm, log2_norms

__all__ = ["StatisticsCatalog", "plan_prefix_orders"]

#: A degree-sequence request: grouping columns U and counted columns V,
#: both canonically sorted.
_SeqRequest = tuple[tuple[str, ...], tuple[str, ...]]


def plan_prefix_orders(
    requests: Iterable[_SeqRequest],
) -> list[tuple[tuple[str, ...], list[tuple[int, int, _SeqRequest]]]]:
    """Assign degree-sequence requests to shared lexsort orders.

    A request (U, V) can be served by any column order whose first |U|
    columns are exactly U (as a set) and whose next |V| columns are exactly
    V: the group-size multiset is invariant under column permutations
    within U and within V.  Greedy assignment, longest requests first:
    each unplaced request opens the order ``U ++ V``; shorter requests then
    ride along as prefixes.  Returns ``(order, [(u_len, uv_len, request)])``
    pairs; deterministic for a given request set.
    """
    ordered = sorted(
        set(requests), key=lambda r: (-(len(r[0]) + len(r[1])), r)
    )
    orders: list[tuple[tuple[str, ...], list]] = []
    for u, v in ordered:
        u_len, uv_len = len(u), len(u) + len(v)
        placed = False
        for cols, assigned in orders:
            if (
                uv_len <= len(cols)
                and set(cols[:u_len]) == set(u)
                and set(cols[u_len:uv_len]) == set(v)
            ):
                assigned.append((u_len, uv_len, (u, v)))
                placed = True
                break
        if not placed:
            orders.append((u + v, [(u_len, uv_len, (u, v))]))
    return orders


class StatisticsCatalog:
    """Per-database cache of degree sequences and their norms.

    Examples
    --------
    >>> catalog = StatisticsCatalog(db)
    >>> stats = catalog.statistics_for(query, ps=[1, 2, 3, float("inf")])
    >>> result = lp_bound(stats, query=query)   # doctest: +SKIP
    """

    def __init__(self, db: Database) -> None:
        self._db = db
        # (relation name, v-cols, u-cols) -> degree sequence
        self._sequences: dict[tuple, np.ndarray] = {}
        # (sequence key, p) -> log2 norm
        self._norms: dict[tuple, float] = {}
        self._lexsorts = 0
        self._batched_sequences = 0

    @property
    def database(self) -> Database:
        return self._db

    def cached_sequences(self) -> int:
        """Number of degree sequences materialised so far."""
        return len(self._sequences)

    def cached_norms(self) -> int:
        """Number of (sequence, p) norms memoised so far."""
        return len(self._norms)

    @property
    def lexsorts_performed(self) -> int:
        """Physical sorts paid for sequence extraction so far.

        Batched :meth:`precompute` pays one per shared sort order; the
        one-shot :meth:`sequence` path pays one per conditional.
        """
        return self._lexsorts

    @property
    def sequences_batched(self) -> int:
        """Degree sequences served by the prefix-sharing batch kernel."""
        return self._batched_sequences

    def cache_stats(self) -> dict[str, int]:
        """All cache counters as one dict (the service's ``/metrics``)."""
        return {
            "sequences": len(self._sequences),
            "norms": len(self._norms),
            "lexsorts": self._lexsorts,
            "sequences_batched": self._batched_sequences,
        }

    # ------------------------------------------------------------------
    def sequence(
        self,
        relation_name: str,
        v_attrs: Sequence[str],
        u_attrs: Sequence[str] = (),
    ) -> np.ndarray:
        """The cached degree sequence deg_relation(V | U).

        Keys are canonicalised (column order within V and within U does not
        change the sequence), so self-join atoms binding the same columns
        under different variable names share one cache entry.
        """
        key = (relation_name, tuple(sorted(v_attrs)), tuple(sorted(u_attrs)))
        cached = self._sequences.get(key)
        if cached is None:
            cached = degree_sequence(self._db[relation_name], key[1], key[2])
            self._sequences[key] = cached
            self._lexsorts += 1
        return cached

    def log2_norm(
        self,
        relation_name: str,
        v_attrs: Sequence[str],
        u_attrs: Sequence[str],
        p: float,
    ) -> float:
        """The cached log2 ℓp-norm of deg_relation(V | U)."""
        key = (relation_name, tuple(sorted(v_attrs)), tuple(sorted(u_attrs)), p)
        cached = self._norms.get(key)
        if cached is None:
            cached = log2_norm(self.sequence(relation_name, v_attrs, u_attrs), p)
            self._norms[key] = cached
        return cached

    def log2_norms(
        self,
        relation_name: str,
        v_attrs: Sequence[str],
        u_attrs: Sequence[str],
        ps: Sequence[float],
    ) -> dict[float, float]:
        """Cached log2 ℓp-norms for all ``ps`` of one degree sequence.

        Misses are computed in a single vectorized batch
        (:func:`repro.core.norms.log2_norms`): the log of the sequence is
        taken once, not once per p.
        """
        v_key = tuple(sorted(v_attrs))
        u_key = tuple(sorted(u_attrs))
        missing = [
            p for p in ps
            if (relation_name, v_key, u_key, p) not in self._norms
        ]
        if missing:
            sequence = self.sequence(relation_name, v_attrs, u_attrs)
            for p, value in log2_norms(sequence, missing).items():
                self._norms[(relation_name, v_key, u_key, p)] = value
        return {
            p: self._norms[(relation_name, v_key, u_key, p)] for p in ps
        }

    # ------------------------------------------------------------------
    # workload-level batched precomputation
    # ------------------------------------------------------------------
    @staticmethod
    def _join_variables(
        query: ConjunctiveQuery, join_variables_only: bool
    ) -> frozenset[str]:
        if not join_variables_only:
            return query.variable_set
        counts: dict[str, int] = {}
        for atom in query.atoms:
            for v in atom.variable_set:
                counts[v] = counts.get(v, 0) + 1
        return frozenset(v for v, c in counts.items() if c >= 2)

    def _plan_requests(
        self,
        queries: Sequence[ConjunctiveQuery],
        ps: Sequence[float],
        join_variables_only: bool,
    ) -> dict[tuple, set[float]]:
        """Every (relation, V-cols, U-cols) sequence the workload will ask
        for, with the set of p values needed on it.

        Mirrors :meth:`_atom_statistics` exactly; atoms with repeated
        variables are skipped (they take the uncached diagonal-selection
        path at serve time).
        """
        needed: dict[tuple, set[float]] = {}

        def need(relation: str, v_cols, u_cols, p_values) -> None:
            key = (relation, tuple(sorted(v_cols)), tuple(sorted(u_cols)))
            needed.setdefault(key, set()).update(p_values)

        for query in queries:
            join_vars = self._join_variables(query, join_variables_only)
            for atom in query.atoms:
                if len(set(atom.variables)) != len(atom.variables):
                    continue
                relation = self._db[atom.relation]
                mapping = {
                    var: relation.attributes[i]
                    for i, var in enumerate(atom.variables)
                }
                need(
                    atom.relation,
                    [mapping[v] for v in atom.variables],
                    (),
                    (1.0,),
                )
                for var in atom.variables:
                    if var not in join_vars:
                        continue
                    need(atom.relation, [mapping[var]], (), (1.0,))
                    others = frozenset(atom.variables) - {var}
                    if others:
                        need(
                            atom.relation,
                            [mapping[v] for v in others],
                            [mapping[var]],
                            ps,
                        )
        return needed

    def precompute(
        self,
        queries: Sequence[ConjunctiveQuery],
        ps: Sequence[float] = (1.0, 2.0, math.inf),
        join_variables_only: bool = True,
    ) -> list[StatisticsSet]:
        """Batch-collect statistics for a whole workload of queries.

        All missing degree sequences are planned up front, grouped by
        relation, and extracted through the prefix-sharing kernel — one
        lexsort serves every conditional whose (U, V) columns form a prefix
        of a shared sort order (:func:`plan_prefix_orders`).  Norms are
        computed in one multi-p batch per sequence.  Returns one
        :class:`StatisticsSet` per query, in workload order; the results
        are identical to calling :meth:`statistics_for` per query (and
        therefore to ``collect_statistics``).
        """
        queries = list(queries)
        ps = tuple(ps)
        needed = self._plan_requests(queries, ps, join_variables_only)
        missing_by_rel: dict[str, list] = {}
        for rel, v_key, u_key in needed:
            if (rel, v_key, u_key) in self._sequences:
                continue
            missing_by_rel.setdefault(rel, []).append((u_key, v_key))
        for rel in sorted(missing_by_rel):
            relation = self._db[rel]
            batched = relation.columnar() is not None
            for cols, assigned in plan_prefix_orders(missing_by_rel[rel]):
                splits = [(u_len, uv_len) for u_len, uv_len, _ in assigned]
                counts_list = relation.prefix_group_size_counts(cols, splits)
                self._lexsorts += 1 if batched else len(splits)
                for (_, _, (u_key, v_key)), counts in zip(
                    assigned, counts_list
                ):
                    counts[::-1].sort()  # non-increasing, as degree_sequence
                    self._sequences[(rel, v_key, u_key)] = counts
                    self._batched_sequences += 1
        for (rel, v_key, u_key), p_set in sorted(needed.items()):
            self.log2_norms(rel, v_key, u_key, sorted(p_set))
        return [
            self.statistics_for(
                query, ps=ps, join_variables_only=join_variables_only
            )
            for query in queries
        ]

    # ------------------------------------------------------------------
    def _atom_statistics(
        self,
        atom: Atom,
        ps: Sequence[float],
        join_vars: frozenset[str],
    ) -> Iterable[ConcreteStatistic]:
        relation = self._db[atom.relation]
        if len(set(atom.variables)) != len(atom.variables):
            # repeated-variable atoms fall back to the uncached one-shot
            # path, which handles the diagonal selection correctly.
            from .conditionals import _atom_statistics as uncached

            yield from uncached(atom, relation, ps, join_vars, True, True)
            return
        mapping = {
            var: relation.attributes[i]
            for i, var in enumerate(atom.variables)
        }
        variables = atom.variables
        cond = Conditional(frozenset(variables))
        v_cols = [mapping[v] for v in sorted(variables)]
        yield ConcreteStatistic(
            AbstractStatistic(cond, 1.0),
            self.log2_norm(atom.relation, v_cols, (), 1.0),
            atom,
        )
        for var in variables:
            if var not in join_vars:
                continue
            yield ConcreteStatistic(
                AbstractStatistic(Conditional(frozenset({var})), 1.0),
                self.log2_norm(atom.relation, [mapping[var]], (), 1.0),
                atom,
            )
            others = frozenset(variables) - {var}
            if not others:
                continue
            v_cols = [mapping[v] for v in sorted(others)]
            norms = self.log2_norms(
                atom.relation, v_cols, [mapping[var]], tuple(ps)
            )
            for p in ps:
                yield ConcreteStatistic(
                    AbstractStatistic(Conditional(others, frozenset({var})), p),
                    norms[p],
                    atom,
                )

    def statistics_for(
        self,
        query: ConjunctiveQuery,
        ps: Sequence[float] = (1.0, 2.0, math.inf),
        join_variables_only: bool = True,
    ) -> StatisticsSet:
        """The same statistics family as :func:`collect_statistics`,
        served from the cache."""
        join_vars = self._join_variables(query, join_variables_only)
        stats: list[ConcreteStatistic] = []
        for atom in query.atoms:
            stats.extend(self._atom_statistics(atom, ps, join_vars))
        return StatisticsSet(stats).deduplicated()
