"""Abstract conditionals and (concrete) ℓp statistics (Sec. 1.2).

The paper's statistics language:

* an **abstract conditional** σ = (V | U) over query variables;
* an **abstract statistic** τ = (σ, p) with p ∈ (0, ∞];
* a **concrete statistic** (τ, B) asserts ``||deg_R(V|U)||_p ≤ B`` on the
  guard relation R; we carry b = log2(B);
* a **statistics set** (Σ, B) guarded by a query.

:func:`collect_statistics` computes a standard family of *simple*
statistics (|U| ≤ 1, the Sec. 6 tightness regime and exactly what the
paper's JOB experiment uses): per atom, the cardinality (an ℓ1 statistic)
and, for every variable of the atom, ``deg(other vars | var)`` for each
requested p, plus the distinct count of each variable (an ℓ1 statistic on
(var | ∅)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..relational import Database, Relation
from ..query.query import Atom, ConjunctiveQuery
from .degree import degree_sequence
from .norms import log2_norm

__all__ = [
    "Conditional",
    "AbstractStatistic",
    "ConcreteStatistic",
    "StatisticsSet",
    "collect_statistics",
]


def _format_vars(vs: frozenset[str]) -> str:
    return ",".join(sorted(vs)) if vs else "∅"


@dataclass(frozen=True)
class Conditional:
    """An abstract conditional (V | U) over query variables."""

    v: frozenset[str]
    u: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "v", frozenset(self.v))
        object.__setattr__(self, "u", frozenset(self.u))
        if not self.v:
            raise ValueError("V must be non-empty in a conditional (V | U)")

    @property
    def variables(self) -> frozenset[str]:
        """U ∪ V — the variables a guard atom must cover."""
        return self.u | self.v

    @property
    def is_simple(self) -> bool:
        """Simple conditionals have |U| ≤ 1 (Sec. 6)."""
        return len(self.u) <= 1

    def __str__(self) -> str:
        return f"({_format_vars(self.v)}|{_format_vars(self.u)})"


@dataclass(frozen=True)
class AbstractStatistic:
    """An abstract statistic τ = (σ, p)."""

    conditional: Conditional
    p: float

    def __post_init__(self) -> None:
        if not (self.p > 0):
            raise ValueError(f"p must be in (0, ∞], got {self.p}")

    @property
    def is_simple(self) -> bool:
        return self.conditional.is_simple

    def __str__(self) -> str:
        p = "∞" if self.p == math.inf else f"{self.p:g}"
        return f"ℓ{p}{self.conditional}"


@dataclass(frozen=True)
class ConcreteStatistic:
    """A concrete statistic: ||deg_{guard}(V|U)||_p ≤ 2^log2_bound.

    ``guard`` is the query atom whose relation witnesses the conditional;
    its variable tuple maps query variables to relation columns.
    """

    statistic: AbstractStatistic
    log2_bound: float
    guard: Atom

    def __post_init__(self) -> None:
        missing = self.statistic.conditional.variables - self.guard.variable_set
        if missing:
            raise ValueError(
                f"guard {self.guard} does not cover {sorted(missing)}"
            )

    # convenience accessors -------------------------------------------------
    @property
    def conditional(self) -> Conditional:
        return self.statistic.conditional

    @property
    def p(self) -> float:
        return self.statistic.p

    @property
    def bound(self) -> float:
        """B = 2^b in linear space (may be inf for huge b)."""
        try:
            return 2.0 ** self.log2_bound
        except OverflowError:  # pragma: no cover
            return math.inf

    @property
    def is_simple(self) -> bool:
        return self.statistic.is_simple

    def __str__(self) -> str:
        return (
            f"log2 ||deg_{self.guard.relation}{self.conditional}||_"
            f"{'∞' if self.p == math.inf else format(self.p, 'g')}"
            f" ≤ {self.log2_bound:.4g}"
        )

    # measurement ------------------------------------------------------------
    def _attr_map(self, relation: Relation) -> dict[str, str]:
        mapping: dict[str, str] = {}
        for position, var in enumerate(self.guard.variables):
            mapping.setdefault(var, relation.attributes[position])
        return mapping

    def measured_log2(self, db: Database) -> float:
        """log2 ||deg(V|U)||_p actually measured on the database."""
        relation = db[self.guard.relation]
        if len(set(self.guard.variables)) != len(self.guard.variables):
            # repeated variable in the atom: restrict to rows where the
            # repeated columns agree before measuring.
            groups: dict[str, list[int]] = {}
            for position, var in enumerate(self.guard.variables):
                groups.setdefault(var, []).append(position)
            repeated = [ps for ps in groups.values() if len(ps) > 1]
            relation = relation.select(
                lambda row: all(
                    len({row[i] for i in ps}) == 1 for ps in repeated
                )
            )
        mapping = self._attr_map(relation)
        cond = self.conditional
        seq = degree_sequence(
            relation,
            [mapping[v] for v in sorted(cond.v)],
            [mapping[u] for u in sorted(cond.u)],
        )
        return log2_norm(seq, self.p)

    def holds_on(self, db: Database, tolerance_log2: float = 1e-9) -> bool:
        """Whether the statistic is satisfied by the database."""
        return self.measured_log2(db) <= self.log2_bound + tolerance_log2


class StatisticsSet:
    """A set of concrete statistics (Σ, B) guarded by a query."""

    def __init__(self, statistics: Iterable[ConcreteStatistic]) -> None:
        self._stats = list(statistics)

    def __iter__(self) -> Iterator[ConcreteStatistic]:
        return iter(self._stats)

    def __len__(self) -> int:
        return len(self._stats)

    def __getitem__(self, idx: int) -> ConcreteStatistic:
        return self._stats[idx]

    @property
    def is_simple(self) -> bool:
        """Whether every statistic is simple (Theorem 6.1 regime)."""
        return all(s.is_simple for s in self._stats)

    @property
    def norms_used(self) -> set[float]:
        return {s.p for s in self._stats}

    def restrict_ps(self, ps: Iterable[float]) -> "StatisticsSet":
        """Keep only statistics with p in ``ps`` (e.g. {1}, {1, ∞})."""
        allowed = set(ps)
        return StatisticsSet(s for s in self._stats if s.p in allowed)

    def add(self, stat: ConcreteStatistic) -> "StatisticsSet":
        return StatisticsSet([*self._stats, stat])

    def merged(self, other: "StatisticsSet") -> "StatisticsSet":
        return StatisticsSet([*self._stats, *other])

    def deduplicated(self) -> "StatisticsSet":
        """Keep the tightest bound per (conditional, p, guard relation)."""
        best: dict[tuple, ConcreteStatistic] = {}
        for s in self._stats:
            key = (s.conditional, s.p, s.guard)
            if key not in best or s.log2_bound < best[key].log2_bound:
                best[key] = s
        return StatisticsSet(best.values())

    def holds_on(self, db: Database, tolerance_log2: float = 1e-9) -> bool:
        return all(s.holds_on(db, tolerance_log2) for s in self._stats)

    def __repr__(self) -> str:
        return f"<StatisticsSet with {len(self._stats)} statistics>"


def _pair_conditionals(
    atom: Atom,
    relation: Relation,
    mapping: dict[str, str],
    distinct_vars: tuple[str, ...],
    join_variables: frozenset[str],
    ps: Sequence[float],
) -> Iterator[ConcreteStatistic]:
    """Non-simple conditionals (rest | {u1,u2}) for atoms of arity ≥ 3.

    These leave the Theorem 6.1 regime (the polymatroid cone becomes
    necessary and tightness is no longer guaranteed) but can strictly
    tighten bounds on ternary-and-wider relations.
    """
    import itertools as _it

    join_in_atom = [v for v in distinct_vars if v in join_variables]
    for u_pair in _it.combinations(join_in_atom, 2):
        others = frozenset(distinct_vars) - set(u_pair)
        if not others:
            continue
        seq = degree_sequence(
            relation,
            [mapping[v] for v in sorted(others)],
            [mapping[u] for u in sorted(u_pair)],
        )
        for p in ps:
            yield ConcreteStatistic(
                AbstractStatistic(
                    Conditional(others, frozenset(u_pair)), p
                ),
                log2_norm(seq, p),
                atom,
            )


def _atom_statistics(
    atom: Atom,
    relation: Relation,
    ps: Sequence[float],
    join_variables: frozenset[str],
    include_cardinalities: bool,
    include_distinct_counts: bool,
) -> Iterator[ConcreteStatistic]:
    distinct_vars = tuple(dict.fromkeys(atom.variables))
    if len(distinct_vars) != len(atom.variables):
        # repeated variable in the atom: measure on the diagonal selection,
        # mirroring ConcreteStatistic.measured_log2.
        groups: dict[str, list[int]] = {}
        for position, var in enumerate(atom.variables):
            groups.setdefault(var, []).append(position)
        repeated = [ps_ for ps_ in groups.values() if len(ps_) > 1]
        relation = relation.select(
            lambda row: all(len({row[i] for i in ps_}) == 1 for ps_ in repeated)
        )
    mapping: dict[str, str] = {}
    for position, var in enumerate(atom.variables):
        mapping.setdefault(var, relation.attributes[position])
    if include_cardinalities:
        cond = Conditional(frozenset(distinct_vars))
        seq = degree_sequence(relation, [mapping[v] for v in sorted(cond.v)])
        yield ConcreteStatistic(
            AbstractStatistic(cond, 1.0), log2_norm(seq, 1.0), atom
        )
    for var in distinct_vars:
        if var not in join_variables:
            continue
        others = frozenset(distinct_vars) - {var}
        if include_distinct_counts:
            cond = Conditional(frozenset({var}))
            seq = degree_sequence(relation, [mapping[var]])
            yield ConcreteStatistic(
                AbstractStatistic(cond, 1.0), log2_norm(seq, 1.0), atom
            )
        if not others:
            continue
        seq = degree_sequence(
            relation,
            [mapping[v] for v in sorted(others)],
            [mapping[var]],
        )
        for p in ps:
            yield ConcreteStatistic(
                AbstractStatistic(Conditional(others, frozenset({var})), p),
                log2_norm(seq, p),
                atom,
            )


def collect_statistics(
    query: ConjunctiveQuery,
    db: Database,
    ps: Sequence[float] = (1.0, 2.0, math.inf),
    join_variables_only: bool = True,
    include_cardinalities: bool = True,
    include_distinct_counts: bool = True,
    max_u_size: int = 1,
) -> StatisticsSet:
    """Measure a standard family of simple statistics on a database.

    For every atom R(Z): the cardinality |Π_Z(R)| (ℓ1 on (Z | ∅)); and for
    every (join) variable A ∈ Z, the distinct count |Π_A(R)| and
    ``||deg_R(Z − A | A)||_p`` for each requested p.  All statistics are
    *simple*, so the polymatroid bound computed from them is tight
    (Corollary 6.3) and the fast normal-cone LP is exact (Theorem 6.1).

    Parameters
    ----------
    ps:
        The ℓp norms to precompute, e.g. ``[1, 2, ..., 30, math.inf]`` for
        the paper's JOB experiment.
    join_variables_only:
        When true (default), per-variable statistics are collected only for
        variables shared by ≥ 2 atoms; non-join variables never help the
        bound of a full query beyond the cardinality statistic.
    max_u_size:
        1 (default) keeps every statistic simple.  2 additionally collects
        (rest | {u1, u2}) conditionals on atoms of arity ≥ 3 — *non-simple*
        statistics that force the polymatroid cone but can tighten bounds
        on wide relations.
    """
    if max_u_size not in (1, 2):
        raise ValueError(f"max_u_size must be 1 or 2, got {max_u_size}")
    if join_variables_only:
        counts: dict[str, int] = {}
        for atom in query.atoms:
            for v in atom.variable_set:
                counts[v] = counts.get(v, 0) + 1
        join_vars = frozenset(v for v, c in counts.items() if c >= 2)
    else:
        join_vars = query.variable_set
    stats: list[ConcreteStatistic] = []
    for atom in query.atoms:
        relation = db[atom.relation]
        stats.extend(
            _atom_statistics(
                atom,
                relation,
                ps,
                join_vars,
                include_cardinalities,
                include_distinct_counts,
            )
        )
        if max_u_size >= 2 and len(set(atom.variables)) >= 3:
            distinct_vars = tuple(dict.fromkeys(atom.variables))
            mapping: dict[str, str] = {}
            for position, var in enumerate(atom.variables):
                mapping.setdefault(var, relation.attributes[position])
            stats.extend(
                _pair_conditionals(
                    atom, relation, mapping, distinct_vars, join_vars, ps
                )
            )
    return StatisticsSet(stats).deduplicated()
