"""A budgeted LRU cache for the hot-path memoisation layers.

Every long-lived cache in the serving stack — the service's parsed-query
and statistics caches, the solver's assembly/model/result memos — used to
be a plain dict: correct, but unbounded, so a stream of *distinct* query
texts (an adversary, or merely a diverse workload) grew the process
without limit.  :class:`LruCache` is the shared replacement: an
insertion-ordered map evicting least-recently-used entries whenever an
**entry budget** or an approximate **byte budget** is exceeded, with an
eviction counter the service surfaces in ``/metrics``.

Byte accounting uses :func:`approx_bytes` — a recursive
``sys.getsizeof`` walk that prices NumPy arrays at ``nbytes`` and
descends into containers and object ``__dict__``\\ s.  It is an
*estimate* (native handles such as a HiGHS model report only their
Python wrapper), which is why every cache also takes an entry cap; the
point is that the total is monotone in what is stored, so a byte budget
genuinely bounds growth.

Thread-safety: the cache does **not** lock internally.  Every owner
(:class:`~repro.core.lp_bound.BoundSolver`,
:class:`~repro.service.service.BoundService`) already serialises its
cache mutations under its own lock; :meth:`peek` is the one documented
exception — a plain dict read (atomic under the GIL) that never mutates
recency, so hot paths may probe without taking the owner's lock.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator

__all__ = ["LruCache", "approx_bytes"]

#: Fallback size for objects ``sys.getsizeof`` cannot price.
_DEFAULT_OBJECT_BYTES = 64


def approx_bytes(obj: Any, _seen: set[int] | None = None) -> int:
    """Approximate deep size of ``obj`` in bytes.

    NumPy arrays count their buffer (``nbytes``); dicts, tuples, lists,
    sets, and plain objects (via ``__dict__`` / ``__slots__``) recurse
    with cycle protection.  Shared sub-objects are counted once per
    call, so a cached value's price is stable across re-insertions.
    """
    if _seen is None:
        _seen = set()
    marker = id(obj)
    if marker in _seen:
        return 0
    _seen.add(marker)
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, int):  # numpy arrays and friends
        return int(nbytes) + sys.getsizeof(obj, _DEFAULT_OBJECT_BYTES)
    total = sys.getsizeof(obj, _DEFAULT_OBJECT_BYTES)
    if isinstance(obj, dict):
        for key, value in obj.items():
            total += approx_bytes(key, _seen) + approx_bytes(value, _seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            total += approx_bytes(item, _seen)
    elif not isinstance(obj, (str, bytes, bytearray, int, float, complex, bool)):
        attrs = getattr(obj, "__dict__", None)
        if attrs:
            total += approx_bytes(attrs, _seen)
        for slot in getattr(type(obj), "__slots__", ()):
            if hasattr(obj, slot):
                total += approx_bytes(getattr(obj, slot), _seen)
    return total


class LruCache:
    """An insertion-ordered map with entry and byte budgets.

    ``max_entries=None`` / ``max_bytes=None`` disable that budget (both
    ``None`` is an unbounded cache, the previous behaviour).  ``sizer``
    prices a value for the byte budget (default :func:`approx_bytes`);
    prices are computed once at insertion and cached per key.

    A single value larger than ``max_bytes`` is still admitted — the
    cache then holds that one entry; refusing it would turn the hot
    memo into a permanent miss.  Eviction order is strict LRU over
    :meth:`get` / :meth:`put` / :meth:`add` touches; :meth:`peek` never
    reorders.
    """

    def __init__(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        sizer: Callable[[Any], int] = approx_bytes,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be ≥ 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be ≥ 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._sizer = sizer
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._costs: dict[Hashable, int] = {}
        self.current_bytes = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """A recency-neutral read — safe without the owner's lock."""
        return self._data.get(key, default)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Read ``key`` and mark it most-recently used."""
        try:
            value = self._data[key]
        except KeyError:
            return default
        self._data.move_to_end(key)
        return value

    def touch(self, key: Hashable) -> None:
        """Mark ``key`` most-recently used (after a lock-free ``peek``)."""
        if key in self._data:
            self._data.move_to_end(key)

    def put(self, key: Hashable, value: Any) -> Any:
        """Insert/replace ``key`` and evict down to the budgets."""
        if key in self._data:
            self.current_bytes -= self._costs[key]
        cost = self._sizer(value) if self.max_bytes is not None else 0
        self._data[key] = value
        self._data.move_to_end(key)
        self._costs[key] = cost
        self.current_bytes += cost
        self._evict()
        return value

    def add(self, key: Hashable, value: Any) -> Any:
        """``setdefault`` with budgets: keep the first value stored.

        Returns the incumbent when ``key`` is already present (marking
        it used), so racing computations of the same entry converge on
        one object — the discipline the pre-LRU ``dict.setdefault``
        call sites relied on.
        """
        incumbent = self._data.get(key)
        if incumbent is not None:
            self._data.move_to_end(key)
            return incumbent
        return self.put(key, value)

    def pop(self, key: Hashable, default: Any = None) -> Any:
        value = self._data.pop(key, default)
        if key in self._costs:
            self.current_bytes -= self._costs.pop(key)
        return value

    def clear(self) -> None:
        self._data.clear()
        self._costs.clear()
        self.current_bytes = 0

    # ------------------------------------------------------------------
    def _evict(self) -> None:
        while self._over_budget() and len(self._data) > 1:
            key, _ = self._data.popitem(last=False)
            self.current_bytes -= self._costs.pop(key)
            self.evictions += 1

    def _over_budget(self) -> bool:
        if self.max_entries is not None and len(self._data) > self.max_entries:
            return True
        return (
            self.max_bytes is not None and self.current_bytes > self.max_bytes
        )

    def stats(self) -> dict[str, int | None]:
        """The accounting block ``/metrics`` renders per cache layer."""
        return {
            "entries": len(self._data),
            "bytes": self.current_bytes if self.max_bytes is not None else None,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "evictions": self.evictions,
        }
