"""The service under real concurrency: races, budgets, admission.

Four layers of hardening, each with its own stress:

* **no lost counts / consistent answers** — N threads hammer ``/bound``
  with mixed warm and cold templates; every request is accounted and
  every answer matches the one-shot oracle;
* **bounded caches** — a workload with more distinct query texts than
  the byte budget admits stays within the budget (evictions counted)
  while answers remain correct;
* **admission control** — ``/evaluate`` beyond the concurrency cap
  queues, beyond the queue (or past the timeout) yields the typed
  ``overloaded`` 429 with the documented payload, and in-flight work
  always completes;
* **percentile rule** — the nearest-rank boundary cases the old
  ``round()`` rank got wrong.
"""

import json
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import Database, collect_statistics, lp_bound, parse_query
from repro.datasets import power_law_graph
from repro.service import (
    AdmissionController,
    BoundClient,
    BoundRequest,
    BoundService,
    EvaluateRequest,
    ServiceError,
    start_server,
)
from repro.service.service import _percentile

TRIANGLE = "Q(x,y,z) :- R(x,y), R(y,z), R(z,x)"
CHAIN = "Q(a,b,c) :- R(a,b), S(b,c)"
PS = (1.0, 2.0, math.inf)


@pytest.fixture(scope="module")
def db():
    return Database(
        {
            "R": power_law_graph(100, 700, 0.8, seed=11),
            "S": power_law_graph(100, 500, 0.4, seed=12),
        }
    )


def _chain_text(i: int) -> str:
    """Distinct-but-equivalent-shape chain templates (distinct cache keys)."""
    return f"Q(u{i},v{i},w{i}) :- R(u{i},v{i}), S(v{i},w{i})"


class TestPercentileRule:
    """Explicit floor/ceil nearest-rank: index ``ceil(q·n) - 1``."""

    def test_even_window_p50_is_lower_middle(self):
        # round(0.5 * 3) = 2 (banker's) reported 3; nearest-rank p50 is 2
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.50) == 2.0

    def test_even_window_p99_is_max(self):
        samples = sorted(float(i) for i in range(1, 101))
        assert _percentile(samples, 0.99) == 99.0
        assert _percentile(samples, 1.0) == 100.0

    def test_odd_window_p50_is_middle(self):
        assert _percentile([1.0, 2.0, 3.0], 0.50) == 2.0
        assert _percentile([1.0, 2.0, 3.0, 4.0, 5.0], 0.50) == 3.0

    def test_two_samples(self):
        assert _percentile([1.0, 2.0], 0.50) == 1.0
        assert _percentile([1.0, 2.0], 0.99) == 2.0

    def test_single_sample_and_extremes(self):
        assert _percentile([7.0], 0.50) == 7.0
        assert _percentile([7.0], 0.99) == 7.0
        assert _percentile([1.0, 2.0, 3.0], 0.0) == 1.0


class TestConcurrentBound:
    THREADS = 8
    PER_THREAD = 50

    def test_no_lost_requests_and_consistent_answers(self, db):
        service = BoundService(db, ps=PS)
        texts = [TRIANGLE, CHAIN, _chain_text(1), _chain_text(2)]
        oracle = {}
        for text in texts:
            query = parse_query(text)
            oracle[text] = lp_bound(
                collect_statistics(query, db, ps=PS), query=query
            ).log2_bound

        def hammer(seed: int) -> list[tuple[str, float]]:
            out = []
            for i in range(self.PER_THREAD):
                text = texts[(seed + i) % len(texts)]
                response = service.bound(BoundRequest(query=text, ps=PS))
                out.append((text, response.log2_bound))
            return out

        with ThreadPoolExecutor(max_workers=self.THREADS) as pool:
            results = list(pool.map(hammer, range(self.THREADS)))
        total = self.THREADS * self.PER_THREAD
        for batch in results:
            for text, log2_bound in batch:
                assert log2_bound == pytest.approx(oracle[text])
        metrics = service.metrics()
        assert metrics["requests"]["bound"] == total  # nothing lost
        assert metrics["latency"]["bound"]["count"] == total
        solver = metrics["solver"]
        # every request either hit the memo or solved — none vanished
        assert solver["result_hits"] + solver["solves"] >= total

    def test_precompute_races_with_live_requests(self, db):
        """Warming a live server must not lose or clobber entries."""
        service = BoundService(db, ps=PS)
        texts = [_chain_text(i) for i in range(6)]
        stop = threading.Event()
        seen = []

        def live_traffic():
            while not stop.is_set():
                response = service.bound(
                    BoundRequest(query=texts[0], ps=PS)
                )
                seen.append(response.log2_bound)

        thread = threading.Thread(target=live_traffic)
        thread.start()
        try:
            for _ in range(5):
                assert service.precompute(texts) == len(texts)
        finally:
            stop.set()
            thread.join()
        assert len(set(seen)) == 1  # one consistent answer throughout
        # the warmed statistics survived the races
        metrics = service.metrics()
        assert metrics["caches"]["statistics"]["entries"] >= len(texts)


class TestCacheBudgets:
    def test_diverse_traffic_stays_within_byte_budget(self, db):
        budget = 256 * 1024
        service = BoundService(db, ps=PS, cache_bytes=budget)
        texts = [_chain_text(i) for i in range(48)]
        oracle_query = parse_query(texts[0])
        oracle = lp_bound(
            collect_statistics(oracle_query, db, ps=PS), query=oracle_query
        ).log2_bound
        observed_max = 0

        def hammer(seed: int) -> None:
            nonlocal observed_max
            for i in range(30):
                text = texts[(seed * 7 + i) % len(texts)]
                response = service.bound(BoundRequest(query=text, ps=PS))
                # renamed variables: same shape, same bound
                assert response.log2_bound == pytest.approx(oracle)
                observed_max = max(observed_max, service.cache_bytes_used())

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(hammer, range(6)))
        metrics = service.metrics()
        caches = metrics["caches"]
        assert caches["budget_bytes"] == budget
        assert caches["total_bytes"] <= budget
        assert observed_max <= budget
        evictions = (
            caches["statistics"]["evictions"]
            + caches["solver_results"]["evictions"]
            + caches["solver_assemblies"]["evictions"]
            + caches["queries"]["evictions"]
        )
        assert evictions > 0  # the budget actually bit

    def test_entry_caps_bound_each_layer(self, db):
        service = BoundService(
            db,
            ps=PS,
            max_cached_queries=4,
            max_cached_statistics=4,
            max_cached_results=4,
        )
        for i in range(12):
            service.bound(BoundRequest(query=_chain_text(i), ps=PS))
        metrics = service.metrics()
        assert metrics["caches"]["queries"]["entries"] <= 4
        assert metrics["caches"]["statistics"]["entries"] <= 4
        assert metrics["caches"]["solver_results"]["entries"] <= 4
        assert metrics["caches"]["queries"]["evictions"] >= 8

    def test_evicted_entries_recompute_correctly(self, db):
        unbounded = BoundService(db, ps=PS)
        tight = BoundService(
            db, ps=PS, max_cached_statistics=2, max_cached_results=2
        )
        texts = [_chain_text(i) for i in range(8)] + [TRIANGLE]
        for text in texts:  # cold pass
            tight.bound(BoundRequest(query=text, ps=PS))
        for text in texts:  # every entry has been evicted by now
            expected = unbounded.bound(BoundRequest(query=text, ps=PS))
            actual = tight.bound(BoundRequest(query=text, ps=PS))
            assert actual.log2_bound == pytest.approx(expected.log2_bound)


class _FakeRun:
    count = 7
    nodes_visited = 13


class TestAdmissionController:
    def test_admits_up_to_cap_without_queueing(self):
        controller = AdmissionController(2, max_queue=0)
        with controller.admit():
            with controller.admit():
                assert controller.active == 2
        assert controller.active == 0
        assert controller.stats()["admitted"] == 2
        assert controller.stats()["completed"] == 2

    def test_queue_full_raises_typed_429(self):
        controller = AdmissionController(1, max_queue=0, queue_timeout_seconds=0.5)
        controller.acquire()
        with pytest.raises(ServiceError) as err:
            controller.acquire()
        assert err.value.code == "overloaded"
        assert err.value.http_status == 429
        detail = err.value.detail
        assert detail["queue_depth"] == 0
        assert detail["max_queue"] == 0
        assert detail["active"] == 1
        assert detail["max_concurrent"] == 1
        assert detail["retry_after_seconds"] >= 0.5
        assert controller.stats()["rejected_queue_full"] == 1
        controller.release()

    def test_waiter_is_admitted_when_slot_frees(self):
        controller = AdmissionController(1, max_queue=1, queue_timeout_seconds=5.0)
        controller.acquire()
        admitted = threading.Event()

        def waiter():
            controller.acquire()
            admitted.set()
            controller.release()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert controller.queued == 1
        assert not admitted.is_set()
        controller.release()
        thread.join(timeout=5.0)
        assert admitted.is_set()
        assert controller.stats()["peak_queue_depth"] == 1

    def test_waiter_times_out_with_typed_429(self):
        controller = AdmissionController(
            1, max_queue=1, queue_timeout_seconds=0.05
        )
        controller.acquire()
        with pytest.raises(ServiceError) as err:
            controller.acquire()
        assert err.value.code == "overloaded"
        assert "timed out" in err.value.message
        assert controller.stats()["rejected_timeout"] == 1
        controller.release()
        # the gate recovers: next acquire admits immediately
        controller.acquire()
        controller.release()

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(1, max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionController(1, queue_timeout_seconds=-1.0)


class TestEvaluateAdmission:
    """Admission end-to-end through BoundService.evaluate.

    The dispatched join is replaced with an event-blocked stand-in so
    in-flight / queued / refused states are reached deterministically.
    """

    @pytest.fixture
    def gated_service(self, db, monkeypatch):
        service = BoundService(
            db,
            ps=PS,
            max_concurrent_evaluations=1,
            max_evaluate_queue=1,
            evaluate_queue_timeout=0.15,
        )
        entered = threading.Event()
        release = threading.Event()

        def blocked_join(query, database, **kwargs):
            entered.set()
            assert release.wait(timeout=10.0)
            return _FakeRun()

        monkeypatch.setattr(
            "repro.service.service.generic_join", blocked_join
        )
        return service, entered, release

    def test_over_cap_queues_then_refuses_in_flight_completes(
        self, gated_service
    ):
        service, entered, release = gated_service
        request = EvaluateRequest(query=TRIANGLE)
        outcomes = {}

        def first():
            outcomes["first"] = service.evaluate(request)

        t_first = threading.Thread(target=first)
        t_first.start()
        assert entered.wait(timeout=5.0)  # in flight, holding the slot

        def queued():
            try:
                outcomes["queued"] = service.evaluate(request)
            except ServiceError as exc:
                outcomes["queued"] = exc

        t_queued = threading.Thread(target=queued)
        t_queued.start()
        deadline = time.monotonic() + 5.0
        while (
            service.admission.queued < 1 and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        assert service.admission.queued == 1

        # queue is now full: a third request is refused immediately
        with pytest.raises(ServiceError) as err:
            service.evaluate(request)
        assert err.value.code == "overloaded"
        assert err.value.detail["queue_depth"] == 1
        assert err.value.detail["max_queue"] == 1
        assert err.value.detail["active"] == 1
        assert err.value.detail["retry_after_seconds"] > 0

        # the queued waiter times out with the typed refusal too
        t_queued.join(timeout=5.0)
        assert isinstance(outcomes["queued"], ServiceError)
        assert outcomes["queued"].code == "overloaded"

        # in-flight work is never killed: it completes once unblocked
        release.set()
        t_first.join(timeout=5.0)
        assert outcomes["first"].count == _FakeRun.count
        metrics = service.metrics()
        assert metrics["errors"]["overloaded"] == 2
        assert metrics["admission"]["rejected_queue_full"] == 1
        assert metrics["admission"]["rejected_timeout"] == 1
        assert metrics["admission"]["completed"] == 1
        assert metrics["admission"]["active"] == 0

    def test_bound_is_never_queued_behind_evaluations(self, gated_service):
        service, entered, release = gated_service
        thread = threading.Thread(
            target=lambda: service.evaluate(EvaluateRequest(query=TRIANGLE))
        )
        thread.start()
        assert entered.wait(timeout=5.0)
        try:
            # the cheap product answers while the slot is saturated
            response = service.bound(BoundRequest(query=TRIANGLE, ps=PS))
            assert response.status == "optimal"
        finally:
            release.set()
            thread.join(timeout=5.0)

    def test_http_429_carries_retry_after_header(self, db, monkeypatch):
        import http.client

        service = BoundService(
            db,
            ps=PS,
            max_concurrent_evaluations=1,
            max_evaluate_queue=0,
            evaluate_queue_timeout=0.1,
        )
        entered = threading.Event()
        release = threading.Event()

        def blocked_join(query, database, **kwargs):
            entered.set()
            assert release.wait(timeout=10.0)
            return _FakeRun()

        monkeypatch.setattr(
            "repro.service.service.generic_join", blocked_join
        )
        server = start_server(service)
        try:
            holder = BoundClient(server.url)
            thread = threading.Thread(
                target=lambda: holder.evaluate(query=TRIANGLE)
            )
            thread.start()
            assert entered.wait(timeout=5.0)

            host, port = server.server_address[:2]
            connection = http.client.HTTPConnection(host, port, timeout=10)
            body = json.dumps({"query": TRIANGLE})
            connection.request(
                "POST", "/evaluate", body,
                {"Content-Type": "application/json"},
            )
            raw = connection.getresponse()
            payload = json.loads(raw.read())
            assert raw.status == 429
            assert int(raw.headers["Retry-After"]) >= 1
            assert payload["error"]["code"] == "overloaded"
            assert payload["error"]["detail"]["retry_after_seconds"] > 0
            connection.close()

            release.set()
            thread.join(timeout=5.0)
            holder.close()
        finally:
            release.set()
            server.shutdown()
            server.server_close()


class TestSustainedMixedWorkload:
    """The acceptance stress: ≥10k requests, more distinct texts than
    the cache budget admits, correct bounds throughout, budget held."""

    THREADS = 8
    PER_THREAD = 1256  # 8 × 1256 = 10_048 ≥ 10k
    DISTINCT = 48

    def test_ten_thousand_requests_mixed_warm_cold(self, db):
        budget = 192 * 1024
        service = BoundService(db, ps=PS, cache_bytes=budget)
        hot = [TRIANGLE, CHAIN]
        cold = [_chain_text(i) for i in range(self.DISTINCT)]
        oracle = {}
        for text in hot + [cold[0]]:
            query = parse_query(text)
            oracle[text] = lp_bound(
                collect_statistics(query, db, ps=PS), query=query
            ).log2_bound
        chain_oracle = oracle[cold[0]]
        over_budget = []
        failures = []

        def hammer(seed: int) -> int:
            served = 0
            for i in range(self.PER_THREAD):
                if i % 10 == 0:  # 10% cold: distinct texts beyond budget
                    text = cold[(seed * 13 + i) % self.DISTINCT]
                    expected = chain_oracle
                else:
                    text = hot[(seed + i) % 2]
                    expected = oracle[text]
                response = service.bound(BoundRequest(query=text, ps=PS))
                if abs(response.log2_bound - expected) > 1e-9:
                    failures.append((text, response.log2_bound, expected))
                served += 1
                if i % 97 == 0:
                    used = service.cache_bytes_used()
                    if used > budget:
                        over_budget.append(used)
            return served

        with ThreadPoolExecutor(max_workers=self.THREADS) as pool:
            served = sum(pool.map(hammer, range(self.THREADS)))
        total = self.THREADS * self.PER_THREAD
        assert served == total
        assert not failures
        assert not over_budget, f"cache bytes exceeded budget: {over_budget}"
        metrics = service.metrics()
        assert metrics["requests"]["bound"] == total  # no lost requests
        caches = metrics["caches"]
        assert caches["total_bytes"] <= budget
        assert caches["statistics"]["evictions"] > 0
        assert json.dumps(metrics)  # /metrics stays JSON-safe throughout
