"""The bound-serving service: protocol, caches, budgets, and HTTP.

Three layers, mirroring the package:

* the JSON codec round-trips every message type (∞ included) and
  rejects malformed payloads with typed errors;
* :class:`BoundService` answers exactly what the library answers,
  accounts its caches, and turns budget verdicts into typed 422s
  while staying alive;
* the HTTP front-end serves concurrent keep-alive clients at warm
  sub-5ms p99 latency.
"""

import json
import math
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import Database, collect_statistics, lp_bound, parse_query
from repro.datasets import power_law_graph
from repro.service import (
    ERROR_CODES,
    BoundClient,
    BoundRequest,
    BoundResponse,
    BoundService,
    EvaluateRequest,
    EvaluateResponse,
    ServiceError,
    start_server,
)
from repro.service.protocol import decode_float, encode_float

TRIANGLE = "Q(x,y,z) :- R(x,y), R(y,z), R(z,x)"
CHAIN = "Q(a,b,c) :- R(a,b), S(b,c)"
PS = (1.0, 2.0, math.inf)


@pytest.fixture(scope="module")
def db():
    return Database(
        {
            "R": power_law_graph(120, 900, 0.8, seed=5),
            "S": power_law_graph(120, 700, 0.3, seed=6),
        }
    )


@pytest.fixture
def service(db):
    return BoundService(db, ps=PS)


@pytest.fixture(scope="module")
def served(db):
    service = BoundService(db, ps=PS)
    server = start_server(service)
    yield server, service
    server.shutdown()
    server.server_close()


class TestProtocol:
    def test_float_codec_round_trips(self):
        for value in (1.0, -2.5, math.inf, -math.inf, 0.0):
            encoded = encode_float(value)
            assert json.dumps(encoded)  # JSON-safe
            assert decode_float(encoded) == value
        assert math.isnan(decode_float(encode_float(math.nan)))

    def test_decode_float_rejects_junk(self):
        with pytest.raises(ServiceError) as err:
            decode_float("three", context="ps")
        assert err.value.code == "bad-request"
        with pytest.raises(ServiceError):
            decode_float(None)
        with pytest.raises(ServiceError):
            decode_float(True)

    def test_bound_request_round_trip(self):
        request = BoundRequest(
            query=TRIANGLE, ps=(1.0, math.inf), family=(1.0,)
        )
        wire = json.loads(json.dumps(request.to_payload()))
        assert BoundRequest.from_payload(wire) == request

    def test_evaluate_request_round_trip(self):
        request = EvaluateRequest(
            query=TRIANGLE,
            memory_budget="64M:256M",
            deadline_seconds=1.5,
            frontier_block=512,
        )
        wire = json.loads(json.dumps(request.to_payload()))
        assert EvaluateRequest.from_payload(wire) == request

    def test_response_round_trips(self):
        response = BoundResponse(
            log2_bound=12.5,
            bound=2**12.5,
            cone="polymatroid",
            status="optimal",
            norms_used=(2.0, math.inf),
            certificate="||deg||",
            cached=True,
            elapsed_ms=0.2,
        )
        wire = json.loads(json.dumps(response.to_payload()))
        assert BoundResponse.from_payload(wire) == response
        ev = EvaluateResponse(
            count=42, nodes_visited=99, elapsed_ms=1.0,
            degradations=("frontier_block=512",),
        )
        wire = json.loads(json.dumps(ev.to_payload()))
        assert EvaluateResponse.from_payload(wire) == ev

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"query": ""},
            {"query": 7},
            {"query": TRIANGLE, "ps": []},
            {"query": TRIANGLE, "ps": [1, "three"]},
            {"query": TRIANGLE, "cone": 3},
            {"query": TRIANGLE, "turbo": True},
        ],
    )
    def test_bound_request_rejects_malformed(self, payload):
        with pytest.raises(ServiceError) as err:
            BoundRequest.from_payload(payload)
        assert err.value.code == "bad-request"

    @pytest.mark.parametrize(
        "payload",
        [
            {"query": TRIANGLE, "memory_budget": 64},
            {"query": TRIANGLE, "frontier_block": 0},
            {"query": TRIANGLE, "frontier_block": True},
            {"query": TRIANGLE, "limit": 5},
        ],
    )
    def test_evaluate_request_rejects_malformed(self, payload):
        with pytest.raises(ServiceError) as err:
            EvaluateRequest.from_payload(payload)
        assert err.value.code == "bad-request"

    def test_error_codes_all_mapped(self):
        for code, status in ERROR_CODES.items():
            error = ServiceError(code, "x")
            assert error.http_status == status
            assert error.to_payload()["error"]["code"] == code
        with pytest.raises(ValueError):
            ServiceError("made-up", "x")


class TestBoundService:
    def test_matches_library_bound(self, service, db):
        query = parse_query(TRIANGLE)
        expected = lp_bound(
            collect_statistics(query, db, ps=PS), query=query
        )
        response = service.bound(BoundRequest(query=TRIANGLE, ps=PS))
        assert response.log2_bound == pytest.approx(expected.log2_bound)
        assert response.cone == expected.cone
        assert response.status == "optimal"
        assert response.certificate.startswith("||")

    def test_family_matches_restrict_ps(self, service, db):
        query = parse_query(CHAIN)
        stats = collect_statistics(query, db, ps=PS)
        expected = lp_bound(stats.restrict_ps([1.0]), query=query)
        response = service.bound(
            BoundRequest(query=CHAIN, family=(1.0,))
        )
        assert response.log2_bound == pytest.approx(expected.log2_bound)

    def test_narrower_ps_is_family_restriction(self, service):
        wide = service.bound(BoundRequest(query=TRIANGLE, ps=PS))
        narrow = service.bound(
            BoundRequest(query=TRIANGLE, ps=(1.0, math.inf))
        )
        assert narrow.log2_bound >= wide.log2_bound - 1e-9

    def test_second_request_is_memo_hit(self, db):
        service = BoundService(db, ps=PS)
        first = service.bound(BoundRequest(query=TRIANGLE, ps=PS))
        second = service.bound(BoundRequest(query=TRIANGLE, ps=PS))
        assert not first.cached
        assert second.cached
        assert second.log2_bound == first.log2_bound
        metrics = service.metrics()
        assert metrics["requests"]["bound"] == 2
        assert metrics["solver"]["result_hits"] >= 1
        assert metrics["statistics_cache"] == {"hits": 1, "misses": 1}

    def test_precompute_warms_every_layer(self, db):
        service = BoundService(db, ps=PS)
        assert service.precompute([TRIANGLE, CHAIN]) == 2
        response = service.bound(BoundRequest(query=TRIANGLE, ps=PS))
        assert response.cached
        assert service.metrics()["statistics_cache"]["hits"] == 1

    def test_parse_error_is_typed(self, service):
        with pytest.raises(ServiceError) as err:
            service.bound(BoundRequest(query="not a query"))
        assert err.value.code == "parse-error"
        assert service.errors["parse-error"] >= 1

    def test_unknown_relation_is_typed(self, service):
        with pytest.raises(ServiceError) as err:
            service.bound(BoundRequest(query="Q(x,y) :- Missing(x,y)"))
        assert err.value.code == "unknown-relation"
        assert "'R'" in err.value.message

    def test_unknown_cone_is_typed(self, service):
        with pytest.raises(ServiceError) as err:
            service.bound(BoundRequest(query=TRIANGLE, cone="conic"))
        assert err.value.code == "bad-request"

    def test_evaluate_counts_exactly(self, service, db):
        from repro.evaluation import generic_join

        expected = generic_join(parse_query(TRIANGLE), db).count
        response = service.evaluate(EvaluateRequest(query=TRIANGLE))
        assert response.count == expected
        assert response.degradations == ()
        assert response.nodes_visited > 0

    def test_deadline_verdict_is_typed_and_service_survives(self, service):
        with pytest.raises(ServiceError) as err:
            service.evaluate(
                EvaluateRequest(query=TRIANGLE, deadline_seconds=1e-9)
            )
        assert err.value.code == "budget-deadline"
        assert err.value.http_status == 422
        assert err.value.detail["reason"] == "deadline exceeded"
        assert err.value.detail["nodes_visited"] >= 0
        # the process keeps serving: the very next request succeeds
        after = service.bound(BoundRequest(query=TRIANGLE, ps=PS))
        assert after.status == "optimal"
        assert service.errors["budget-deadline"] == 1

    def test_memory_verdict_is_typed(self):
        # tracemalloc makes the governor's probe measure traced growth
        # rather than RSS growth: after earlier tests the allocator
        # holds recycled pages, so RSS alone may never cross the cap
        # even though the run allocates well past it.
        import tracemalloc

        # a join big enough that the frontier outgrows a 4K hard cap
        big = Database({"R": power_law_graph(200, 3000, 0.8, seed=5)})
        service = BoundService(big, ps=PS)
        tracemalloc.start()
        try:
            with pytest.raises(ServiceError) as err:
                service.evaluate(
                    EvaluateRequest(query=TRIANGLE, memory_budget="2K:4K")
                )
        finally:
            tracemalloc.stop()
        assert err.value.code == "budget-memory"
        assert err.value.detail["reason"] == "hard memory cap reached"

    def test_bad_budget_spec_is_bad_request(self, service):
        with pytest.raises(ServiceError) as err:
            service.evaluate(
                EvaluateRequest(query=TRIANGLE, memory_budget="lots")
            )
        assert err.value.code == "bad-request"

    def test_concurrent_requests_agree(self, service):
        queries = [TRIANGLE, CHAIN] * 8

        def ask(text):
            return service.bound(BoundRequest(query=text, ps=PS))

        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(pool.map(ask, queries))
        by_query = {}
        for text, response in zip(queries, responses):
            by_query.setdefault(text, set()).add(response.log2_bound)
        assert all(len(values) == 1 for values in by_query.values())
        assert service.metrics()["requests"]["bound"] >= len(queries)

    def test_metrics_shape(self, service):
        service.bound(BoundRequest(query=TRIANGLE, ps=PS))
        metrics = service.metrics()
        assert metrics["lp_mode"] in ("persistent", "oneshot")
        for key in (
            "assembly_hits", "assembly_misses", "result_hits", "solves",
            "persistent_resolves", "cached_assemblies", "cached_models",
            "cached_results",
        ):
            assert key in metrics["solver"]
        latency = metrics["latency"]["bound"]
        assert latency["count"] >= 1
        assert latency["p50_ms"] <= latency["p99_ms"] <= latency["max_ms"]
        for layer in (
            "queries", "statistics", "solver_results", "solver_assemblies",
            "solver_models",
        ):
            cache = metrics["caches"][layer]
            assert cache["entries"] >= 0
            assert cache["evictions"] >= 0
        admission = metrics["admission"]
        assert admission["max_concurrent"] >= 1
        assert admission["active"] == 0
        assert admission["queued"] == 0
        assert json.dumps(metrics)  # the whole document is JSON-safe

    def test_uptime_is_monotonic_and_nonnegative(self, service):
        first = service.metrics()["uptime_seconds"]
        second = service.metrics()["uptime_seconds"]
        assert 0 <= first <= second


class TestHttpFrontend:
    def test_healthz_and_metrics(self, served):
        server, _ = served
        with BoundClient(server.url) as client:
            assert client.healthz() == {"status": "ok"}
            metrics = client.metrics()
            assert "uptime_seconds" in metrics

    def test_bound_round_trip(self, served, db):
        server, _ = served
        query = parse_query(TRIANGLE)
        expected = lp_bound(
            collect_statistics(query, db, ps=PS), query=query
        )
        with BoundClient(server.url) as client:
            response = client.bound(query=TRIANGLE, ps=PS)
        assert response.log2_bound == pytest.approx(expected.log2_bound)

    def test_evaluate_round_trip(self, served, db):
        server, _ = served
        from repro.evaluation import generic_join

        expected = generic_join(parse_query(CHAIN), db).count
        with BoundClient(server.url) as client:
            response = client.evaluate(query=CHAIN)
        assert response.count == expected

    def test_unknown_endpoint_is_404(self, served):
        server, _ = served
        with BoundClient(server.url) as client:
            with pytest.raises(ServiceError) as err:
                client._request("GET", "/nope")
        assert err.value.code == "not-found"

    def test_malformed_json_is_bad_request(self, served):
        server, _ = served
        request = urllib.request.Request(
            server.url + "/bound",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400
        payload = json.loads(err.value.read())
        assert payload["error"]["code"] == "bad-request"

    def test_budget_verdict_is_422_and_server_survives(self, served):
        server, _ = served
        with BoundClient(server.url) as client:
            with pytest.raises(ServiceError) as err:
                client.evaluate(query=TRIANGLE, deadline_seconds=1e-9)
            assert err.value.code == "budget-deadline"
            assert err.value.http_status == 422
            assert err.value.detail["reason"] == "deadline exceeded"
            # same connection, next request: still serving
            assert client.bound(query=TRIANGLE).status == "optimal"

    def test_concurrent_http_clients(self, served):
        server, _ = served

        def ask(_):
            with BoundClient(server.url) as client:
                return client.bound(query=TRIANGLE, ps=PS).log2_bound

        with ThreadPoolExecutor(max_workers=6) as pool:
            values = set(pool.map(ask, range(12)))
        assert len(values) == 1

    def test_warm_latency_sustains_1k_requests(self, served):
        # the acceptance bar: ≥1k warm requests, p99 under 5 ms
        server, service = served
        with BoundClient(server.url) as client:
            client.bound(query=TRIANGLE, ps=PS)  # warm every cache
            for _ in range(1000):
                response = client.bound(query=TRIANGLE, ps=PS)
                assert response.cached
            metrics = client.metrics()
        latency = metrics["latency"]["bound"]
        assert latency["count"] >= 1000
        assert latency["p99_ms"] < 5.0, latency
