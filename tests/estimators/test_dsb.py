"""Unit tests for the Degree Sequence Bound."""

import pytest

from repro.estimators import dsb_chain, dsb_pair, dsb_single_join
from repro.evaluation import acyclic_count
from repro.query import parse_query
from repro.relational import Database, Relation


class TestDsbPair:
    def test_rank_aligned_product(self):
        assert dsb_pair([3, 1], [2, 2]) == pytest.approx(3 * 2 + 1 * 2)

    def test_sorts_inputs(self):
        assert dsb_pair([1, 3], [2, 2]) == dsb_pair([3, 1], [2, 2])

    def test_uneven_lengths_truncate(self):
        assert dsb_pair([5, 1, 1], [2]) == pytest.approx(10.0)

    def test_empty(self):
        assert dsb_pair([], [1, 2]) == 0.0


class TestDsbSingleJoin:
    def test_oracle_on_small_instance(self, two_table_db, one_join_query):
        bound = dsb_single_join(one_join_query, two_table_db)
        truth = acyclic_count(one_join_query, two_table_db)
        assert bound >= truth

    def test_exact_on_aligned_instance(self):
        # degree sequences align rank-by-rank on the same y values
        r = Relation(("x", "y"), [(i, 0) for i in range(3)] + [(9, 1)])
        s = Relation(("y", "z"), [(0, j) for j in range(2)] + [(1, 7)])
        db = Database({"R": r, "S": s})
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        assert dsb_single_join(q, db) == pytest.approx(3 * 2 + 1 * 1)
        assert acyclic_count(q, db) == 7

    def test_requires_two_atoms(self, graph_db, triangle_query):
        with pytest.raises(ValueError):
            dsb_single_join(triangle_query, graph_db)

    def test_requires_single_shared_variable(self):
        q = parse_query("Q(x,y) :- R(x,y), S(x,y)")
        db = Database(
            {
                "R": Relation(("a", "b"), [(1, 2)]),
                "S": Relation(("a", "b"), [(1, 2)]),
            }
        )
        with pytest.raises(ValueError):
            dsb_single_join(q, db)

    def test_dsb_beats_l2_bound(self, two_table_db, one_join_query):
        # DSB ≤ ℓ2·ℓ2 (they are the two sides of Cauchy–Schwartz)
        import math

        from repro.core import collect_statistics, lp_bound

        stats = collect_statistics(one_join_query, two_table_db, ps=[2.0])
        l2 = lp_bound(
            stats.restrict_ps([2.0]), query=one_join_query
        ).log2_bound
        assert math.log2(dsb_single_join(one_join_query, two_table_db)) <= l2 + 1e-9


class TestDsbChain:
    def _chain_db(self):
        r1 = Relation(("a", "b"), [(i, i % 3) for i in range(9)])
        r2 = Relation(("a", "b"), [(i % 3, i) for i in range(7)])
        r3 = Relation(("a", "b"), [(i, i % 2) for i in range(7)])
        return Database({"R1": r1, "R2": r2, "R3": r3})

    def test_two_atom_chain_matches_single_join(self):
        db = self._chain_db()
        chain_q = parse_query("Q(x1,x2,x3) :- R1(x1,x2), R2(x2,x3)")
        assert dsb_chain(chain_q, db) == pytest.approx(
            dsb_single_join(chain_q, db)
        )

    def test_three_atom_chain_dominates_truth(self):
        db = self._chain_db()
        q = parse_query("Q(a,b,c,d) :- R1(a,b), R2(b,c), R3(c,d)")
        assert dsb_chain(q, db) >= acyclic_count(q, db)

    def test_rejects_cyclic(self, graph_db, triangle_query):
        with pytest.raises(ValueError):
            dsb_chain(triangle_query, graph_db)

    def test_rejects_non_chain_shape(self):
        db = self._chain_db()
        q = parse_query("Q(a,b,c) :- R1(a,b), R2(c,b)")  # wrong orientation
        with pytest.raises(ValueError):
            dsb_chain(q, db)

    def test_rejects_non_binary(self):
        db = Database({"T": Relation(("a", "b", "c"), [(1, 2, 3)])})
        q = parse_query("Q(a,b,c) :- T(a,b,c)")
        with pytest.raises(ValueError):
            dsb_chain(q, db)
