"""Unit tests for the PANDA ({1,∞}) bound."""

import math

import pytest

from repro.core import collect_statistics, lp_bound
from repro.estimators import agm_bound, panda_bound
from repro.query import parse_query
from repro.relational import Database, Relation


class TestPanda:
    def test_never_worse_than_agm(self, graph_db, triangle_query):
        panda = panda_bound(triangle_query, graph_db)
        agm = agm_bound(triangle_query, graph_db)
        assert panda.log2_bound <= agm + 1e-9

    def test_matches_eq17_on_single_join(self):
        # R: one y value with 8 x's; S: y fans out to 4 z's
        r = Relation(("x", "y"), [(i, 0) for i in range(8)])
        s = Relation(("y", "z"), [(0, j) for j in range(4)])
        db = Database({"R": r, "S": s})
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        result = panda_bound(q, db)
        # Eq. 17: min(|S|·max_deg_R(x|y), |R|·max_deg_S(z|y))
        expected = math.log2(min(4 * 8, 8 * 4))
        assert result.log2_bound == pytest.approx(expected)

    def test_uses_infinity_norm(self, graph_db, triangle_query):
        result = panda_bound(triangle_query, graph_db)
        assert set(result.norms_used()) <= {1.0, math.inf}

    def test_restricts_supplied_statistics(self, graph_db, triangle_query):
        rich = collect_statistics(
            triangle_query, graph_db, ps=[1.0, 2.0, 7.0, math.inf]
        )
        result = panda_bound(triangle_query, graph_db, statistics=rich)
        assert set(result.norms_used()) <= {1.0, math.inf}
        # and must equal the self-collected version
        fresh = panda_bound(triangle_query, graph_db)
        assert result.log2_bound == pytest.approx(fresh.log2_bound)

    def test_dominates_truth(self, two_table_db, one_join_query):
        from repro.evaluation import acyclic_count

        truth = acyclic_count(one_join_query, two_table_db)
        result = panda_bound(one_join_query, two_table_db)
        assert result.bound >= truth

    def test_full_lp_never_worse_than_panda(self, graph_db, triangle_query):
        stats = collect_statistics(
            triangle_query, graph_db, ps=[1.0, 2.0, math.inf]
        )
        full = lp_bound(stats, query=triangle_query)
        panda = panda_bound(triangle_query, graph_db, statistics=stats)
        assert full.log2_bound <= panda.log2_bound + 1e-9
