"""Unit tests for the AGM bound (two routes must agree)."""

import math

import pytest

from repro.estimators import agm_bound, agm_bound_lp
from repro.query import parse_query
from repro.relational import Database, Relation


@pytest.fixture
def product_db():
    rows = [(i, j) for i in range(8) for j in range(8)]
    r = Relation(("a", "b"), rows)
    return Database({"R": r, "S": r, "T": r})


class TestAgm:
    def test_triangle_on_product(self, product_db):
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)")
        # |R| = 64 → AGM = 64^{3/2} = 2^9
        assert agm_bound(q, product_db) == pytest.approx(9.0)

    def test_lp_route_agrees(self, product_db):
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)")
        assert agm_bound_lp(q, product_db).log2_bound == pytest.approx(
            agm_bound(q, product_db)
        )

    def test_lp_route_agrees_on_skewed_data(self, graph_db, triangle_query):
        direct = agm_bound(triangle_query, graph_db)
        via_lp = agm_bound_lp(triangle_query, graph_db).log2_bound
        assert via_lp == pytest.approx(direct, abs=1e-6)

    def test_single_join_is_product(self, two_table_db, one_join_query):
        expected = math.log2(len(two_table_db["R"])) + math.log2(
            len(two_table_db["S"])
        )
        assert agm_bound(one_join_query, two_table_db) == pytest.approx(expected)

    def test_empty_relation_gives_zero(self):
        db = Database(
            {"R": Relation(("a", "b"), []), "S": Relation(("a", "b"), [(1, 2)])}
        )
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        assert agm_bound(q, db) == -math.inf

    def test_agm_dominates_truth(self, graph_db, triangle_query):
        from repro.evaluation import count_query

        true_count = count_query(triangle_query, graph_db)
        assert 2 ** agm_bound(triangle_query, graph_db) >= true_count

    def test_repeated_variable_atom(self):
        # R(x, x) projects to the diagonal; AGM uses its distinct count
        db = Database({"R": Relation(("a", "b"), [(1, 1), (2, 2), (1, 2)])})
        q = parse_query("Q(x) :- R(x,x)")
        assert agm_bound(q, db) == pytest.approx(1.0)  # 2 diagonal rows
