"""Unit tests for the Appendix B analysis of [14]."""

import math

import pytest

from repro.datasets import matching_relation
from repro.estimators.jayaraman import jayaraman_bound, jayaraman_statistics
from repro.evaluation import count_query
from repro.query import parse_query
from repro.relational import Database, Relation


class TestExampleB1:
    """The 2-cycle counterexample: girth 2 < p + 1 = 3 breaks soundness."""

    @pytest.fixture
    def setup(self):
        diag = matching_relation(64)
        db = Database({"R": diag, "S": diag})
        q = parse_query("Q(u,v) :- R(u,v), S(v,u)")
        return db, q

    def test_raw_lp_claims_n_to_two_thirds(self, setup):
        db, q = setup
        res = jayaraman_bound(q, db, p=2.0)
        # L = sqrt(N) per edge; x = 2/3 each → bound N^{2/3}
        assert res.log2_bound_modular == pytest.approx(
            (2 / 3) * math.log2(64), abs=1e-6
        )

    def test_true_output_exceeds_raw_claim(self, setup):
        db, q = setup
        res = jayaraman_bound(q, db, p=2.0)
        truth = count_query(q, db)  # = N = 64
        assert truth == 64
        assert 2 ** res.log2_bound_modular < truth  # unsound!
        assert not res.sound

    def test_girth_condition_flags_inapplicability(self, setup):
        db, q = setup
        res = jayaraman_bound(q, db, p=2.0)
        assert res.girth == 2
        assert not res.applicable

    def test_polymatroid_value_is_sound(self, setup):
        db, q = setup
        res = jayaraman_bound(q, db, p=2.0)
        truth = count_query(q, db)
        assert 2 ** res.log2_bound_polymatroid >= truth - 1e-6


class TestTheoremB2:
    """When girth ≥ p + 1 the modular and polymatroid values coincide."""

    @pytest.mark.parametrize("p", [1.0, 2.0])
    def test_triangle_girth3_sound_for_p2(self, graph_db, triangle_query, p):
        res = jayaraman_bound(triangle_query, graph_db, p=p)
        assert res.girth == 3
        assert res.applicable  # 3 ≥ p + 1 for p ≤ 2
        assert res.log2_bound_modular == pytest.approx(
            res.log2_bound_polymatroid, abs=1e-5
        )
        assert res.sound

    def test_triangle_p3_not_applicable(self, graph_db, triangle_query):
        # the paper: girth 3 query cannot use ℓ3 through [14]
        res = jayaraman_bound(triangle_query, graph_db, p=3.0)
        assert not res.applicable

    def test_path_always_applicable(self, graph_db):
        q = parse_query("Q(a,b,c) :- R(a,b), R(b,c)")
        res = jayaraman_bound(q, graph_db, p=5.0)
        assert res.girth == math.inf
        assert res.applicable
        assert res.sound

    def test_bound_dominates_truth_when_applicable(self, graph_db, triangle_query):
        res = jayaraman_bound(triangle_query, graph_db, p=2.0)
        truth = count_query(triangle_query, graph_db)
        assert 2 ** res.log2_bound_modular >= truth


class TestStatistics:
    def test_one_statistic_per_atom(self, graph_db, triangle_query):
        stats = jayaraman_statistics(triangle_query, graph_db, 2.0)
        assert len(stats) == 3
        assert all(s.p == 2.0 for s in stats)

    def test_rejects_non_binary(self):
        db = Database({"T": Relation(("a", "b", "c"), [(1, 2, 3)])})
        q = parse_query("Q(a,b,c) :- T(a,b,c)")
        with pytest.raises(ValueError, match="binary"):
            jayaraman_statistics(q, db, 2.0)
