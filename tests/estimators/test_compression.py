"""Unit and property tests for dominating degree-sequence compression."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.estimators.compression import (
    compress_sequence,
    compression_error_log2,
)
from repro.estimators.dsb import dsb_pair


class TestCompressSequence:
    def test_dominates_pointwise(self):
        seq = [9, 7, 5, 5, 3, 2, 1, 1, 1, 1]
        out = compress_sequence(seq, 3)
        assert np.all(out >= np.sort(np.asarray(seq, float))[::-1])

    def test_segment_budget(self):
        seq = list(range(100, 0, -1))
        out = compress_sequence(seq, 4)
        assert len(set(out.tolist())) <= 4

    def test_enough_segments_is_lossless(self):
        seq = [8, 4, 2, 1]
        out = compress_sequence(seq, 10)
        assert np.allclose(out, [8, 4, 2, 1])

    def test_single_segment_is_max(self):
        out = compress_sequence([5, 3, 1], 1)
        assert np.allclose(out, [5, 5, 5])

    def test_empty(self):
        assert compress_sequence([], 3).size == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            compress_sequence([1], 0)
        with pytest.raises(ValueError):
            compress_sequence([-1], 2)


class TestSoundness:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(1, 200), min_size=1, max_size=60),
        st.integers(1, 6),
        st.sampled_from([1.0, 2.0, 3.0, math.inf]),
    )
    def test_norms_dominate(self, degrees, segments, p):
        assert compression_error_log2(degrees, segments, p) >= -1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(1, 100), min_size=1, max_size=40),
        st.lists(st.integers(1, 100), min_size=1, max_size=40),
        st.integers(1, 5),
    )
    def test_dsb_on_compression_dominates(self, a, b, segments):
        exact = dsb_pair(a, b)
        compressed = dsb_pair(
            compress_sequence(a, segments), compress_sequence(b, segments)
        )
        assert compressed >= exact - 1e-6

    def test_error_shrinks_with_segments(self):
        rng = np.random.default_rng(3)
        seq = np.sort(rng.zipf(1.8, size=500).astype(float))[::-1]
        errors = [
            compression_error_log2(seq, k, 2.0) for k in (1, 2, 4, 8, 16)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(errors, errors[1:]))
        assert errors[-1] < errors[0]
