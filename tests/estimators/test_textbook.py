"""Unit tests for the textbook (DuckDB-style) estimator."""

import math

import pytest

from repro.estimators import textbook_estimate, textbook_estimate_log2
from repro.query import parse_query
from repro.relational import Database, Relation


class TestFormula15:
    def test_single_join_matches_eq15(self):
        r = Relation(("x", "y"), [(i, i % 4) for i in range(16)])
        s = Relation(("y", "z"), [(j % 2, j) for j in range(8)])
        db = Database({"R": r, "S": s})
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        # |R|·|S| / max(V(R,y)=4, V(S,y)=2) = 16·8/4
        assert textbook_estimate(q, db) == pytest.approx(32.0)

    def test_exact_on_uniform_independent_data(self):
        # uniform keys, independent: the estimator's home turf
        r = Relation(("x", "y"), [(i, i % 4) for i in range(8)])
        s = Relation(("y", "z"), [(j % 4, j) for j in range(8)])
        db = Database({"R": r, "S": s})
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        from repro.evaluation import acyclic_count

        assert textbook_estimate(q, db) == pytest.approx(
            acyclic_count(q, db)
        )

    def test_empty_relation_estimates_zero(self):
        db = Database(
            {"R": Relation(("x", "y"), []), "S": Relation(("y", "z"), [(0, 1)])}
        )
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        assert textbook_estimate(q, db) == 0.0
        assert textbook_estimate_log2(q, db) == -math.inf


class TestFailureDirections:
    """The paper's observed double failure (Appendix C.1/C.2)."""

    def test_underestimates_skewed_acyclic_join(self, graph_db):
        from repro.evaluation import acyclic_count

        q = parse_query("Q(x,y,z) :- R(x,y), R(y,z)")
        truth = acyclic_count(q, graph_db)
        estimate = textbook_estimate(q, graph_db)
        assert estimate < truth  # correlation through skew is missed

    def test_overestimates_cyclic_triangle(self, graph_db, triangle_query):
        from repro.evaluation import count_query

        truth = count_query(triangle_query, graph_db)
        estimate = textbook_estimate(triangle_query, graph_db)
        assert estimate > truth  # the cycle-closing predicate is undercounted

    def test_single_relation_estimate_is_size(self, graph_db):
        q = parse_query("Q(x,y) :- R(x,y)")
        assert textbook_estimate(q, graph_db) == pytest.approx(
            len(graph_db["R"])
        )

    def test_not_an_upper_bound(self, graph_db):
        # sanity of the framing: unlike lp_bound, this can be below truth
        from repro.evaluation import acyclic_count

        q = parse_query("Q(x,y,z) :- R(x,y), R(y,z)")
        assert textbook_estimate(q, graph_db) < acyclic_count(q, graph_db)
