"""The on-disk fixture cache must be transparent and byte-identical."""

import numpy as np
import pytest

from repro.datasets import imdb_database, snap_database
from repro.datasets.cache import cache_directory, cached_database
from repro.relational import Database, Relation


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_DATASET_CACHE", str(tmp_path))
    return tmp_path


class TestCacheDirectory:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_DATASET_CACHE", raising=False)
        assert cache_directory() is None

    def test_created_on_demand(self, tmp_path, monkeypatch):
        target = tmp_path / "nested" / "cache"
        monkeypatch.setenv("REPRO_DATASET_CACHE", str(target))
        assert cache_directory() == target
        assert target.is_dir()


class TestCachedDatabase:
    def test_build_called_once(self, cache_dir):
        calls = []

        def build():
            calls.append(1)
            return Database({"R": Relation(("x", "y"), [(1, 2), (3, 4)])})

        first = cached_database("unit", {"k": 1}, build)
        second = cached_database("unit", {"k": 1}, build)
        assert calls == [1]
        assert list(first["R"]) == list(second["R"])

    def test_distinct_params_distinct_entries(self, cache_dir):
        a = cached_database(
            "unit",
            {"n": 2},
            lambda: Database({"R": Relation(("x",), [(1,), (2,)])}),
        )
        b = cached_database(
            "unit",
            {"n": 3},
            lambda: Database({"R": Relation(("x",), [(1,), (2,), (3,)])}),
        )
        assert len(a["R"]) == 2 and len(b["R"]) == 3
        assert len(list(cache_dir.glob("unit-*.npz"))) == 2

    def test_non_integer_values_bypass(self, cache_dir):
        calls = []

        def build():
            calls.append(1)
            return Database({"R": Relation(("x",), [("a",), ("b",)])})

        cached_database("unit", {"k": "s"}, build)
        cached_database("unit", {"k": "s"}, build)
        assert calls == [1, 1]  # regenerated, nothing cached
        assert not list(cache_dir.glob("unit-*.npz"))

    def test_corrupt_entry_regenerates(self, cache_dir):
        build = lambda: Database({"R": Relation(("x",), [(7,)])})  # noqa: E731
        cached_database("unit", {"k": 1}, build)
        (entry,) = cache_dir.glob("unit-*.npz")
        entry.write_bytes(b"not an npz archive")
        db = cached_database("unit", {"k": 1}, build)
        assert list(db["R"]) == [(7,)]

    def test_truncated_zip_entry_regenerates(self, cache_dir):
        # zip magic but a broken archive: np.load raises BadZipFile
        build = lambda: Database({"R": Relation(("x",), [(8,)])})  # noqa: E731
        cached_database("unit", {"k": 2}, build)
        (entry,) = cache_dir.glob("unit-k=2-*.npz")
        entry.write_bytes(b"PK\x03\x04" + b"\x00" * 64)
        db = cached_database("unit", {"k": 2}, build)
        assert list(db["R"]) == [(8,)]

    def test_entry_names_carry_source_fingerprint(self, cache_dir):
        from repro.datasets.cache import _source_fingerprint

        cached_database(
            "unit",
            {"k": 1},
            lambda: Database({"R": Relation(("x",), [(1,)])}),
        )
        (entry,) = cache_dir.glob("unit-*.npz")
        assert _source_fingerprint() in entry.name


class TestRoundTripFidelity:
    def test_snap_byte_identical(self, cache_dir):
        fresh = snap_database("ca-GrQc")
        cached_database_ = snap_database("ca-GrQc")  # writes the entry
        hit = snap_database("ca-GrQc")  # reads it back
        for db in (cached_database_, hit):
            assert db["R"].attributes == fresh["R"].attributes
            assert db["R"].name == fresh["R"].name
            assert list(db["R"]) == list(fresh["R"])  # row order too

    def test_imdb_byte_identical(self, cache_dir):
        fresh = imdb_database(scale=0.05, seed=3)
        snap = imdb_database(scale=0.05, seed=3)
        hit = imdb_database(scale=0.05, seed=3)
        assert sorted(hit.names()) == sorted(fresh.names())
        for name in fresh:
            assert hit[name].attributes == fresh[name].attributes
            assert list(hit[name]) == list(fresh[name]), name
            assert list(snap[name]) == list(fresh[name]), name

    def test_columnar_twin_survives_round_trip(self, cache_dir):
        snap_database("ca-GrQc")
        hit = snap_database("ca-GrQc")
        twin = hit["R"].columnar()
        assert twin is not None
        assert twin.n_rows == len(hit["R"])
        assert np.array_equal(
            twin.dictionary("x")[twin.codes("x")],
            np.array([row[0] for row in hit["R"]]),
        )
