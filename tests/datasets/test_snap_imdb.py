"""Unit tests for the SNAP stand-ins, the IMDB substrate and JOB queries."""

import pytest

from repro.datasets import (
    IMDB_RELATIONS,
    JOB_QUERIES,
    JOB_QUERY_IDS,
    SNAP_SPECS,
    imdb_database,
    job_query,
    load_snap_graph,
    snap_database,
)
from repro.query import is_alpha_acyclic


class TestSnap:
    def test_seven_datasets(self):
        assert len(SNAP_SPECS) == 7
        names = {s.name for s in SNAP_SPECS}
        assert "ca-GrQc" in names and "twitter" in names

    def test_load_named_graph(self):
        g = load_snap_graph("ca-GrQc")
        assert g.name == "ca-GrQc"
        assert g.attributes == ("x", "y")
        assert len(g) > 1000

    def test_unknown_name_listed(self):
        with pytest.raises(KeyError, match="ca-GrQc"):
            load_snap_graph("nope")

    def test_database_wrapper(self):
        db = snap_database("facebook")
        assert "R" in db

    def test_deterministic(self):
        assert load_snap_graph("twitter") == load_snap_graph("twitter")

    def test_social_graphs_more_skewed_than_collaboration(self):
        from repro.core.degree import degree_sequence

        ca = load_snap_graph("ca-GrQc")
        soc = load_snap_graph("soc-LiveJournal")
        ca_top = degree_sequence(ca, ["y"], ["x"])[0] / len(ca)
        soc_top = degree_sequence(soc, ["y"], ["x"])[0] / len(soc)
        assert soc_top > ca_top


class TestImdb:
    @pytest.fixture(scope="class")
    def db(self):
        return imdb_database(scale=0.1, seed=7)

    def test_all_schema_relations_present(self, db):
        for name, attrs in IMDB_RELATIONS.items():
            assert name in db
            assert db[name].attributes == attrs

    def test_title_primary_key(self, db):
        title = db["title"]
        assert title.distinct_count(("mid",)) == len(title)

    def test_deterministic(self):
        a = imdb_database(scale=0.1, seed=7)
        b = imdb_database(scale=0.1, seed=7)
        assert all(a[name] == b[name] for name in a)

    def test_scale_grows_tables(self):
        small = imdb_database(scale=0.1, seed=7)
        large = imdb_database(scale=0.4, seed=7)
        assert large.total_tuples() > 2 * small.total_tuples()

    def test_fk_skew_present(self, db):
        from repro.core.degree import degree_sequence

        seq = degree_sequence(db["cast_info"], ["pid", "role"], ["mid"])
        assert seq[0] > 4 * seq[len(seq) // 2]  # top movie ≫ median movie


class TestJobQueries:
    def test_thirty_three_queries(self):
        assert JOB_QUERY_IDS == tuple(range(1, 34))
        assert len(JOB_QUERIES) == 33

    def test_all_alpha_acyclic(self):
        for qid in JOB_QUERY_IDS:
            assert is_alpha_acyclic(job_query(qid)), qid

    def test_relation_counts_in_figure1_range(self):
        for qid in JOB_QUERY_IDS:
            assert 4 <= len(job_query(qid).atoms) <= 14

    def test_schema_consistent(self):
        db = imdb_database(scale=0.05, seed=7)
        for qid in JOB_QUERY_IDS:
            for atom in job_query(qid).atoms:
                assert db[atom.relation].arity == atom.arity, (qid, atom)

    def test_variable_counts_tractable(self):
        for qid in JOB_QUERY_IDS:
            assert job_query(qid).num_variables <= 16

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            job_query(99)

    def test_every_query_names_title(self):
        for qid in JOB_QUERY_IDS:
            assert "title" in job_query(qid).relation_names
