"""Unit tests for synthetic data generators."""

import math

import numpy as np
import pytest

from repro.core.degree import degree_sequence
from repro.datasets import (
    alpha_beta_relation,
    clique_graph,
    fan_out_relation,
    matching_relation,
    power_law_graph,
    star_database,
    star_query,
    zipf_values,
)


class TestZipfValues:
    def test_range_and_count(self):
        rng = np.random.default_rng(0)
        values = zipf_values(1000, 50, 1.0, rng)
        assert values.shape == (1000,)
        assert values.min() >= 0 and values.max() < 50

    def test_zero_exponent_roughly_uniform(self):
        rng = np.random.default_rng(0)
        values = zipf_values(20000, 4, 0.0, rng)
        counts = np.bincount(values, minlength=4)
        assert counts.min() > 4000

    def test_high_exponent_concentrates(self):
        rng = np.random.default_rng(0)
        values = zipf_values(10000, 100, 2.0, rng)
        top_share = np.mean(values == 0)
        assert top_share > 0.4

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            zipf_values(10, 0, 1.0, np.random.default_rng(0))


class TestPowerLawGraph:
    def test_deterministic(self):
        a = power_law_graph(100, 300, 0.7, seed=5)
        b = power_law_graph(100, 300, 0.7, seed=5)
        assert a == b

    def test_seed_changes_graph(self):
        a = power_law_graph(100, 300, 0.7, seed=5)
        b = power_law_graph(100, 300, 0.7, seed=6)
        assert a != b

    def test_symmetric(self):
        g = power_law_graph(80, 200, 0.6, seed=1)
        rows = set(g)
        assert all((y, x) in rows for x, y in rows)

    def test_no_self_loops(self):
        g = power_law_graph(80, 200, 0.6, seed=1)
        assert all(x != y for x, y in g)

    def test_asymmetric_option(self):
        g = power_law_graph(80, 200, 0.6, seed=1, symmetric=False)
        rows = set(g)
        assert any((y, x) not in rows for x, y in rows)

    def test_edge_count_close_to_target(self):
        g = power_law_graph(500, 1000, 0.5, seed=2)
        assert len(g) == 2000  # both orientations

    def test_skew_grows_with_exponent(self):
        mild = power_law_graph(500, 1500, 0.2, seed=3)
        wild = power_law_graph(500, 1500, 1.0, seed=3)
        mild_max = degree_sequence(mild, ["y"], ["x"])[0]
        wild_max = degree_sequence(wild, ["y"], ["x"])[0]
        assert wild_max > 2 * mild_max


class TestAlphaBetaRelation:
    def test_definition_c1_shape(self):
        m = 729  # 3^6 so m^(1/3) = 9 exactly
        r = alpha_beta_relation(1 / 3, 1 / 3, m)
        seq = degree_sequence(r, ["y"], ["x"])
        heavy = round(m ** (1 / 3))
        assert list(seq[:heavy]) == [heavy] * heavy
        assert all(d == 1 for d in seq[heavy:])
        assert seq.size == m  # M values on the X side

    def test_symmetric_degrees(self):
        r = alpha_beta_relation(1 / 3, 1 / 3, 729)
        left = degree_sequence(r, ["y"], ["x"])
        right = degree_sequence(r, ["x"], ["y"])
        assert list(left) == list(right)

    def test_zero_alpha_single_heavy(self):
        m = 729
        r = alpha_beta_relation(0.0, 1 / 3, m)
        seq = degree_sequence(r, ["y"], ["x"])
        assert seq[0] == round(m ** (1 / 3))
        assert all(d == 1 for d in seq[1:])

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            alpha_beta_relation(0.7, 0.7, 100)
        with pytest.raises(ValueError):
            alpha_beta_relation(-0.1, 0.5, 100)

    def test_norm_profile(self):
        # ‖deg‖_q^q = heavy·deg^q + (M − heavy) — Appendix C.5's workhorse
        from repro.core.norms import lp_norm

        m = 4096
        r = alpha_beta_relation(0.25, 0.25, m)
        seq = degree_sequence(r, ["y"], ["x"])
        heavy = round(m ** 0.25)
        expected_l2_sq = heavy * heavy**2 + (m - heavy)
        assert lp_norm(seq, 2.0) == pytest.approx(math.sqrt(expected_l2_sq))


class TestMatchingRelation:
    def test_diagonal(self):
        r = matching_relation(5)
        assert set(r) == {(i, i) for i in range(5)}

    def test_custom_attributes(self):
        r = matching_relation(3, attributes=("u", "v"))
        assert r.attributes == ("u", "v")


class TestFanOutRelation:
    def test_complete_bipartite(self):
        r = fan_out_relation(3, 4)
        assert len(r) == 12
        assert set(r) == {(h, v) for h in range(3) for v in range(4)}

    def test_uniform_fan_out_degrees(self):
        r = fan_out_relation(5, 7)
        seq = degree_sequence(r, ["v"], ["h"])
        assert list(seq) == [7] * 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fan_out_relation(0, 4)
        with pytest.raises(ValueError):
            fan_out_relation(4, 0)


class TestCliqueGraph:
    def test_all_ordered_pairs(self):
        g = clique_graph(5)
        assert set(g) == {(i, j) for i in range(5) for j in range(5) if i != j}

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            clique_graph(1)


class TestStarWorkload:
    def test_query_shape(self):
        q = star_query(3)
        assert q.variables == ("h", "x1", "x2", "x3", "z")
        assert len(q.atoms) == 6

    def test_database_relations(self):
        db = star_database(fan_out=6, num_hubs=2, arms=2)
        assert sorted(db.names()) == ["R1", "R2", "T1", "T2"]
        assert len(db["R1"]) == 12  # 2 hubs × 6 leaves
        assert set(db["T1"]) == {(v, v) for v in range(6)}

    def test_output_is_hubs_times_fanout(self):
        from repro.evaluation import count_query

        db = star_database(fan_out=9, num_hubs=3, arms=2)
        assert count_query(star_query(2), db) == 27

    def test_rejects_zero_arms(self):
        with pytest.raises(ValueError):
            star_query(0)
        with pytest.raises(ValueError):
            star_database(4, arms=0)
