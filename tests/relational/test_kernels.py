"""Differential suite for the compiled trie kernels (PR 7).

``REPRO_KERNELS=python`` is byte-for-byte the pre-kernel NumPy code, so
it *is* the oracle: every test here pins the compiled path (when Numba
is importable — the CI numba leg) or the dispatch plumbing (everywhere)
against it.  Coverage:

* mode plumbing — env parsing, strict ``numba`` mode without Numba,
  ``set_mode`` validation ordering, ``forced`` save/restore;
* per-primitive differentials — ``children_at``, ``gather_ranges``,
  ``find_children`` (with and without translation tables),
  ``slice_parents``, ``composite_keys`` against hand-rolled NumPy
  oracles on hypothesis-generated trie shapes;
* ``pack_plan`` radix edge cases — the 2^62 overflow boundary (where
  both modes must return ``None``), the ≤62-bit packed window, and the
  packable-product/unpackable-bits gap that falls back to arithmetic
  keys;
* end-to-end parity — ``generic_join`` rows, row order, and
  ``nodes_visited`` across kernel mode × sink × ``frontier_block`` ×
  ``evaluate_parallel`` worker count on the blocked-frontier query zoo.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import collect_statistics, lp_bound
from repro.evaluation import evaluate_parallel, generic_join
from repro.query import parse_query
from repro.relational import CountSink, Database, Relation, kernels
from repro.relational.columnar import dict_mapping

SETTINGS = settings(max_examples=25, deadline=None)

needs_numba = pytest.mark.skipif(
    not kernels.numba_available(),
    reason="numba not installed (pip install 'repro[kernels]')",
)

no_numba = pytest.mark.skipif(
    kernels.numba_available(), reason="numba is installed"
)


# ----------------------------------------------------------------------
# mode plumbing
# ----------------------------------------------------------------------
def test_configured_mode_default(monkeypatch):
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    assert kernels.configured_mode() == "auto"


@pytest.mark.parametrize("raw", ["auto", "NUMBA", " python ", ""])
def test_configured_mode_parses_env(monkeypatch, raw):
    monkeypatch.setenv("REPRO_KERNELS", raw)
    expected = raw.strip().lower() or "auto"
    assert kernels.configured_mode() == expected


def test_configured_mode_rejects_unknown(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "turbo")
    with pytest.raises(ValueError, match="turbo"):
        kernels.configured_mode()


def test_set_mode_rejects_unknown_without_switching():
    prior = kernels.active_mode()
    with pytest.raises(ValueError, match="turbo"):
        kernels.set_mode("turbo")
    assert kernels.active_mode() == prior


def test_forced_restores_prior_mode():
    prior = kernels.active_mode()
    with kernels.forced("python") as mode:
        assert mode == "python"
        assert kernels.active_mode() == "python"
    assert kernels.active_mode() == prior


def test_auto_resolves_to_an_available_path():
    with kernels.forced("auto") as mode:
        expected = "numba" if kernels.numba_available() else "python"
        assert mode == expected


@no_numba
def test_numba_mode_unavailable_raises_and_keeps_prior():
    prior = kernels.active_mode()
    with pytest.raises(kernels.KernelUnavailableError, match="repro\\[kernels\\]"):
        kernels.set_mode("numba")
    assert kernels.active_mode() == prior


@needs_numba
def test_numba_mode_activates():
    with kernels.forced("numba") as mode:
        assert mode == "numba"


# ----------------------------------------------------------------------
# per-primitive differentials against hand NumPy oracles
# ----------------------------------------------------------------------
@st.composite
def trie_levels(draw):
    """A synthetic trie level: sorted composite keys plus query points."""
    card = draw(st.integers(1, 9))
    n_nodes = draw(st.integers(1, 6))
    keyset = draw(
        st.sets(st.integers(0, n_nodes * card - 1), min_size=1, max_size=24)
    )
    keys = np.array(sorted(keyset), dtype=np.int64)
    m = draw(st.integers(1, 16))
    nodes = np.array(
        draw(st.lists(st.integers(0, n_nodes - 1), min_size=m, max_size=m)),
        dtype=np.int64,
    )
    codes = np.array(
        draw(st.lists(st.integers(0, card - 1), min_size=m, max_size=m)),
        dtype=np.int64,
    )
    return keys, nodes, codes, card


@SETTINGS
@given(level=trie_levels())
def test_find_children_matches_oracle(level):
    keys, nodes, codes, card = level
    target = nodes * card + codes
    positions = np.minimum(
        np.searchsorted(keys, target, side="left"), len(keys) - 1
    )
    expect_found = keys[positions] == target
    found, got = kernels.find_children(keys, nodes, codes, card)
    np.testing.assert_array_equal(found, expect_found)
    np.testing.assert_array_equal(got, positions)


@SETTINGS
@given(level=trie_levels(), data=st.data())
def test_find_children_mapping_matches_oracle(level, data):
    keys, nodes, codes, card = level
    # a translation table over the seed's code space: some codes map
    # into [0, card), some are absent (−1)
    mapping = np.array(
        data.draw(
            st.lists(
                st.one_of(st.just(-1), st.integers(0, card - 1)),
                min_size=int(codes.max()) + 1,
                max_size=int(codes.max()) + 1,
            )
        ),
        dtype=np.int64,
    )
    mapped = mapping[codes]
    target = nodes * card + mapped
    positions = np.minimum(
        np.searchsorted(keys, target, side="left"), len(keys) - 1
    )
    expect_found = (keys[positions] == target) & (mapped >= 0)
    found, got = kernels.find_children(keys, nodes, codes, card, mapping)
    np.testing.assert_array_equal(found, expect_found)
    # positions only need to agree where found: a missed probe's resting
    # index is never dereferenced by the engine
    np.testing.assert_array_equal(got[found], positions[found])


def test_find_children_empty_level():
    nodes = np.array([0, 1], dtype=np.int64)
    codes = np.array([0, 0], dtype=np.int64)
    empty = np.zeros(0, dtype=np.int64)
    found, positions = kernels.find_children(empty, nodes, codes, 3)
    assert not found.any()
    np.testing.assert_array_equal(positions, [0, 0])


@SETTINGS
@given(data=st.data())
def test_children_at_and_gather_ranges_match_oracle(data):
    # build a well-formed level: each node holds a sorted set of child
    # codes (≤ card of them), keys are node*card + code in node-major
    # order — exactly the CodeTrie layout
    card = data.draw(st.integers(1, 7))
    n_nodes = data.draw(st.integers(1, 8))
    child_sets = [
        sorted(
            data.draw(st.sets(st.integers(0, card - 1), max_size=card))
        )
        for _ in range(n_nodes)
    ]
    counts = np.array([len(s) for s in child_sets], dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    keys = np.array(
        [
            node * card + code
            for node, codes in enumerate(child_sets)
            for code in codes
        ],
        dtype=np.int64,
    )
    nonempty = np.nonzero(counts)[0]
    if len(nonempty) == 0:
        return
    m = data.draw(st.integers(1, 12))
    nodes = np.array(
        data.draw(
            st.lists(
                st.sampled_from(list(nonempty)), min_size=m, max_size=m
            )
        ),
        dtype=np.int64,
    )
    first, got_counts = kernels.gather_ranges(starts, nodes)
    np.testing.assert_array_equal(first, starts[nodes])
    np.testing.assert_array_equal(got_counts, starts[nodes + 1] - starts[nodes])

    offsets = np.array(
        [data.draw(st.integers(0, int(c) - 1)) for c in got_counts],
        dtype=np.int64,
    )
    positions, codes = kernels.children_at(keys, nodes, first, offsets, card)
    np.testing.assert_array_equal(positions, first + offsets)
    np.testing.assert_array_equal(codes, keys[first + offsets] - nodes * card)


@SETTINGS
@given(data=st.data())
def test_slice_parents_matches_oracle(data):
    counts = np.array(
        data.draw(st.lists(st.integers(0, 6), min_size=1, max_size=10)),
        dtype=np.int64,
    )
    total = int(counts.sum())
    if total == 0:
        return
    ends = np.cumsum(counts)
    flat_starts = ends - counts
    lo = data.draw(st.integers(0, total - 1))
    hi = data.draw(st.integers(lo + 1, total))
    flat = np.arange(lo, hi)
    expect_parents = np.searchsorted(ends, flat, side="right")
    parents, offsets = kernels.slice_parents(ends, flat_starts, lo, hi)
    np.testing.assert_array_equal(parents, expect_parents)
    np.testing.assert_array_equal(offsets, flat - flat_starts[expect_parents])


# ----------------------------------------------------------------------
# composite keys and the packing plan
# ----------------------------------------------------------------------
def test_pack_plan_overflow_boundary():
    # product exactly 2^62 → overflow, both modes must refuse
    assert kernels.pack_plan([1 << 31, 1 << 31]) is None
    # one card just below keeps the product at 2^61 → packed (31+30 bits)
    assert kernels.pack_plan([1 << 31, 1 << 30]) == ("packed", [31, 30])
    assert kernels.pack_plan([1 << 40, 1 << 40]) is None


def test_pack_plan_bitwidth_gap_falls_back_to_arithmetic():
    # bit_length over-counts non-power-of-two cards: three (2^20 + 1)
    # columns cost 63 packed bits but only ~2^60 of radix product, so
    # the arithmetic layout applies and no mode may bit-pack
    cards = [(1 << 20) + 1] * 3
    assert kernels.pack_plan(cards) == ("arithmetic", None)


def test_pack_plan_trivial_cards():
    assert kernels.pack_plan([]) == ("packed", [])
    # a cardinality-1 (or degenerate 0) column carries no information
    # and packs into a zero-bit field
    assert kernels.pack_plan([1, 1]) == ("packed", [0, 0])
    assert kernels.pack_plan([0, 5]) == ("packed", [0, 3])


def _key_structure(keys):
    """Order/equality fingerprint: what downstream consumers observe."""
    order = np.argsort(keys, kind="stable")
    ranks = np.unique(keys[order], return_inverse=True)[1]
    return order, ranks


@SETTINGS
@given(data=st.data())
def test_composite_keys_structure_is_mode_invariant(data):
    n_cols = data.draw(st.integers(1, 4))
    cards = [data.draw(st.integers(1, 50)) for _ in range(n_cols)]
    n_rows = data.draw(st.integers(0, 20))
    code_arrays = [
        np.array(
            data.draw(
                st.lists(
                    st.integers(0, max(0, card - 1)),
                    min_size=n_rows,
                    max_size=n_rows,
                )
            ),
            dtype=np.int64,
        )
        for card in cards
    ]
    with kernels.forced("python"):
        oracle = kernels.composite_keys(code_arrays, cards)
    active = kernels.composite_keys(code_arrays, cards)
    assert (oracle is None) == (active is None)
    if oracle is None or n_rows == 0:
        return
    o_order, o_ranks = _key_structure(oracle)
    a_order, a_ranks = _key_structure(active)
    np.testing.assert_array_equal(o_order, a_order)
    np.testing.assert_array_equal(o_ranks[np.argsort(o_order)],
                                  a_ranks[np.argsort(a_order)])


@needs_numba
def test_composite_keys_packed_structure_with_wide_cards():
    # cards too large to enumerate but packable: 35 + 20 = 55 bits
    cards = [1 << 35, 1 << 20]
    rng_hi = [c - 1 for c in cards]
    cols = [
        np.array([0, rng_hi[0], 7, 7, 123456789], dtype=np.int64),
        np.array([rng_hi[1], 0, 9, 9, 42], dtype=np.int64),
    ]
    with kernels.forced("python"):
        oracle = kernels.composite_keys(cols, cards)
    with kernels.forced("numba"):
        packed = kernels.composite_keys(cols, cards)
    o_order, o_ranks = _key_structure(oracle)
    p_order, p_ranks = _key_structure(packed)
    np.testing.assert_array_equal(o_order, p_order)
    np.testing.assert_array_equal(o_ranks, p_ranks)


def test_composite_keys_overflow_returns_none_in_every_mode():
    cols = [np.array([0, 1], dtype=np.int64)] * 2
    cards = [1 << 40, 1 << 40]
    with kernels.forced("python"):
        assert kernels.composite_keys(cols, cards) is None
    if kernels.numba_available():
        with kernels.forced("numba"):
            assert kernels.composite_keys(cols, cards) is None


def test_dict_mapping_translation_semantics():
    source = np.array([2, 5, 7, 11], dtype=np.int64)
    target = np.array([5, 7, 13], dtype=np.int64)
    np.testing.assert_array_equal(
        dict_mapping(source, target), [-1, 0, 1, -1]
    )
    empty = np.zeros(0, dtype=np.int64)
    np.testing.assert_array_equal(dict_mapping(source, empty), [-1] * 4)


# ----------------------------------------------------------------------
# end-to-end parity: mode × sink × frontier_block × workers
# ----------------------------------------------------------------------
QUERIES = [
    parse_query("triangle(x,y,z) :- R(x,y), R(y,z), R(z,x)"),
    parse_query("lw(x,y,z) :- R(x,y), S(y,z), T(x,z)"),
    parse_query("cycle4(a,b,c,d) :- R(a,b), S(b,c), R(c,d), S(d,a)"),
    parse_query("onejoin(x,y,z) :- R(x,y), S(y,z)"),
    parse_query("star(m,a,b) :- U(m), R(m,a), R(m,b)"),
    parse_query("diag(x,w) :- R(x,x), S(x,w)"),
]

values = st.integers(0, 5)
pairs = st.lists(st.tuples(values, values), max_size=18)
units = st.lists(st.tuples(values), max_size=6)


@st.composite
def databases(draw):
    return Database(
        {
            "R": Relation(("a", "b"), draw(pairs)),
            "S": Relation(("a", "b"), draw(pairs)),
            "T": Relation(("a", "b"), draw(pairs)),
            "U": Relation(("u",), draw(units)),
        }
    )


@needs_numba
@SETTINGS
@given(db=databases(), block=st.sampled_from([None, 1, 7, 64]))
@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_generic_join_parity_across_modes(query, db, block):
    with kernels.forced("python"):
        oracle = generic_join(query, db, frontier_block=block)
    with kernels.forced("numba"):
        fast = generic_join(query, db, frontier_block=block)
    assert list(fast.output) == list(oracle.output)
    assert fast.nodes_visited == oracle.nodes_visited


@needs_numba
@SETTINGS
@given(db=databases())
@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_sink_counts_parity_across_modes(query, db):
    counts = {}
    for mode in ("python", "numba"):
        with kernels.forced(mode):
            sink = CountSink()
            run = generic_join(query, db, sink=sink)
            counts[mode] = (sink.n_rows, run.nodes_visited)
    assert counts["python"] == counts["numba"]


_STUB_DIFFERENTIAL = """
import sys, types

# passthrough numba stand-in: njit returns the function unchanged, so
# the compiled-branch *logic* (fused loops, bit-packing, the mapped
# membership probe, the parent pointer sweep) executes as plain Python
fake = types.ModuleType("numba")
def njit(*a, **k):
    if a and callable(a[0]):
        return a[0]
    return lambda f: f
fake.njit = njit
sys.modules["numba"] = fake

import random
import numpy as np
from repro.evaluation import generic_join
from repro.query import parse_query
from repro.relational import CountSink, Database, Relation, kernels

assert kernels.numba_available()
rng = random.Random(7)
pairs = [(rng.randrange(40), rng.randrange(40)) for _ in range(300)]
db = Database({
    "R": Relation(("a", "b"), pairs),
    "S": Relation(("a", "b"), [(b, a) for a, b in pairs[:200]]),
    "T": Relation(("a", "b"), pairs[50:250]),
    "U": Relation(("u",), [(v,) for v in range(0, 40, 3)]),
})
queries = [
    parse_query("triangle(x,y,z) :- R(x,y), R(y,z), R(z,x)"),
    parse_query("lw(x,y,z) :- R(x,y), S(y,z), T(x,z)"),
    parse_query("cycle4(a,b,c,d) :- R(a,b), S(b,c), R(c,d), S(d,a)"),
    parse_query("star(m,a,b) :- U(m), R(m,a), R(m,b)"),
    parse_query("diag(x,w) :- R(x,x), S(x,w)"),
]
for q in queries:
    for block in (None, 1, 7, 64):
        with kernels.forced("python"):
            oracle = generic_join(q, db, frontier_block=block)
        with kernels.forced("numba"):
            fast = generic_join(q, db, frontier_block=block)
        assert list(fast.output) == list(oracle.output), (q.name, block)
        assert fast.nodes_visited == oracle.nodes_visited, (q.name, block)
    with kernels.forced("numba"):
        sink = CountSink()
        generic_join(q, db, sink=sink)
    assert sink.n_rows == len(oracle.output), q.name

# non-power-of-two cards: the packed layout genuinely diverges in raw
# values (c0<<3|c1 vs c0*5+c1) while order/equality structure agrees
cols = [np.array([0, 2, 1, 1, 2], dtype=np.int64),
        np.array([4, 0, 3, 3, 1], dtype=np.int64)]
with kernels.forced("python"):
    o = kernels.composite_keys(cols, [3, 5])
with kernels.forced("numba"):
    p = kernels.composite_keys(cols, [3, 5])
assert (np.argsort(o, kind="stable") == np.argsort(p, kind="stable")).all()
assert len(np.unique(o)) == len(np.unique(p))
assert not (o == p).all()
print("STUB-DIFFERENTIAL-OK")
"""


def test_compiled_branch_logic_via_stubbed_njit():
    """Differential-run the njit-decorated kernel *logic* everywhere.

    Without Numba the compiled branches would only ever execute on CI's
    numba leg; a passthrough ``njit`` stub in a subprocess makes them
    run as plain Python here, pinning the fused-loop logic itself (not
    the compilation) against the oracle on every environment.
    """
    import os
    import subprocess
    import sys
    from pathlib import Path

    src = Path(kernels.__file__).resolve().parents[2]
    proc = subprocess.run(
        [sys.executable, "-c", _STUB_DIFFERENTIAL],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(src), "REPRO_KERNELS": "auto"},
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "STUB-DIFFERENTIAL-OK" in proc.stdout


@needs_numba
def test_parallel_workers_inherit_kernel_mode():
    rows = [(i, (i * 7) % 23) for i in range(60)]
    db = Database(
        {"R": Relation(("a", "b"), rows + [(b, a) for a, b in rows])}
    )
    query = QUERIES[0]
    stats = collect_statistics(query, db, ps=[1.0, 2.0, math.inf])
    bound = lp_bound(stats, query=query)
    results = {}
    for mode in ("python", "numba"):
        with kernels.forced(mode):
            run = evaluate_parallel(query, db, bound, workers=2)
            results[mode] = (
                sorted(run.output),
                run.nodes_visited,
                run.parts_evaluated,
            )
    assert results["python"] == results["numba"]
