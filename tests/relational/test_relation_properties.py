"""Property-based tests for the relational substrate."""


from hypothesis import given, settings, strategies as st

from repro.core.degree import degree_sequence
from repro.relational import Relation

SETTINGS = settings(max_examples=50, deadline=None)

rows3 = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
    max_size=30,
)


class TestAlgebraProperties:
    @SETTINGS
    @given(rows3)
    def test_projection_shrinks(self, rows):
        r = Relation(("a", "b", "c"), rows)
        for attrs in (("a",), ("a", "b"), ("c", "a")):
            assert len(r.project(attrs)) <= len(r)

    @SETTINGS
    @given(rows3)
    def test_projection_idempotent(self, rows):
        r = Relation(("a", "b", "c"), rows)
        once = r.project(("a", "b"))
        assert once.project(("a", "b")) == once

    @SETTINGS
    @given(rows3)
    def test_select_partition(self, rows):
        r = Relation(("a", "b", "c"), rows)
        yes = r.select(lambda row: row[0] <= 2)
        no = r.select(lambda row: row[0] > 2)
        assert len(yes) + len(no) == len(r)
        assert set(yes) | set(no) == set(r)

    @SETTINGS
    @given(rows3)
    def test_rename_roundtrip(self, rows):
        r = Relation(("a", "b", "c"), rows)
        there = r.rename({"a": "x"})
        back = there.rename({"x": "a"})
        assert back == r

    @SETTINGS
    @given(rows3)
    def test_group_sizes_sum_to_projection(self, rows):
        r = Relation(("a", "b", "c"), rows)
        sizes = r.group_sizes(("a",), ("b", "c"))
        # Σ distinct (b,c) per a = |Π_{a,b,c}| = |r| (rows are distinct)
        assert sum(sizes.values()) == len(r)
        assert len(sizes) == r.distinct_count(("a",))


class TestDegreeProperties:
    @SETTINGS
    @given(rows3)
    def test_degree_sum_is_projection_size(self, rows):
        r = Relation(("a", "b", "c"), rows)
        seq = degree_sequence(r, ["b"], ["a"])
        assert seq.sum() == r.project(("a", "b")).__len__()

    @SETTINGS
    @given(rows3)
    def test_degree_sequence_sorted(self, rows):
        r = Relation(("a", "b", "c"), rows)
        seq = degree_sequence(r, ["b", "c"], ["a"])
        assert all(x >= y for x, y in zip(seq, seq[1:]))

    @SETTINGS
    @given(rows3)
    def test_max_degree_bounded_by_v_domain(self, rows):
        r = Relation(("a", "b", "c"), rows)
        if len(r) == 0:
            return
        seq = degree_sequence(r, ["b"], ["a"])
        assert seq[0] <= r.distinct_count(("b",))

    @SETTINGS
    @given(rows3)
    def test_conditioning_on_more_never_raises_degrees(self, rows):
        r = Relation(("a", "b", "c"), rows)
        if len(r) == 0:
            return
        coarse = degree_sequence(r, ["c"], ["a"])
        fine = degree_sequence(r, ["c"], ["a", "b"])
        # max degree can only drop when the conditioning side grows
        assert fine[0] <= coarse[0]
