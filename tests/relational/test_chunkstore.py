"""Durability and self-description of the spill-to-disk segment store.

PR 6 hardened :class:`~repro.relational.chunkstore.SegmentStore` for use
as the parallel evaluator's per-part persistence layer: every directory
is stamped with a ``store.json`` manifest (foreign directories are
refused instead of interleaving two stores' segments), renames are made
durable by fsyncing the parent directory, and :meth:`SegmentStore.attach`
re-opens a stamped directory validating every surviving segment — the
primitive checkpoint-resume builds on.
"""

import json

import numpy as np
import pytest

from repro.relational.chunkstore import (
    ChunkStoreError,
    SegmentStore,
    atomic_write_json,
    fsync_dir,
)


class TestManifestStamp:
    def test_new_store_stamps_directory(self, tmp_path):
        SegmentStore(tmp_path / "s", 3)
        payload = json.loads((tmp_path / "s" / "store.json").read_text())
        assert payload == {
            "format": "repro-segment-store/v1",
            "n_columns": 3,
        }

    def test_reopening_same_arity_is_fine(self, tmp_path):
        SegmentStore(tmp_path, 2)
        SegmentStore(tmp_path, 2)  # no error: same format, same arity

    def test_foreign_manifest_refused(self, tmp_path):
        (tmp_path / "store.json").write_text('{"format": "someone-else"}')
        with pytest.raises(ChunkStoreError, match="foreign store"):
            SegmentStore(tmp_path, 2)

    def test_unparsable_manifest_refused(self, tmp_path):
        (tmp_path / "store.json").write_text("not json {{{")
        with pytest.raises(ChunkStoreError, match="not a segment-store"):
            SegmentStore(tmp_path, 2)

    def test_arity_mismatch_refused(self, tmp_path):
        SegmentStore(tmp_path, 2)
        with pytest.raises(ChunkStoreError, match="declares 2"):
            SegmentStore(tmp_path, 3)

    def test_delete_removes_stamp_and_directory(self, tmp_path):
        store = SegmentStore(tmp_path / "s", 1)
        store.write([np.arange(4)])
        store.delete()
        assert not (tmp_path / "s").exists()


class TestAttach:
    def _populated(self, tmp_path, n_segments=3):
        store = SegmentStore(tmp_path, 2)
        for i in range(n_segments):
            store.write(
                [np.arange(i, i + 5), np.arange(i + 10, i + 15)]
            )
        return store

    def test_roundtrip_rows_and_order(self, tmp_path):
        original = self._populated(tmp_path)
        attached = SegmentStore.attach(tmp_path, 2)
        assert attached.n_rows == original.n_rows
        assert attached.segments() == original.segments()
        for mine, theirs in zip(
            attached.iter_chunks(), original.iter_chunks()
        ):
            for a, b in zip(mine, theirs):
                np.testing.assert_array_equal(a, b)

    def test_attach_with_pinned_names(self, tmp_path):
        original = self._populated(tmp_path)
        names = [p.name for p in original.segments()][:2]
        attached = SegmentStore.attach(tmp_path, 2, segment_names=names)
        assert attached.n_segments == 2

    def test_attach_requires_stamp(self, tmp_path):
        with pytest.raises(ChunkStoreError, match="not a segment store"):
            SegmentStore.attach(tmp_path / "nowhere", 2)

    def test_attach_missing_segment(self, tmp_path):
        self._populated(tmp_path)
        with pytest.raises(ChunkStoreError, match="missing"):
            SegmentStore.attach(
                tmp_path, 2, segment_names=["segment-00000009.npz"]
            )

    def test_attach_rejects_truncated_segment(self, tmp_path):
        original = self._populated(tmp_path)
        victim = original.segments()[-1]
        size = victim.stat().st_size
        with open(victim, "r+b") as handle:
            handle.truncate(size // 2)
        with pytest.raises(ChunkStoreError, match="corrupt or truncated"):
            SegmentStore.attach(tmp_path, 2)

    def test_attach_zero_column_store(self, tmp_path):
        store = SegmentStore(tmp_path, 0)
        store.write([], n_rows=7)
        store.write([], n_rows=5)
        attached = SegmentStore.attach(tmp_path, 0)
        assert attached.n_rows == 12


class TestDurabilityHelpers:
    def test_atomic_write_json_roundtrip(self, tmp_path):
        target = tmp_path / "m.json"
        atomic_write_json(target, {"a": 1})
        atomic_write_json(target, {"a": 2, "b": [3]})
        assert json.loads(target.read_text()) == {"a": 2, "b": [3]}
        # no tmp sibling survives the replace
        assert list(tmp_path.iterdir()) == [target]

    def test_fsync_dir_tolerates_any_directory(self, tmp_path):
        fsync_dir(tmp_path)  # must not raise
        fsync_dir(tmp_path / "missing")  # nor for absent paths


class TestWriteFailure:
    """A failing flush (disk full, permissions yanked) surfaces as a
    :class:`ChunkStoreError` naming the segment and the rows at risk,
    leaves no ``*.tmp`` survivor, and never corrupts earlier segments."""

    CHUNK = [np.array([1, 2, 3]), np.array([4, 5, 6])]

    @pytest.mark.parametrize(
        "errno_name,message", [("ENOSPC", "No space left"), ("EACCES", "Permission denied")]
    )
    def test_failed_replace_raises_chunk_store_error(
        self, tmp_path, monkeypatch, errno_name, message
    ):
        import errno
        import os

        store = SegmentStore(tmp_path, 2)
        code = getattr(errno, errno_name)

        def broken_replace(src, dst):
            raise OSError(code, message)

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(ChunkStoreError, match=r"3 rows at risk"):
            store.write(self.CHUNK)
        monkeypatch.undo()
        # nothing half-written survives, the store is still usable
        assert not list(tmp_path.glob("*.tmp"))
        assert store.n_segments == 0 and store.n_rows == 0
        store.write(self.CHUNK)
        assert store.n_rows == 3

    def test_failed_savez_raises_and_leaves_no_tmp(
        self, tmp_path, monkeypatch
    ):
        store = SegmentStore(tmp_path, 2)

        def broken_savez(handle, **payload):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(
            "repro.relational.chunkstore.np.savez", broken_savez
        )
        with pytest.raises(ChunkStoreError, match="segment"):
            store.write(self.CHUNK)
        assert not list(tmp_path.glob("*.tmp"))

    def test_error_names_the_segment_path(self, tmp_path, monkeypatch):
        import os

        store = SegmentStore(tmp_path, 2)
        monkeypatch.setattr(
            os,
            "replace",
            lambda src, dst: (_ for _ in ()).throw(OSError(28, "full")),
        )
        with pytest.raises(ChunkStoreError, match="segment-00000000.npz"):
            store.write(self.CHUNK)

    def test_spill_sink_cleanup_survives_write_failure(
        self, tmp_path, monkeypatch
    ):
        import os

        from repro.relational import SpillSink

        target = tmp_path / "spill"
        with pytest.raises(ChunkStoreError):
            with SpillSink(target, chunk_rows=2) as sink:
                sink.open(("x", "y"))
                sink.append_rows([(1, 2)])
                monkeypatch.setattr(
                    os,
                    "replace",
                    lambda src, dst: (_ for _ in ()).throw(
                        OSError(28, "No space left on device")
                    ),
                )
                sink.append_rows([(3, 4), (5, 6)])  # flush boundary
        monkeypatch.undo()
        # the context manager's cleanup still ran: no tmp survivors and
        # no stray segments the failed run would leak
        assert not list(target.glob("*.tmp"))
        assert not list(target.glob("segment-*.npz"))
