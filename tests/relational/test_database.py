"""Unit tests for Database."""

import pytest

from repro.core.conditionals import (
    AbstractStatistic,
    ConcreteStatistic,
    Conditional,
)
from repro.query.query import Atom
from repro.relational import Database, Relation


@pytest.fixture
def db():
    return Database(
        {
            "R": Relation(("x", "y"), [(1, 2), (2, 3)]),
            "S": Relation(("y", "z"), [(2, 7)]),
        }
    )


class TestAccess:
    def test_getitem(self, db):
        assert db["R"].arity == 2

    def test_getitem_sets_name(self, db):
        assert db["R"].name == "R"

    def test_missing_relation_lists_available(self, db):
        with pytest.raises(KeyError, match="'R', 'S'"):
            db["T"]

    def test_contains_iter_len(self, db):
        assert "R" in db and "T" not in db
        assert sorted(db) == ["R", "S"]
        assert len(db) == 2

    def test_names_sorted(self, db):
        assert db.names() == ["R", "S"]

    def test_total_tuples(self, db):
        assert db.total_tuples() == 3

    def test_active_domain_size(self, db):
        assert db.active_domain_size() == 4  # {1, 2, 3, 7}

    def test_with_relation_replaces(self, db):
        new = db.with_relation("R", Relation(("x", "y"), [(9, 9)]))
        assert len(new["R"]) == 1
        assert len(db["R"]) == 2  # original untouched

    def test_with_relation_adds(self, db):
        new = db.with_relation("T", Relation(("a",), [(1,)]))
        assert "T" in new and "T" not in db


class TestSatisfies:
    def test_satisfies_true_statistic(self, db):
        stat = ConcreteStatistic(
            AbstractStatistic(Conditional(frozenset("y"), frozenset("x")), 1.0),
            log2_bound=2.0,
            guard=Atom("R", ("x", "y")),
        )
        assert db.satisfies([stat])

    def test_satisfies_false_statistic(self, db):
        stat = ConcreteStatistic(
            AbstractStatistic(Conditional(frozenset("y"), frozenset("x")), 1.0),
            log2_bound=0.5,  # ℓ1 of deg(y|x) is 2, log2 = 1 > 0.5
            guard=Atom("R", ("x", "y")),
        )
        assert not db.satisfies([stat])
