"""Property-based equivalence: columnar backend vs the tuple oracle.

Every vectorized kernel must match the original tuple-at-a-time
implementation bit-for-bit — same values (Python ints, not np.int64),
same dict contents, same relations, and for joins the same output rows in
the same order.  Randomized relations cover empty relations, ``U = ∅`` /
``V = ∅`` conditionals, repeated/overlapping attribute sets, and
non-integer values that must take the fallback path.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.degree import degree_sequence
from repro.core.norms import log2_norm, log2_norms, lp_norm, norms_of_sequence
from repro.evaluation.joins import hash_join, hash_join_tuples, join_relations
from repro.relational import Relation
from repro.relational.columnar import encode_column, remap_codes

SETTINGS = settings(max_examples=60, deadline=None)

values = st.integers(-3, 6)
rows3 = st.lists(st.tuples(values, values, values), max_size=40)

# mixed-type rows exercise the fallback path (tuples/strings/floats)
fallback_value = st.one_of(
    st.integers(0, 4),
    st.tuples(st.integers(0, 2), st.integers(0, 2)),
    st.sampled_from(["a", "b"]),
)
fallback_rows = st.lists(st.tuples(fallback_value, fallback_value), max_size=20)

ATTR_CHOICES = [
    ((), ()),
    ((), ("a",)),
    ((), ("b", "c")),
    (("a",), ()),
    (("a",), ("b",)),
    (("a",), ("b", "c")),
    (("a", "b"), ("c",)),
    (("c", "a"), ("b",)),
    (("a", "b", "c"), ("a",)),  # overlapping U and V
]


def oracle_group_sizes(relation, group_attrs, value_attrs):
    return relation._group_sizes_tuples(
        relation.positions(group_attrs), relation.positions(value_attrs)
    )


class TestGroupingEquivalence:
    @SETTINGS
    @given(rows3)
    def test_group_sizes_matches_oracle(self, rows):
        r = Relation(("a", "b", "c"), rows)
        assert r.columnar() is not None
        for group_attrs, value_attrs in ATTR_CHOICES:
            got = r.group_sizes(group_attrs, value_attrs)
            expected = oracle_group_sizes(r, group_attrs, value_attrs)
            assert got == expected
            for key, count in got.items():
                assert all(type(v) is int for v in key)
                assert type(count) is int

    @SETTINGS
    @given(rows3)
    def test_degree_sequence_matches_oracle(self, rows):
        r = Relation(("a", "b", "c"), rows)
        for u_attrs, v_attrs in ATTR_CHOICES:
            sizes = oracle_group_sizes(r, u_attrs, v_attrs)
            expected = np.sort(
                np.fromiter(sizes.values(), dtype=np.int64, count=len(sizes))
            )[::-1]
            got = degree_sequence(r, v_attrs, u_attrs)
            assert got.dtype == np.int64
            assert np.array_equal(got, expected)

    @SETTINGS
    @given(rows3)
    def test_prefix_run_counts_matches_per_conditional(self, rows):
        """One lexsort must serve every prefix split with the exact
        group-size multiset of the per-conditional kernel."""
        r = Relation(("a", "b", "c"), rows)
        order = ("b", "a", "c")
        splits = [
            (u, uv) for u in range(4) for uv in range(u, 4)
        ]
        got = r.prefix_group_size_counts(order, splits)
        for (u_len, uv_len), counts in zip(splits, got):
            expected = r.group_size_counts(
                order[:u_len], order[u_len:uv_len]
            )
            assert counts.dtype == np.int64
            assert sorted(counts.tolist()) == sorted(expected.tolist())

    @SETTINGS
    @given(rows3)
    def test_project_and_distinct_count_match_oracle(self, rows):
        r = Relation(("a", "b", "c"), rows)
        for attrs in [("a",), ("b", "a"), ("a", "b", "c"), ("c", "b")]:
            expected = r._project_tuples(attrs, r.positions(attrs))
            got = r.project(attrs)
            assert got == expected
            assert set(map(type, (v for row in got for v in row))) <= {int}
            assert r.distinct_count(attrs) == len(expected)

    @SETTINGS
    @given(rows3)
    def test_active_domain_matches_oracle(self, rows):
        r = Relation(("a", "b", "c"), rows)
        assert r.active_domain() == {v for row in rows for v in row}


class TestFallbackPath:
    @SETTINGS
    @given(fallback_rows)
    def test_mixed_values_fall_back_and_agree(self, rows):
        r = Relation(("x", "y"), rows)
        # whichever path is taken, results must match the oracle
        assert r.group_sizes(("x",), ("y",)) == oracle_group_sizes(
            r, ("x",), ("y",)
        )
        assert r.project(("y",)) == r._project_tuples(("y",), r.positions(("y",)))
        assert r.distinct_count(("y", "x")) == len(set(r))

    def test_tuple_values_are_not_encodable(self):
        r = Relation(("x", "y"), [((0, 1), 2), ((0, 2), 3)])
        assert r.columnar() is None
        assert r.group_sizes(("x",), ("y",)) == {((0, 1),): 1, ((0, 2),): 1}

    def test_floats_strings_bools_not_encodable(self):
        for value in [1.5, "s", True]:
            assert encode_column([value, value]) is None

    def test_huge_ints_fall_back(self):
        r = Relation(("x",), [(2 ** 70,), (5,)])
        assert r.columnar() is None
        assert r.distinct_count(("x",)) == 2


class TestEdgeCases:
    def test_empty_relation(self):
        r = Relation(("x", "y"), [])
        assert r.columnar() is not None
        assert r.group_sizes(("x",), ("y",)) == {}
        assert degree_sequence(r, ["y"], ["x"]).size == 0
        assert r.distinct_count(("x",)) == 0
        assert len(r.project(("y",))) == 0
        assert r.active_domain() == set()

    def test_u_empty_is_distinct_count(self):
        r = Relation(("x", "y"), [(1, 2), (1, 3), (4, 3)])
        seq = degree_sequence(r, ["y"], [])
        assert seq.tolist() == [2]
        assert r.group_sizes((), ("y",)) == {(): 2}

    def test_v_empty_is_all_ones(self):
        r = Relation(("x", "y"), [(1, 2), (1, 3), (4, 3)])
        seq = degree_sequence(r, [], ["x"])
        assert seq.tolist() == [1, 1]
        assert r.group_sizes(("x",), ()) == {(1,): 1, (4,): 1}

    def test_remap_codes_empty_target(self):
        codes = np.array([0, 1], dtype=np.int64)
        source = np.array([5, 9], dtype=np.int64)
        target = np.zeros(0, dtype=np.int64)
        assert remap_codes(codes, source, target).tolist() == [-1, -1]


join_rows = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=25
)


class TestJoinEquivalence:
    @SETTINGS
    @given(join_rows, join_rows)
    def test_hash_join_matches_tuple_oracle(self, left, right):
        for lv, rv in [
            (("x", "y"), ("y", "z")),
            (("x", "y"), ("x", "y")),
            (("x", "y"), ("z", "w")),  # cartesian
            (("x", "y"), ("y", "x")),
        ]:
            got = hash_join(lv, left, rv, right)
            expected = hash_join_tuples(lv, left, rv, right)
            assert got == expected  # same vars, same rows, same order

    @SETTINGS
    @given(join_rows, join_rows)
    def test_join_relations_matches_tuple_oracle(self, left, right):
        r = Relation(("x", "y"), left)
        s = Relation(("y", "z"), right)
        out = join_relations(r, s)
        out_vars, out_rows = hash_join_tuples(
            r.attributes, list(r), s.attributes, list(s)
        )
        assert out.attributes == out_vars
        assert list(out) == out_rows  # lazily decoded, identical order
        assert len(out) == len(out_rows)

    def test_join_relations_fallback_values(self):
        r = Relation(("x", "y"), [(("t",), 2)])
        s = Relation(("y", "z"), [(2, "s")])
        out = join_relations(r, s)
        assert list(out) == [(("t",), 2, "s")]

    @SETTINGS
    @given(join_rows)
    def test_joined_relation_statistics_match(self, rows):
        """A lazily-backed join result must behave like a plain Relation."""
        r = Relation(("x", "y"), rows)
        s = Relation(("y", "z"), rows)
        out = join_relations(r, s)
        plain = Relation(out.attributes, list(out))
        assert out == plain
        assert out.group_sizes(("x",), ("z",)) == oracle_group_sizes(
            plain, ("x",), ("z",)
        )
        assert out.active_domain() == plain.active_domain()
        assert out.distinct_count(("y",)) == plain.distinct_count(("y",))


class TestNormBatching:
    @SETTINGS
    @given(st.lists(st.integers(1, 10 ** 6), min_size=0, max_size=200))
    def test_log2_norms_matches_per_p(self, degrees):
        ps = [0.5, 1.0, 2.0, 3.0, 7.5, 30.0, math.inf]
        batched = log2_norms(degrees, ps)
        assert set(batched) == set(ps)
        for p in ps:
            assert batched[p] == log2_norm(degrees, p)

    @SETTINGS
    @given(st.lists(st.integers(1, 10 ** 4), min_size=1, max_size=50))
    def test_norms_of_sequence_matches_lp_norm(self, degrees):
        ps = [1.0, 2.0, 4.0, math.inf]
        assert norms_of_sequence(degrees, ps) == {
            p: lp_norm(degrees, p) for p in ps
        }

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            log2_norms([1.0, 2.0], [0.0])
