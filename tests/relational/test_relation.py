"""Unit tests for the set-semantics Relation."""

import pytest

from repro.relational import Relation


class TestConstruction:
    def test_deduplicates_rows(self):
        r = Relation(("x", "y"), [(1, 2), (1, 2), (1, 3)])
        assert len(r) == 2

    def test_preserves_arity(self):
        r = Relation(("a", "b", "c"), [(1, 2, 3)])
        assert r.arity == 3
        assert r.attributes == ("a", "b", "c")

    def test_rejects_wrong_arity_row(self):
        with pytest.raises(ValueError, match="arity"):
            Relation(("x", "y"), [(1, 2, 3)])

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(ValueError, match="duplicate"):
            Relation(("x", "x"), [])

    def test_empty_relation(self):
        r = Relation(("x",), [])
        assert len(r) == 0
        assert list(r) == []

    def test_accepts_any_hashable_values(self):
        r = Relation(("x", "y"), [(("a", 1), frozenset({2}))])
        assert (("a", 1), frozenset({2})) in r

    def test_from_pairs(self):
        r = Relation.from_pairs([(1, 2), (3, 4)])
        assert r.attributes == ("x", "y")
        assert len(r) == 2

    def test_from_pairs_rejects_non_binary(self):
        with pytest.raises(ValueError):
            Relation.from_pairs([], attributes=("a", "b", "c"))


class TestProtocol:
    def test_contains(self, tiny_relation):
        assert (1, 10) in tiny_relation
        assert (1, 20) not in tiny_relation

    def test_contains_accepts_lists(self, tiny_relation):
        assert [1, 10] in tiny_relation

    def test_iteration_yields_tuples(self, tiny_relation):
        for row in tiny_relation:
            assert isinstance(row, tuple)

    def test_equality_ignores_row_order(self):
        a = Relation(("x",), [(1,), (2,)])
        b = Relation(("x",), [(2,), (1,)])
        assert a == b
        assert hash(a) == hash(b)

    def test_equality_distinguishes_attributes(self):
        a = Relation(("x",), [(1,)])
        b = Relation(("y",), [(1,)])
        assert a != b

    def test_repr_mentions_name_and_size(self):
        r = Relation(("x",), [(1,)], name="edges")
        assert "edges" in repr(r)
        assert "1" in repr(r)


class TestAlgebra:
    def test_project_deduplicates(self, tiny_relation):
        p = tiny_relation.project(("y",))
        assert sorted(p) == [(10,), (20,)]

    def test_project_reorders_columns(self):
        r = Relation(("x", "y"), [(1, 2)])
        assert list(r.project(("y", "x"))) == [(2, 1)]

    def test_project_unknown_attribute(self, tiny_relation):
        with pytest.raises(KeyError):
            tiny_relation.project(("nope",))

    def test_select(self, tiny_relation):
        s = tiny_relation.select(lambda row: row[0] <= 2)
        assert len(s) == 2

    def test_select_eq_uses_values(self, tiny_relation):
        s = tiny_relation.select_eq("y", 10)
        assert len(s) == 3
        assert all(row[1] == 10 for row in s)

    def test_select_eq_missing_value(self, tiny_relation):
        assert len(tiny_relation.select_eq("y", 999)) == 0

    def test_rename(self, tiny_relation):
        renamed = tiny_relation.rename({"x": "a"})
        assert renamed.attributes == ("a", "y")
        assert len(renamed) == len(tiny_relation)

    def test_rename_collision_rejected(self, tiny_relation):
        with pytest.raises(ValueError):
            tiny_relation.rename({"x": "y"})

    def test_restrict_rows(self, tiny_relation):
        r = tiny_relation.restrict_rows([(1, 10)])
        assert len(r) == 1
        assert r.attributes == tiny_relation.attributes

    def test_with_name(self, tiny_relation):
        named = tiny_relation.with_name("other")
        assert named.name == "other"
        assert named == tiny_relation


class TestIndexesAndStats:
    def test_index_on_groups_rows(self, tiny_relation):
        index = tiny_relation.index_on(("y",))
        assert len(index[(10,)]) == 3
        assert len(index[(20,)]) == 1

    def test_index_is_cached(self, tiny_relation):
        first = tiny_relation.index_on(("y",))
        second = tiny_relation.index_on(("y",))
        assert first is second

    def test_group_sizes_counts_distinct(self):
        r = Relation(("x", "y"), [(1, 1), (1, 2), (2, 1)])
        sizes = r.group_sizes(("x",), ("y",))
        assert sizes == {(1,): 2, (2,): 1}

    def test_group_sizes_empty_group_attrs(self, tiny_relation):
        sizes = tiny_relation.group_sizes((), ("y",))
        assert sizes == {(): 2}

    def test_distinct_count(self, tiny_relation):
        assert tiny_relation.distinct_count(("y",)) == 2
        assert tiny_relation.distinct_count(("x", "y")) == 4

    def test_active_domain(self, tiny_relation):
        assert tiny_relation.active_domain() == {1, 2, 3, 4, 10, 20}

    def test_column(self, tiny_relation):
        assert sorted(tiny_relation.column("y")) == [10, 10, 10, 20]
