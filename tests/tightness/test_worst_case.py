"""Unit tests for the Lemma 6.2 worst-case construction."""

import math

import pytest

from repro.core import collect_statistics, lp_bound
from repro.core.conditionals import (
    AbstractStatistic,
    ConcreteStatistic,
    Conditional,
    StatisticsSet,
)
from repro.evaluation import count_query
from repro.query import parse_query
from repro.query.query import Atom, ConjunctiveQuery
from repro.tightness import build_worst_case


def _join_stats(b_r: float, b_s: float, p: float):
    r_atom, s_atom = Atom("R", ("x", "y")), Atom("S", ("y", "z"))
    return StatisticsSet(
        [
            ConcreteStatistic(
                AbstractStatistic(
                    Conditional(frozenset("x"), frozenset("y")), p
                ),
                b_r,
                r_atom,
            ),
            ConcreteStatistic(
                AbstractStatistic(
                    Conditional(frozenset("z"), frozenset("y")), p
                ),
                b_s,
                s_atom,
            ),
            ConcreteStatistic(
                AbstractStatistic(Conditional(frozenset("y")), 1.0),
                max(b_r, b_s),
                r_atom,
            ),
        ]
    )


JOIN = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")


class TestBuildWorstCase:
    def test_tightness_for_l2_join(self):
        stats = _join_stats(6.0, 6.0, 2.0)
        bound = lp_bound(stats, query=JOIN, cone="normal")
        worst = build_worst_case(JOIN, bound)
        assert worst.is_tight()
        achieved = count_query(JOIN, worst.database)
        # the witness's output is the witness relation itself
        assert achieved >= len(worst.witness)
        # Lemma 6.2: within 2^c of the bound
        assert math.log2(achieved) >= bound.log2_bound - worst.num_factors - 1e-6

    def test_database_satisfies_statistics(self):
        stats = _join_stats(5.0, 7.0, 2.0)
        bound = lp_bound(stats, query=JOIN, cone="normal")
        worst = build_worst_case(JOIN, bound)
        assert stats.holds_on(worst.database, tolerance_log2=1e-6)

    def test_triangle_agm_worst_case_is_product(self):
        # only cardinality stats: worst case is the AGM product database
        atoms = [Atom("R", ("x", "y")), Atom("S", ("y", "z")), Atom("T", ("z", "x"))]
        q = ConjunctiveQuery(atoms)
        stats = StatisticsSet(
            [
                ConcreteStatistic(
                    AbstractStatistic(
                        Conditional(frozenset(a.variables)), 1.0
                    ),
                    8.0,
                    a,
                )
                for a in atoms
            ]
        )
        bound = lp_bound(stats, query=q, cone="normal")
        assert bound.log2_bound == pytest.approx(12.0)
        worst = build_worst_case(q, bound)
        assert worst.is_tight()
        assert count_query(q, worst.database) >= 2 ** (12 - worst.num_factors)

    def test_requires_normal_cone(self):
        stats = _join_stats(4.0, 4.0, 2.0)
        bound = lp_bound(stats, query=JOIN, cone="polymatroid")
        with pytest.raises(ValueError, match="normal"):
            build_worst_case(JOIN, bound)

    def test_refuses_huge_bounds(self):
        stats = _join_stats(40.0, 40.0, 2.0)
        bound = lp_bound(stats, query=JOIN, cone="normal")
        with pytest.raises(ValueError, match="materialise"):
            build_worst_case(JOIN, bound)

    def test_gap_reported(self):
        stats = _join_stats(6.0, 6.0, 2.0)
        bound = lp_bound(stats, query=JOIN, cone="normal")
        worst = build_worst_case(JOIN, bound)
        assert worst.log2_gap == pytest.approx(
            worst.log2_bound - worst.log2_achieved
        )

    def test_end_to_end_from_collected_statistics(self, two_table_db):
        # collect real statistics, rescale down, build the adversary
        stats = collect_statistics(JOIN, two_table_db, ps=[1.0, 2.0, math.inf])
        bound = lp_bound(stats, query=JOIN, cone="normal")
        if bound.log2_bound > 24:  # pragma: no cover - fixture is small
            pytest.skip("fixture grew too large")
        worst = build_worst_case(JOIN, bound)
        assert worst.is_tight()
