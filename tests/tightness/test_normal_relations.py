"""Unit tests for basic normal relations and domain products (Sec. 6)."""

import math

import numpy as np
import pytest

from repro.entropy import entropy_of_relation, is_totally_uniform, normal
from repro.tightness import (
    basic_normal_relation,
    domain_product,
    normal_relation,
)


class TestBasicNormalRelation:
    def test_example_66_shape(self):
        # T^{X,Z}_N from Example 6.6
        t = basic_normal_relation(("X", "Y", "Z"), ["X", "Z"], 4)
        assert len(t) == 4
        assert (2, 0, 2) in t
        assert (0, 0, 0) in t

    def test_entropy_is_scaled_step(self):
        # Prop. 6.5(2): h_{T^W_N} = log2(N) · h_W
        t = basic_normal_relation(("X", "Y", "Z"), ["X", "Y"], 8)
        h = entropy_of_relation(t)
        expected = normal(
            ("X", "Y", "Z"), {frozenset({"X", "Y"}): math.log2(8)}
        )
        assert np.allclose(h.values, expected.values)

    def test_totally_uniform(self):
        t = basic_normal_relation(("X", "Y"), ["X"], 5)
        assert is_totally_uniform(t)

    def test_rejects_unknown_attribute(self):
        with pytest.raises(ValueError):
            basic_normal_relation(("X",), ["Z"], 2)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            basic_normal_relation(("X",), ["X"], 0)


class TestDomainProduct:
    def test_sizes_multiply(self):
        a = basic_normal_relation(("X", "Y"), ["X"], 3)
        b = basic_normal_relation(("X", "Y"), ["Y"], 4)
        assert len(domain_product(a, b)) == 12

    def test_entropies_add(self):
        # Eq. 38
        a = basic_normal_relation(("X", "Y"), ["X"], 4)
        b = basic_normal_relation(("X", "Y"), ["X", "Y"], 8)
        product = domain_product(a, b)
        ha, hb = entropy_of_relation(a), entropy_of_relation(b)
        hp = entropy_of_relation(product)
        assert np.allclose(hp.values, ha.values + hb.values)

    def test_attribute_mismatch_rejected(self):
        a = basic_normal_relation(("X", "Y"), ["X"], 2)
        b = basic_normal_relation(("X", "Z"), ["X"], 2)
        with pytest.raises(ValueError):
            domain_product(a, b)


class TestNormalRelation:
    def test_example_66_t1_product(self):
        # T1 = T^X ⊗ T^Y ⊗ T^Z: the full N³ cube
        t = normal_relation(
            ("X", "Y", "Z"), [(["X"], 3), (["Y"], 3), (["Z"], 3)]
        )
        assert len(t) == 27

    def test_example_66_t2_diagonal(self):
        t = normal_relation(("X", "Y", "Z"), [(["X", "Y", "Z"], 5)])
        assert len(t) == 5

    def test_example_66_t3_path_shape(self):
        # T3 = T^{XY}_N ⊗ T^{YZ}_N has N² tuples
        t = normal_relation(("X", "Y", "Z"), [(["X", "Y"], 4), (["Y", "Z"], 4)])
        assert len(t) == 16

    def test_no_factors_is_unit(self):
        t = normal_relation(("X", "Y"), [])
        assert len(t) == 1

    def test_every_normal_relation_totally_uniform(self):
        t = normal_relation(
            ("X", "Y", "Z"), [(["X", "Y"], 2), (["Z"], 3), (["X", "Y", "Z"], 2)]
        )
        assert is_totally_uniform(t)

    def test_entropy_is_normal_polymatroid(self):
        t = normal_relation(("X", "Y"), [(["X"], 4), (["X", "Y"], 2)])
        h = entropy_of_relation(t)
        from repro.entropy import is_normal

        assert is_normal(h)
