"""Unit tests for group-realizable entropic vectors (Appendix D.2)."""


import pytest

from repro.entropy import (
    coordinate_subgroup_relation,
    coset_relation,
    entropy_of_relation,
    is_normal,
    is_totally_uniform,
    kernel_subgroup,
)


class TestKernelSubgroup:
    def test_zero_matrix_is_whole_group(self):
        sub = kernel_subgroup([[0, 0]], m=3, k=2)
        assert len(sub) == 9

    def test_identity_row_fixes_coordinate(self):
        sub = kernel_subgroup([[1, 0]], m=3, k=2)
        assert len(sub) == 3
        assert all(x[0] == 0 for x in sub)

    def test_parity_kernel(self):
        sub = kernel_subgroup([[1, 1]], m=2, k=2)
        assert sub == frozenset({(0, 0), (1, 1)})

    def test_shape_check(self):
        with pytest.raises(ValueError):
            kernel_subgroup([[1, 0, 0]], m=2, k=2)


class TestCosetRelation:
    def test_entropy_formula(self):
        # h(U) = log2(|G| / |∩ G_i|): two coordinate subgroups of (Z_2)^2
        g1 = kernel_subgroup([[1, 0]], m=2, k=2)  # x1 = 0
        g2 = kernel_subgroup([[0, 1]], m=2, k=2)  # x2 = 0
        r = coset_relation(("a", "b"), [g1, g2], m=2, k=2)
        h = entropy_of_relation(r)
        assert h.h(["a"]) == pytest.approx(1.0)
        assert h.h(["b"]) == pytest.approx(1.0)
        assert h.full == pytest.approx(2.0)

    def test_totally_uniform(self):
        g1 = kernel_subgroup([[1, 0]], m=3, k=2)
        g2 = kernel_subgroup([[1, 1]], m=3, k=2)
        r = coset_relation(("a", "b"), [g1, g2], m=3, k=2)
        assert is_totally_uniform(r)

    def test_parity_vector_is_group_realizable_and_not_normal(self):
        # the XOR vector: three kernels of (Z_2)^2 — entropic, not normal
        g1 = kernel_subgroup([[1, 0]], m=2, k=2)
        g2 = kernel_subgroup([[0, 1]], m=2, k=2)
        g3 = kernel_subgroup([[1, 1]], m=2, k=2)
        r = coset_relation(("x", "y", "z"), [g1, g2, g3], m=2, k=2)
        h = entropy_of_relation(r)
        assert h.is_polymatroid()
        assert not is_normal(h)
        assert h.full == pytest.approx(2.0)
        for v in ("x", "y", "z"):
            assert h.h([v]) == pytest.approx(1.0)

    def test_subgroup_count_must_match(self):
        g = kernel_subgroup([[1, 0]], m=2, k=2)
        with pytest.raises(ValueError):
            coset_relation(("a", "b"), [g], m=2, k=2)


class TestCoordinateSubgroups:
    def test_produces_normal_entropy(self):
        r = coordinate_subgroup_relation(
            ("a", "b", "c"), [[0], [1], [0, 1]], m=2, k=2
        )
        h = entropy_of_relation(r)
        assert is_normal(h)

    def test_matches_normal_relation_semantics(self):
        # one coordinate constrained by both variables ⇒ diagonal behaviour
        r = coordinate_subgroup_relation(("a", "b"), [[0], [0]], m=4, k=1)
        h = entropy_of_relation(r)
        assert h.h(["a"]) == pytest.approx(2.0)
        assert h.full == pytest.approx(2.0)  # a determines b

    def test_coordinate_range_checked(self):
        with pytest.raises(ValueError):
            coordinate_subgroup_relation(("a",), [[5]], m=2, k=2)
