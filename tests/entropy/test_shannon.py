"""Unit tests for the elemental Shannon inequality generator."""

import numpy as np
import pytest

from repro.entropy import (
    count_elemental,
    elemental_inequalities,
    entropy_of_relation,
    shannon_violations,
    step_function,
)
from repro.relational import Relation


class TestCounts:
    @pytest.mark.parametrize(
        "n,expected", [(0, 0), (1, 1), (2, 3), (3, 9), (4, 28), (5, 85)]
    )
    def test_count_formula(self, n, expected):
        assert count_elemental(n) == expected

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_matrix_row_count_matches(self, n):
        assert elemental_inequalities(n).shape == (count_elemental(n), 1 << n)


class TestValidity:
    def test_zero_vector_satisfies_all(self):
        assert shannon_violations(np.zeros(8)) == 0

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_step_functions_satisfy_all(self, n):
        variables = tuple(f"v{i}" for i in range(n))
        for mask in range(1, 1 << n):
            w = [variables[i] for i in range(n) if mask >> i & 1]
            h = step_function(variables, w)
            assert shannon_violations(h.values) == 0

    def test_entropies_satisfy_all(self):
        r = Relation(
            ("x", "y", "z"),
            [(0, 0, 0), (0, 1, 0), (1, 1, 1), (2, 0, 1), (2, 2, 2)],
        )
        assert shannon_violations(entropy_of_relation(r).values) == 0

    def test_violation_detected(self):
        # h(xy) > h(x) + h(y): violates submodularity at S = ∅
        values = np.array([0.0, 1.0, 1.0, 3.0])
        assert shannon_violations(values) > 0

    def test_monotonicity_violation_detected(self):
        values = np.array([0.0, 5.0, 1.0, 1.0])  # h(x) > h(xy)
        assert shannon_violations(values) > 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            shannon_violations(np.zeros(6))


class TestMatrixStructure:
    def test_empty_column_zeroed(self):
        a = elemental_inequalities(3)
        assert a[:, 0].count_nonzero() == 0

    def test_agreement_with_is_polymatroid(self):
        rng = np.random.default_rng(5)
        variables = ("a", "b", "c")
        from repro.entropy import EntropyVector

        for _ in range(25):
            values = np.concatenate([[0.0], rng.uniform(0, 2, size=7)])
            # make roughly monotone so some pass, some fail
            vec_ok = shannon_violations(values) == 0
            is_poly = EntropyVector(variables, values).is_polymatroid()
            assert vec_ok == is_poly
