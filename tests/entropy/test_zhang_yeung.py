"""Unit tests for the Zhang–Yeung inequality and the Fig. 2 polymatroid."""

import numpy as np
import pytest

from repro.entropy import (
    FIGURE2_VARIABLES,
    entropy_of_relation,
    figure2_polymatroid,
    shannon_violations,
    zhang_yeung_coefficients,
)
from repro.relational import Relation


class TestCoefficients:
    def test_shape(self):
        c = zhang_yeung_coefficients(FIGURE2_VARIABLES)
        assert c.shape == (16,)
        # the coefficients must sum to the paper's expansion totals
        assert c.sum() == pytest.approx(3 - 2 - 2 - 4 - 1 + 3 + 3 + 1 + 1 - 1 - 1)

    def test_rejects_unknown_variable(self):
        with pytest.raises(KeyError):
            zhang_yeung_coefficients(("A", "B", "X", "Y"), a="Z")

    def test_rejects_duplicate_roles(self):
        with pytest.raises(ValueError):
            zhang_yeung_coefficients(("A", "B", "X", "Y"), a="A", b="A")

    def test_role_permutation_changes_vector(self):
        base = zhang_yeung_coefficients(FIGURE2_VARIABLES)
        swapped = zhang_yeung_coefficients(
            FIGURE2_VARIABLES, a="B", b="A", x="X", y="Y"
        )
        assert not np.allclose(base, swapped)

    @pytest.mark.parametrize("seed", range(8))
    def test_holds_for_random_entropic_vectors(self, seed):
        # ZY is valid on Γ*_4: check on empirical entropies of random relations
        rng = np.random.default_rng(seed)
        rows = {
            tuple(rng.integers(0, 3, size=4)) for _ in range(rng.integers(3, 20))
        }
        r = Relation(FIGURE2_VARIABLES, rows)
        h = entropy_of_relation(r)
        c = zhang_yeung_coefficients(FIGURE2_VARIABLES)
        assert float(c @ h.values) >= -1e-9

    def test_holds_for_group_style_relations(self):
        # the XOR construction stresses the non-Shannon territory
        rows = [
            (a, b, a ^ b, (a + b) % 4)
            for a in range(4)
            for b in range(4)
        ]
        h = entropy_of_relation(Relation(FIGURE2_VARIABLES, rows))
        c = zhang_yeung_coefficients(FIGURE2_VARIABLES)
        assert float(c @ h.values) >= -1e-9


class TestFigure2:
    def test_is_polymatroid(self):
        h = figure2_polymatroid()
        assert shannon_violations(h.values) == 0

    def test_lattice_values(self):
        h = figure2_polymatroid()
        assert h.h(["A"]) == 2.0
        assert h.h(["A", "B"]) == 4.0
        assert h.h(["A", "X"]) == 3.0
        assert h.h(["X", "Y"]) == 3.0
        assert h.h(["A", "B", "X", "Y"]) == 4.0

    def test_violates_zhang_yeung(self):
        # the punchline of Appendix D.2: a polymatroid outside Γ*_4
        h = figure2_polymatroid()
        c = zhang_yeung_coefficients(FIGURE2_VARIABLES)
        assert float(c @ h.values) == pytest.approx(-1.0)
