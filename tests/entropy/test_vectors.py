"""Unit tests for entropy vectors and their constructors."""


import numpy as np
import pytest

from repro.entropy import (
    EntropyVector,
    entropy_of_relation,
    is_totally_uniform,
    modular,
    normal,
    step_function,
)
from repro.relational import Relation


class TestEntropyVector:
    def test_rejects_nonzero_empty_set(self):
        with pytest.raises(ValueError, match="h\\(∅\\)"):
            EntropyVector(("x",), np.array([1.0, 1.0]))

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            EntropyVector(("x", "y"), np.zeros(3))

    def test_h_and_conditional(self):
        v = EntropyVector(("x", "y"), np.array([0.0, 1.0, 2.0, 2.5]))
        assert v.h(["x"]) == 1.0
        assert v.h(["x", "y"]) == 2.5
        assert v.conditional(["y"], ["x"]) == pytest.approx(1.5)
        assert v.full == 2.5

    def test_mask_roundtrip(self):
        v = EntropyVector(("a", "b", "c"), np.zeros(8))
        mask = v.mask(["a", "c"])
        assert v.subset_of_mask(mask) == frozenset({"a", "c"})

    def test_addition_and_scaling(self):
        s = step_function(("x", "y"), ["x"])
        t = step_function(("x", "y"), ["y"])
        total = s + t
        assert total.h(["x", "y"]) == 2.0
        assert s.scale(3.0).h(["x"]) == 3.0

    def test_addition_rejects_mismatched_variables(self):
        with pytest.raises(ValueError):
            step_function(("x",), ["x"]) + step_function(("y",), ["y"])


class TestStepFunction:
    def test_definition(self):
        h = step_function(("x", "y", "z"), ["x", "y"])
        assert h.h(["x"]) == 1.0
        assert h.h(["z"]) == 0.0
        assert h.h(["y", "z"]) == 1.0
        assert h.h(["x", "y", "z"]) == 1.0

    def test_rejects_empty_w(self):
        with pytest.raises(ValueError):
            step_function(("x",), [])

    def test_step_functions_are_polymatroids(self):
        for w in (["x"], ["y"], ["x", "z"], ["x", "y", "z"]):
            assert step_function(("x", "y", "z"), w).is_polymatroid()


class TestModularNormal:
    def test_modular_sums_singletons(self):
        h = modular(("x", "y"), {"x": 2.0, "y": 3.0})
        assert h.h(["x", "y"]) == 5.0
        assert h.is_modular()

    def test_modular_defaults_to_zero(self):
        h = modular(("x", "y"), {"x": 1.0})
        assert h.h(["y"]) == 0.0

    def test_normal_combination(self):
        h = normal(
            ("x", "y"),
            {frozenset({"x"}): 1.0, frozenset({"x", "y"}): 2.0},
        )
        assert h.h(["x"]) == 3.0
        assert h.h(["y"]) == 2.0
        assert h.h(["x", "y"]) == 3.0
        assert h.is_polymatroid()

    def test_normal_rejects_negative(self):
        with pytest.raises(ValueError):
            normal(("x",), {frozenset({"x"}): -1.0})

    def test_step_is_not_modular(self):
        h = step_function(("x", "y"), ["x", "y"])
        assert not h.is_modular()


class TestIsPolymatroid:
    def test_zero_vector(self):
        assert EntropyVector(("x", "y"), np.zeros(4)).is_polymatroid()

    def test_monotonicity_violation(self):
        # h(x) = 2 > h(xy) = 1
        v = EntropyVector(("x", "y"), np.array([0.0, 2.0, 1.0, 1.0]))
        assert not v.is_polymatroid()

    def test_submodularity_violation(self):
        # h(xy) + h(∅) > h(x) + h(y)
        v = EntropyVector(("x", "y"), np.array([0.0, 1.0, 1.0, 3.0]))
        assert not v.is_polymatroid()


class TestEntropyOfRelation:
    def test_uniform_product(self):
        r = Relation(("x", "y"), [(i, j) for i in range(4) for j in range(2)])
        h = entropy_of_relation(r)
        assert h.h(["x"]) == pytest.approx(2.0)
        assert h.h(["y"]) == pytest.approx(1.0)
        assert h.full == pytest.approx(3.0)

    def test_diagonal(self):
        r = Relation(("x", "y"), [(i, i) for i in range(8)])
        h = entropy_of_relation(r)
        assert h.h(["x"]) == pytest.approx(3.0)
        assert h.full == pytest.approx(3.0)

    def test_skewed_marginal_below_log_support(self):
        r = Relation(("x", "y"), [(0, j) for j in range(7)] + [(1, 7)])
        h = entropy_of_relation(r)
        assert h.h(["x"]) < 1.0  # skew: entropy below log2(2)=1

    def test_empirical_entropy_is_entropic_hence_polymatroid(self):
        r = Relation(
            ("x", "y", "z"),
            [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0), (1, 1, 1)],
        )
        assert entropy_of_relation(r).is_polymatroid()

    def test_empty_relation_rejected(self):
        with pytest.raises(ValueError):
            entropy_of_relation(Relation(("x",), []))

    def test_variable_subset(self):
        r = Relation(("x", "y"), [(0, 1), (1, 0)])
        h = entropy_of_relation(r, variables=("y",))
        assert h.full == pytest.approx(1.0)


class TestTotalUniformity:
    def test_product_is_totally_uniform(self):
        r = Relation(("x", "y"), [(i, j) for i in range(3) for j in range(3)])
        assert is_totally_uniform(r)

    def test_diagonal_is_totally_uniform(self):
        r = Relation(("x", "y"), [(i, i) for i in range(5)])
        assert is_totally_uniform(r)

    def test_skewed_is_not(self):
        r = Relation(("x", "y"), [(0, 0), (0, 1), (1, 0)])
        assert not is_totally_uniform(r)
