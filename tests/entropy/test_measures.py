"""Unit tests for derived measures and the modularization lemma."""


import numpy as np
import pytest

from repro.entropy import (
    conditional_mutual_information,
    entropy_of_relation,
    modularize,
    mutual_information,
    step_function,
)
from repro.relational import Relation


@pytest.fixture
def xor_vector():
    rows = [(a, b, a ^ b) for a in range(2) for b in range(2)]
    return entropy_of_relation(Relation(("x", "y", "z"), rows))


class TestMutualInformation:
    def test_independent_variables(self):
        rows = [(i, j) for i in range(4) for j in range(4)]
        h = entropy_of_relation(Relation(("x", "y"), rows))
        assert mutual_information(h, ["x"], ["y"]) == pytest.approx(0.0)

    def test_identical_variables(self):
        rows = [(i, i) for i in range(8)]
        h = entropy_of_relation(Relation(("x", "y"), rows))
        assert mutual_information(h, ["x"], ["y"]) == pytest.approx(3.0)

    def test_xor_pairwise_independent(self, xor_vector):
        # pairwise independent, jointly dependent: the classic example
        assert mutual_information(xor_vector, ["x"], ["y"]) == pytest.approx(0)
        assert mutual_information(xor_vector, ["x"], ["z"]) == pytest.approx(0)

    def test_xor_conditional_dependence(self, xor_vector):
        # I(x;y|z) = 1: knowing z couples x and y
        assert conditional_mutual_information(
            xor_vector, ["x"], ["y"], ["z"]
        ) == pytest.approx(1.0)

    def test_cmi_nonnegative_on_entropics(self):
        rows = [(0, 0, 1), (0, 1, 1), (1, 0, 0), (2, 1, 0), (2, 2, 2)]
        h = entropy_of_relation(Relation(("a", "b", "c"), rows))
        assert conditional_mutual_information(h, ["a"], ["b"], ["c"]) >= -1e-12


class TestModularize:
    def test_preserves_total_entropy(self, xor_vector):
        for order in (("x", "y", "z"), ("z", "x", "y")):
            m = modularize(xor_vector, order)
            assert m.full == pytest.approx(xor_vector.full)

    def test_dominated_on_all_subsets(self, xor_vector):
        m = modularize(xor_vector)
        assert np.all(m.values <= xor_vector.values + 1e-9)

    def test_pairwise_conditionals_dominated(self, xor_vector):
        order = ("x", "y", "z")
        m = modularize(xor_vector, order)
        for i, u in enumerate(order):
            for v in order[i + 1 :]:
                assert m.conditional([v], [u]) <= xor_vector.conditional(
                    [v], [u]
                ) + 1e-9

    def test_result_is_modular(self, xor_vector):
        assert modularize(xor_vector).is_modular()

    def test_step_function_modularization(self):
        h = step_function(("a", "b"), ["a", "b"])
        m = modularize(h, ("a", "b"))
        # h(a)=1, h(b|a)=0 → modular (1, 0)
        assert m.h(["a"]) == pytest.approx(1.0)
        assert m.h(["b"]) == pytest.approx(0.0)
        assert m.full == pytest.approx(1.0)

    def test_rejects_bad_order(self, xor_vector):
        with pytest.raises(ValueError):
            modularize(xor_vector, ("x", "y"))
