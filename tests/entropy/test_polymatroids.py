"""Unit tests for normal-polymatroid decomposition."""

import numpy as np
import pytest

from repro.entropy import (
    EntropyVector,
    entropy_of_relation,
    is_normal,
    modular,
    normal,
    normal_coefficients,
    normal_from_masks,
    step_function,
)
from repro.relational import Relation


class TestDecomposition:
    def test_recovers_single_step(self):
        h = step_function(("x", "y", "z"), ["x", "y"])
        coeffs = normal_coefficients(h)
        assert coeffs == {frozenset({"x", "y"}): 1.0}

    def test_recovers_combination(self):
        original = {
            frozenset({"x"}): 1.5,
            frozenset({"y", "z"}): 0.5,
            frozenset({"x", "y", "z"}): 2.0,
        }
        h = normal(("x", "y", "z"), original)
        recovered = normal_coefficients(h)
        assert recovered is not None
        for key, value in original.items():
            assert recovered[key] == pytest.approx(value)

    def test_modular_is_normal(self):
        h = modular(("x", "y"), {"x": 1.0, "y": 2.0})
        assert is_normal(h)

    def test_zero_is_normal(self):
        assert is_normal(EntropyVector(("x", "y"), np.zeros(4)))

    def test_non_normal_polymatroid_detected(self):
        # the "parity" entropic vector: x, y uniform bits, z = x XOR y.
        # It is entropic (hence polymatroid) but NOT normal.
        r = Relation(
            ("x", "y", "z"),
            [(a, b, a ^ b) for a in range(2) for b in range(2)],
        )
        h = entropy_of_relation(r)
        assert h.is_polymatroid()
        assert not is_normal(h)

    def test_non_polymatroid_not_normal(self):
        v = EntropyVector(("x", "y"), np.array([0.0, 2.0, 2.0, 5.0]))
        assert not is_normal(v)

    def test_normal_from_masks(self):
        h = normal_from_masks(("x", "y"), {0b01: 1.0, 0b11: 2.0})
        assert h.h(["x"]) == pytest.approx(3.0)
        assert h.h(["y"]) == pytest.approx(2.0)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_normal_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        variables = ("a", "b", "c")
        coeffs = {}
        for mask in range(1, 8):
            if rng.random() < 0.6:
                w = frozenset(v for i, v in enumerate(variables) if mask >> i & 1)
                coeffs[w] = float(rng.uniform(0.1, 3.0))
        h = normal(variables, coeffs)
        recovered = normal_coefficients(h)
        assert recovered is not None
        reconstructed = normal(variables, recovered)
        assert np.allclose(reconstructed.values, h.values)
