"""Unit tests for the bench-trajectory tooling (``benchmarks/trajectory.py``).

The compare sweep is CI's only window into a perf regression, so its
failure mode matters: one run must name *every* regressing series —
time and memory, including malformed entries — instead of aborting at
the first, and ``normalize`` must carry the kernel-mode label through
to the trajectory artifact.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "trajectory",
    Path(__file__).resolve().parent.parent / "benchmarks" / "trajectory.py",
)
trajectory = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(trajectory)


def _raw_dump(entries):
    """A minimal pytest-benchmark dump with the calibration bench added."""
    benches = [
        {
            "fullname": trajectory.CALIBRATION,
            "stats": {"median": 0.01, "rounds": 10},
            "extra_info": {},
        }
    ]
    for name, median, extra in entries:
        benches.append(
            {
                "fullname": name,
                "stats": {"median": median, "rounds": 10},
                "extra_info": extra,
            }
        )
    return {"benchmarks": benches, "machine_info": {"node": "test"}}


def _trajectory_doc(sha, benchmarks):
    base = {
        trajectory.CALIBRATION: {
            "median_s": 0.01,
            "rounds": 10,
            "normalized": 1.0,
        }
    }
    base.update(benchmarks)
    return {"sha": sha, "benchmarks": base}


def test_normalize_carries_kernel_mode_and_peak(tmp_path):
    raw = tmp_path / "raw.json"
    raw.write_text(
        json.dumps(
            _raw_dump(
                [
                    ("b/x.py::fast", 0.002, {"kernel_mode": "numba",
                                             "peak_traced_kb": 12.5}),
                    ("b/x.py::plain", 0.004, {}),
                ]
            )
        )
    )
    doc = trajectory.normalize(str(raw), "abc123")
    fast = doc["benchmarks"]["b/x.py::fast"]
    assert fast["kernel_mode"] == "numba"
    assert fast["peak_kb"] == 12.5
    assert fast["normalized"] == pytest.approx(0.2)
    assert "kernel_mode" not in doc["benchmarks"]["b/x.py::plain"]


def test_normalize_requires_calibration(tmp_path):
    raw = tmp_path / "raw.json"
    raw.write_text(json.dumps({"benchmarks": [], "machine_info": {}}))
    with pytest.raises(SystemExit, match="calibration"):
        trajectory.normalize(str(raw), "abc123")


def test_compare_ok(tmp_path, capsys):
    baseline = tmp_path / "base.json"
    current = tmp_path / "cur.json"
    bench = {"median_s": 0.002, "rounds": 10, "normalized": 0.2}
    baseline.write_text(json.dumps(_trajectory_doc("base", {"b::one": bench})))
    current.write_text(json.dumps(_trajectory_doc("cur", {"b::one": bench})))
    assert trajectory.compare(str(current), str(baseline), 1.5) == 0
    assert "no regressions" in capsys.readouterr().out


def test_compare_reports_every_regression_in_one_run(tmp_path, capsys):
    """Two time regressions, one memory regression, and one malformed
    entry must all surface from a single compare invocation."""
    base = {
        "b::slow1": {"median_s": 0.002, "rounds": 10, "normalized": 0.2,
                     "peak_kb": 100.0},
        "b::slow2": {"median_s": 0.002, "rounds": 10, "normalized": 0.2},
        "b::broken": {"median_s": 0.002, "rounds": 10, "normalized": 0.2},
        "b::fine": {"median_s": 0.002, "rounds": 10, "normalized": 0.2},
    }
    cur = {
        # 10x slower and 3x the peak
        "b::slow1": {"median_s": 0.02, "rounds": 10, "normalized": 2.0,
                     "peak_kb": 300.0},
        "b::slow2": {"median_s": 0.02, "rounds": 10, "normalized": 2.0},
        # malformed: missing the normalized median entirely
        "b::broken": {"median_s": 0.02, "rounds": 10},
        "b::fine": {"median_s": 0.002, "rounds": 10, "normalized": 0.2},
    }
    baseline = tmp_path / "base.json"
    current = tmp_path / "cur.json"
    baseline.write_text(json.dumps(_trajectory_doc("base", base)))
    current.write_text(json.dumps(_trajectory_doc("cur", cur)))
    assert trajectory.compare(str(current), str(baseline), 1.5) == 1
    out = capsys.readouterr().out
    # the sweep reached every series despite the earlier failures
    assert "b::slow1" in out and "b::slow2" in out and "b::broken" in out
    assert "b::fine" in out
    tail = out[out.index("series regressed beyond tolerance"):]
    assert "b::slow1 [time]" in tail
    assert "b::slow1 [memory]" in tail
    assert "b::slow2 [time]" in tail
    assert "b::broken [time]: malformed entry" in tail
    assert "b::fine" not in tail


def test_compare_zero_calibration_is_reported_not_raised(tmp_path, capsys):
    base = {
        "b::one": {"median_s": 0.002, "rounds": 10, "normalized": 0.0},
        "b::two": {"median_s": 0.002, "rounds": 10, "normalized": 0.2},
    }
    cur = {
        "b::one": {"median_s": 0.002, "rounds": 10, "normalized": 0.2},
        "b::two": {"median_s": 0.2, "rounds": 10, "normalized": 20.0},
    }
    baseline = tmp_path / "base.json"
    current = tmp_path / "cur.json"
    baseline.write_text(json.dumps(_trajectory_doc("base", base)))
    current.write_text(json.dumps(_trajectory_doc("cur", cur)))
    assert trajectory.compare(str(current), str(baseline), 1.5) == 1
    tail = capsys.readouterr().out
    tail = tail[tail.index("series regressed beyond tolerance"):]
    assert "b::one [time]: malformed entry" in tail
    assert "b::two [time]" in tail


def test_compare_new_and_low_round_entries_are_informational(
    tmp_path, capsys
):
    base = {
        "b::oneshot": {"median_s": 0.002, "rounds": 1, "normalized": 0.2},
    }
    cur = {
        "b::oneshot": {"median_s": 0.2, "rounds": 1, "normalized": 20.0},
        "b::fresh": {"median_s": 0.001, "rounds": 10, "normalized": 0.1},
    }
    baseline = tmp_path / "base.json"
    current = tmp_path / "cur.json"
    baseline.write_text(json.dumps(_trajectory_doc("base", base)))
    current.write_text(json.dumps(_trajectory_doc("cur", cur)))
    assert trajectory.compare(str(current), str(baseline), 1.5) == 0
    out = capsys.readouterr().out
    assert "[info]" in out
    assert "[new]" in out


def test_compare_kernel_mode_label_is_printed(tmp_path, capsys):
    bench = {"median_s": 0.002, "rounds": 10, "normalized": 0.2,
             "kernel_mode": "numba"}
    baseline = tmp_path / "base.json"
    current = tmp_path / "cur.json"
    baseline.write_text(json.dumps(_trajectory_doc("base", {"b::k": bench})))
    current.write_text(json.dumps(_trajectory_doc("cur", {"b::k": bench})))
    assert trajectory.compare(str(current), str(baseline), 1.5) == 0
    assert "[kernels=numba]" in capsys.readouterr().out
