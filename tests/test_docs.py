"""The docs stay true: links resolve, examples run, ghosts stay gone.

Documentation that references files which do not exist (this repo once
cited a ``DESIGN.md`` that was never written) is worse than no
documentation — so (1) every relative markdown link in the curated docs
must resolve to a real file, (2) every ``>>>`` example in ``docs/*.md``
must execute verbatim, and (3) the swept ghost references must not
come back.
"""

import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = sorted((REPO / "docs").glob("*.md"))
CHECKED = [REPO / "README.md", REPO / "ROADMAP.md", *DOCS]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def _relative_links(path: Path):
    inside_code = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            inside_code = not inside_code
            continue
        if inside_code:
            continue
        for target in _LINK.findall(line):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            yield target


def test_docs_exist():
    names = {path.name for path in DOCS}
    assert {"index.md", "architecture.md", "service.md"} <= names


@pytest.mark.parametrize("path", CHECKED, ids=lambda p: p.name)
def test_relative_links_resolve(path):
    broken = []
    for target in _relative_links(path):
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name} has dead links: {broken}"


@pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
def test_doc_examples_run(path):
    parser = doctest.DocTestParser()
    examples = parser.get_examples(path.read_text(), name=path.name)
    if not examples:
        pytest.skip(f"{path.name} has no doctests")
    runner = doctest.DocTestRunner(verbose=False)
    test = parser.get_doctest(
        path.read_text(), globs={}, name=path.name, filename=str(path),
        lineno=0,
    )
    result = runner.run(test)
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {path.name}"


def test_architecture_examples_cover_the_headline():
    # the triangle doctest must keep demonstrating ℓ2 < AGM
    text = (REPO / "docs" / "architecture.md").read_text()
    assert ">>> round(lp_bound(stats, query=q).bound, 6)" in text


@pytest.mark.parametrize("tree", ["src", "benchmarks"])
def test_no_ghost_references(tree):
    offenders = []
    for path in (REPO / tree).rglob("*.py"):
        if "__pycache__" in path.parts:
            continue
        text = path.read_text()
        for ghost in ("DESIGN.md", "EXPERIMENTS.md"):
            if ghost in text:
                offenders.append(f"{path.relative_to(REPO)}: {ghost}")
    assert not offenders, f"stale doc references: {offenders}"
