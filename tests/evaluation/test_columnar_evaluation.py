"""Property-based equivalence: columnar evaluators vs the tuple oracles.

The vectorized Generic Join, Yannakakis reduction, and counting sweep
must match their tuple-at-a-time oracles bit for bit: same output row
sets (of Python ints, not np.int64), same attribute order, and — for the
WCOJ — the *same metered search-tree size*, because
``experiments.evaluation_runtime`` compares that meter against the
Theorem 2.6 budget.  Randomized databases cover empty relations,
self-joins, repeated-variable (diagonal) atoms, disjoint atoms, and
non-integer values that must take the fallback path.
"""

from hypothesis import given, settings, strategies as st

from repro.evaluation import (
    acyclic_count,
    acyclic_count_tuples,
    count_query,
    generic_join,
    generic_join_tuples,
    semijoin_reduce,
    semijoin_reduce_tuples,
)
from repro.query import parse_query
from repro.relational import Database, Relation

SETTINGS = settings(max_examples=40, deadline=None)

values = st.integers(0, 5)
pairs = st.lists(st.tuples(values, values), max_size=18)
units = st.lists(st.tuples(values), max_size=6)

CYCLIC_QUERIES = [
    parse_query("triangle(x,y,z) :- R(x,y), R(y,z), R(z,x)"),
    parse_query("lw(x,y,z) :- R(x,y), S(y,z), T(x,z)"),
    parse_query("cycle4(a,b,c,d) :- R(a,b), S(b,c), R(c,d), S(d,a)"),
]

ACYCLIC_QUERIES = [
    parse_query("onejoin(x,y,z) :- R(x,y), S(y,z)"),
    parse_query("path3(a,b,c,d) :- R(a,b), R(b,c), S(c,d)"),
    parse_query("star(m,a,b) :- U(m), R(m,a), R(m,b)"),
    parse_query("diag(x,w) :- R(x,x), S(x,w)"),
    parse_query("disjoint(x,y,u,v) :- R(x,y), S(u,v)"),
    parse_query("filtered(x,y) :- R(x,y), U(x)"),
]


@st.composite
def databases(draw):
    return Database(
        {
            "R": Relation(("a", "b"), draw(pairs)),
            "S": Relation(("a", "b"), draw(pairs)),
            "T": Relation(("a", "b"), draw(pairs)),
            "U": Relation(("u",), draw(units)),
        }
    )


def assert_join_matches_oracle(query, db):
    fast = generic_join(query, db)
    slow = generic_join_tuples(query, db)
    assert fast.output.attributes == slow.output.attributes
    assert set(fast.output) == set(slow.output)
    assert fast.nodes_visited == slow.nodes_visited
    assert all(type(v) is int for row in fast.output for v in row)


class TestGenericJoinEquivalence:
    @SETTINGS
    @given(databases())
    def test_cyclic_queries(self, db):
        for query in CYCLIC_QUERIES:
            assert_join_matches_oracle(query, db)

    @SETTINGS
    @given(databases())
    def test_acyclic_queries(self, db):
        for query in ACYCLIC_QUERIES:
            assert_join_matches_oracle(query, db)

    @SETTINGS
    @given(pairs)
    def test_explicit_orders_agree(self, rows):
        db = Database({"R": Relation(("a", "b"), rows)})
        query = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        for order in [("x", "y", "z"), ("z", "x", "y"), ("y", "z", "x")]:
            fast = generic_join(query, db, order=order)
            slow = generic_join_tuples(query, db, order=order)
            assert set(fast.output) == set(slow.output)
            assert fast.nodes_visited == slow.nodes_visited


class TestYannakakisEquivalence:
    @SETTINGS
    @given(databases())
    def test_reduction_matches_oracle(self, db):
        for query in ACYCLIC_QUERIES:
            fast = semijoin_reduce(query, db)
            slow = semijoin_reduce_tuples(query, db)
            for name in db:
                assert fast[name].attributes == slow[name].attributes
                assert set(fast[name]) == set(slow[name]), (query.name, name)

    @SETTINGS
    @given(databases())
    def test_count_matches_oracle_and_join(self, db):
        for query in ACYCLIC_QUERIES:
            fast = acyclic_count(query, db)
            slow = acyclic_count_tuples(query, db)
            assert fast == slow
            assert type(fast) is int
            assert fast == count_query(query, db)


class TestFallbackPath:
    """Non-integer values must silently route to the tuple engines."""

    @SETTINGS
    @given(pairs, pairs)
    def test_string_values_fall_back(self, r_rows, s_rows):
        db = Database(
            {
                "R": Relation(
                    ("a", "b"), [(f"n{a}", f"n{b}") for a, b in r_rows]
                ),
                "S": Relation(
                    ("a", "b"), [(f"n{a}", f"n{b}") for a, b in s_rows]
                ),
            }
        )
        query = parse_query("q(x,y,z) :- R(x,y), S(y,z)")
        run = generic_join(query, db)
        oracle = generic_join_tuples(query, db)
        assert set(run.output) == set(oracle.output)
        assert run.nodes_visited == oracle.nodes_visited
        reduced = semijoin_reduce(query, db)
        reduced_oracle = semijoin_reduce_tuples(query, db)
        for name in db:
            assert set(reduced[name]) == set(reduced_oracle[name])
        assert acyclic_count(query, db) == acyclic_count_tuples(query, db)

    @SETTINGS
    @given(pairs, pairs)
    def test_mixed_database_falls_back_whole(self, r_rows, s_rows):
        # one encodable and one non-encodable relation in the same query
        db = Database(
            {
                "R": Relation(("a", "b"), r_rows),
                "S": Relation(
                    ("a", "b"), [(f"{a}", f"{b}") for a, b in s_rows]
                ),
            }
        )
        query = parse_query("q(x,y,u,v) :- R(x,y), S(u,v)")
        run = generic_join(query, db)
        oracle = generic_join_tuples(query, db)
        assert set(run.output) == set(oracle.output)
        assert run.nodes_visited == oracle.nodes_visited


class TestEdgeCases:
    def test_empty_relation_everywhere(self):
        db = Database(
            {
                "R": Relation(("a", "b"), []),
                "S": Relation(("a", "b"), [(1, 2)]),
            }
        )
        query = parse_query("q(x,y,z) :- R(x,y), S(y,z)")
        run = generic_join(query, db)
        assert run.count == 0 and run.nodes_visited == 0
        reduced = semijoin_reduce(query, db)
        assert len(reduced["R"]) == 0 and len(reduced["S"]) == 0
        assert acyclic_count(query, db) == 0

    def test_empty_mid_search_meters_match(self):
        # R has rows but S kills every branch at the second level
        db = Database(
            {
                "R": Relation(("a", "b"), [(1, 2), (3, 4)]),
                "S": Relation(("a", "b"), [(9, 9)]),
            }
        )
        query = parse_query("q(x,y,z) :- R(x,y), S(y,z)")
        order = ("x", "y", "z")  # bind x first so the search visits nodes
        fast = generic_join(query, db, order=order)
        slow = generic_join_tuples(query, db, order=order)
        assert fast.count == slow.count == 0
        assert fast.nodes_visited == slow.nodes_visited > 0

    def test_count_beyond_int64_stays_exact(self):
        # 64^12 distinct star extensions: far beyond int64, and the
        # columnar sweep must promote to exact Python integers.
        fan = Relation(("m", "v"), [(0, i) for i in range(64)])
        center = Relation(("m",), [(0,)])
        head = ",".join(f"v{i}" for i in range(12))
        body = ", ".join(f"F(m,v{i})" for i in range(12))
        query = parse_query(f"huge(m,{head}) :- C(m), {body}")
        db = Database({"C": center, "F": fan})
        count = acyclic_count(query, db)
        assert count == acyclic_count_tuples(query, db) == 64**12

    def test_triangle_meter_on_generated_graph(self):
        from repro.datasets import power_law_graph

        db = Database({"R": power_law_graph(300, 1200, 0.5, seed=5)})
        query = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        assert_join_matches_oracle(query, db)
