"""Unit tests for hash joins and left-deep evaluation."""


from repro.evaluation.joins import evaluate_left_deep, hash_join
from repro.query import parse_query
from repro.relational import Database, Relation


class TestHashJoin:
    def test_basic_join(self):
        out_vars, rows = hash_join(
            ("x", "y"), [(1, 2), (3, 4)], ("y", "z"), [(2, 7), (2, 8)]
        )
        assert out_vars == ("x", "y", "z")
        assert sorted(rows) == [(1, 2, 7), (1, 2, 8)]

    def test_no_shared_is_cartesian(self):
        _, rows = hash_join(("x",), [(1,), (2,)], ("y",), [(7,), (8,)])
        assert len(rows) == 4

    def test_multi_shared(self):
        _, rows = hash_join(
            ("x", "y"), [(1, 2), (1, 3)], ("x", "y"), [(1, 2)]
        )
        assert rows == [(1, 2)]

    def test_empty_side(self):
        _, rows = hash_join(("x",), [], ("x",), [(1,)])
        assert rows == []


class TestEvaluateLeftDeep:
    def test_one_join(self, two_table_db, one_join_query):
        out = evaluate_left_deep(one_join_query, two_table_db)
        assert out.attributes == ("x", "y", "z")
        for x, y, z in out:
            assert (x, y) in two_table_db["R"]
            assert (y, z) in two_table_db["S"]

    def test_triangle(self, graph_db, triangle_query):
        out = evaluate_left_deep(triangle_query, graph_db)
        edge_set = set(graph_db["R"])
        for x, y, z in out:
            assert (x, y) in edge_set
            assert (y, z) in edge_set
            assert (z, x) in edge_set

    def test_explicit_order_same_result(self, graph_db, triangle_query):
        default = evaluate_left_deep(triangle_query, graph_db)
        reordered = evaluate_left_deep(triangle_query, graph_db, order=[2, 0, 1])
        assert default == reordered

    def test_repeated_variable_atom(self):
        db = Database({"R": Relation(("a", "b"), [(1, 1), (1, 2), (3, 3)])})
        q = parse_query("Q(x,y) :- R(x,x), R(x,y)")
        out = evaluate_left_deep(q, db)
        assert set(out) == {(1, 1), (1, 2), (3, 3)}

    def test_disconnected_query_is_product(self):
        db = Database(
            {
                "R": Relation(("a",), [(1,), (2,)]),
                "S": Relation(("a",), [(7,), (8,)]),
            }
        )
        q = parse_query("Q(x,y) :- R(x), S(y)")
        assert len(evaluate_left_deep(q, db)) == 4
