"""Unit tests for Lemma 2.5 partitioning and strong satisfaction."""

import math

import pytest

from repro.core.degree import degree_sequence
from repro.core.norms import log2_norm
from repro.evaluation.partitioning import (
    partition_by_degree,
    partition_for_statistic,
    strongly_satisfies,
)
from repro.relational import Relation


@pytest.fixture
def skewed():
    rows = [(i, 0) for i in range(16)]        # y=0 has degree 16
    rows += [(100 + i, 1) for i in range(4)]  # y=1 has degree 4
    rows += [(200 + j, 2 + j) for j in range(10)]  # ten degree-1 values
    return Relation(("x", "y"), rows, name="skewed")


class TestStronglySatisfies:
    def test_uniform_relation_strongly_satisfies(self):
        r = Relation(("x", "y"), [(i, i % 4) for i in range(8)])
        b = log2_norm(degree_sequence(r, ["x"], ["y"]), 2.0)
        assert strongly_satisfies(r, ["x"], ["y"], 2.0, b)

    def test_skewed_relation_does_not(self, skewed):
        b = log2_norm(degree_sequence(skewed, ["x"], ["y"]), 2.0)
        assert not strongly_satisfies(skewed, ["x"], ["y"], 2.0, b)

    def test_infinity_case(self, skewed):
        assert strongly_satisfies(skewed, ["x"], ["y"], math.inf, 4.0)
        assert not strongly_satisfies(skewed, ["x"], ["y"], math.inf, 3.9)

    def test_empty_relation(self):
        r = Relation(("x", "y"), [])
        assert strongly_satisfies(r, ["x"], ["y"], 2.0, 0.0)


class TestPartitionByDegree:
    def test_parts_are_degree_uniform(self, skewed):
        parts = partition_by_degree(skewed, ["x"], ["y"])
        for part in parts:
            seq = degree_sequence(part, ["x"], ["y"])
            assert seq[0] < 2 * seq[-1] or seq[0] == seq[-1] or (
                seq[0] // seq[-1] < 2
            )
            # all degrees share a ⌊log2⌋ bucket
            lo = math.floor(math.log2(seq[-1]))
            hi = math.floor(math.log2(seq[0]))
            assert lo == hi

    def test_union_is_original(self, skewed):
        parts = partition_by_degree(skewed, ["x"], ["y"])
        rows = set()
        for part in parts:
            for row in part:
                assert row not in rows  # disjoint
                rows.add(row)
        assert rows == set(skewed)

    def test_bucket_count_logarithmic(self, skewed):
        parts = partition_by_degree(skewed, ["x"], ["y"])
        assert len(parts) <= math.ceil(math.log2(16)) + 1

    def test_empty_relation(self):
        assert partition_by_degree(Relation(("x", "y"), []), ["x"], ["y"]) == []


class TestPartitionForStatistic:
    @pytest.mark.parametrize("p", [1.5, 2.0, 3.0])
    def test_each_part_strongly_satisfies(self, skewed, p):
        b = log2_norm(degree_sequence(skewed, ["x"], ["y"]), p)
        parts = partition_for_statistic(skewed, ["x"], ["y"], p, b)
        assert parts  # non-empty
        for part in parts:
            assert strongly_satisfies(part, ["x"], ["y"], p, b)

    def test_union_preserved(self, skewed):
        b = log2_norm(degree_sequence(skewed, ["x"], ["y"]), 2.0)
        parts = partition_for_statistic(skewed, ["x"], ["y"], 2.0, b)
        rows = set()
        for part in parts:
            rows.update(part)
        assert rows == set(skewed)

    def test_part_count_within_lemma25(self, skewed):
        b = log2_norm(degree_sequence(skewed, ["x"], ["y"]), 2.0)
        parts = partition_for_statistic(skewed, ["x"], ["y"], 2.0, b)
        n = len(skewed)
        # Lemma 2.5: ⌈2^p⌉·log N parts (generous constant)
        assert len(parts) <= math.ceil(2.0 ** 2.0) * (
            math.ceil(math.log2(n)) + 1
        )

    def test_infinity_returns_whole(self, skewed):
        parts = partition_for_statistic(skewed, ["x"], ["y"], math.inf, 4.0)
        assert parts == [skewed]

    def test_violated_statistic_rejected(self, skewed):
        # bound below the max degree: impossible to strongly satisfy
        with pytest.raises(ValueError, match="violates"):
            partition_for_statistic(skewed, ["x"], ["y"], 2.0, 1.0)

    def test_slack_bound_gives_single_parts_per_bucket(self, skewed):
        # a very loose bound still partitions into degree buckets only
        parts = partition_for_statistic(skewed, ["x"], ["y"], 2.0, 40.0)
        assert len(parts) == len(partition_by_degree(skewed, ["x"], ["y"]))
