"""Unit tests for the Yannakakis semijoin reduction."""

import pytest

from repro.evaluation import acyclic_count, count_query
from repro.evaluation.yannakakis import semijoin_reduce
from repro.query import parse_query
from repro.relational import Database, Relation


class TestSemijoinReduce:
    def test_removes_dangling_tuples(self):
        r = Relation(("a", "b"), [(1, 2), (5, 9)])  # (5,9) dangles
        s = Relation(("b", "c"), [(2, 3), (7, 7)])  # (7,7) dangles
        db = Database({"R": r, "S": s})
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        reduced = semijoin_reduce(q, db)
        assert set(reduced["R"]) == {(1, 2)}
        assert set(reduced["S"]) == {(2, 3)}

    def test_preserves_output(self, two_table_db, one_join_query):
        reduced = semijoin_reduce(one_join_query, two_table_db)
        assert acyclic_count(one_join_query, reduced) == acyclic_count(
            one_join_query, two_table_db
        )

    def test_every_surviving_tuple_participates(self, two_table_db, one_join_query):
        from repro.evaluation import evaluate_left_deep

        reduced = semijoin_reduce(one_join_query, two_table_db)
        output = evaluate_left_deep(one_join_query, two_table_db)
        r_used = {(x, y) for x, y, _ in output}
        s_used = {(y, z) for _, y, z in output}
        assert set(reduced["R"]) == r_used
        assert set(reduced["S"]) == s_used

    def test_empty_join_empties_everything(self):
        r = Relation(("a", "b"), [(1, 2)])
        s = Relation(("b", "c"), [(9, 9)])
        db = Database({"R": r, "S": s})
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        reduced = semijoin_reduce(q, db)
        assert len(reduced["R"]) == 0
        assert len(reduced["S"]) == 0

    def test_path_three_hops(self, graph_db):
        q = parse_query("Q(a,b,c,d) :- R(a,b), R(b,c), R(c,d)")
        reduced = semijoin_reduce(q, graph_db)
        assert count_query(q, reduced) == count_query(q, graph_db)
        assert len(reduced["R"]) <= len(graph_db["R"])

    def test_star_reduction(self):
        center = Relation(("m",), [(0,), (1,), (2,)])
        fan = Relation(("m", "v"), [(0, 1), (0, 2), (9, 9)])
        db = Database({"C": center, "F": fan})
        q = parse_query("Q(m,a,b) :- C(m), F(m,a), F(m,b)")
        reduced = semijoin_reduce(q, db)
        assert set(reduced["C"]) == {(0,)}
        assert set(reduced["F"]) == {(0, 1), (0, 2)}

    def test_disjoint_atoms_no_cross_product(self):
        """Semijoin against a source sharing no variables keeps the target
        exactly when the source is non-empty — no cross product is formed.

        Regression test for the columnar path: the tuple `_semijoin`
        returns `target_rows` whenever `source_rows` is non-empty, and the
        code-space engine must reproduce that semantics bit for bit.
        """
        from repro.evaluation import semijoin_reduce_tuples

        r = Relation(("a", "b"), [(1, 2), (3, 4)])
        s = Relation(("c", "d"), [(7, 8)])
        db = Database({"R": r, "S": s})
        q = parse_query("Q(x,y,u,v) :- R(x,y), S(u,v)")
        reduced = semijoin_reduce(q, db)
        oracle = semijoin_reduce_tuples(q, db)
        # non-empty disjoint source: everything survives, nothing is joined
        assert set(reduced["R"]) == set(oracle["R"]) == {(1, 2), (3, 4)}
        assert set(reduced["S"]) == set(oracle["S"]) == {(7, 8)}
        # empty disjoint source: the whole output is empty, so is the target
        empty_db = Database({"R": r, "S": Relation(("c", "d"), [])})
        reduced = semijoin_reduce(q, empty_db)
        oracle = semijoin_reduce_tuples(q, empty_db)
        assert len(reduced["R"]) == len(oracle["R"]) == 0
        assert len(reduced["S"]) == len(oracle["S"]) == 0

    def test_cyclic_rejected(self, graph_db, triangle_query):
        with pytest.raises(ValueError):
            semijoin_reduce(triangle_query, graph_db)

    def test_untouched_relations_pass_through(self, two_table_db, one_join_query):
        extra = two_table_db.with_relation(
            "Z", Relation(("q",), [(1,)])
        )
        reduced = semijoin_reduce(one_join_query, extra)
        assert set(reduced["Z"]) == {(1,)}

    def test_bounds_shrink_after_reduction(self, two_table_db, one_join_query):
        # reduction can only tighten measured statistics
        import math

        from repro.core import collect_statistics, lp_bound

        before = lp_bound(
            collect_statistics(one_join_query, two_table_db, ps=[1.0, 2.0]),
            query=one_join_query,
        )
        reduced = semijoin_reduce(one_join_query, two_table_db)
        after = lp_bound(
            collect_statistics(one_join_query, reduced, ps=[1.0, 2.0]),
            query=one_join_query,
        )
        assert after.log2_bound <= before.log2_bound + 1e-9
        truth = acyclic_count(one_join_query, two_table_db)
        assert after.log2_bound >= math.log2(max(1, truth)) - 1e-9
