"""Unit tests for the join-tree counting algorithm."""

import pytest

from repro.evaluation import acyclic_count, count_query, join_tree
from repro.query import parse_query
from repro.relational import Database, Relation


class TestJoinTree:
    def test_path_tree(self):
        q = parse_query("R(a,b), S(b,c), T(c,d)")
        tree = join_tree(q)
        assert len(tree) == 3
        assert tree[-1][1] is None  # root last
        # every non-root's parent appears later in the order
        positions = {atom: i for i, (atom, _) in enumerate(tree)}
        for atom, parent in tree[:-1]:
            assert positions[parent] > positions[atom]

    def test_cyclic_rejected(self, triangle_query):
        with pytest.raises(ValueError, match="acyclic"):
            join_tree(triangle_query)

    def test_single_atom(self):
        tree = join_tree(parse_query("R(x,y)"))
        assert tree == [(0, None)]


class TestCounts:
    def test_matches_wcoj_one_join(self, two_table_db, one_join_query):
        assert acyclic_count(one_join_query, two_table_db) == count_query(
            one_join_query, two_table_db
        )

    def test_matches_wcoj_on_star(self, graph_db):
        q = parse_query("Q(m,a,b,c) :- R(m,a), R(m,b), R(m,c)")
        assert acyclic_count(q, graph_db) == count_query(q, graph_db)

    def test_matches_wcoj_on_path(self, graph_db):
        q = parse_query("Q(a,b,c,d) :- R(a,b), R(b,c), R(c,d)")
        assert acyclic_count(q, graph_db) == count_query(q, graph_db)

    def test_matches_wcoj_with_unary_atoms(self):
        db = Database(
            {
                "R": Relation(("a", "b"), [(1, 2), (2, 3), (3, 4)]),
                "S": Relation(("a",), [(2,), (3,)]),
            }
        )
        q = parse_query("Q(x,y) :- R(x,y), S(x)")
        assert acyclic_count(q, db) == count_query(q, db) == 2

    def test_covering_atom_case(self):
        # α-acyclic *because* of the covering atom
        db = Database(
            {
                "W": Relation(("a", "b", "c"), [(1, 2, 3), (1, 2, 4)]),
                "R": Relation(("a", "b"), [(1, 2)]),
                "S": Relation(("b", "c"), [(2, 3), (2, 4), (9, 9)]),
            }
        )
        q = parse_query("Q(x,y,z) :- W(x,y,z), R(x,y), S(y,z)")
        assert acyclic_count(q, db) == count_query(q, db) == 2

    def test_exact_big_count_without_materialisation(self):
        # star with three fat satellites: count is huge, DP handles exactly
        center = Relation(("m",), [(i,) for i in range(4)])
        fan = Relation(("m", "v"), [(i, j) for i in range(4) for j in range(50)])
        db = Database({"C": center, "F": fan})
        q = parse_query("Q(m,a,b,c) :- C(m), F(m,a), F(m,b), F(m,c)")
        assert acyclic_count(q, db) == 4 * 50**3

    def test_empty_result(self):
        db = Database(
            {
                "R": Relation(("a", "b"), [(1, 2)]),
                "S": Relation(("b", "c"), [(9, 9)]),
            }
        )
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        assert acyclic_count(q, db) == 0

    def test_repeated_variable_atom(self):
        db = Database({"R": Relation(("a", "b"), [(1, 1), (1, 2), (2, 2)])})
        q = parse_query("Q(x,y) :- R(x,x), R(x,y)")
        assert acyclic_count(q, db) == count_query(q, db) == 3

    def test_python_int_exactness(self):
        # counts exceeding float precision stay exact
        fan = Relation(("m", "v"), [(0, j) for j in range(1000)])
        center = Relation(("m",), [(0,)])
        db = Database({"C": center, "F": fan})
        q = parse_query(
            "Q(m,a,b,c,d,e,f) :- C(m), F(m,a), F(m,b), F(m,c), F(m,d),"
            " F(m,e), F(m,f)"
        )
        assert acyclic_count(q, db) == 1000**6
